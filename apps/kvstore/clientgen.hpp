// Deterministic open-loop client generator for the kvstore.
//
// Millions of simulated clients are modeled as one aggregate arrival
// process per edge node: a seeded exponential interarrival stream whose
// rate follows a piecewise diurnal profile, optionally multiplied by a
// flash-crowd burst. Arrivals never wait for responses (open loop): each
// request is fired from its own fire-and-forget fiber, and the response
// parcel lands in a reply handler that feeds the per-node SloTracker.
// Key skew is Zipfian (util/zipf.hpp) with configurable exponent; an
// optional hot-set rotation at t_shift moves the popular keys mid-run,
// the churn driver behind the SLO-retention metric.
//
// Everything is derived from ClientConfig::seed and simulated time, so
// the generated stream — and therefore the engine trace hash — is
// identical across host thread counts and processes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/world.hpp"
#include "kvstore/server.hpp"
#include "kvstore/slo.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace nvgas::apps::kv {

struct ClientConfig {
  std::uint64_t keyspace = 1 << 14;
  double zipf_s = 0.99;       // key-popularity skew exponent
  double get_fraction = 0.80; // op mix; del = 1 - get - put
  double put_fraction = 0.17;
  double ttl_fraction = 0.25; // of PUTs that carry a TTL
  std::uint32_t ttl_us = 400;
  std::uint32_t value_size = 32;
  // Aggregate arrival rate per edge node at diurnal multiplier 1.0
  // (ops/sec of simulated time; each op stands for one client request).
  double rate_per_node = 2.0e6;
  sim::Time t_start = 50'000;      // first-arrival time (alloc warmup)
  sim::Time duration = 2'000'000;  // arrival window length
  // Diurnal load profile: multipliers stepped uniformly across the
  // arrival window (a compressed day).
  std::vector<double> diurnal = {0.6, 1.0, 1.4, 1.0};
  // Flash crowd: rate multiplied by flash_mult in [flash_begin, flash_end).
  sim::Time flash_begin = 0;
  sim::Time flash_end = 0;
  double flash_mult = 1.0;
  // Hot-set rotation: from t_shift on (absolute; 0 = never), sampled keys
  // rotate by keyspace/2, moving the entire hot set at once.
  sim::Time t_shift = 0;
  std::uint64_t seed = 0x5eedc11e;
};

class ClientGen {
 public:
  ClientGen(World& world, KvServer& server, ClientConfig cfg,
            sim::Time slo_window_ns, sim::Time slo_target_ns);
  ClientGen(const ClientGen&) = delete;
  ClientGen& operator=(const ClientGen&) = delete;

  // Start this rank's arrival process (fire-and-forget; call once per
  // rank, after KvServer::setup has completed on rank 0).
  rt::Fiber drive(rt::Context& ctx);

  // --- post-run (quiesced) aggregation ------------------------------
  [[nodiscard]] SloTracker merged_slo() const;
  [[nodiscard]] std::uint64_t issued() const;
  [[nodiscard]] std::uint64_t completed() const;
  // GET responses whose value bytes were not all identical — the
  // client-visible torn-read detector (values are written as a repeated
  // tag byte).
  [[nodiscard]] std::uint64_t torn() const;
  [[nodiscard]] std::uint64_t code_count(std::uint8_t code) const;

 private:
  struct NodeState {
    std::uint64_t next_token = 1;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t torn = 0;
    std::uint64_t codes[3] = {0, 0, 0};
    SloTracker slo;
    explicit NodeState(sim::Time window, sim::Time target)
        : slo(window, target) {}
  };

  void issue(rt::Context& c, NodeState& st, util::Rng& rng, sim::Time t);
  void on_reply(rt::Context& c, util::Buffer raw);
  [[nodiscard]] double rate_at(sim::Time t) const;

  World* world_;
  KvServer* server_;
  ClientConfig cfg_;
  util::ZipfGenerator zipf_;  // shared, read-only after construction
  rt::ActionId reply_action_ = rt::kInvalidAction;
  std::vector<NodeState> nodes_;
};

}  // namespace nvgas::apps::kv
