// mcheck scenario for the kvstore: a PUT/DEL race with a concurrent
// reader while the key's bucket migrates. Lives in apps/ (not core/) so
// the model checker gains app coverage without core depending on apps;
// tools/mcheck.cpp appends it to the built-in library.
#pragma once

#include "core/mcheck.hpp"

namespace nvgas::apps::kv {

// Invariants checked under delay-bounded exploration:
//   - a GET never returns a torn value (all value bytes must carry the
//     writer's tag), even when the read races a delete-then-overwrite
//     and a migration of the bucket block;
//   - every request is acknowledged exactly once (no duplicate or
//     dropped responses);
//   - the DEL ledger is exact: dels_applied + dels_missed equals the
//     number of client DELs issued;
//   - at quiescence the key is either absent or holds the whole final
//     value (the delete-then-overwrite can never resurrect the old one).
[[nodiscard]] core::Scenario kv_put_get_del_scenario();

}  // namespace nvgas::apps::kv
