// Served-latency SLO accounting for the kvstore (docs/KVSTORE.md §SLO).
//
// LatencyHistogram is a fixed-bucket log2 histogram with 16 linear
// sub-buckets per power of two (HDR-style, ~6% relative quantile error),
// all-integer and deterministic: the same completion stream produces the
// same p50/p99/p999 on every host, thread count, and process. SloTracker
// adds the time-windowed goodput series behind the
// SLO-retention-under-churn metric, which extends the S-7 (bench_churn)
// methodology from raw throughput retention to "requests served within
// the SLO target" retention.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace nvgas::apps::kv {

class LatencyHistogram {
 public:
  // Values 0..15 are exact; above that, value v with highest set bit m
  // lands in one of 16 linear sub-buckets of [2^m, 2^(m+1)).
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // 16
  static constexpr std::uint32_t kBuckets = kSub * (64 - kSubBits + 1);

  static constexpr std::uint32_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::uint32_t>(v);
    const auto m = static_cast<std::uint32_t>(63 - __builtin_clzll(v));
    const auto sub =
        static_cast<std::uint32_t>((v >> (m - kSubBits)) & (kSub - 1));
    return (m - kSubBits + 1) * kSub + sub;
  }

  // Inclusive upper bound of a bucket: every recorded value quantizes to
  // the upper edge of its bucket, so reported quantiles never understate
  // the latency a client saw.
  static constexpr std::uint64_t bucket_upper(std::uint32_t idx) {
    if (idx < kSub) return idx;
    const std::uint32_t m = idx / kSub + kSubBits - 1;
    const std::uint32_t sub = idx % kSub;
    const std::uint64_t lo =
        (std::uint64_t{1} << m) + (std::uint64_t{sub} << (m - kSubBits));
    return lo + (std::uint64_t{1} << (m - kSubBits)) - 1;
  }

  void record(std::uint64_t v) {
    counts_[bucket_index(v)]++;
    ++total_;
    sum_ += v;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }

  // Quantile by bucket walk: the value bound below which at least
  // ceil(p * total) samples fall. Deterministic integer math; p in
  // [0, 1]. Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double p) const {
    if (total_ == 0) return 0;
    NVGAS_CHECK(p >= 0.0 && p <= 1.0);
    auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total_));
    if (rank * 1.0 < p * static_cast<double>(total_)) ++rank;  // ceil
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return bucket_upper(i);
    }
    return bucket_upper(kBuckets - 1);
  }

  void merge(const LatencyHistogram& o) {
    for (std::uint32_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    sum_ += o.sum_;
  }

  void reset() {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

// Aggregated quantiles for one op kind.
struct OpLatency {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t mean = 0;
};

struct SloReport {
  OpLatency put;
  OpLatency get;
  OpLatency del;
  std::uint64_t completed = 0;      // responses received
  std::uint64_t within_slo = 0;     // responses with latency <= target
  double goodput_ops_per_sec = 0;   // within-SLO completions / wall span
  // Mean per-window within-SLO completions, churn vs quiet windows
  // (tracks offered load under the open-loop generator).
  double quiet_goodput_per_win = 0;
  double churn_goodput_per_win = 0;
  // SLO retention under churn: the within-SLO attainment FRACTION in
  // churn windows over the same fraction in quiet windows. Normalizing
  // by completions makes the metric load-independent, so the diurnal /
  // flash-crowd rate shifts do not masquerade as churn effects. 1.0
  // when no churn window was declared.
  double slo_retention = 1.0;
};

// One per edge node (lane-confined); merged host-side after the run.
class SloTracker {
 public:
  SloTracker(sim::Time window_ns, sim::Time slo_target_ns)
      : window_ns_(window_ns), slo_target_(slo_target_ns) {
    NVGAS_CHECK(window_ns_ > 0);
  }

  void record(std::uint8_t op, sim::Time t_complete, sim::Time latency_ns);

  void merge(const SloTracker& o);

  // churn = [churn_begin, churn_end) in simulated time; pass 0,0 for no
  // churn phase. Windows that straddle a boundary count toward the phase
  // containing their start.
  [[nodiscard]] SloReport report(sim::Time churn_begin,
                                 sim::Time churn_end) const;

  [[nodiscard]] const LatencyHistogram& hist(std::uint8_t op) const;

 private:
  struct Window {
    std::uint64_t completed = 0;
    std::uint64_t within_slo = 0;
  };

  sim::Time window_ns_;
  sim::Time slo_target_;
  LatencyHistogram put_;
  LatencyHistogram get_;
  LatencyHistogram del_;
  std::vector<Window> windows_;
  std::uint64_t completed_ = 0;
  std::uint64_t within_slo_ = 0;
  sim::Time first_complete_ = 0;
  sim::Time last_complete_ = 0;
};

}  // namespace nvgas::apps::kv
