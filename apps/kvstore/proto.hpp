// KV wire protocol: the request/response format the kvstore carries in
// parcels (docs/KVSTORE.md). Modeled on the minimal secmem-style KV
// framing — an op byte plus klen/vlen/ttl header — adapted to the
// runtime's typed parcel payloads (util::Buffer).
//
// A request is MsgHdr + key bytes + value bytes + ReqMeta. The key is
// opaque bytes on the wire; the simulated clients use 8-byte keys. The
// response echoes the requester's token and issue time so the client
// side needs no pending-request table to compute served latency.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/buffer.hpp"

namespace nvgas::apps::kv {

enum Op : std::uint8_t {
  OP_PUT = 1,
  OP_GET = 2,
  OP_DEL = 3,
  OP_METRICS = 4,
};

// Response status codes.
enum Code : std::uint8_t {
  kOk = 0,        // PUT stored / GET hit / DEL removed a live entry
  kNotFound = 1,  // GET or DEL on an absent key
  kNoSpace = 2,   // PUT found no free slot in the key's bucket
};

// Fixed-size request header. `ttl_us` is the entry's time-to-live in
// microseconds (0 = no expiry); the server converts it to an absolute
// simulated-time deadline when it arms the expiry timer.
struct MsgHdr {
  std::uint8_t op = 0;
  std::uint8_t flags = 0;
  std::uint16_t reserved = 0;
  std::uint32_t klen = 0;
  std::uint32_t vlen = 0;
  std::uint32_t ttl_us = 0;
};
static_assert(sizeof(MsgHdr) == 16);

// Request trailer: who to answer and how to correlate the answer.
// `reply_action` == 0 suppresses the response (server-internal requests,
// e.g. TTL-expiry deletes, use this). `token` is requester-scoped.
struct ReqMeta {
  std::uint64_t token = 0;
  sim::Time t_issue = 0;
  std::uint32_t reply_action = 0;
  std::int32_t reply_node = -1;
};
static_assert(sizeof(ReqMeta) == 24);

// Fixed-size response header; GET responses append the value bytes.
struct RespHdr {
  std::uint64_t token = 0;
  sim::Time t_issue = 0;
  std::uint8_t op = 0;
  std::uint8_t code = 0;
  std::uint16_t reserved = 0;
  std::uint32_t vlen = 0;
};
static_assert(sizeof(RespHdr) == 24);

// Consume `n` raw bytes from a reader into an owned vector.
inline std::vector<std::byte> take_raw(util::Buffer::Reader& r, std::size_t n) {
  const auto src = r.rest();
  NVGAS_CHECK_MSG(n <= src.size(), "kv frame underrun");
  std::vector<std::byte> out(src.begin(),
                             src.begin() + static_cast<std::ptrdiff_t>(n));
  r.skip(n);
  return out;
}

// Decoded request, with owned key/value bytes (a handler fiber may
// suspend, so it cannot keep spans into the dispatch buffer).
struct Request {
  MsgHdr hdr;
  std::vector<std::byte> key;
  std::vector<std::byte> value;
  ReqMeta meta;
};

inline util::Buffer encode_request(const MsgHdr& hdr,
                                   std::span<const std::byte> key,
                                   std::span<const std::byte> value,
                                   const ReqMeta& meta) {
  NVGAS_CHECK(hdr.klen == key.size() && hdr.vlen == value.size());
  util::Buffer buf;
  buf.put(hdr);
  buf.append_raw(key);
  buf.append_raw(value);
  buf.put(meta);
  return buf;
}

inline Request decode_request(const util::Buffer& buf) {
  auto r = buf.reader();
  Request rq;
  rq.hdr = r.get<MsgHdr>();
  rq.key = take_raw(r, rq.hdr.klen);
  rq.value = take_raw(r, rq.hdr.vlen);
  rq.meta = r.get<ReqMeta>();
  return rq;
}

inline util::Buffer encode_response(const RespHdr& hdr,
                                    std::span<const std::byte> value) {
  NVGAS_CHECK(hdr.vlen == value.size());
  util::Buffer buf;
  buf.put(hdr);
  buf.append_raw(value);
  return buf;
}

struct Response {
  RespHdr hdr;
  std::vector<std::byte> value;
};

inline Response decode_response(const util::Buffer& buf) {
  auto r = buf.reader();
  Response rp;
  rp.hdr = r.get<RespHdr>();
  rp.value = take_raw(r, rp.hdr.vlen);
  return rp;
}

// Per-node server counters, shipped verbatim as an OP_METRICS response
// payload (trivially copyable by design).
struct Metrics {
  std::uint64_t puts = 0;        // PUTs applied (stored or overwritten)
  std::uint64_t no_space = 0;    // PUTs rejected: bucket full
  std::uint64_t gets_hit = 0;
  std::uint64_t gets_miss = 0;
  std::uint64_t dels_applied = 0;  // DELs that removed a live entry
  std::uint64_t dels_missed = 0;   // DELs on an absent key
  std::uint64_t expirations = 0;   // TTL timers that fired and removed
  std::uint64_t ttl_armed = 0;     // expiry timers armed
  std::uint64_t ttl_cancelled = 0; // expiry timers cancelled (overwrite/DEL)

  Metrics& operator+=(const Metrics& o) {
    puts += o.puts;
    no_space += o.no_space;
    gets_hit += o.gets_hit;
    gets_miss += o.gets_miss;
    dels_applied += o.dels_applied;
    dels_missed += o.dels_missed;
    expirations += o.expirations;
    ttl_armed += o.ttl_armed;
    ttl_cancelled += o.ttl_cancelled;
    return *this;
  }
};
static_assert(std::is_trivially_copyable_v<Metrics>);

}  // namespace nvgas::apps::kv
