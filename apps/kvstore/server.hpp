// KvServer: a GAS-backed key-value store (docs/KVSTORE.md).
//
// Keys hash to fixed-geometry buckets, one GAS block per bucket,
// allocated cyclically across the machine. Requests are parcels routed
// with the apply() trampoline to the bucket's CURRENT owner — the
// manager under test resolves and forwards — so the same server binary
// competes unchanged across pgas/agas-sw/agas-net, and the lb balancer
// is free to migrate hot buckets underneath live traffic.
//
// Consistency model (what mcheck's kv-put-get-del scenario verifies):
//   - every slot mutation is ONE memput and every lookup ONE memget, so
//     the GAS protocol's per-op atomicity guarantees a GET never
//     observes a torn (partly overwritten) entry, even mid-migration;
//   - mutations of one bucket serialize through a per-owner FIFO lock,
//     so slot assignment and version increments never interleave;
//   - each DEL is acknowledged exactly once, and the server-side ledger
//     (dels_applied + dels_missed) accounts for every DEL received.
//
// TTL expiry: entries with a TTL are registered at the bucket's HOME
// node (a static property of the address, so arm/cancel messages from
// any owner serialize on one lane), which arms a cancellable engine
// timer per live (bucket, key). Overwrites and deletes cancel the
// timer; firing issues a version-guarded internal DEL through the
// normal GAS path, so a concurrent re-PUT is never clobbered.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/world.hpp"
#include "kvstore/proto.hpp"
#include "rt/lco.hpp"
#include "util/rng.hpp"

namespace nvgas::apps::kv {

struct KvParams {
  std::uint32_t buckets = 64;           // GAS blocks, cyclic placement
  std::uint32_t slots_per_bucket = 8;   // fixed open-addressed slots
  std::uint32_t value_size = 32;        // max value bytes per entry
  std::uint32_t op_cost_ns = 500;       // CPU charged per served request
};

// On-block slot header; the value bytes follow, padded to value_size.
struct SlotHdr {
  std::uint64_t key_hash = 0;  // FNV-1a of the key bytes (wire keys are
                               // opaque; the full key is not stored)
  std::uint32_t ver = 0;       // bumped by every mutation of the slot
  std::uint8_t state = 0;      // 0 empty, 1 live, 2 tombstone
  std::uint8_t flags = 0;      // bit 0: entry has a TTL timer armed
  std::uint16_t reserved = 0;
  std::uint32_t vlen = 0;
  std::uint32_t reserved2 = 0;
};
static_assert(sizeof(SlotHdr) == 24);

inline constexpr std::uint8_t kSlotEmpty = 0;
inline constexpr std::uint8_t kSlotLive = 1;
inline constexpr std::uint8_t kSlotTombstone = 2;
inline constexpr std::uint8_t kEntryHasTtl = 1;

// Request flag: meta.token carries an expected slot version; the DEL
// applies only if the slot still holds exactly that version (used by
// TTL expiry so a racing re-PUT survives).
inline constexpr std::uint8_t kReqVersionGuard = 1;
// Request flag: this DEL is a TTL expiry (counted as `expirations`).
inline constexpr std::uint8_t kReqExpiry = 2;

class KvServer {
 public:
  KvServer(World& world, KvParams params);
  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  // Allocate the bucket table. Call once, from a fiber, before traffic.
  void setup(rt::Context& ctx);

  // Route one request to its bucket's current owner (fire-and-forget;
  // the response, if requested, arrives at meta.reply_action). Must be
  // called from a fiber; suspends only for owner resolution + send.
  [[nodiscard]] ApplyAwaiter submit(rt::Context& ctx, const MsgHdr& hdr,
                                          std::span<const std::byte> key,
                                          std::span<const std::byte> value,
                                          const ReqMeta& meta);

  // Ask `node` for its Metrics (OP_METRICS over the wire; the reply goes
  // to `meta.reply_action`).
  void submit_metrics(rt::Context& ctx, int node, const ReqMeta& meta);

  // --- geometry / introspection (host-side helpers, charge nothing) ---
  [[nodiscard]] std::uint64_t hash_key(std::span<const std::byte> key) const;
  [[nodiscard]] std::uint32_t bucket_of(std::span<const std::byte> key) const;
  [[nodiscard]] gas::Gva bucket_addr(std::uint32_t bucket) const;
  [[nodiscard]] std::uint32_t slot_size() const {
    return static_cast<std::uint32_t>(sizeof(SlotHdr)) + params_.value_size;
  }
  [[nodiscard]] std::uint32_t block_size() const {
    return params_.slots_per_bucket * slot_size();
  }
  [[nodiscard]] const KvParams& params() const { return params_; }
  [[nodiscard]] gas::Gva table() const { return table_; }
  [[nodiscard]] rt::ActionId op_action() const { return op_action_; }

  // Post-run (quiesced) aggregation.
  [[nodiscard]] Metrics metrics(int node) const;
  [[nodiscard]] Metrics total_metrics() const;

 private:
  struct BucketLock {
    bool busy = false;
    std::deque<rt::Event*> waiters;
  };

  struct TtlEntry {
    sim::Engine::TimerId timer;
    std::uint32_t ver = 0;
  };

  // Per-node server state, touched only from that node's lane.
  struct NodeState {
    Metrics metrics;
    std::map<std::uint32_t, BucketLock> locks;
    // TTL registry for keys whose bucket is homed here, keyed by the
    // owned key bytes (deterministic lexicographic order).
    std::map<std::vector<std::byte>, TtlEntry> ttl;
  };

  [[nodiscard]] NodeState& state_of(int node) {
    return nodes_[static_cast<std::size_t>(node)];
  }

  // FIFO bucket lock for mutators (GETs go lock-free; see file header).
  // Returns true when acquired immediately; else the caller must
  // `co_await turn` and owns the lock once resumed.
  [[nodiscard]] bool try_lock(rt::Context& c, std::uint32_t bucket,
                              rt::Event& turn);
  void unlock(rt::Context& c, std::uint32_t bucket);

  rt::Fiber handle_op(rt::Context& c, util::Buffer raw);
  void handle_ttl(rt::Context& c, util::Buffer raw);
  void handle_metrics(rt::Context& c, int src, util::Buffer raw);
  void reply(rt::Context& c, const Request& rq, std::uint8_t code,
             std::span<const std::byte> value);
  void ttl_update(rt::Context& c, std::uint32_t bucket,
                  const std::vector<std::byte>& key, std::uint32_t ver,
                  sim::Time expiry);
  void on_ttl_fire(int node, std::uint32_t bucket, std::vector<std::byte> key,
                   std::uint32_t ver);

  World* world_;
  KvParams params_;
  gas::Gva table_{};
  rt::ActionId op_action_ = rt::kInvalidAction;
  rt::ActionId ttl_action_ = rt::kInvalidAction;
  rt::ActionId metrics_action_ = rt::kInvalidAction;
  std::vector<NodeState> nodes_;
};

}  // namespace nvgas::apps::kv
