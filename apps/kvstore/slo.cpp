#include "kvstore/slo.hpp"

#include <algorithm>

#include "kvstore/proto.hpp"

namespace nvgas::apps::kv {

void SloTracker::record(std::uint8_t op, sim::Time t_complete,
                        sim::Time latency_ns) {
  switch (op) {
    case OP_PUT: put_.record(latency_ns); break;
    case OP_GET: get_.record(latency_ns); break;
    case OP_DEL: del_.record(latency_ns); break;
    default: NVGAS_CHECK_MSG(false, "SloTracker: unknown op"); break;
  }
  if (completed_ == 0 || t_complete < first_complete_) {
    first_complete_ = t_complete;
  }
  last_complete_ = std::max(last_complete_, t_complete);
  ++completed_;
  const bool ok = latency_ns <= slo_target_;
  if (ok) ++within_slo_;
  const auto w = static_cast<std::size_t>(t_complete / window_ns_);
  if (w >= windows_.size()) windows_.resize(w + 1);
  windows_[w].completed++;
  if (ok) windows_[w].within_slo++;
}

void SloTracker::merge(const SloTracker& o) {
  NVGAS_CHECK(window_ns_ == o.window_ns_ && slo_target_ == o.slo_target_);
  put_.merge(o.put_);
  get_.merge(o.get_);
  del_.merge(o.del_);
  if (o.completed_ > 0) {
    if (completed_ == 0 || o.first_complete_ < first_complete_) {
      first_complete_ = o.first_complete_;
    }
    last_complete_ = std::max(last_complete_, o.last_complete_);
  }
  completed_ += o.completed_;
  within_slo_ += o.within_slo_;
  if (o.windows_.size() > windows_.size()) windows_.resize(o.windows_.size());
  for (std::size_t i = 0; i < o.windows_.size(); ++i) {
    windows_[i].completed += o.windows_[i].completed;
    windows_[i].within_slo += o.windows_[i].within_slo;
  }
}

const LatencyHistogram& SloTracker::hist(std::uint8_t op) const {
  switch (op) {
    case OP_PUT: return put_;
    case OP_DEL: return del_;
    default: return get_;
  }
}

namespace {
OpLatency summarize(const LatencyHistogram& h) {
  OpLatency out;
  out.count = h.total();
  if (h.total() == 0) return out;
  out.p50 = h.percentile(0.50);
  out.p99 = h.percentile(0.99);
  out.p999 = h.percentile(0.999);
  out.mean = h.sum() / h.total();
  return out;
}
}  // namespace

SloReport SloTracker::report(sim::Time churn_begin, sim::Time churn_end) const {
  SloReport rep;
  rep.put = summarize(put_);
  rep.get = summarize(get_);
  rep.del = summarize(del_);
  rep.completed = completed_;
  rep.within_slo = within_slo_;
  if (completed_ > 0 && last_complete_ > first_complete_) {
    rep.goodput_ops_per_sec =
        static_cast<double>(within_slo_) /
        (static_cast<double>(last_complete_ - first_complete_) / 1e9);
  }
  if (churn_end <= churn_begin) return rep;  // no churn phase declared
  // Retention is load-normalized: the client stream is open-loop with a
  // diurnal (and possibly flash-crowd) rate, so raw per-window counts
  // track offered load, not service quality. The comparable quantity is
  // SLO ATTAINMENT — the fraction of completions inside the target — in
  // churn windows versus quiet windows.
  std::uint64_t churn_ok = 0, quiet_ok = 0;
  std::uint64_t churn_done = 0, quiet_done = 0;
  std::uint64_t churn_wins = 0, quiet_wins = 0;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const sim::Time start = static_cast<sim::Time>(i) * window_ns_;
    // Skip windows with no completions at either edge of the run: they
    // are ramp-up/drain, not steady state of either phase.
    if (windows_[i].completed == 0) continue;
    if (start >= churn_begin && start < churn_end) {
      churn_ok += windows_[i].within_slo;
      churn_done += windows_[i].completed;
      ++churn_wins;
    } else {
      quiet_ok += windows_[i].within_slo;
      quiet_done += windows_[i].completed;
      ++quiet_wins;
    }
  }
  if (quiet_wins > 0) {
    rep.quiet_goodput_per_win =
        static_cast<double>(quiet_ok) / static_cast<double>(quiet_wins);
  }
  if (churn_wins > 0) {
    rep.churn_goodput_per_win =
        static_cast<double>(churn_ok) / static_cast<double>(churn_wins);
  }
  if (quiet_done > 0 && churn_done > 0) {
    const double quiet_attain =
        static_cast<double>(quiet_ok) / static_cast<double>(quiet_done);
    const double churn_attain =
        static_cast<double>(churn_ok) / static_cast<double>(churn_done);
    if (quiet_attain > 0) rep.slo_retention = churn_attain / quiet_attain;
  }
  return rep;
}

}  // namespace nvgas::apps::kv
