#include "kvstore/clientgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

namespace nvgas::apps::kv {

ClientGen::ClientGen(World& world, KvServer& server, ClientConfig cfg,
                     sim::Time slo_window_ns, sim::Time slo_target_ns)
    : world_(&world),
      server_(&server),
      cfg_(std::move(cfg)),
      zipf_(cfg_.keyspace, cfg_.zipf_s) {
  NVGAS_CHECK(cfg_.rate_per_node > 0 && cfg_.duration > 0);
  NVGAS_CHECK(cfg_.get_fraction + cfg_.put_fraction <= 1.0);
  NVGAS_CHECK(!cfg_.diurnal.empty());
  NVGAS_CHECK(cfg_.value_size <= server_->params().value_size);
  const auto n = static_cast<std::size_t>(world.fabric().nodes());
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(slo_window_ns, slo_target_ns);
  }
  reply_action_ = world.runtime().actions().add(
      "kv.client.reply", [this](rt::Context& c, int, util::Buffer args) {
        on_reply(c, std::move(args));
      });
}

double ClientGen::rate_at(sim::Time t) const {
  double mult = 1.0;
  if (t >= cfg_.t_start && t < cfg_.t_start + cfg_.duration) {
    const auto phase = static_cast<std::size_t>(
        (static_cast<double>(t - cfg_.t_start) /
         static_cast<double>(cfg_.duration)) *
        static_cast<double>(cfg_.diurnal.size()));
    mult = cfg_.diurnal[std::min(phase, cfg_.diurnal.size() - 1)];
  }
  if (t >= cfg_.flash_begin && t < cfg_.flash_end) mult *= cfg_.flash_mult;
  return cfg_.rate_per_node * mult;
}

rt::Fiber ClientGen::drive(rt::Context& ctx) {
  auto& st = nodes_[static_cast<std::size_t>(ctx.rank())];
  util::Rng rng(util::SplitMix64(
                    cfg_.seed ^ (0x9e37u + static_cast<std::uint64_t>(ctx.rank())))
                    .next());
  sim::Time t = cfg_.t_start;
  const sim::Time t_end = cfg_.t_start + cfg_.duration;
  while (t < t_end) {
    // Exponential interarrival at the current (diurnal × flash) rate.
    const double u = rng.uniform();
    const double gap_ns = -std::log(1.0 - u) * 1e9 / rate_at(t);
    t += std::max<sim::Time>(1, static_cast<sim::Time>(gap_ns));
    if (t >= t_end) break;
    if (t > ctx.now()) co_await ctx.sleep(t - ctx.now());
    // else: arrivals outpaced the sim clock — issue immediately, the
    // open-loop backlog is real offered load.
    issue(ctx, st, rng, t);
  }
}

void ClientGen::issue(rt::Context& c, NodeState& st, util::Rng& rng,
                      sim::Time /*t_sched*/) {
  std::uint64_t key_idx = zipf_.sample(rng);
  if (cfg_.t_shift != 0 && c.now() >= cfg_.t_shift) {
    key_idx = (key_idx + cfg_.keyspace / 2) % cfg_.keyspace;
  }
  const double r = rng.uniform();
  std::uint8_t op = OP_GET;
  if (r >= cfg_.get_fraction) {
    op = r < cfg_.get_fraction + cfg_.put_fraction ? OP_PUT : OP_DEL;
  }
  const std::uint64_t token = st.next_token++;

  MsgHdr hdr;
  hdr.op = op;
  hdr.klen = sizeof(std::uint64_t);
  std::vector<std::byte> value;
  if (op == OP_PUT) {
    hdr.vlen = cfg_.value_size;
    if (cfg_.ttl_fraction > 0 && rng.uniform() < cfg_.ttl_fraction) {
      hdr.ttl_us = cfg_.ttl_us;
    }
    // Repeated tag byte: any mixed-byte GET response is a torn read.
    const auto tag = static_cast<std::byte>(
        (token * 131 + static_cast<std::uint64_t>(c.rank()) * 17) & 0xff);
    value.assign(cfg_.value_size, tag);
  }
  ReqMeta meta;
  meta.token = token;
  meta.t_issue = c.now();
  meta.reply_action = reply_action_;
  meta.reply_node = c.rank();

  std::vector<std::byte> key(sizeof(std::uint64_t));
  std::memcpy(key.data(), &key_idx, sizeof key_idx);

  st.issued++;
  // Fire-and-forget request fiber: the arrival loop never blocks on
  // owner resolution, keeping the generator open-loop.
  c.spawn(c.rank(), [this, hdr, meta, key = std::move(key),
                     value = std::move(value)](rt::Context& cc) -> rt::Fiber {
    co_await server_->submit(cc, hdr, key, value, meta);
  });
}

void ClientGen::on_reply(rt::Context& c, util::Buffer raw) {
  const Response rp = decode_response(raw);
  auto& st = nodes_[static_cast<std::size_t>(c.rank())];
  st.completed++;
  if (rp.hdr.code < 3) st.codes[rp.hdr.code]++;
  const sim::Time latency = c.now() - rp.hdr.t_issue;
  st.slo.record(rp.hdr.op, c.now(), latency);
  if (rp.hdr.op == OP_GET && rp.hdr.code == kOk && !rp.value.empty()) {
    const std::byte tag = rp.value[0];
    for (const std::byte b : rp.value) {
      if (b != tag) {
        st.torn++;
        break;
      }
    }
  }
}

SloTracker ClientGen::merged_slo() const {
  SloTracker out = nodes_[0].slo;
  for (std::size_t i = 1; i < nodes_.size(); ++i) out.merge(nodes_[i].slo);
  return out;
}

std::uint64_t ClientGen::issued() const {
  std::uint64_t n = 0;
  for (const auto& s : nodes_) n += s.issued;
  return n;
}

std::uint64_t ClientGen::completed() const {
  std::uint64_t n = 0;
  for (const auto& s : nodes_) n += s.completed;
  return n;
}

std::uint64_t ClientGen::torn() const {
  std::uint64_t n = 0;
  for (const auto& s : nodes_) n += s.torn;
  return n;
}

std::uint64_t ClientGen::code_count(std::uint8_t code) const {
  NVGAS_CHECK(code < 3);
  std::uint64_t n = 0;
  for (const auto& s : nodes_) n += s.codes[code];
  return n;
}

}  // namespace nvgas::apps::kv
