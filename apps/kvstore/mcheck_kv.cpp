#include "kvstore/mcheck_kv.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "kvstore/server.hpp"
#include "util/format.hpp"

namespace nvgas::apps::kv {
namespace {

constexpr std::uint8_t kTagOld = 0xAA;
constexpr std::uint8_t kTagNew = 0xBB;

std::vector<std::byte> kv_key(std::uint64_t k) {
  std::vector<std::byte> out(sizeof k);
  std::memcpy(out.data(), &k, sizeof k);
  return out;
}

std::vector<std::byte> kv_val(std::uint8_t tag) {
  return std::vector<std::byte>(8, static_cast<std::byte>(tag));
}

// Shared between the scenario fibers, the reply handler, and the
// post-drain verifier.
struct CheckState {
  std::unique_ptr<KvServer> server;
  rt::ActionId reply_action = rt::kInvalidAction;
  std::map<std::uint64_t, rt::Event*> waiting;
  std::map<std::uint64_t, int> acks;
  std::set<std::uint64_t> issued;
  std::uint64_t dels_issued = 0;
};

// Issue one request and note the token as outstanding. The caller
// co_awaits `turn` after the submit completes; the reply handler sets it.
ReqMeta arm(CheckState& st, rt::Context& c, std::uint64_t token,
            rt::Event& turn) {
  ReqMeta m;
  m.token = token;
  m.t_issue = c.now();
  m.reply_action = st.reply_action;
  m.reply_node = c.rank();
  st.waiting[token] = &turn;
  st.issued.insert(token);
  return m;
}

}  // namespace

core::Scenario kv_put_get_del_scenario() {
  core::Scenario s;
  s.name = "kv-put-get-del";
  s.description = "kvstore PUT/DEL race with reads and a bucket migration; "
                  "no torn GETs, exactly-once acks, exact DEL ledger";
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto st = std::make_shared<CheckState>();
    KvParams kp;
    kp.buckets = 2;
    kp.slots_per_bucket = 4;
    kp.value_size = 8;
    st->server = std::make_unique<KvServer>(world, kp);
    st->reply_action = world.runtime().actions().add(
        "kvcheck.reply", [st, &obs](Context& c, int, util::Buffer raw) {
          const Response rp = decode_response(raw);
          const int n = ++st->acks[rp.hdr.token];
          if (n > 1) {
            obs.fail(util::format(
                "kv-put-get-del: token %llu acknowledged %d times",
                static_cast<unsigned long long>(rp.hdr.token), n));
          }
          if (rp.hdr.op == OP_GET && rp.hdr.code == kOk) {
            // The value must be whole: every byte carries one writer's
            // tag. A mix is a torn read of the delete-then-overwrite.
            bool whole = !rp.value.empty();
            const std::byte tag = rp.value.empty() ? std::byte{0} : rp.value[0];
            for (const std::byte b : rp.value) whole = whole && b == tag;
            const auto t = static_cast<std::uint8_t>(tag);
            if (!whole || (t != kTagOld && t != kTagNew)) {
              obs.fail(util::format(
                  "kv-put-get-del: GET (token %llu) returned a torn or "
                  "corrupt value (first byte %02x)",
                  static_cast<unsigned long long>(rp.hdr.token), t));
            }
          }
          auto it = st->waiting.find(rp.hdr.token);
          if (it != st->waiting.end()) {
            it->second->set(c.now());
            st->waiting.erase(it);
          }
        });

    world.spawn(0, [&world, st](Context& ctx) -> Fiber {
      st->server->setup(ctx);
      const int n = ctx.ranks();
      const std::uint64_t kidx = 7;
      const auto key = kv_key(kidx);

      MsgHdr put;
      put.op = OP_PUT;
      put.klen = 8;
      put.vlen = 8;
      MsgHdr del;
      del.op = OP_DEL;
      del.klen = 8;
      MsgHdr get;
      get.op = OP_GET;
      get.klen = 8;

      // Writer A: PUT old, DEL, re-PUT new — each step acked before the
      // next, so A's program order pins what finals are legal.
      ctx.spawn(1 % n, [st, key, put, del](Context& c) -> Fiber {
        {
          // protolint:allow(P2: arm() parks &turn in st->waiting; the kvcheck.reply handler resolves it)
      rt::Event turn;
          co_await st->server->submit(c, put, key, kv_val(kTagOld),
                                      arm(*st, c, 1, turn));
          co_await turn;
        }
        {
          // protolint:allow(P2: arm() parks &turn in st->waiting; the kvcheck.reply handler resolves it)
      rt::Event turn;
          st->dels_issued++;
          co_await st->server->submit(c, del, key, {},
                                      arm(*st, c, 2, turn));
          co_await turn;
        }
        {
          // protolint:allow(P2: arm() parks &turn in st->waiting; the kvcheck.reply handler resolves it)
      rt::Event turn;
          co_await st->server->submit(c, put, key, kv_val(kTagNew),
                                      arm(*st, c, 3, turn));
          co_await turn;
        }
      });

      // Writer B: one racing DEL, unordered against all of A's steps.
      ctx.spawn(2 % n, [st, key, del](Context& c) -> Fiber {
        // protolint:allow(P2: arm() parks &turn in st->waiting; the kvcheck.reply handler resolves it)
      rt::Event turn;
        st->dels_issued++;
        co_await st->server->submit(c, del, key, {}, arm(*st, c, 100, turn));
        co_await turn;
      });

      // Reader: a burst of GETs racing both writers and the migration.
      ctx.spawn(3 % n, [st, key, get](Context& c) -> Fiber {
        for (std::uint64_t i = 0; i < 3; ++i) {
          // protolint:allow(P2: arm() parks &turn in st->waiting; the kvcheck.reply handler resolves it)
      rt::Event turn;
          co_await st->server->submit(c, get, key, {},
                                      arm(*st, c, 200 + i, turn));
          co_await turn;
        }
      });

      // Migrate the key's bucket underneath the race where the manager
      // supports it (the pgas baseline serves in place).
      if (world.gas().supports_migration()) {
        const Gva baddr = st->server->bucket_addr(st->server->bucket_of(key));
        ctx.spawn(0, [baddr, n](Context& c) -> Fiber {
          co_await migrate(c, baddr, 2 % n);
          co_await migrate(c, baddr, 3 % n);
        });
      }
      co_return;
    });

    return std::function<void()>([&world, &obs, st] {
      // Exactly-once acks: every issued token answered exactly once
      // (duplicates were flagged as they arrived).
      for (const std::uint64_t tok : st->issued) {
        const auto it = st->acks.find(tok);
        if (it == st->acks.end() || it->second != 1) {
          obs.fail(util::format(
              "kv-put-get-del: token %llu acknowledged %d times (want 1)",
              static_cast<unsigned long long>(tok),
              it == st->acks.end() ? 0 : it->second));
          return;
        }
      }
      // Exact DEL ledger: each client DEL applied or missed, never both,
      // never dropped. TTLs are unused here, so expirations stay 0.
      const Metrics m = st->server->total_metrics();
      if (m.dels_applied + m.dels_missed != st->dels_issued) {
        obs.fail(util::format(
            "kv-put-get-del: DEL ledger %llu applied + %llu missed != "
            "%llu issued",
            static_cast<unsigned long long>(m.dels_applied),
            static_cast<unsigned long long>(m.dels_missed),
            static_cast<unsigned long long>(st->dels_issued)));
        return;
      }
      // Final state: the key is either absent or holds the whole NEW
      // value. The old value can never be resurrected: writer A only
      // re-PUT after its DEL was acked.
      const std::uint64_t kidx = 7;
      const auto key = kv_key(kidx);
      const std::uint64_t h = st->server->hash_key(key);
      const Gva baddr = st->server->bucket_addr(st->server->bucket_of(key));
      const auto [owner, lva] = world.gas().owner_of(baddr);
      const std::uint32_t ssize = st->server->slot_size();
      for (std::uint32_t slot = 0; slot < st->server->params().slots_per_bucket;
           ++slot) {
        const std::uint64_t base = lva + slot * ssize;
        const auto slot_hash =
            world.fabric().mem(owner).load<std::uint64_t>(base);
        const auto packed =
            world.fabric().mem(owner).load<std::uint32_t>(base + 12);
        const auto state = static_cast<std::uint8_t>(packed & 0xff);
        if (slot_hash != h || state != kSlotLive) continue;
        const auto value =
            world.fabric().mem(owner).load<std::uint64_t>(base + 24);
        if (value != 0xBBBBBBBBBBBBBBBBull) {
          obs.fail(util::format(
              "kv-put-get-del: final live value %llx at owner %d, want "
              "all-%02x or absent",
              static_cast<unsigned long long>(value), owner, kTagNew));
        }
        return;
      }
    });
  };
  return s;
}

}  // namespace nvgas::apps::kv
