#include "kvstore/server.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "gas/gheap.hpp"

namespace nvgas::apps::kv {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

SlotHdr load_slot(std::span<const std::byte> block, std::uint32_t slot,
                  std::uint32_t slot_size) {
  SlotHdr h;
  std::memcpy(&h, block.data() + std::size_t{slot} * slot_size, sizeof h);
  return h;
}

}  // namespace

KvServer::KvServer(World& world, KvParams params)
    : world_(&world),
      params_(params),
      // protolint:allow(P4: simulator-host array, one per-node server state per simulated node)
      nodes_(static_cast<std::size_t>(world.fabric().nodes())) {
  NVGAS_CHECK(params_.buckets > 0 && params_.slots_per_bucket > 0);
  auto& actions = world.runtime().actions();
  op_action_ =
      actions.add("kv.op", [this](rt::Context& c, int, util::Buffer args) {
        (void)handle_op(c, std::move(args));
      });
  ttl_action_ =
      actions.add("kv.ttl", [this](rt::Context& c, int, util::Buffer args) {
        handle_ttl(c, std::move(args));
      });
  metrics_action_ =
      actions.add("kv.metrics", [this](rt::Context& c, int src, util::Buffer args) {
        handle_metrics(c, src, std::move(args));
      });
}

void KvServer::setup(rt::Context& ctx) {
  table_ = alloc_cyclic(ctx, params_.buckets, block_size());
}

std::uint64_t KvServer::hash_key(std::span<const std::byte> key) const {
  std::uint64_t h = kFnvOffset;
  for (const std::byte b : key) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  // SplitMix finalizer: FNV alone disperses short counter-like keys
  // poorly in the low bits, which is exactly where % buckets looks.
  return util::SplitMix64(h).next();
}

std::uint32_t KvServer::bucket_of(std::span<const std::byte> key) const {
  return static_cast<std::uint32_t>(hash_key(key) % params_.buckets);
}

gas::Gva KvServer::bucket_addr(std::uint32_t bucket) const {
  NVGAS_CHECK(bucket < params_.buckets);
  return table_.advanced(
      static_cast<std::int64_t>(bucket) * block_size(), block_size());
}

ApplyAwaiter KvServer::submit(rt::Context& ctx, const MsgHdr& hdr,
                              std::span<const std::byte> key,
                              std::span<const std::byte> value,
                              const ReqMeta& meta) {
  return apply(ctx, bucket_addr(bucket_of(key)), op_action_,
               encode_request(hdr, key, value, meta));
}

void KvServer::submit_metrics(rt::Context& ctx, int node, const ReqMeta& meta) {
  util::Buffer b;
  b.put(meta);
  ctx.send(node, metrics_action_, std::move(b));
}

Metrics KvServer::metrics(int node) const {
  return nodes_[static_cast<std::size_t>(node)].metrics;
}

Metrics KvServer::total_metrics() const {
  Metrics total;
  for (const auto& n : nodes_) total += n.metrics;
  return total;
}

bool KvServer::try_lock(rt::Context& c, std::uint32_t bucket,
                        rt::Event& turn) {
  auto& l = state_of(c.rank()).locks[bucket];
  if (!l.busy) {
    l.busy = true;
    return true;
  }
  l.waiters.push_back(&turn);
  return false;
}

void KvServer::unlock(rt::Context& c, std::uint32_t bucket) {
  auto& l = state_of(c.rank()).locks[bucket];
  NVGAS_CHECK_MSG(l.busy, "kv bucket lock released while free");
  if (l.waiters.empty()) {
    l.busy = false;
    return;
  }
  rt::Event* next = l.waiters.front();
  l.waiters.pop_front();
  // `busy` stays true: ownership hands straight to the next waiter.
  next->set(c.now());
}

void KvServer::reply(rt::Context& c, const Request& rq, std::uint8_t code,
                     std::span<const std::byte> value) {
  if (rq.meta.reply_action == 0) return;
  RespHdr h;
  h.token = rq.meta.token;
  h.t_issue = rq.meta.t_issue;
  h.op = rq.hdr.op;
  h.code = code;
  h.vlen = static_cast<std::uint32_t>(value.size());
  c.send(rq.meta.reply_node, rq.meta.reply_action, encode_response(h, value));
}

rt::Fiber KvServer::handle_op(rt::Context& c, util::Buffer raw) {
  c.charge(params_.op_cost_ns);
  const Request rq = decode_request(raw);
  const std::uint32_t bucket = bucket_of(rq.key);
  const std::uint64_t kh = hash_key(rq.key);
  const gas::Gva baddr = bucket_addr(bucket);
  const std::uint32_t bsize = block_size();
  const std::uint32_t ssize = slot_size();
  const std::uint32_t nslots = params_.slots_per_bucket;

  if (rq.hdr.op == OP_GET) {
    // Lock-free: the whole-bucket memget is one GAS op, atomic against
    // any concurrent single-memput slot mutation.
    const auto bytes = co_await memget(c, baddr, bsize);
    for (std::uint32_t i = 0; i < nslots; ++i) {
      const SlotHdr sh = load_slot(bytes, i, ssize);
      if (sh.state == kSlotLive && sh.key_hash == kh) {
        state_of(c.rank()).metrics.gets_hit++;
        reply(c, rq, kOk,
              std::span<const std::byte>(bytes).subspan(
                  std::size_t{i} * ssize + sizeof(SlotHdr), sh.vlen));
        co_return;
      }
    }
    state_of(c.rank()).metrics.gets_miss++;
    reply(c, rq, kNotFound, {});
    co_return;
  }

  // Mutators serialize per (node, bucket) so slot assignment and the
  // version counter never interleave at one owner.
  {
    // protolint:allow(P2: turn is parked by pointer in the bucket lock's waiter queue; unlock() resolves the head waiter)
    rt::Event turn;
    if (!try_lock(c, bucket, turn)) co_await turn;
  }
  const auto bytes = co_await memget(c, baddr, bsize);
  std::int32_t found = -1;
  std::int32_t vacant = -1;
  SlotHdr cur{};
  for (std::uint32_t i = 0; i < nslots; ++i) {
    const SlotHdr sh = load_slot(bytes, i, ssize);
    if (sh.state == kSlotLive && sh.key_hash == kh) {
      found = static_cast<std::int32_t>(i);
      cur = sh;
      break;
    }
    if (vacant < 0 && sh.state != kSlotLive) {
      vacant = static_cast<std::int32_t>(i);
    }
  }
  auto& m = state_of(c.rank()).metrics;

  if (rq.hdr.op == OP_PUT) {
    NVGAS_CHECK_MSG(rq.hdr.vlen <= params_.value_size,
                    "kv PUT value exceeds the configured slot size");
    const std::int32_t slot = found >= 0 ? found : vacant;
    if (slot < 0) {
      m.no_space++;
      unlock(c, bucket);
      reply(c, rq, kNoSpace, {});
      co_return;
    }
    const SlotHdr old =
        load_slot(bytes, static_cast<std::uint32_t>(slot), ssize);
    SlotHdr nh;
    nh.key_hash = kh;
    nh.ver = old.ver + 1;
    nh.state = kSlotLive;
    nh.flags = rq.hdr.ttl_us > 0 ? kEntryHasTtl : std::uint8_t{0};
    nh.vlen = rq.hdr.vlen;
    std::vector<std::byte> slot_bytes(ssize);  // zero-padded
    std::memcpy(slot_bytes.data(), &nh, sizeof nh);
    std::memcpy(slot_bytes.data() + sizeof nh, rq.value.data(), rq.value.size());
    co_await memput(c, baddr.advanced(slot * ssize, bsize),
                    std::move(slot_bytes));
    m.puts++;
    unlock(c, bucket);
    reply(c, rq, kOk, {});
    // TTL bookkeeping at the bucket's home node: a new TTL re-arms, an
    // overwrite of a TTL'd entry with a plain one cancels.
    const bool had_ttl =
        old.state == kSlotLive && (old.flags & kEntryHasTtl) != 0;
    if (rq.hdr.ttl_us > 0) {
      const sim::Time expiry =
          c.now() + sim::Time{rq.hdr.ttl_us} * 1000;
      ttl_update(c, bucket, rq.key, nh.ver, expiry);
    } else if (had_ttl) {
      ttl_update(c, bucket, rq.key, nh.ver, 0);
    }
    co_return;
  }

  NVGAS_CHECK_MSG(rq.hdr.op == OP_DEL, "kv.op: unknown op");
  bool guard_ok = true;
  if ((rq.hdr.flags & kReqVersionGuard) != 0) {
    guard_ok = found >= 0 && cur.ver == static_cast<std::uint32_t>(rq.meta.token);
  }
  const bool expiry_del = (rq.hdr.flags & kReqExpiry) != 0;
  if (found < 0 || !guard_ok) {
    if (!expiry_del) m.dels_missed++;
    unlock(c, bucket);
    reply(c, rq, kNotFound, {});
    co_return;
  }
  SlotHdr nh = cur;
  nh.ver = cur.ver + 1;
  nh.state = kSlotTombstone;
  nh.flags = 0;
  nh.vlen = 0;
  // Header-only write: one memput, value bytes are dead once state
  // flips (GETs check state before touching them).
  std::vector<std::byte> hdr_bytes(sizeof nh);
  std::memcpy(hdr_bytes.data(), &nh, sizeof nh);
  co_await memput(c, baddr.advanced(found * ssize, bsize),
                  std::move(hdr_bytes));
  if (expiry_del) {
    m.expirations++;
  } else {
    m.dels_applied++;
  }
  unlock(c, bucket);
  reply(c, rq, kOk, {});
  if ((cur.flags & kEntryHasTtl) != 0 && !expiry_del) {
    ttl_update(c, bucket, rq.key, nh.ver, 0);
  }
  co_return;
}

void KvServer::ttl_update(rt::Context& c, std::uint32_t bucket,
                          const std::vector<std::byte>& key, std::uint32_t ver,
                          sim::Time expiry) {
  util::Buffer b;
  b.put(bucket);
  b.put(ver);
  b.put(expiry);
  b.put_bytes(key);
  const int home = world_->gas().heap().home_of(bucket_addr(bucket));
  c.send(home, ttl_action_, std::move(b));
}

void KvServer::handle_ttl(rt::Context& c, util::Buffer raw) {
  auto r = raw.reader();
  const auto bucket = r.get<std::uint32_t>();
  const auto ver = r.get<std::uint32_t>();
  const auto expiry = r.get<sim::Time>();
  auto key = r.get_bytes();
  auto& st = state_of(c.rank());
  auto& eng = world_->engine();
  const auto it = st.ttl.find(key);
  if (it != st.ttl.end()) {
    // Same lane that armed it, so the cancel is always legal.
    if (eng.cancel(it->second.timer)) st.metrics.ttl_cancelled++;
    st.ttl.erase(it);
  }
  if (expiry == 0) return;
  const int node = c.rank();
  TtlEntry e;
  e.ver = ver;
  e.timer = eng.at_cancellable(
      std::max(expiry, eng.now()), [this, node, bucket, ver, key]() mutable {
        on_ttl_fire(node, bucket, std::move(key), ver);
      });
  st.metrics.ttl_armed++;
  st.ttl[std::move(key)] = e;
}

void KvServer::on_ttl_fire(int node, std::uint32_t /*bucket*/,
                           std::vector<std::byte> key, std::uint32_t ver) {
  auto& st = state_of(node);
  st.ttl.erase(key);  // the timer just fired; the entry is spent
  // Version-guarded internal DEL through the normal request path: if the
  // key was re-PUT since this timer was armed, the guard misses and the
  // new entry survives.
  world_->runtime().spawn_at(
      node, world_->engine().now(),
      [this, key = std::move(key), ver](rt::Context& cc) -> rt::Fiber {
        MsgHdr h;
        h.op = OP_DEL;
        h.flags = kReqVersionGuard | kReqExpiry;
        h.klen = static_cast<std::uint32_t>(key.size());
        ReqMeta meta;
        meta.token = ver;
        meta.t_issue = cc.now();
        meta.reply_action = 0;
        meta.reply_node = cc.rank();
        co_await submit(cc, h, key, {}, meta);
      });
}

void KvServer::handle_metrics(rt::Context& c, int /*src*/, util::Buffer raw) {
  auto r = raw.reader();
  const auto meta = r.get<ReqMeta>();
  if (meta.reply_action == 0) return;
  const Metrics m = state_of(c.rank()).metrics;
  RespHdr h;
  h.token = meta.token;
  h.t_issue = meta.t_issue;
  h.op = OP_METRICS;
  h.code = kOk;
  h.vlen = sizeof(Metrics);
  c.send(meta.reply_node, meta.reply_action,
         encode_response(h, std::as_bytes(std::span(&m, 1))));
}

}  // namespace nvgas::apps::kv
