#include "kvstore/harness.hpp"

#include "core/world.hpp"
#include "rt/collectives.hpp"

namespace nvgas::apps::kv {

void arm_lossy_plan(Config& cfg) {
  sim::FaultRule rule;
  rule.drop = 0.01;
  rule.dup = 0.005;
  rule.delay = 0.05;
  rule.delay_ns = 3000;
  cfg.faults.rules.push_back(rule);
}

KvRunResult run_kv(const KvRunConfig& rc) {
  Config cfg = Config::with_nodes(rc.nodes, rc.mode);
  cfg.machine.threads = rc.threads;
  cfg.lb.policy = rc.policy;
  // Mirrors the bench_loadbalance tuning: every served op costs CPU at
  // the owner, so that is the benefit of moving a hot bucket away.
  cfg.lb.epoch_ns = 100'000;
  cfg.lb.decay_shift = 1;
  cfg.lb.max_moves_per_epoch = 4;
  cfg.lb.max_inflight = 4;
  cfg.lb.min_heat = 2 * lb::kAccessUnit;
  cfg.lb.benefit_ns_per_access = static_cast<sim::Time>(rc.kv.op_cost_ns);
  if (rc.lossy) arm_lossy_plan(cfg);

  World world(cfg);
  KvServer server(world, rc.kv);
  ClientGen gen(world, server, rc.client, rc.slo_window_ns, rc.slo_target_ns);

  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) server.setup(ctx);
    co_await world.coll().barrier(ctx);
    (void)gen.drive(ctx);
  });

  KvRunResult out;
  const sim::Time churn_begin = rc.client.t_shift;
  const sim::Time churn_end =
      rc.client.t_shift == 0 ? 0 : rc.client.t_shift + rc.churn_duration;
  out.slo = gen.merged_slo().report(churn_begin, churn_end);
  out.server = server.total_metrics();
  out.issued = gen.issued();
  out.completed = gen.completed();
  out.torn = gen.torn();
  out.no_space = gen.code_count(kNoSpace);
  out.lb_migrations = world.counters().lb_migrations;
  out.trace_hash = world.engine().trace_hash();
  out.sim_ns = world.now();
  return out;
}

}  // namespace nvgas::apps::kv
