// One-call kvstore run: build a World for a given manager / lb policy /
// fault plan, serve a full ClientGen arrival stream through a KvServer,
// and report the SLO outcome. Shared by bench_kvstore (the sweep),
// determinism_probe (thread-count invariance) and the unit tests, so
// all three measure exactly the same workload.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "kvstore/clientgen.hpp"
#include "kvstore/server.hpp"
#include "kvstore/slo.hpp"

namespace nvgas::apps::kv {

struct KvRunConfig {
  gas::GasMode mode = gas::GasMode::kAgasNet;
  int nodes = 8;
  int threads = 0;  // 0 = classic engine, >= 1 = sharded
  lb::PolicyKind policy = lb::PolicyKind::kNone;
  bool lossy = false;  // arm the lossy wire-fault plan
  KvParams kv;
  ClientConfig client;
  sim::Time slo_window_ns = 100'000;   // S-7 window size
  sim::Time slo_target_ns = 150'000;   // served-latency SLO target
  sim::Time churn_duration = 600'000;  // churn phase length after t_shift
};

struct KvRunResult {
  SloReport slo;
  Metrics server;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t torn = 0;
  std::uint64_t no_space = 0;  // kNoSpace responses seen by clients
  std::uint64_t lb_migrations = 0;
  std::uint64_t trace_hash = 0;
  sim::Time sim_ns = 0;
};

// The canonical lossy fault plan for the kvstore sweep: a catch-all
// rule with light drop/dup/delay, enough to exercise retransmission
// under load without stalling the run.
void arm_lossy_plan(Config& cfg);

[[nodiscard]] KvRunResult run_kv(const KvRunConfig& rc);

}  // namespace nvgas::apps::kv
