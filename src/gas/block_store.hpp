// Per-node registered-heap allocator.
//
// Carves block storage out of the node's registered memory segment using
// power-of-two segregated free lists over a bump pointer. All GAS
// implementations allocate block storage through this, so blocks always
// live inside RDMA-able memory.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/memory.hpp"
#include "sim/shardsan.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace nvgas::gas {

class BlockStore {
 public:
  explicit BlockStore(std::size_t segment_bytes)
      : segment_bytes_(segment_bytes) {}

  // ShardSan owner tag: bound to the store's node by GlobalHeap. The
  // sanctioned cross-lane paths (alloc-time home reservation, free_alloc
  // teardown) open NVGAS_SHARD_CROSS scopes matching the mutex rationale
  // below; everything else must run on the owning lane.
  NVGAS_SHARD_OWNER_DECL;

  // Allocate `bytes` (rounded up to a power of two, min 64). Aborts on
  // exhaustion only if `nofail`; otherwise returns false.
  [[nodiscard]] bool try_allocate(std::size_t bytes, sim::Lva* out);
  [[nodiscard]] sim::Lva allocate(std::size_t bytes) {
    sim::Lva lva = 0;
    NVGAS_CHECK_MSG(try_allocate(bytes, &lva), "registered heap exhausted");
    return lva;
  }

  void release(sim::Lva lva, std::size_t bytes);

  [[nodiscard]] std::size_t bytes_in_use() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_use_;
  }
  [[nodiscard]] std::size_t bytes_total() const { return segment_bytes_; }
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bump_;
  }

  static constexpr std::size_t kMinBlock = 64;

 private:
  static unsigned size_class(std::size_t bytes) {
    const std::size_t rounded = std::max(bytes, kMinBlock);
    return util::ceil_log2(rounded);
  }

  // A node's store is usually touched from its own lane, but a creator
  // reserves homes on every node at alloc time and a migration releases
  // at the source while allocating at the destination — both cross-lane
  // under the sharded engine, so the free lists are mutex-guarded. The
  // returned Lva values are never hashed or timed, so lock-order
  // nondeterminism here cannot leak into traces.
  mutable std::mutex mu_;
  std::size_t segment_bytes_;
  std::size_t bump_ = 0;
  std::size_t in_use_ = 0;
  std::array<std::vector<sim::Lva>, 64> free_lists_{};
};

}  // namespace nvgas::gas
