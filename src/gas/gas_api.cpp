#include "gas/gas_api.hpp"

#include "gas/invariants.hpp"

namespace nvgas::gas {

net::OnDone GasBase::instrument_signal(net::OnDone remote_notify) const {
  // Null callbacks stay null: wrapping one would make the endpoint treat
  // the put as carrying a remote notification, changing simulated
  // behavior. Observation must be passive.
  if (observer_ == nullptr || !remote_notify) return remote_notify;
  const std::uint64_t token = observer_->expect_signal();
  return [obs = observer_, token,
          inner = std::move(remote_notify)](sim::Time t) {
    obs->on_signal(token, t);
    if (inner) inner(t);
  };
}

Gva GasBase::alloc(sim::TaskCtx& task, int node, Dist dist,
                   std::uint32_t nblocks, std::uint32_t block_size) {
  // Cost model for the allocation handshake: one collective round trip
  // plus the per-block heap work amortized across ranks. The metadata
  // itself is installed atomically (the simulator is the single source of
  // truth, standing in for the allocation broadcast).
  const auto& p = fabric_->params();
  const std::uint64_t blocks_here =
      std::max<std::uint64_t>(1, nblocks / static_cast<std::uint32_t>(ranks()));
  task.charge(2 * p.wire_latency_ns + 2 * p.cpu_send_overhead_ns +
              blocks_here * costs_.alloc_block_ns);
  const int creator = dist == Dist::kLocal ? node : node;
  return heap_->alloc(dist, creator, nblocks, block_size);
}

std::pair<int, sim::Lva> GasBase::drop_block_state(Gva block_base) {
  return {heap_->home_of(block_base), heap_->initial_lva(block_base)};
}

void GasBase::free_alloc(sim::TaskCtx& task, int node, Gva base) {
  const AllocMeta meta = heap_->meta_of(base);  // copy: released below
  // Cost model mirrors alloc: a collective round trip plus per-block
  // local heap work amortized across ranks.
  const auto& p = fabric_->params();
  const std::uint64_t blocks_here = std::max<std::uint64_t>(
      1, meta.nblocks / static_cast<std::uint32_t>(ranks()));
  task.charge(2 * p.wire_latency_ns + 2 * p.cpu_send_overhead_ns +
              blocks_here * costs_.alloc_block_ns);
  auto& engine = fabric_->engine();
  if (engine.sharded()) {
    // drop_block_state walks authoritative translation state across ALL
    // nodes' lanes, so under the sharded engine the teardown runs as a
    // barrier event once every lane has passed the free's issue time.
    // The collective free contract (no accesses in flight) makes the
    // deferral invisible to the program.
    engine.at_global(task.now(), static_cast<std::uint32_t>(node),
                     [this, meta] { release_blocks(meta); });
    return;
  }
  (void)node;
  release_blocks(meta);
}

void GasBase::release_blocks(const AllocMeta& meta) {
  // Collective-free teardown releases every block at its CURRENT owner —
  // the free_alloc cross-lane exception in BlockStore's locking contract
  // (the caller guarantees nothing is in flight; sharded mode further
  // defers this to a quiesced barrier event).
  NVGAS_SHARD_CROSS("free_alloc teardown (collective free contract)");
  for (std::uint32_t b = 0; b < meta.nblocks; ++b) {
    const Gva block = Gva::make(meta.dist, meta.creator, meta.id, b, 0);
    const auto [owner, lva] = drop_block_state(block);
    heap_->store(owner).release(lva, meta.block_size);  // simlint:allow(D8: free_alloc teardown under NVGAS_SHARD_CROSS — quiesced barrier / collective-free contract)
    if (observer_ != nullptr) observer_->on_free(block.block_key());
    if (access_observer_ != nullptr) {
      access_observer_->on_block_freed(block.block_key());
    }
  }
  heap_->release_meta(meta.id);
}

void GasBase::memcpy_gva(sim::TaskCtx& task, int node, Gva dst, Gva src,
                         std::size_t len, net::OnDone done) {
  heap_->check_extent(src, len);
  heap_->check_extent(dst, len);
  memget(task, node, src, len,
         [this, node, dst, done = std::move(done)](
             sim::Time t, std::vector<std::byte> data) mutable {
           fabric_->cpu(node).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
               t, [this, node, dst, data = std::move(data),
                   done = std::move(done)](sim::TaskCtx& t2) mutable {
                 memput(t2, node, dst, std::move(data), std::move(done));
               });
         });
}

void GasBase::local_put(sim::TaskCtx& task, int node, sim::Lva lva,
                        std::span<const std::byte> data,
                        const net::OnDone& done) {
  task.charge(fabric_->params().copy_time(data.size()));
  fabric_->mem(node).write(lva, data);  // simlint:allow(D8: node is the calling task's own rank — local access path)
  if (done) done(task.now());
}

void GasBase::local_get(sim::TaskCtx& task, int node, sim::Lva lva,
                        std::size_t len, const net::OnData& done) {
  task.charge(fabric_->params().copy_time(len));
  if (done) done(task.now(), fabric_->mem(node).read_vec(lva, len));  // simlint:allow(D8: node is the calling task's own rank — local access path)
}

void GasBase::local_fadd(sim::TaskCtx& task, int node, sim::Lva lva,
                         std::uint64_t operand, const net::OnU64& done) {
  task.charge(fabric_->params().nic_atomic_ns);
  const auto old = fabric_->mem(node).fetch_add_u64(lva, operand);  // simlint:allow(D8: node is the calling task's own rank — local access path)
  if (done) done(task.now(), old);
}

}  // namespace nvgas::gas
