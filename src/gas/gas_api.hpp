// GasBase: the common interface of the three address-space managers
// (PGAS baseline, software AGAS baseline, network-managed AGAS).
//
// Operations are asynchronous with completion callbacks at the net layer;
// core::World adapts them to awaitables for fibers. Every data-path call
// is made from within a CPU task on `node` and charges its software costs
// to that task, so the managers are directly comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "gas/costs.hpp"
#include "gas/gheap.hpp"
#include "gas/gva.hpp"
#include "net/endpoint.hpp"
#include "sim/cpu.hpp"
#include "sim/fabric.hpp"

namespace nvgas::gas {

enum class GasMode : std::uint8_t { kPgas = 0, kAgasSw = 1, kAgasNet = 2 };

[[nodiscard]] constexpr const char* to_string(GasMode mode) {
  switch (mode) {
    case GasMode::kPgas: return "pgas";
    case GasMode::kAgasSw: return "agas-sw";
    case GasMode::kAgasNet: return "agas-net";
  }
  return "?";
}

// Owner resolution result delivered to `OnOwner`.
using OnOwner = std::function<void(sim::Time, int owner)>;

class InvariantObserver;  // gas/invariants.hpp

// Passive consumer of the full data-path access stream (local hits
// included), independent of the InvariantObserver slot so heat tracking
// (src/lb) can run alongside protocol checking. Hooks fire at op issue
// time on the issuing node, charge nothing, and must not call back into
// the manager's data path.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  // A data-path op (put/get/fadd/resolve) from `node` targeted
  // `block_key` and the issuing node currently owns the block.
  virtual void on_local_access(int node, std::uint64_t block_key) = 0;
  // Same, but the block currently lives on another node.
  virtual void on_remote_access(int node, std::uint64_t block_key) = 0;
  // The block's translation state was dropped (free_alloc): the key may
  // be recycled, so any retained per-block state must be discarded.
  virtual void on_block_freed(std::uint64_t block_key) = 0;
};

class GasBase {
 public:
  GasBase(sim::Fabric& fabric, net::EndpointGroup& endpoints, GlobalHeap& heap,
          GasCosts costs)
      : fabric_(&fabric), endpoints_(&endpoints), heap_(&heap), costs_(costs) {}
  virtual ~GasBase() = default;
  GasBase(const GasBase&) = delete;
  GasBase& operator=(const GasBase&) = delete;

  [[nodiscard]] virtual GasMode mode() const = 0;
  [[nodiscard]] virtual bool supports_migration() const = 0;

  // --- allocation ---------------------------------------------------------
  // Reserves blocks on their home ranks. Metadata becomes globally
  // consistent at return (the deterministic simulator stands in for the
  // allocation collective); the handshake cost is charged to `task`.
  virtual Gva alloc(sim::TaskCtx& task, int node, Dist dist,
                    std::uint32_t nblocks, std::uint32_t block_size);

  // Release an allocation: frees every block's backing store at its
  // CURRENT owner and drops all translation state. Collective semantics:
  // the caller must ensure no accesses or migrations are in flight
  // (standard PGAS free contract); violations abort.
  virtual void free_alloc(sim::TaskCtx& task, int node, Gva base);

  // --- data path ----------------------------------------------------------
  virtual void memput(sim::TaskCtx& task, int node, Gva dst,
                      std::vector<std::byte> data, net::OnDone done) = 0;

  // Put with remote notification: `remote_notify` fires at the CURRENT
  // owner the instant the data is visible there (Photon's remote
  // completion ledger). Used for producer/consumer signalling without
  // parcels. The default forwards to memput and fires the notification at
  // local-completion time with the resolved owner-side semantics lost —
  // managers whose put path reaches the target directly override it.
  virtual void memput_notify(sim::TaskCtx& task, int node, Gva dst,
                             std::vector<std::byte> data, net::OnDone done,
                             net::OnDone remote_notify) = 0;
  virtual void memget(sim::TaskCtx& task, int node, Gva src, std::size_t len,
                      net::OnData done) = 0;
  virtual void fetch_add(sim::TaskCtx& task, int node, Gva addr,
                         std::uint64_t operand, net::OnU64 done) = 0;

  // Resolve the current owner of the addressed block (used to route
  // parcels to mobile objects).
  virtual void resolve(sim::TaskCtx& task, int node, Gva addr, OnOwner done) = 0;

  // Copy `len` bytes between global addresses (each range within one
  // block). Composed from memget+memput through the issuing node.
  void memcpy_gva(sim::TaskCtx& task, int node, Gva dst, Gva src,
                  std::size_t len, net::OnDone done);

  // --- mobility -----------------------------------------------------------
  // Move the addressed block to `dst`. Managers without mobility abort.
  virtual void migrate(sim::TaskCtx& task, int node, Gva block, int dst,
                       net::OnDone done) = 0;

  // --- introspection (host-side, for tests/benches; charges nothing) ------
  [[nodiscard]] virtual std::pair<int, sim::Lva> owner_of(Gva block) const = 0;

  // --- protocol invariant observation (mcheck + tests) ---------------------
  // Attach a gas::InvariantObserver: the manager reports protocol events
  // (remote-op begin/end, fence completion, migration commit, notify
  // signals) through it and never reads it back. Null detaches. The
  // observer must outlive every reported event or detach first.
  void set_observer(InvariantObserver* observer) { observer_ = observer; }
  [[nodiscard]] InvariantObserver* observer() const { return observer_; }

  // Attach an AccessObserver (see above). Null detaches. Independent of
  // the InvariantObserver slot; both may be attached at once.
  void set_access_observer(AccessObserver* observer) {
    access_observer_ = observer;
  }
  [[nodiscard]] AccessObserver* access_observer() const {
    return access_observer_;
  }

  // Pull-based structure audits (see docs/MODEL_CHECKING.md). Both return
  // "" when the check passes, else a description of the first violation.
  // audit_translation: every cached translation anywhere agrees with the
  // authoritative record for its block (callable at any quiescent event
  // boundary, including mid-scenario). audit_quiescent: no protocol
  // state is left in flight (end of run only).
  [[nodiscard]] virtual std::string audit_translation() const { return {}; }
  [[nodiscard]] virtual std::string audit_quiescent() const { return {}; }

  [[nodiscard]] GlobalHeap& heap() { return *heap_; }
  [[nodiscard]] const GasCosts& costs() const { return costs_; }

 protected:
  [[nodiscard]] sim::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] net::Endpoint& ep(int node) { return endpoints_->at(node); }
  [[nodiscard]] int ranks() const { return fabric_->nodes(); }

  // Report one data-path access to the attached AccessObserver (no-op
  // when none). Classifies local vs remote against the authoritative
  // current owner; purely observational, charges nothing. Sharded
  // engine: the authoritative owner record lives on the block's home
  // lane, so the classification rides a post() there (the observer is
  // then responsible for hopping on to whichever lane owns ITS state —
  // lb::Balancer routes to its coordinator). Classic engine: inline,
  // byte-identical to previous builds.
  void note_access(int node, Gva addr) const {
    if (access_observer_ == nullptr) return;
    auto& engine = fabric_->engine();
    // Adopted (quiesced setup/teardown) contexts classify inline like
    // host context: every lane's state is safely readable, and a posted
    // hop would carry the idle lane clock, time-travelling ahead of the
    // alloc-time directory inserts.
    if (engine.sharded() && engine.on_shard_context() &&
        !engine.on_adopted_context()) {
      const auto home = static_cast<std::uint32_t>(heap_->home_of(addr));
      engine.post(home, engine.now(), [this, node, addr] {
        // The block may have been freed while the hop was in flight;
        // a freed key carries no heat.
        if (access_observer_ == nullptr || !heap_->contains(addr)) return;
        classify_access(node, addr);
      });
      return;
    }
    classify_access(node, addr);
  }

  void classify_access(int node, Gva addr) const {
    if (owner_of(addr.block_base()).first == node) {
      access_observer_->on_local_access(node, addr.block_key());
    } else {
      access_observer_->on_remote_access(node, addr.block_key());
    }
  }

  // Wrap a memput_notify remote-notification callback in the observer's
  // exactly-once signal ledger; identity when no observer is attached.
  [[nodiscard]] net::OnDone instrument_signal(net::OnDone remote_notify) const;

  // free_alloc hook: drop one block's translation state and return its
  // current {owner, lva} so the base can release the backing store. The
  // default (PGAS) has no dynamic state: placement is the initial one.
  virtual std::pair<int, sim::Lva> drop_block_state(Gva block_base);

  // The free_alloc teardown loop (drop every block's state, release its
  // backing store, fire the free hooks, release the metadata). Runs
  // inline on the classic engine; as an Engine::at_global barrier event
  // on the sharded one.
  void release_blocks(const AllocMeta& meta);

  // Local (owner == issuer) data-path helpers shared by all managers.
  void local_put(sim::TaskCtx& task, int node, sim::Lva lva,
                 std::span<const std::byte> data, const net::OnDone& done);
  void local_get(sim::TaskCtx& task, int node, sim::Lva lva, std::size_t len,
                 const net::OnData& done);
  void local_fadd(sim::TaskCtx& task, int node, sim::Lva lva,
                  std::uint64_t operand, const net::OnU64& done);

  sim::Fabric* fabric_;
  net::EndpointGroup* endpoints_;
  GlobalHeap* heap_;
  GasCosts costs_;
  InvariantObserver* observer_ = nullptr;
  AccessObserver* access_observer_ = nullptr;
};

}  // namespace nvgas::gas
