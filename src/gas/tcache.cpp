#include "gas/tcache.hpp"

namespace nvgas::gas {

std::optional<CacheEntry> TranslationCache::lookup(std::uint64_t block_key) {
  const auto it = map_.find(block_key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
  return it->second.entry;
}

void TranslationCache::insert(std::uint64_t block_key, const CacheEntry& entry) {
  const auto it = map_.find(block_key);
  if (it != map_.end()) {
    it->second.entry = entry;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.lru_pos = lru_.begin();
    return;
  }
  if (map_.size() >= capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
  lru_.push_front(block_key);
  map_.emplace(block_key, Slot{entry, lru_.begin()});
}

bool TranslationCache::invalidate(std::uint64_t block_key) {
  const auto it = map_.find(block_key);
  if (it == map_.end()) return false;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
  return true;
}

void TranslationCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace nvgas::gas
