#include "gas/tcache.hpp"

#include <algorithm>

#include "util/bitops.hpp"

namespace nvgas::gas {

TranslationCache::TranslationCache(std::size_t capacity)
    : capacity_(capacity) {
  NVGAS_CHECK(capacity_ >= 1);
  // Keep load factor <= 0.5 so linear probe chains stay short and an
  // empty slot always terminates the probe.
  const std::uint64_t table = std::max<std::uint64_t>(util::ceil_pow2(capacity_ * 2), 4);
  mask_ = static_cast<std::uint32_t>(table - 1);
  shift_ = 64u - util::floor_log2(table);
  slots_.assign(table, Slot{});
}

std::uint32_t TranslationCache::find(std::uint64_t key) const {
  std::uint32_t i = home(key);
  while (slots_[i].full) {
    if (slots_[i].key == key) return i;
    i = (i + 1) & mask_;
  }
  return kNotFound;
}

std::optional<CacheEntry> TranslationCache::lookup(std::uint64_t block_key) {
  const std::uint32_t i = find(block_key);
  if (i == kNotFound) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  slots_[i].ref = 1;
  return slots_[i].entry;
}

void TranslationCache::insert(std::uint64_t block_key, const CacheEntry& entry) {
  const std::uint32_t existing = find(block_key);
  if (existing != kNotFound) {
    slots_[existing].entry = entry;
    slots_[existing].ref = 1;
    return;
  }
  if (size_ >= capacity_) evict_one();
  std::uint32_t i = home(block_key);
  while (slots_[i].full) i = (i + 1) & mask_;
  slots_[i].key = block_key;
  slots_[i].entry = entry;
  slots_[i].full = true;
  slots_[i].ref = 0;  // fresh entries start unreferenced, like CLOCK inserts
  ++size_;
}

const CacheEntry* TranslationCache::peek(std::uint64_t block_key) const {
  const std::uint32_t i = find(block_key);
  return i == kNotFound ? nullptr : &slots_[i].entry;
}

std::vector<std::pair<std::uint64_t, CacheEntry>> TranslationCache::entries()
    const {
  std::vector<std::pair<std::uint64_t, CacheEntry>> out;
  out.reserve(size_);
  for (const Slot& s : slots_) {
    if (s.full) out.emplace_back(s.key, s.entry);
  }
  return out;
}

bool TranslationCache::invalidate(std::uint64_t block_key) {
  const std::uint32_t i = find(block_key);
  if (i == kNotFound) return false;
  erase_at(i);
  --size_;
  return true;
}

void TranslationCache::clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  size_ = 0;
  hand_ = 0;
}

void TranslationCache::evict_one() {
  // Second chance: sweep, clearing reference bits; evict the first
  // unreferenced entry. Terminates within two passes since every full
  // slot's bit is cleared on the first.
  while (true) {
    Slot& s = slots_[hand_];
    if (s.full) {
      if (s.ref != 0) {
        s.ref = 0;
      } else {
        erase_at(hand_);
        --size_;
        ++evictions_;
        return;
      }
    }
    hand_ = (hand_ + 1) & mask_;
  }
}

void TranslationCache::erase_at(std::uint32_t i) {
  // Backward-shift deletion: pull displaced entries back so probes never
  // need tombstones.
  slots_[i].full = false;
  std::uint32_t j = i;
  while (true) {
    j = (j + 1) & mask_;
    if (!slots_[j].full) break;
    const std::uint32_t h = home(slots_[j].key);
    if (((j - h) & mask_) >= ((j - i) & mask_)) {
      slots_[i] = slots_[j];
      slots_[j].full = false;
      i = j;
    }
  }
}

}  // namespace nvgas::gas
