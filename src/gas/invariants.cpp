#include "gas/invariants.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "gas/gas_api.hpp"
#include "util/format.hpp"

namespace nvgas::gas {
namespace {

const char* kind_name(HistOp::Kind k) {
  switch (k) {
    case HistOp::Kind::kPut: return "put";
    case HistOp::Kind::kGet: return "get";
    case HistOp::Kind::kFadd: return "fadd";
  }
  return "?";
}

std::string describe(const std::vector<HistOp>& h) {
  std::string out;
  for (const HistOp& op : h) {
    out += util::format(" P%d:%s w%llu", op.proc, kind_name(op.kind),
                        static_cast<unsigned long long>(op.word));
    if (op.kind == HistOp::Kind::kPut) {
      out += util::format("=%llu", static_cast<unsigned long long>(op.value));
    } else if (op.kind == HistOp::Kind::kGet) {
      out += util::format("->%llu", static_cast<unsigned long long>(op.result));
    } else {
      out += util::format("+%llu->%llu",
                          static_cast<unsigned long long>(op.value),
                          static_cast<unsigned long long>(op.result));
    }
    out += util::format("[%llu,%llu]",
                        static_cast<unsigned long long>(op.invoke),
                        static_cast<unsigned long long>(op.complete));
  }
  return out;
}

}  // namespace

std::string check_linearizable(const std::vector<HistOp>& history) {
  const std::size_t n = history.size();
  if (n == 0 || n > 26) return {};

  // Memory state restricted to the words the history touches, kept in a
  // sorted vector so state hashing is deterministic.
  std::vector<std::uint64_t> words;
  for (const HistOp& op : history) words.push_back(op.word);
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  std::vector<std::uint64_t> mem(words.size(), 0);  // all-zero initial state
  auto slot = [&words](std::uint64_t w) {
    return static_cast<std::size_t>(
        std::lower_bound(words.begin(), words.end(), w) - words.begin());
  };

  const std::uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1u);
  // Memoized frontiers: (chosen mask, memory state) pairs already proven
  // dead ends. The memo is EXACT, not hashed: a hash collision here would
  // prune a live state and report a linearizable history as a violation.
  std::set<std::pair<std::uint32_t, std::vector<std::uint64_t>>> seen;

  // Wing–Gong DFS: pick a minimal op (no unchosen op completed before its
  // invocation), check it is legal on the current memory, recurse.
  auto dfs = [&](auto&& self, std::uint32_t mask) -> bool {
    if (mask == full) return true;
    if (!seen.emplace(mask, mem).second) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) continue;
      const HistOp& op = history[i];
      bool minimal = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || ((mask >> j) & 1u)) continue;
        if (history[j].complete < op.invoke) {
          minimal = false;
          break;
        }
      }
      if (!minimal) continue;
      const std::size_t s = slot(op.word);
      const std::uint64_t old = mem[s];
      bool legal = true;
      switch (op.kind) {
        case HistOp::Kind::kPut:
          mem[s] = op.value;
          break;
        case HistOp::Kind::kGet:
          legal = (old == op.result);
          break;
        case HistOp::Kind::kFadd:
          legal = (old == op.result);
          if (legal) mem[s] = old + op.value;
          break;
      }
      if (legal && self(self, mask | (1u << i))) return true;
      mem[s] = old;
    }
    return false;
  };

  if (dfs(dfs, 0)) return {};
  return util::format(
             "history of %zu ops is not linearizable (no legal total order "
             "respects real time):",
             n) +
         describe(history);
}

InvariantObserver::~InvariantObserver() {
  if (gas_ != nullptr) gas_->set_observer(nullptr);
}

void InvariantObserver::attach(GasBase& gas) {
  gas_ = &gas;
  gas.set_observer(this);
}

void InvariantObserver::fail(const std::string& message) {
  ++violations_;
  if (violation_.empty()) violation_ = message;
}

void InvariantObserver::on_remote_op_begin(int node, std::uint64_t block_key) {
  ++checks_;
  KeyState& ks = keys_[block_key];
  if (ks.fenced) {
    fail(util::format("remote op from node %d began on block %llx between "
                      "fence completion and migration commit",
                      node, static_cast<unsigned long long>(block_key)));
  }
  ++ks.inflight_total;
  ++ks.inflight_by_node[node];
}

void InvariantObserver::on_remote_op_end(int node, std::uint64_t block_key) {
  ++checks_;
  KeyState& ks = keys_[block_key];
  std::uint64_t& per_node = ks.inflight_by_node[node];
  if (per_node == 0 || ks.inflight_total == 0) {
    fail(util::format("remote op from node %d on block %llx completed with "
                      "no matching begin",
                      node, static_cast<unsigned long long>(block_key)));
    return;
  }
  --per_node;
  --ks.inflight_total;
}

void InvariantObserver::on_migration_start(std::uint64_t block_key) {
  ++checks_;
  KeyState& ks = keys_[block_key];
  if (ks.moving) {
    fail(util::format("migration started on block %llx while another "
                      "migration of it is still in flight",
                      static_cast<unsigned long long>(block_key)));
  }
  ++checks_;
  if (ks.fenced) {
    fail(util::format("migration started on block %llx while a fence on "
                      "it is in flight (fence complete, commit pending)",
                      static_cast<unsigned long long>(block_key)));
  }
  ks.moving = true;
}

void InvariantObserver::on_fence_complete(std::uint64_t block_key) {
  ++checks_;
  KeyState& ks = keys_[block_key];
  if (!ks.moving) {
    fail(util::format("fence completed on block %llx with no migration "
                      "in flight",
                      static_cast<unsigned long long>(block_key)));
  }
  if (ks.inflight_total != 0) {
    fail(util::format("fence completed on block %llx with %llu remote ops "
                      "still in flight (writes can land mid-move)",
                      static_cast<unsigned long long>(block_key),
                      static_cast<unsigned long long>(ks.inflight_total)));
  }
  ks.fenced = true;
}

void InvariantObserver::on_migration_commit(std::uint64_t block_key,
                                            int new_owner,
                                            std::uint32_t new_generation) {
  ++checks_;
  KeyState& ks = keys_[block_key];
  if (!ks.moving) {
    fail(util::format("migration of block %llx committed without a start",
                      static_cast<unsigned long long>(block_key)));
  }
  if (new_generation != ks.generation + 1) {
    fail(util::format("block %llx generation not monotonic: commit to node "
                      "%d produced generation %u after %u",
                      static_cast<unsigned long long>(block_key), new_owner,
                      new_generation, ks.generation));
  }
  ks.generation = new_generation;
  ks.moving = false;
  ks.fenced = false;
  audit_structures();
}

void InvariantObserver::on_free(std::uint64_t block_key) {
  keys_.erase(block_key);
}

void InvariantObserver::on_balancer_migrate_issued(std::uint64_t block_key) {
  ++checks_;
  ++lb_issued_;
  if (++lb_inflight_[block_key] > 1) {
    fail(util::format("balancer issued a second migration of block %llx "
                      "while its first is still in flight (per-block "
                      "throttle violated)",
                      static_cast<unsigned long long>(block_key)));
  }
}

void InvariantObserver::on_balancer_migrate_done(std::uint64_t block_key) {
  ++checks_;
  ++lb_done_;
  const auto it = lb_inflight_.find(block_key);
  if (it == lb_inflight_.end() || it->second == 0) {
    fail(util::format("balancer migration of block %llx completed with no "
                      "matching issue",
                      static_cast<unsigned long long>(block_key)));
    return;
  }
  if (--it->second == 0) lb_inflight_.erase(it);
}

std::uint64_t InvariantObserver::expect_signal() {
  fired_.push_back(0);
  return fired_.size() - 1;
}

void InvariantObserver::on_signal(std::uint64_t token, sim::Time t) {
  (void)t;
  ++checks_;
  if (token >= fired_.size()) {
    fail("memput_notify signal fired with an unregistered token");
    return;
  }
  if (++fired_[token] > 1) {
    fail(util::format("memput_notify signal %llu delivered more than once",
                      static_cast<unsigned long long>(token)));
  }
}

void InvariantObserver::audit_structures() {
  if (gas_ == nullptr) return;
  ++checks_;
  const std::string err = gas_->audit_translation();
  if (!err.empty()) fail(err);
}

std::string InvariantObserver::check_quiescent(const sim::Counters& counters) {
  // Fault-ledger reconciliation: every injected frame is either dropped
  // (never arrives), delivered once, or — when duplicated — delivered
  // twice. So at quiescence
  //   delivered == sent - injected_drops + injected_dups
  // and the byte analogue; without faults both fault terms are zero and
  // this reduces to the original exact conservation.
  ++checks_;
  const std::uint64_t expect_msgs = counters.messages_sent -
                                    counters.faults_injected_drops +
                                    counters.faults_injected_dups;
  if (expect_msgs != counters.messages_delivered) {
    fail(util::format("message conservation violated: %llu sent, %llu "
                      "dropped, %llu duplicated, %llu delivered",
                      static_cast<unsigned long long>(counters.messages_sent),
                      static_cast<unsigned long long>(
                          counters.faults_injected_drops),
                      static_cast<unsigned long long>(
                          counters.faults_injected_dups),
                      static_cast<unsigned long long>(
                          counters.messages_delivered)));
  }
  ++checks_;
  const std::uint64_t expect_bytes = counters.bytes_sent -
                                     counters.faults_dropped_bytes +
                                     counters.faults_dup_bytes;
  if (expect_bytes != counters.bytes_delivered) {
    fail(util::format("byte conservation violated: %llu sent, %llu dropped, "
                      "%llu duplicated, %llu delivered",
                      static_cast<unsigned long long>(counters.bytes_sent),
                      static_cast<unsigned long long>(
                          counters.faults_dropped_bytes),
                      static_cast<unsigned long long>(counters.faults_dup_bytes),
                      static_cast<unsigned long long>(
                          counters.bytes_delivered)));
  }
  for (std::size_t i = 0; i < fired_.size(); ++i) {
    ++checks_;
    if (fired_[i] == 0) {
      fail(util::format("memput_notify signal %zu never delivered", i));
    }
  }
  ++checks_;
  if (lb_issued_ != lb_done_) {
    fail(util::format("balancer migration ledger not conserved: %llu "
                      "issued, %llu completed",
                      static_cast<unsigned long long>(lb_issued_),
                      static_cast<unsigned long long>(lb_done_)));
  }
  for (const auto& [key, ks] : keys_) {
    ++checks_;
    if (ks.moving) {
      fail(util::format("migration of block %llx never committed",
                        static_cast<unsigned long long>(key)));
    }
    if (ks.inflight_total != 0) {
      fail(util::format("%llu remote ops on block %llx never completed",
                        static_cast<unsigned long long>(ks.inflight_total),
                        static_cast<unsigned long long>(key)));
    }
  }
  audit_structures();
  if (gas_ != nullptr) {
    ++checks_;
    const std::string err = gas_->audit_quiescent();
    if (!err.empty()) fail(err);
  }
  if (!history_.empty()) {
    ++checks_;
    const std::string err = check_linearizable(history_);
    if (!err.empty()) fail(err);
  }
  return violation_;
}

}  // namespace nvgas::gas
