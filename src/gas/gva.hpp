// Global virtual address (GVA) codec.
//
// A GVA names a byte in the global address space and never changes when
// the underlying block migrates. Layout (64 bits):
//
//   [63..62] distribution   (2 bits: local / cyclic)
//   [61..52] creator rank   (10 bits, up to 1024 nodes)
//   [51..40] allocation id  (12 bits, up to 4095 live allocations)
//   [39..20] block index    (20 bits, up to 1M blocks per allocation)
//   [19..0]  byte offset    (20 bits, blocks up to 1 MiB)
//
// The *home* of a block — the rank whose directory/NIC is authoritative
// for it — is pure arithmetic on the address (cyclic: (creator + block)
// mod P), which is what lets both the PGAS baseline and the NIC fast
// path translate without any table for the home step.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace nvgas::gas {

enum class Dist : std::uint8_t { kLocal = 0, kCyclic = 1 };

class Gva {
 public:
  static constexpr unsigned kOffsetBits = 20;
  static constexpr unsigned kBlockBits = 20;
  static constexpr unsigned kAllocBits = 12;
  static constexpr unsigned kCreatorBits = 10;
  static constexpr unsigned kDistBits = 2;
  static_assert(kOffsetBits + kBlockBits + kAllocBits + kCreatorBits + kDistBits == 64);

  static constexpr std::uint64_t kMaxBlockSize = 1ULL << kOffsetBits;
  static constexpr std::uint64_t kMaxBlocks = 1ULL << kBlockBits;
  static constexpr std::uint64_t kMaxAllocs = (1ULL << kAllocBits) - 1;
  static constexpr int kMaxNodes = 1 << kCreatorBits;

  constexpr Gva() = default;
  constexpr explicit Gva(std::uint64_t bits) : bits_(bits) {}

  static constexpr Gva make(Dist dist, int creator, std::uint32_t alloc_id,
                            std::uint32_t block, std::uint32_t offset) {
    return Gva((static_cast<std::uint64_t>(dist) << (64 - kDistBits)) |
               (static_cast<std::uint64_t>(creator) << (kOffsetBits + kBlockBits + kAllocBits)) |
               (static_cast<std::uint64_t>(alloc_id) << (kOffsetBits + kBlockBits)) |
               (static_cast<std::uint64_t>(block) << kOffsetBits) |
               offset);
  }

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool null() const { return bits_ == 0; }

  [[nodiscard]] constexpr Dist dist() const {
    return static_cast<Dist>(bits_ >> (64 - kDistBits));
  }
  [[nodiscard]] constexpr int creator() const {
    return static_cast<int>((bits_ >> (kOffsetBits + kBlockBits + kAllocBits)) &
                            util::low_mask(kCreatorBits));
  }
  [[nodiscard]] constexpr std::uint32_t alloc_id() const {
    return static_cast<std::uint32_t>((bits_ >> (kOffsetBits + kBlockBits)) &
                                      util::low_mask(kAllocBits));
  }
  [[nodiscard]] constexpr std::uint32_t block() const {
    return static_cast<std::uint32_t>((bits_ >> kOffsetBits) &
                                      util::low_mask(kBlockBits));
  }
  [[nodiscard]] constexpr std::uint32_t offset() const {
    return static_cast<std::uint32_t>(bits_ & util::low_mask(kOffsetBits));
  }

  // Identity of the containing block: the address with offset zeroed.
  // Used as the key in directories, caches and NIC TLBs.
  [[nodiscard]] constexpr std::uint64_t block_key() const {
    return bits_ & ~util::low_mask(kOffsetBits);
  }
  [[nodiscard]] constexpr Gva block_base() const { return Gva(block_key()); }

  // Home rank (arithmetic, no table).
  [[nodiscard]] constexpr int home(int ranks) const {
    return dist() == Dist::kLocal
               ? creator()
               : static_cast<int>((static_cast<std::uint32_t>(creator()) + block()) %
                                  static_cast<std::uint32_t>(ranks));
  }

  // Address arithmetic across the allocation's block sequence: linearizes
  // (block, offset) with the allocation's block size, adds `delta` bytes,
  // and re-splits. The caller supplies the block size (it is allocation
  // metadata, not encoded in the address).
  [[nodiscard]] Gva advanced(std::int64_t delta, std::uint32_t block_size) const {
    NVGAS_DCHECK(block_size > 0 && block_size <= kMaxBlockSize);
    const std::int64_t linear =
        static_cast<std::int64_t>(block()) * block_size + offset() + delta;
    NVGAS_CHECK_MSG(linear >= 0, "gva arithmetic underflow");
    const auto new_block = static_cast<std::uint64_t>(linear) / block_size;
    const auto new_offset = static_cast<std::uint64_t>(linear) % block_size;
    NVGAS_CHECK_MSG(new_block < kMaxBlocks, "gva arithmetic overflow");
    return make(dist(), creator(), alloc_id(), static_cast<std::uint32_t>(new_block),
                static_cast<std::uint32_t>(new_offset));
  }

  constexpr auto operator<=>(const Gva&) const = default;

 private:
  std::uint64_t bits_ = 0;
};

// Human-readable form for logs and test failures:
// "gva{cyclic c3 a17 b42 +0x80}".
std::string to_string(Gva gva);
std::ostream& operator<<(std::ostream& os, Gva gva);

}  // namespace nvgas::gas
