// Global heap: allocation metadata plus per-node block stores.
//
// The heap performs the placement step shared by every address-space
// manager: an allocation of N blocks of size S under a distribution
// assigns each block a *home* rank (arithmetic on the address) and
// reserves backing storage for it on that rank. What differs between the
// managers is only how the block's *current owner* is tracked afterwards.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gas/block_store.hpp"
#include "gas/costs.hpp"
#include "gas/gva.hpp"
#include "sim/fabric.hpp"

namespace nvgas::gas {

struct AllocMeta {
  std::uint32_t id = 0;
  Dist dist = Dist::kCyclic;
  int creator = 0;
  std::uint32_t nblocks = 0;
  std::uint32_t block_size = 0;
  [[nodiscard]] std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(nblocks) * block_size;
  }
};

class GlobalHeap {
 public:
  explicit GlobalHeap(sim::Fabric& fabric);

  // Reserve an allocation: assigns homes and backing storage. Returns the
  // GVA of byte 0 of block 0. (Timing for the allocation handshake is
  // charged by the GAS layer; the heap only mutates metadata.)
  Gva alloc(Dist dist, int creator, std::uint32_t nblocks,
            std::uint32_t block_size);

  // Release every block's *initial* backing store and the metadata.
  // Blocks that migrated are released by the owning GAS manager.
  void release_meta(std::uint32_t alloc_id);

  [[nodiscard]] const AllocMeta& meta(std::uint32_t alloc_id) const;
  [[nodiscard]] const AllocMeta& meta_of(Gva gva) const { return meta(gva.alloc_id()); }
  [[nodiscard]] bool contains(Gva gva) const;

  // Initial (home) placement of a block.
  [[nodiscard]] sim::Lva initial_lva(Gva block_base) const;
  [[nodiscard]] int home_of(Gva gva) const { return gva.home(fabric_->nodes()); }

  [[nodiscard]] BlockStore& store(int node) {
    return *stores_.at(static_cast<std::size_t>(node));
  }

  // Bounds check: does `gva`+len stay inside one block of its allocation?
  void check_extent(Gva gva, std::size_t len) const;

 private:
  sim::Fabric* fabric_;
  std::vector<std::unique_ptr<BlockStore>> stores_;
  // Metadata is the one structure every lane reads (translation) while
  // any lane may insert (alloc from its creator's fiber), so it is
  // mutex-guarded under the sharded engine; uncontended single-lock
  // cost on the classic engine. Lock order: mu_ is a leaf (nothing is
  // called while holding it).
  mutable std::mutex mu_;
  // simlint:allow(D1: keyed find only, never iterated)
  std::unordered_map<std::uint32_t, AllocMeta> metas_;
  // block_key -> initial lva at the home node.
  // simlint:allow(D1: keyed find/erase only, never iterated)
  std::unordered_map<std::uint64_t, sim::Lva> initial_;
  std::uint32_t next_alloc_id_ = 1;
  // Sharded engine: ids are partitioned by creator (id = k·ranks +
  // creator + 1) so the id sequence per creator — and with it every
  // home assignment derived from Gva bits — is invariant under the
  // host thread count. Empty on the classic engine, whose global
  // sequence stays byte-identical to previous builds.
  std::vector<std::uint64_t> alloc_counts_;
};

}  // namespace nvgas::gas
