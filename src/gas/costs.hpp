// Software cost parameters for the address-space managers.
//
// These are CPU nanoseconds charged on the node executing the step; the
// ordering (arithmetic < cache hit < cache insert < directory work)
// mirrors measured software AGAS implementations.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace nvgas::gas {

struct GasCosts {
  sim::Time pgas_translate_ns = 5;    // block-cyclic arithmetic
  sim::Time sw_cache_hit_ns = 25;     // source-side translation cache hit
  sim::Time sw_cache_insert_ns = 40;  // fill after a miss
  sim::Time dir_lookup_ns = 180;      // home directory resolve (CPU)
  sim::Time dir_update_ns = 220;      // home directory mutation (CPU)
  sim::Time invalidate_ns = 60;       // processing one cache invalidation
  sim::Time alloc_block_ns = 120;     // per-block local heap allocation

  std::size_t sw_cache_capacity = 4096;  // entries per node
};

}  // namespace nvgas::gas
