// Software cost parameters for the address-space managers.
//
// These are CPU nanoseconds charged on the node executing the step; the
// ordering (arithmetic < cache hit < cache insert < directory work)
// mirrors measured software AGAS implementations.
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace nvgas::gas {

struct GasCosts {
  sim::Time pgas_translate_ns = 5;    // block-cyclic arithmetic
  sim::Time sw_cache_hit_ns = 25;     // source-side translation cache hit
  sim::Time sw_cache_insert_ns = 40;  // fill after a miss
  sim::Time dir_lookup_ns = 180;      // home directory resolve (CPU)
  sim::Time dir_update_ns = 220;      // home directory mutation (CPU)
  sim::Time invalidate_ns = 60;       // processing one cache invalidation
  sim::Time alloc_block_ns = 120;     // per-block local heap allocation

  std::size_t sw_cache_capacity = 4096;  // entries per node

  // Test-only protocol fault injection (mcheck self-validation; see
  // docs/MODEL_CHECKING.md). When set, the SW-AGAS home "forgets" the
  // highest-ranked sharer during a migration's INV fan-out: that sharer
  // is neither invalidated nor awaited, so its cached translation
  // survives the move stale. Never enabled outside mcheck tests.
  bool fault_sw_skip_one_sharer_inv = false;
};

}  // namespace nvgas::gas
