// Source-side software translation cache (per node), used by the
// software-managed AGAS baseline. Bounded capacity; entries are
// invalidated by the home directory before a block moves, so a cached
// translation is never stale.
//
// Implementation: a flat open-addressing hash table (linear probing,
// backward-shift deletion) in one contiguous array, with CLOCK
// (second-chance) eviction — a hit sets the slot's reference bit, the
// eviction hand sweeps the array clearing reference bits and evicts the
// first unreferenced entry. Compared to the seed's unordered_map +
// std::list LRU this is zero allocations per operation and one cache
// line per probe instead of three pointer chases, while approximating
// LRU closely enough that recency-ordered workloads evict identically.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/memory.hpp"
#include "util/assert.hpp"

namespace nvgas::gas {

struct CacheEntry {
  int owner = -1;
  sim::Lva lva = 0;
  std::uint32_t generation = 0;
};

class TranslationCache {
 public:
  explicit TranslationCache(std::size_t capacity);

  [[nodiscard]] std::optional<CacheEntry> lookup(std::uint64_t block_key);
  void insert(std::uint64_t block_key, const CacheEntry& entry);
  // Invalidate one block; returns true if it was present.
  bool invalidate(std::uint64_t block_key);
  void clear();

  // Read-only probe for invariant audits: no hit/miss accounting and no
  // CLOCK reference-bit update, so audits never perturb eviction.
  [[nodiscard]] const CacheEntry* peek(std::uint64_t block_key) const;

  // Deterministic (slot-index order) snapshot of resident entries, for
  // the mcheck invariant audits.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, CacheEntry>> entries()
      const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    CacheEntry entry;
    bool full = false;
    std::uint8_t ref = 0;  // CLOCK reference bit
  };

  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  // Fibonacci multiply-shift onto the table's index range.
  [[nodiscard]] std::uint32_t home(std::uint64_t key) const {
    return static_cast<std::uint32_t>((key * 0x9e3779b97f4a7c15ULL) >> shift_);
  }
  [[nodiscard]] std::uint32_t find(std::uint64_t key) const;
  void erase_at(std::uint32_t i);
  void evict_one();

  std::size_t capacity_;
  std::uint32_t mask_ = 0;
  std::uint32_t shift_ = 0;
  std::uint32_t hand_ = 0;  // CLOCK hand
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nvgas::gas
