// Source-side software translation cache (per node), used by the
// software-managed AGAS baseline. LRU with bounded capacity; entries are
// invalidated by the home directory before a block moves, so a cached
// translation is never stale.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "sim/memory.hpp"
#include "util/assert.hpp"

namespace nvgas::gas {

struct CacheEntry {
  int owner = -1;
  sim::Lva lva = 0;
  std::uint32_t generation = 0;
};

class TranslationCache {
 public:
  explicit TranslationCache(std::size_t capacity) : capacity_(capacity) {
    NVGAS_CHECK(capacity_ >= 1);
  }

  [[nodiscard]] std::optional<CacheEntry> lookup(std::uint64_t block_key);
  void insert(std::uint64_t block_key, const CacheEntry& entry);
  // Invalidate one block; returns true if it was present.
  bool invalidate(std::uint64_t block_key);
  void clear();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Slot {
    CacheEntry entry;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Slot> map_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nvgas::gas
