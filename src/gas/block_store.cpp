#include "gas/block_store.hpp"

namespace nvgas::gas {

bool BlockStore::try_allocate(std::size_t bytes, sim::Lva* out) {
  NVGAS_CHECK(bytes > 0);
  NVGAS_SHARD_GUARD_MEMBER("block store free lists");
  std::lock_guard<std::mutex> lock(mu_);
  const unsigned cls = size_class(bytes);
  auto& list = free_lists_[cls];
  if (!list.empty()) {
    *out = list.back();
    list.pop_back();
    in_use_ += (1ULL << cls);
    return true;
  }
  const std::size_t size = 1ULL << cls;
  if (bump_ + size > segment_bytes_) return false;
  *out = bump_;
  bump_ += size;
  in_use_ += size;
  return true;
}

void BlockStore::release(sim::Lva lva, std::size_t bytes) {
  NVGAS_SHARD_GUARD_MEMBER("block store free lists");
  std::lock_guard<std::mutex> lock(mu_);
  const unsigned cls = size_class(bytes);
  const std::size_t size = 1ULL << cls;
  NVGAS_CHECK_MSG(in_use_ >= size, "release without matching allocate");
  in_use_ -= size;
  free_lists_[cls].push_back(lva);
}

}  // namespace nvgas::gas
