// Static PGAS baseline (SHMEM/UPC-style).
//
// Translation is pure arithmetic: a block's owner is forever its home and
// its local address is the initial placement. No directory, no cache, no
// mobility — the lower bound every AGAS design is measured against.
#pragma once

#include "gas/gas_api.hpp"

namespace nvgas::gas {

class Pgas final : public GasBase {
 public:
  using GasBase::GasBase;

  [[nodiscard]] GasMode mode() const override { return GasMode::kPgas; }
  [[nodiscard]] bool supports_migration() const override { return false; }

  void memput(sim::TaskCtx& task, int node, Gva dst,
              std::vector<std::byte> data, net::OnDone done) override;
  void memput_notify(sim::TaskCtx& task, int node, Gva dst,
                     std::vector<std::byte> data, net::OnDone done,
                     net::OnDone remote_notify) override;
  void memget(sim::TaskCtx& task, int node, Gva src, std::size_t len,
              net::OnData done) override;
  void fetch_add(sim::TaskCtx& task, int node, Gva addr, std::uint64_t operand,
                 net::OnU64 done) override;
  void resolve(sim::TaskCtx& task, int node, Gva addr, OnOwner done) override;
  void migrate(sim::TaskCtx& task, int node, Gva block, int dst,
               net::OnDone done) override;

  [[nodiscard]] std::pair<int, sim::Lva> owner_of(Gva block) const override;

 private:
  struct Place {
    int owner;
    sim::Lva lva;
  };
  [[nodiscard]] Place translate(Gva addr) const;
  void do_memput(sim::TaskCtx& task, int node, Gva dst,
                 std::vector<std::byte> data, net::OnDone done,
                 net::OnDone remote_notify);
};

}  // namespace nvgas::gas
