// Software-managed AGAS baseline (how HPX-5 shipped before the
// network-managed design).
//
// Translation state:
//   * each block's HOME rank holds the authoritative directory entry
//     (owner, lva, generation, sharers, move state) — every directory
//     access is a CPU task at the home;
//   * every other rank keeps a bounded LRU translation cache, filled by
//     request/response parcels to the home.
//
// Invariant: a cached translation is never stale. The home enforces it by
// invalidating all sharers (and waiting for their in-flight RMAs to
// drain — the "fence") before a block moves. That synchronous
// invalidation storm is precisely the cost the network-managed design
// eliminates.
//
// Migration protocol (home-coordinated, 6 steps):
//   1. initiator -> home: MIG_REQ(block, dst)
//   2. home: mark moving; INV to every sharer; sharers fence + ACK
//   3. home -> dst: ALLOC; dst allocates backing store, replies lva'
//   4. home -> owner: XFER(dst, lva'); owner RMA-puts the block data
//   5. owner: release old storage, -> home: MOVED
//   6. home: commit {owner=dst, lva', gen+1}, clear sharers, replay
//      queued work, notify initiator.
#pragma once

#include <unordered_map>
#include <vector>

#include "gas/directory.hpp"
#include "gas/gas_api.hpp"
#include "gas/tcache.hpp"
#include "util/inline_function.hpp"

namespace nvgas::gas {

class AgasSw final : public GasBase {
 public:
  AgasSw(sim::Fabric& fabric, net::EndpointGroup& endpoints, GlobalHeap& heap,
         GasCosts costs);

  [[nodiscard]] GasMode mode() const override { return GasMode::kAgasSw; }
  [[nodiscard]] bool supports_migration() const override { return true; }

  Gva alloc(sim::TaskCtx& task, int node, Dist dist, std::uint32_t nblocks,
            std::uint32_t block_size) override;

  void memput(sim::TaskCtx& task, int node, Gva dst,
              std::vector<std::byte> data, net::OnDone done) override;
  void memput_notify(sim::TaskCtx& task, int node, Gva dst,
                     std::vector<std::byte> data, net::OnDone done,
                     net::OnDone remote_notify) override;
  void memget(sim::TaskCtx& task, int node, Gva src, std::size_t len,
              net::OnData done) override;
  void fetch_add(sim::TaskCtx& task, int node, Gva addr, std::uint64_t operand,
                 net::OnU64 done) override;
  void resolve(sim::TaskCtx& task, int node, Gva addr, OnOwner done) override;
  void migrate(sim::TaskCtx& task, int node, Gva block, int dst,
               net::OnDone done) override;

  [[nodiscard]] std::pair<int, sim::Lva> owner_of(Gva block) const override;

  // mcheck invariant audits (see docs/MODEL_CHECKING.md). This manager's
  // contract is "a cached translation is never stale", so every cache
  // entry anywhere must match its home directory entry exactly.
  [[nodiscard]] std::string audit_translation() const override;
  [[nodiscard]] std::string audit_quiescent() const override;

  // Introspection for tests/benches.
  [[nodiscard]] const TranslationCache& cache(int node) const {
    return nodes_.at(static_cast<std::size_t>(node)).cache;
  }
  [[nodiscard]] const Directory& directory(int node) const {
    return nodes_.at(static_cast<std::size_t>(node)).dir;
  }

 protected:
  std::pair<int, sim::Lva> drop_block_state(Gva block_base) override;

 private:
  // Continuation receiving a valid translation, run inside a CPU task on
  // the issuing node.
  using Cont = std::function<void(sim::TaskCtx&, const CacheEntry&)>;

  struct Migration {
    int dst = -1;
    int initiator = -1;
    std::uint32_t pending_acks = 0;
    sim::Lva dst_lva = 0;
    net::OnDone done;
  };
  struct PendingMigration {
    int dst;
    int initiator;
    net::OnDone done;
  };

  // Parked continuations waiting for an RMA fence to drain. Stored
  // out-of-line (never copied, moved in/out once), so the fixed 48-byte
  // inline buffer replaces a heap-allocating std::function per waiter.
  using FenceWaiter = util::InlineFunction<void(sim::Time), 48>;
  // Work queued at the home while a block is mid-migration.
  using DeferredWork = util::InlineFunction<void(sim::TaskCtx&), 48>;

  struct NodeState {
    explicit NodeState(std::size_t cache_capacity) : cache(cache_capacity) {}
    // Source side.
    TranslationCache cache;
    // simlint:allow(D1: keyed find/erase only, never iterated)
    std::unordered_map<std::uint64_t, std::vector<Cont>> pending_resolves;
    // simlint:allow(D1: keyed find/erase only, never iterated)
    std::unordered_map<std::uint64_t, std::uint32_t> outstanding;  // in-flight RMAs
    // simlint:allow(D1: vector extracted per key; the map is never iterated)
    std::unordered_map<std::uint64_t, std::vector<FenceWaiter>> fence_waiters;
    // Home side.
    Directory dir;
    // Work queued while the block is moving.
    // simlint:allow(D1: vector extracted per key; the map is never iterated)
    std::unordered_map<std::uint64_t, std::vector<DeferredWork>> deferred;
    // simlint:allow(D1: keyed find/erase only, never iterated)
    std::unordered_map<std::uint64_t, Migration> migrations;
    // simlint:allow(D1: keyed find/erase only, never iterated)
    std::unordered_map<std::uint64_t, std::vector<PendingMigration>> queued_migrations;
  };

  [[nodiscard]] NodeState& st(int node) {
    return nodes_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] bool queued_migrations_empty(std::uint64_t key) const;
  [[nodiscard]] int home_of_key(Gva block_base) const {
    return block_base.home(fabric_->nodes());
  }

  // Resolve `block_base` from `node`, then run `cont`. Handles home-local
  // lookups, cache hits, misses (request/response), and queuing while the
  // block is moving.
  void with_translation(sim::TaskCtx& task, int node, Gva block_base, Cont cont);

  // Home-side request processing (runs as a CPU task at the home).
  void handle_resolve_request(sim::TaskCtx& task, Gva block_base, int requester);

  // RMA issue helpers with fencing bookkeeping.
  void begin_op(int node, std::uint64_t key);
  void end_op(int node, std::uint64_t key, sim::Time t);

  // Migration steps (all run at the home unless noted).
  void start_migration(sim::TaskCtx& task, Gva block_base, int dst,
                       int initiator, net::OnDone done);
  void migration_acked(sim::TaskCtx& task, Gva block_base);
  void migration_alloc(sim::TaskCtx& task, Gva block_base);
  void migration_transfer(sim::TaskCtx& task, Gva block_base);
  void finish_migration(sim::TaskCtx& task, Gva block_base);
  void chain_queued_migration(sim::TaskCtx& task, Gva block_base);

  std::vector<NodeState> nodes_;
};

}  // namespace nvgas::gas
