#include "gas/gva.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace nvgas::gas {

std::string to_string(Gva gva) {
  if (gva.null()) return "gva{null}";
  char buf[80];
  std::snprintf(buf, sizeof buf, "gva{%s c%d a%u b%u +0x%x}",
                gva.dist() == Dist::kLocal ? "local" : "cyclic", gva.creator(),
                gva.alloc_id(), gva.block(), gva.offset());
  return buf;
}

std::ostream& operator<<(std::ostream& os, Gva gva) {
  return os << to_string(gva);
}

}  // namespace nvgas::gas
