// Protocol invariant oracle for the mcheck model checker (and for the
// migration/fuzz tests, which run it cheaply outside mcheck).
//
// The managers report protocol events through an attached
// InvariantObserver (push hooks); the observer cross-checks them against
// the protocol contract and, at event boundaries, pulls structural
// audits from the manager (GasBase::audit_translation / audit_quiescent).
// Together these check, on EVERY explored schedule:
//
//   * directory <-> tcache <-> NIC-TLB coherence — every cached
//     translation anywhere is current-generation, or (agas-net)
//     stale-detectable: generation strictly below the authoritative
//     record so the owner NACKs/forwards it;
//   * block-generation monotonicity — each migration commit bumps the
//     block generation by exactly one, never reuses or skips;
//   * no writes land mid-fence — once a move's invalidation fence
//     completes, no remote op may begin on the block until the commit;
//   * in-flight conservation — every message injected is delivered
//     (messages and bytes), every remote op that begins ends, and
//     nothing is left queued at quiescence;
//   * exactly-once memput_notify — every registered remote notification
//     fires exactly once.
//
// Violations are RECORDED, never thrown: an exception would unwind
// through coroutine frames and engine callbacks and leak them (the
// sanitizer CI runs with detect_leaks=1). The harness checks ok() after
// the event queue drains.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/counters.hpp"
#include "sim/time.hpp"

namespace nvgas::gas {

class GasBase;

// One completed operation in a concurrent single-word history, for the
// Wing–Gong-style sequential-consistency check. `invoke`/`complete` are
// the simulated real-time bounds of the operation as the issuing fiber
// observed them.
struct HistOp {
  enum class Kind : std::uint8_t { kPut, kGet, kFadd };
  Kind kind = Kind::kPut;
  int proc = -1;           // issuing rank
  std::uint64_t word = 0;  // word index within the block
  std::uint64_t value = 0;   // put: value written; fadd: operand
  std::uint64_t result = 0;  // get: value returned; fadd: value fetched
  sim::Time invoke = 0;
  sim::Time complete = 0;
};

// Wing & Gong's linearizability DFS specialized to single-word put/get/
// fetch-add histories (initial memory all-zero): searches for a total
// order that (a) respects real time — an op may not be ordered before
// one that completed before it was invoked — and (b) is legal for each
// word. Memoized on (chosen-set, memory-state) so duplicate frontiers
// are pruned. Returns "" if such an order exists, else a description of
// the non-linearizable history. Histories longer than 26 ops are not
// checked (bounded checker; mcheck scenarios keep histories small).
[[nodiscard]] std::string check_linearizable(
    const std::vector<HistOp>& history);

class InvariantObserver {
 public:
  InvariantObserver() = default;
  explicit InvariantObserver(GasBase& gas) { attach(gas); }
  ~InvariantObserver();
  InvariantObserver(const InvariantObserver&) = delete;
  InvariantObserver& operator=(const InvariantObserver&) = delete;

  // Registers this observer with the manager (GasBase::set_observer).
  // The destructor detaches, so declare the observer AFTER the World.
  void attach(GasBase& gas);

  // --- push hooks, called by the managers (all no-throw) ------------------
  // A remote op (put/get/fadd payload, not control traffic) started /
  // finished against `block_key` from `node`.
  void on_remote_op_begin(int node, std::uint64_t block_key);
  void on_remote_op_end(int node, std::uint64_t block_key);
  // A migration of `block_key` started (home marked it moving).
  void on_migration_start(std::uint64_t block_key);
  // The move's invalidation/drain fence completed: every sharer ACKed and
  // the home drained. From here until the commit, no op may begin.
  void on_fence_complete(std::uint64_t block_key);
  // The move committed: `new_generation` is the block's generation after
  // the bump. Triggers a structural translation audit.
  void on_migration_commit(std::uint64_t block_key, int new_owner,
                           std::uint32_t new_generation);
  // Block freed: forget its protocol state (keys may be reused).
  void on_free(std::uint64_t block_key);

  // --- balancer migration ledger (src/lb) ---------------------------------
  // lb::Balancer brackets every migration it initiates with this pair so
  // quiescence can prove balancer-initiated moves are conserved: every
  // issue reaches its completion callback (and thus shows up in the same
  // message/byte ledger as any other migration), none is dropped by the
  // throttle after being handed to the manager.
  void on_balancer_migrate_issued(std::uint64_t block_key);
  void on_balancer_migrate_done(std::uint64_t block_key);

  // Exactly-once signal ledger for memput_notify remote notifications:
  // expect_signal() registers one expected delivery and returns its
  // token; on_signal() marks it fired. GasBase::instrument_signal wraps
  // callbacks in this pair.
  [[nodiscard]] std::uint64_t expect_signal();
  void on_signal(std::uint64_t token, sim::Time t);

  // --- history recording (scenario workloads) -----------------------------
  void record(const HistOp& op) { history_.push_back(op); }
  [[nodiscard]] const std::vector<HistOp>& history() const { return history_; }

  // --- pull audits --------------------------------------------------------
  // Structural translation audit via the attached manager; records a
  // violation if it reports one. Called automatically on every migration
  // commit; harnesses may call it at any event boundary.
  void audit_structures();

  // Full end-of-run audit: conservation (messages, bytes, op begin/end,
  // signal ledger), no migration left uncommitted, manager structural +
  // quiescence audits, and the linearizability check over any recorded
  // history. Returns first_violation() ("" when everything held).
  std::string check_quiescent(const sim::Counters& counters);

  // Record a violation found by the harness itself (deadlock, livelock,
  // wrong data). First violation wins; all are counted.
  void fail(const std::string& message);

  [[nodiscard]] bool ok() const { return violation_.empty(); }
  [[nodiscard]] const std::string& first_violation() const {
    return violation_;
  }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  // Number of individual invariant evaluations performed (reported by
  // mcheck as its per-schedule check count).
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

 private:
  struct KeyState {
    std::uint32_t generation = 0;
    bool moving = false;
    bool fenced = false;  // fence complete, commit pending
    std::uint64_t inflight_total = 0;
    std::map<int, std::uint64_t> inflight_by_node;
  };

  GasBase* gas_ = nullptr;
  // Ordered so quiescence sweeps are deterministic.
  std::map<std::uint64_t, KeyState> keys_;
  std::vector<std::uint8_t> fired_;  // signal token -> delivery count
  // Balancer migration ledger: issued must equal done at quiescence and
  // per-key issues may not nest (the balancer throttles per block).
  std::map<std::uint64_t, std::uint64_t> lb_inflight_;
  std::uint64_t lb_issued_ = 0;
  std::uint64_t lb_done_ = 0;
  std::vector<HistOp> history_;
  std::string violation_;
  std::uint64_t violations_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace nvgas::gas
