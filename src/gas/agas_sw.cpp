#include "gas/agas_sw.hpp"

#include <utility>

#include "gas/invariants.hpp"
#include "util/format.hpp"

namespace nvgas::gas {

namespace {
// Nominal wire sizes for the control messages (headers only).
constexpr std::uint64_t kCtrlBytes = 32;
constexpr std::uint64_t kReplyBytes = 48;
}  // namespace

AgasSw::AgasSw(sim::Fabric& fabric, net::EndpointGroup& endpoints,
               GlobalHeap& heap, GasCosts costs)
    : GasBase(fabric, endpoints, heap, costs) {
  // Host array of per-node SW translation caches; each cache is bounded by
  // sw_cache_capacity, so per-simulated-node state is O(1).
  // protolint:allow(P4: host array of capacity-bounded per-node SW caches)
  nodes_.reserve(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    nodes_.emplace_back(costs_.sw_cache_capacity);
  }
}

Gva AgasSw::alloc(sim::TaskCtx& task, int node, Dist dist,
                  std::uint32_t nblocks, std::uint32_t block_size) {
  const Gva base = GasBase::alloc(task, node, dist, nblocks, block_size);
  // Install the authoritative directory entries at each block's home as
  // part of the allocation collective.
  const AllocMeta& m = heap_->meta_of(base);
  auto& engine = fabric_->engine();
  // Adopted (quiesced setup/teardown) contexts install directly like host
  // context: every lane is idle, and observers may read the directory
  // before the engine runs again.
  const bool sharded = engine.sharded() && engine.on_shard_context() &&
                       !engine.on_adopted_context();
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const Gva block = Gva::make(m.dist, m.creator, m.id, b, 0);
    const int home = home_of_key(block);
    if (sharded && static_cast<std::uint32_t>(home) != engine.current_shard()) {
      // A remote home's directory belongs to its own lane; install via
      // post. The entry always lands before any resolve request for it
      // can arrive — a request needs a full wire flight, the post only
      // a window boundary (and a GVA is only learnable by message).
      engine.post(static_cast<std::uint32_t>(home), task.now(),
                  [this, block, home, lva = heap_->initial_lva(block)] {
                    st(home).dir.insert(block.block_key(), home, lva);
                  });
      continue;
    }
    st(home).dir.insert(block.block_key(), home, heap_->initial_lva(block));
  }
  return base;
}

// ---------------------------------------------------------------------------
// Translation.
// ---------------------------------------------------------------------------

void AgasSw::with_translation(sim::TaskCtx& task, int node, Gva block_base,
                              Cont cont) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  auto& counters = fabric_->counters();

  if (node == home) {
    // The home consults its directory directly (CPU cost, no wire).
    task.charge(costs_.dir_lookup_ns);
    ++counters.directory_lookups;
    DirEntry& e = st(home).dir.at(key);
    if (e.moving) {
      st(home).deferred[key].push_back(
          [this, node, block_base, cont = std::move(cont)](sim::TaskCtx& t2) mutable {
            with_translation(t2, node, block_base, std::move(cont));
          });
      return;
    }
    cont(task, CacheEntry{e.owner, e.lva, e.generation});
    return;
  }

  NodeState& ns = st(node);
  task.charge(costs_.sw_cache_hit_ns);
  if (auto hit = ns.cache.lookup(key)) {
    ++counters.sw_cache_hits;
    cont(task, *hit);
    return;
  }
  ++counters.sw_cache_misses;

  auto& pending = ns.pending_resolves[key];
  pending.push_back(std::move(cont));
  if (pending.size() > 1) return;  // a request is already in flight

  // Request/response to the home directory.
  task.charge(ep(node).post_cost());
  ep(node).raw_send(task.now(), home, kCtrlBytes,
                    [this, block_base, node](sim::Time arrived) {
                      fabric_->cpu(home_of_key(block_base))
                          .submit_at(arrived, [this, block_base, node](sim::TaskCtx& t2) {
                            t2.charge(fabric_->params().cpu_recv_overhead_ns);
                            handle_resolve_request(t2, block_base, node);
                          });
                    });
}

void AgasSw::handle_resolve_request(sim::TaskCtx& task, Gva block_base,
                                    int requester) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  task.charge(costs_.dir_lookup_ns);
  ++fabric_->counters().directory_lookups;

  DirEntry& e = st(home).dir.at(key);
  if (e.moving) {
    st(home).deferred[key].push_back(
        [this, block_base, requester](sim::TaskCtx& t2) {
          handle_resolve_request(t2, block_base, requester);
        });
    return;
  }
  e.sharers.insert(requester);
  const CacheEntry entry{e.owner, e.lva, e.generation};

  task.charge(ep(home).post_cost());
  ep(home).raw_send(
      task.now(), requester, kReplyBytes,
      [this, key, requester, entry](sim::Time arrived) {
        fabric_->cpu(requester).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
            arrived, [this, key, requester, entry](sim::TaskCtx& t2) {
              t2.charge(fabric_->params().cpu_recv_overhead_ns +
                        costs_.sw_cache_insert_ns);
              NodeState& ns = st(requester);
              ns.cache.insert(key, entry);
              auto conts = std::move(ns.pending_resolves[key]);
              ns.pending_resolves.erase(key);
              for (auto& c : conts) c(t2, entry);
            });
      });
}

// ---------------------------------------------------------------------------
// Fencing bookkeeping: a node must be able to prove "no RMA of mine is
// still in flight against this block" before acking an invalidation.
// ---------------------------------------------------------------------------

void AgasSw::begin_op(int node, std::uint64_t key) {
  ++st(node).outstanding[key];
  if (observer_ != nullptr) observer_->on_remote_op_begin(node, key);
}

void AgasSw::end_op(int node, std::uint64_t key, sim::Time t) {
  if (observer_ != nullptr) observer_->on_remote_op_end(node, key);
  NodeState& ns = st(node);
  const auto it = ns.outstanding.find(key);
  NVGAS_CHECK(it != ns.outstanding.end() && it->second > 0);
  if (--it->second == 0) {
    ns.outstanding.erase(it);
    const auto wit = ns.fence_waiters.find(key);
    if (wit != ns.fence_waiters.end()) {
      auto waiters = std::move(wit->second);
      ns.fence_waiters.erase(wit);
      for (auto& w : waiters) w(t);
    }
  }
}

// ---------------------------------------------------------------------------
// Data path.
// ---------------------------------------------------------------------------

void AgasSw::memput(sim::TaskCtx& task, int node, Gva dst,
                    std::vector<std::byte> data, net::OnDone done) {
  memput_notify(task, node, dst, std::move(data), std::move(done), nullptr);
}

void AgasSw::memput_notify(sim::TaskCtx& task, int node, Gva dst,
                           std::vector<std::byte> data, net::OnDone done,
                           net::OnDone remote_notify) {
  heap_->check_extent(dst, data.size());
  ++fabric_->counters().gas_memputs;
  note_access(node, dst);
  remote_notify = instrument_signal(std::move(remote_notify));
  const std::uint64_t key = dst.block_key();
  const std::uint32_t off = dst.offset();
  with_translation(
      task, node, dst.block_base(),
      [this, node, key, off, data = std::move(data), done = std::move(done),
       remote_notify = std::move(remote_notify)](sim::TaskCtx& t,
                                                 const CacheEntry& e) mutable {
        if (e.owner == node) {
          local_put(t, node, e.lva + off, data, done);
          if (remote_notify) remote_notify(t.now());
          return;
        }
        begin_op(node, key);
        t.charge(ep(node).post_cost());
        ep(node).put(t.now(), e.owner, e.lva + off, std::move(data),
                     [this, node, key, done = std::move(done)](sim::Time tt) {
                       end_op(node, key, tt);
                       if (done) done(tt);
                     },
                     std::move(remote_notify));
      });
}

void AgasSw::memget(sim::TaskCtx& task, int node, Gva src, std::size_t len,
                    net::OnData done) {
  heap_->check_extent(src, len);
  ++fabric_->counters().gas_memgets;
  note_access(node, src);
  const std::uint64_t key = src.block_key();
  const std::uint32_t off = src.offset();
  with_translation(
      task, node, src.block_base(),
      [this, node, key, off, len,
       done = std::move(done)](sim::TaskCtx& t, const CacheEntry& e) mutable {
        if (e.owner == node) {
          local_get(t, node, e.lva + off, len, done);
          return;
        }
        begin_op(node, key);
        t.charge(ep(node).post_cost());
        ep(node).get(t.now(), e.owner, e.lva + off, len,
                     [this, node, key, done = std::move(done)](
                         sim::Time tt, std::vector<std::byte> bytes) {
                       end_op(node, key, tt);
                       if (done) done(tt, std::move(bytes));
                     });
      });
}

void AgasSw::fetch_add(sim::TaskCtx& task, int node, Gva addr,
                       std::uint64_t operand, net::OnU64 done) {
  heap_->check_extent(addr, sizeof(std::uint64_t));
  ++fabric_->counters().gas_atomics;
  note_access(node, addr);
  const std::uint64_t key = addr.block_key();
  const std::uint32_t off = addr.offset();
  with_translation(
      task, node, addr.block_base(),
      [this, node, key, off, operand,
       done = std::move(done)](sim::TaskCtx& t, const CacheEntry& e) mutable {
        if (e.owner == node) {
          local_fadd(t, node, e.lva + off, operand, done);
          return;
        }
        begin_op(node, key);
        t.charge(ep(node).post_cost());
        ep(node).fetch_add(t.now(), e.owner, e.lva + off, operand,
                           [this, node, key, done = std::move(done)](
                               sim::Time tt, std::uint64_t old) {
                             end_op(node, key, tt);
                             if (done) done(tt, old);
                           });
      });
}

void AgasSw::resolve(sim::TaskCtx& task, int node, Gva addr, OnOwner done) {
  note_access(node, addr);
  with_translation(task, node, addr.block_base(),
                   [done = std::move(done)](sim::TaskCtx& t, const CacheEntry& e) {
                     done(t.now(), e.owner);
                   });
}

// ---------------------------------------------------------------------------
// Migration.
// ---------------------------------------------------------------------------

void AgasSw::migrate(sim::TaskCtx& task, int node, Gva block, int dst,
                     net::OnDone done) {
  NVGAS_CHECK(dst >= 0 && dst < ranks());
  const Gva base = block.block_base();
  const int home = home_of_key(base);
  if (node == home) {
    start_migration(task, base, dst, node, std::move(done));
    return;
  }
  task.charge(ep(node).post_cost());
  ep(node).raw_send(task.now(), home, kCtrlBytes,
                    [this, base, dst, node, home,
                     done = std::move(done)](sim::Time arrived) mutable {
                      fabric_->cpu(home).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
                          arrived, [this, base, dst, node,
                                    done = std::move(done)](sim::TaskCtx& t2) mutable {
                            t2.charge(fabric_->params().cpu_recv_overhead_ns);
                            start_migration(t2, base, dst, node, std::move(done));
                          });
                    });
}

void AgasSw::start_migration(sim::TaskCtx& task, Gva block_base, int dst,
                             int initiator, net::OnDone done) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  NodeState& hs = st(home);

  task.charge(costs_.dir_lookup_ns);
  DirEntry& e = hs.dir.at(key);
  if (e.moving) {
    hs.queued_migrations[key].push_back({dst, initiator, std::move(done)});
    return;
  }
  if (e.owner == dst) {
    // Already there: acknowledge immediately, then keep draining any
    // migrations that queued behind this one.
    if (initiator == home) {
      if (done) done(task.now());
    } else {
      task.charge(ep(home).post_cost());
      ep(home).raw_send(task.now(), initiator, kCtrlBytes,
                        [done = std::move(done)](sim::Time t) {
                          if (done) done(t);
                        });
    }
    chain_queued_migration(task, block_base);
    return;
  }

  task.charge(costs_.dir_update_ns);
  e.moving = true;
  if (observer_ != nullptr) observer_->on_migration_start(key);
  Migration mig;
  mig.dst = dst;
  mig.initiator = initiator;
  mig.done = std::move(done);

  // Invalidate every sharer; each acks only once its in-flight RMAs have
  // drained. The home fences its own outstanding RMAs the same way.
  auto sharers = e.sharers;  // copy: set mutates on replay
  if (costs_.fault_sw_skip_one_sharer_inv && !sharers.empty()) {
    // Test-only seeded fault (mcheck self-validation): "forget" the
    // highest-ranked sharer — send it no INV and do not await its ACK —
    // so its cached translation survives the move stale.
    sharers.erase(std::prev(sharers.end()));
  }
  mig.pending_acks = static_cast<std::uint32_t>(sharers.size());
  const bool home_fence = st(home).outstanding.count(key) != 0;
  if (home_fence) ++mig.pending_acks;
  hs.migrations[key] = std::move(mig);

  for (int s : sharers) {
    task.charge(ep(home).post_cost());
    ep(home).raw_send(
        task.now(), s, kCtrlBytes, [this, key, block_base, s, home](sim::Time arrived) {
          fabric_->cpu(s).submit_at(arrived, [this, key, block_base, s,  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
                                              home](sim::TaskCtx& t2) {
            t2.charge(fabric_->params().cpu_recv_overhead_ns +
                      costs_.invalidate_ns);
            NodeState& ns = st(s);
            if (ns.cache.invalidate(key)) {
              ++fabric_->counters().sw_cache_invalidations;
            }
            auto send_ack = [this, block_base, s, home](sim::Time t) {
              ep(s).raw_send(t, home, kCtrlBytes,
                             [this, block_base, home](sim::Time arrived2) {
                               fabric_->cpu(home).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
                                   arrived2, [this, block_base](sim::TaskCtx& t3) {
                                     t3.charge(
                                         fabric_->params().cpu_recv_overhead_ns);
                                     migration_acked(t3, block_base);
                                   });
                             });
            };
            if (ns.outstanding.count(key) != 0) {
              ns.fence_waiters[key].push_back(std::move(send_ack));
            } else {
              t2.charge(ep(s).post_cost());
              send_ack(t2.now());
            }
          });
        });
  }
  if (home_fence) {
    hs.fence_waiters[key].push_back([this, block_base, home](sim::Time t) {
      fabric_->cpu(home).submit_at(t, [this, block_base](sim::TaskCtx& t2) {  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
        migration_acked(t2, block_base);
      });
    });
  }
  if (hs.migrations[key].pending_acks == 0) {
    migration_alloc(task, block_base);
  }
}

void AgasSw::migration_acked(sim::TaskCtx& task, Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  Migration& mig = st(home_of_key(block_base)).migrations.at(key);
  NVGAS_CHECK(mig.pending_acks > 0);
  if (--mig.pending_acks == 0) migration_alloc(task, block_base);
}

void AgasSw::migration_alloc(sim::TaskCtx& task, Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  // Reached exactly once per migration, when the invalidation/drain
  // fence has fully completed (all sharer ACKs in, home drained).
  if (observer_ != nullptr) observer_->on_fence_complete(key);
  Migration& mig = st(home).migrations.at(key);
  const std::uint32_t bsize = heap_->meta_of(block_base).block_size;
  const int dst = mig.dst;

  task.charge(ep(home).post_cost());
  ep(home).raw_send(
      task.now(), dst, kCtrlBytes, [this, key, block_base, dst, home,
                                    bsize](sim::Time arrived) {
        fabric_->cpu(dst).submit_at(arrived, [this, key, block_base, dst, home,  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
                                              bsize](sim::TaskCtx& t2) {
          t2.charge(fabric_->params().cpu_recv_overhead_ns +
                    costs_.alloc_block_ns);
          const sim::Lva lva = heap_->store(dst).allocate(bsize);  // simlint:allow(D8: runs inside a dst-lane CPU task; the store is lane-local here, ShardSan-checked)
          t2.charge(ep(dst).post_cost());
          ep(dst).raw_send(t2.now(), home, kReplyBytes,
                           [this, key, block_base, lva, home](sim::Time arrived2) {
                             fabric_->cpu(home).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
                                 arrived2,
                                 [this, key, block_base, lva](sim::TaskCtx& t3) {
                                   t3.charge(
                                       fabric_->params().cpu_recv_overhead_ns);
                                   st(home_of_key(block_base))
                                       .migrations.at(key)
                                       .dst_lva = lva;
                                   migration_transfer(t3, block_base);
                                 });
                           });
        });
      });
}

void AgasSw::migration_transfer(sim::TaskCtx& task, Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  Migration& mig = st(home).migrations.at(key);
  DirEntry& e = st(home).dir.at(key);
  const std::uint32_t bsize = heap_->meta_of(block_base).block_size;
  const int owner = e.owner;
  const sim::Lva old_lva = e.lva;
  const sim::Lva dst_lva = mig.dst_lva;
  const int dst = mig.dst;

  task.charge(ep(home).post_cost());
  ep(home).raw_send(
      task.now(), owner, kCtrlBytes,
      [this, key, block_base, owner, dst, old_lva, dst_lva, bsize,
       home](sim::Time arrived) {
        fabric_->cpu(owner).submit_at(arrived, [this, key, block_base, owner,  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
                                                dst, old_lva, dst_lva, bsize,
                                                home](sim::TaskCtx& t2) {
          t2.charge(fabric_->params().cpu_recv_overhead_ns);
          t2.charge(fabric_->params().copy_time(bsize));
          std::vector<std::byte> data = fabric_->mem(owner).read_vec(old_lva, bsize);  // simlint:allow(D8: runs inside an owner-lane CPU task reading its own memory)
          t2.charge(ep(owner).post_cost());
          ep(owner).put(
              t2.now(), dst, dst_lva, std::move(data),
              [this, key, block_base, owner, old_lva, bsize, home](sim::Time t3) {
                heap_->store(owner).release(old_lva, bsize);  // simlint:allow(D8: put-completion ack is delivered on owner's lane; release is lane-local, ShardSan-checked)
                ep(owner).raw_send(
                    t3, home, kCtrlBytes, [this, key, block_base](sim::Time arrived2) {
                      fabric_->cpu(home_of_key(block_base))
                          .submit_at(arrived2, [this, block_base](sim::TaskCtx& t4) {
                            t4.charge(fabric_->params().cpu_recv_overhead_ns);
                            finish_migration(t4, block_base);
                          });
                      (void)key;
                    });
              });
        });
      });
}

void AgasSw::finish_migration(sim::TaskCtx& task, Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  NodeState& hs = st(home);
  Migration mig = std::move(hs.migrations.at(key));
  hs.migrations.erase(key);

  task.charge(costs_.dir_update_ns);
  DirEntry& e = hs.dir.at(key);
  e.owner = mig.dst;
  e.lva = mig.dst_lva;
  ++e.generation;
  e.moving = false;
  e.sharers.clear();
  if (observer_ != nullptr) {
    observer_->on_migration_commit(key, e.owner, e.generation);
  }

  auto& counters = fabric_->counters();
  ++counters.migrations;
  counters.migration_bytes += heap_->meta_of(block_base).block_size;

  // Notify the initiator.
  if (mig.initiator == home) {
    if (mig.done) mig.done(task.now());
  } else {
    task.charge(ep(home).post_cost());
    ep(home).raw_send(task.now(), mig.initiator, kCtrlBytes,
                      [done = std::move(mig.done)](sim::Time t) {
                        if (done) done(t);
                      });
  }

  // Replay work that queued while the block was moving.
  const auto dit = hs.deferred.find(key);
  if (dit != hs.deferred.end()) {
    auto work = std::move(dit->second);
    hs.deferred.erase(dit);
    for (auto& w : work) {
      fabric_->cpu(home).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
          task.now(), [w = std::move(w)](sim::TaskCtx& t2) mutable { w(t2); });
    }
  }

  // Chain any queued migration for the same block.
  chain_queued_migration(task, block_base);
}

void AgasSw::chain_queued_migration(sim::TaskCtx& task, Gva block_base) {
  NodeState& hs = st(home_of_key(block_base));
  const auto qit = hs.queued_migrations.find(block_base.block_key());
  if (qit == hs.queued_migrations.end() || qit->second.empty()) return;
  PendingMigration next = std::move(qit->second.front());
  qit->second.erase(qit->second.begin());
  if (qit->second.empty()) hs.queued_migrations.erase(qit);
  start_migration(task, block_base, next.dst, next.initiator,
                  std::move(next.done));
}

std::pair<int, sim::Lva> AgasSw::drop_block_state(Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of_key(block_base);
  NodeState& hs = st(home);
  DirEntry& e = hs.dir.at(key);
  NVGAS_CHECK_MSG(!e.moving, "free_alloc while a block is migrating");
  NVGAS_CHECK_MSG(queued_migrations_empty(key), "free_alloc with queued migrations");
  const std::pair<int, sim::Lva> place{e.owner, e.lva};
  // Collective free: every rank drops its cached translation.
  for (auto& ns : nodes_) {
    (void)ns.cache.invalidate(key);
    NVGAS_CHECK_MSG(ns.outstanding.count(key) == 0,
                    "free_alloc with in-flight RMAs");
  }
  hs.dir.erase(key);
  return place;
}

bool AgasSw::queued_migrations_empty(std::uint64_t key) const {
  for (const auto& ns : nodes_) {
    const auto it = ns.queued_migrations.find(key);
    if (it != ns.queued_migrations.end() && !it->second.empty()) return false;
  }
  return true;
}

std::string AgasSw::audit_translation() const {
  for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
    const NodeState& ns = nodes_[static_cast<std::size_t>(n)];
    for (const auto& [key, cached] : ns.cache.entries()) {
      const int home = Gva(key).home(fabric_->nodes());
      const Directory& dir = nodes_[static_cast<std::size_t>(home)].dir;
      if (!dir.contains(key)) {
        return util::format("node %d caches a translation for block %llx "
                            "with no directory entry at home %d",
                            n, static_cast<unsigned long long>(key), home);
      }
      const DirEntry& e = dir.at(key);
      if (cached.generation != e.generation || cached.owner != e.owner ||
          cached.lva != e.lva) {
        return util::format(
            "node %d holds a stale translation for block %llx: cached "
            "{owner %d, lva %llx, gen %u} vs directory {owner %d, lva "
            "%llx, gen %u}",
            n, static_cast<unsigned long long>(key), cached.owner,
            static_cast<unsigned long long>(cached.lva), cached.generation,
            e.owner, static_cast<unsigned long long>(e.lva), e.generation);
      }
    }
  }
  return {};
}

std::string AgasSw::audit_quiescent() const {
  for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
    const NodeState& ns = nodes_[static_cast<std::size_t>(n)];
    if (!ns.pending_resolves.empty()) {
      return util::format("node %d has unanswered resolve requests", n);
    }
    if (!ns.outstanding.empty()) {
      return util::format("node %d has unfinished in-flight RMAs", n);
    }
    if (!ns.fence_waiters.empty()) {
      return util::format("node %d has fence waiters never released", n);
    }
    if (!ns.deferred.empty()) {
      return util::format("home %d has deferred work never replayed", n);
    }
    if (!ns.migrations.empty()) {
      return util::format("home %d has migrations never committed", n);
    }
    if (!ns.queued_migrations.empty()) {
      return util::format("home %d has queued migrations never started", n);
    }
  }
  return {};
}

std::pair<int, sim::Lva> AgasSw::owner_of(Gva block) const {
  const Gva base = block.block_base();
  const int home = base.home(fabric_->nodes());
  const DirEntry& e =
      nodes_.at(static_cast<std::size_t>(home)).dir.at(base.block_key());
  return {e.owner, e.lva};
}

}  // namespace nvgas::gas
