#include "gas/pgas.hpp"

namespace nvgas::gas {

Pgas::Place Pgas::translate(Gva addr) const {
  const Gva base = addr.block_base();
  return Place{base.home(fabric_->nodes()),
               heap_->initial_lva(base) + addr.offset()};
}

void Pgas::do_memput(sim::TaskCtx& task, int node, Gva dst,
                     std::vector<std::byte> data, net::OnDone done,
                     net::OnDone remote_notify) {
  heap_->check_extent(dst, data.size());
  ++fabric_->counters().gas_memputs;
  note_access(node, dst);
  task.charge(costs_.pgas_translate_ns);
  const Place p = translate(dst);
  if (p.owner == node) {
    local_put(task, node, p.lva, data, done);
    if (remote_notify) remote_notify(task.now());
    return;
  }
  task.charge(ep(node).post_cost());
  ep(node).put(task.now(), p.owner, p.lva, std::move(data), std::move(done),
               std::move(remote_notify));
}

void Pgas::memput(sim::TaskCtx& task, int node, Gva dst,
                  std::vector<std::byte> data, net::OnDone done) {
  do_memput(task, node, dst, std::move(data), std::move(done), nullptr);
}

void Pgas::memput_notify(sim::TaskCtx& task, int node, Gva dst,
                         std::vector<std::byte> data, net::OnDone done,
                         net::OnDone remote_notify) {
  do_memput(task, node, dst, std::move(data), std::move(done),
            instrument_signal(std::move(remote_notify)));
}

void Pgas::memget(sim::TaskCtx& task, int node, Gva src, std::size_t len,
                  net::OnData done) {
  heap_->check_extent(src, len);
  ++fabric_->counters().gas_memgets;
  note_access(node, src);
  task.charge(costs_.pgas_translate_ns);
  const Place p = translate(src);
  if (p.owner == node) {
    local_get(task, node, p.lva, len, done);
    return;
  }
  task.charge(ep(node).post_cost());
  ep(node).get(task.now(), p.owner, p.lva, len, std::move(done));
}

void Pgas::fetch_add(sim::TaskCtx& task, int node, Gva addr,
                     std::uint64_t operand, net::OnU64 done) {
  heap_->check_extent(addr, sizeof(std::uint64_t));
  ++fabric_->counters().gas_atomics;
  note_access(node, addr);
  task.charge(costs_.pgas_translate_ns);
  const Place p = translate(addr);
  if (p.owner == node) {
    local_fadd(task, node, p.lva, operand, done);
    return;
  }
  task.charge(ep(node).post_cost());
  ep(node).fetch_add(task.now(), p.owner, p.lva, operand, std::move(done));
}

void Pgas::resolve(sim::TaskCtx& task, int node, Gva addr, OnOwner done) {
  note_access(node, addr);
  task.charge(costs_.pgas_translate_ns);
  done(task.now(), addr.home(fabric_->nodes()));
}

void Pgas::migrate(sim::TaskCtx&, int, Gva, int, net::OnDone) {
  NVGAS_CHECK_MSG(false, "PGAS does not support migration");
}

std::pair<int, sim::Lva> Pgas::owner_of(Gva block) const {
  const Place p = translate(block.block_base());
  return {p.owner, p.lva};
}

}  // namespace nvgas::gas
