#include "gas/gheap.hpp"

namespace nvgas::gas {

GlobalHeap::GlobalHeap(sim::Fabric& fabric) : fabric_(&fabric) {
  // protolint:allow(P4: simulator-host array of the simulated machine's memories, not protocol state)
  stores_.reserve(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    stores_.push_back(
        std::make_unique<BlockStore>(fabric.params().mem_bytes_per_node));
    NVGAS_SHARD_BIND(*stores_.back(), n, &fabric.engine());
  }
  if (fabric.engine().sharded()) {
    // protolint:allow(P4: one counter per engine lane for the ShardSan audit pass, host diagnostics only)
    alloc_counts_.assign(static_cast<std::size_t>(fabric.nodes()), 0);
  }
}

Gva GlobalHeap::alloc(Dist dist, int creator, std::uint32_t nblocks,
                      std::uint32_t block_size) {
  NVGAS_CHECK(nblocks >= 1 && nblocks <= Gva::kMaxBlocks);
  NVGAS_CHECK(block_size >= 1 && block_size <= Gva::kMaxBlockSize);
  NVGAS_CHECK(creator >= 0 && creator < fabric_->nodes());

  std::lock_guard<std::mutex> lock(mu_);
  AllocMeta meta;
  if (!alloc_counts_.empty()) {
    // Partitioned ids: the k-th allocation by `creator` always gets the
    // same id regardless of how lanes interleave across host threads.
    const std::uint64_t k = alloc_counts_[static_cast<std::size_t>(creator)]++;
    const std::uint64_t id =
        k * static_cast<std::uint64_t>(fabric_->nodes()) +
        static_cast<std::uint64_t>(creator) + 1;
    NVGAS_CHECK_MSG(id <= Gva::kMaxAllocs, "allocation ids exhausted");
    meta.id = static_cast<std::uint32_t>(id);
  } else {
    NVGAS_CHECK_MSG(next_alloc_id_ <= Gva::kMaxAllocs,
                    "allocation ids exhausted");
    meta.id = next_alloc_id_++;
  }
  meta.dist = dist;
  meta.creator = creator;
  meta.nblocks = nblocks;
  meta.block_size = block_size;

  const Gva base = Gva::make(dist, creator, meta.id, 0, 0);
  // The creator reserves backing store on every home rank — the
  // alloc-time cross-lane exception in BlockStore's locking contract.
  NVGAS_SHARD_CROSS("alloc-time home reservation (BlockStore contract)");
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const Gva block = Gva::make(dist, creator, meta.id, b, 0);
    const int home = block.home(fabric_->nodes());
    initial_[block.block_key()] = store(home).allocate(block_size);  // simlint:allow(D8: alloc-time home reservation under NVGAS_SHARD_CROSS — BlockStore locking contract)
  }
  metas_.emplace(meta.id, meta);
  return base;
}

void GlobalHeap::release_meta(std::uint32_t alloc_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metas_.find(alloc_id);
  NVGAS_CHECK_MSG(it != metas_.end(), "release of unknown allocation");
  const AllocMeta meta = it->second;
  for (std::uint32_t b = 0; b < meta.nblocks; ++b) {
    const Gva block = Gva::make(meta.dist, meta.creator, meta.id, b, 0);
    initial_.erase(block.block_key());
  }
  metas_.erase(it);
}

const AllocMeta& GlobalHeap::meta(std::uint32_t alloc_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metas_.find(alloc_id);
  NVGAS_CHECK_MSG(it != metas_.end(), "unknown allocation id");
  // References into an unordered_map survive rehash; erasure only
  // happens in release_meta, whose collective contract forbids
  // concurrent access to the allocation being freed.
  return it->second;
}

bool GlobalHeap::contains(Gva gva) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = metas_.find(gva.alloc_id());
  if (it == metas_.end()) return false;
  const AllocMeta& m = it->second;
  return gva.block() < m.nblocks && gva.offset() < m.block_size;
}

sim::Lva GlobalHeap::initial_lva(Gva block_base) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = initial_.find(block_base.block_key());
  NVGAS_CHECK_MSG(it != initial_.end(), "no initial placement for block");
  return it->second;
}

void GlobalHeap::check_extent(Gva gva, std::size_t len) const {
  const AllocMeta& m = meta_of(gva);
  NVGAS_CHECK_MSG(gva.block() < m.nblocks, "gva outside allocation");
  NVGAS_CHECK_MSG(gva.offset() + len <= m.block_size,
                  "access crosses a block boundary");
}

}  // namespace nvgas::gas
