// Home-based directory for the software-managed AGAS.
//
// Each block's home rank holds the authoritative record of its current
// owner, local address, generation, sharer set (nodes caching the
// translation) and move state. Directory accesses always run as CPU
// tasks at the home — the structural cost the network-managed design
// removes.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/memory.hpp"
#include "util/assert.hpp"

namespace nvgas::gas {

struct DirEntry {
  int owner = -1;
  sim::Lva lva = 0;
  std::uint32_t generation = 0;
  bool moving = false;
  std::set<int> sharers;
};

class Directory {
 public:
  void insert(std::uint64_t block_key, int owner, sim::Lva lva) {
    const auto [it, fresh] =
        entries_.emplace(block_key, DirEntry{owner, lva, 0, false, {}});
    NVGAS_CHECK_MSG(fresh, "duplicate directory insert");
    (void)it;
  }

  [[nodiscard]] DirEntry& at(std::uint64_t block_key) {
    const auto it = entries_.find(block_key);
    NVGAS_CHECK_MSG(it != entries_.end(), "directory entry missing");
    return it->second;
  }
  [[nodiscard]] const DirEntry& at(std::uint64_t block_key) const {
    return const_cast<Directory*>(this)->at(block_key);
  }

  [[nodiscard]] bool contains(std::uint64_t block_key) const {
    return entries_.count(block_key) != 0;
  }

  void erase(std::uint64_t block_key) { entries_.erase(block_key); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  // simlint:allow(D1: keyed at/find/erase only, never iterated)
  std::unordered_map<std::uint64_t, DirEntry> entries_;
};

}  // namespace nvgas::gas
