// Epoch-driven migration balancer: the executive of the lb subsystem.
//
// Closes the loop observe -> decide -> migrate: a HeatMap (attached as
// the manager's AccessObserver) accumulates per-block heat; every epoch
// the balancer decays the counters, snapshots placement, asks its Policy
// for a plan, and executes the plan through GasApi::migrate behind
//
//   * a throttle — at most max_inflight balancer migrations in flight,
//     at most one per block, exponential per-block backoff after a
//     bounced move (completion found the block somewhere other than the
//     requested destination, i.e. a racing migration won);
//   * a cost gate — a move is issued only when the modeled benefit over
//     the decay window (heat x benefit_ns_per_access) exceeds the
//     modeled move cost (directory update + invalidation fan-out +
//     fence round trip + block transfer, from gas/costs.hpp and the
//     machine parameters).
//
// Scheduling is demand-driven: the first observed access arms an epoch
// timer on the sim Engine; an epoch with no new accesses and nothing in
// flight does not re-arm, so a drained application lets the event queue
// drain too (World::run terminates). Everything runs on the configured
// coordinator node's CPU and charges decision costs there.
//
// On a manager with supports_migration() == false (PGAS) or with the
// `none` policy the balancer attaches nothing and schedules nothing:
// the run is byte-identical to one without a balancer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "gas/gas_api.hpp"
#include "lb/heat.hpp"
#include "lb/policy.hpp"
#include "sim/fabric.hpp"

namespace nvgas::lb {

class Balancer final : public gas::AccessObserver {
 public:
  Balancer(sim::Fabric& fabric, gas::GasBase& gas, const LbConfig& cfg);
  ~Balancer() override;
  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  // Pause / resume the epoch driver (benches gate churn windows with
  // this). Disabling lets any armed timer lapse harmlessly; enabling
  // arms an epoch immediately.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return enabled_; }
  // False when the manager cannot migrate or the policy is `none`: the
  // balancer then observes nothing and perturbs nothing.
  [[nodiscard]] bool active() const { return active_; }

  // Cost gate, exposed for tests: is moving a block with `heat_units`
  // decayed units and `block_size` bytes modeled as profitable?
  [[nodiscard]] bool profitable(std::uint64_t heat_units,
                                std::uint32_t block_size) const;

  [[nodiscard]] const LbConfig& config() const { return cfg_; }
  [[nodiscard]] const HeatMap& heat() const { return heat_; }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t rejected_cost() const { return rejected_cost_; }
  [[nodiscard]] std::uint32_t inflight() const { return inflight_; }
  // High-water mark of concurrently in-flight balancer migrations
  // (tests assert it never exceeds cfg.max_inflight).
  [[nodiscard]] std::uint32_t peak_inflight() const { return peak_inflight_; }

  // --- gas::AccessObserver (forwarded into the HeatMap) --------------------
  void on_local_access(int node, std::uint64_t block_key) override;
  void on_remote_access(int node, std::uint64_t block_key) override;
  void on_block_freed(std::uint64_t block_key) override;

 private:
  struct Backoff {
    std::uint32_t fails = 0;
    std::uint64_t until_epoch = 0;
  };

  void arm();
  void tick();
  void epoch(sim::TaskCtx& task);
  // Sharded-engine epoch body: runs as an Engine::at_global barrier
  // event (placement reads span every home's lane), then issues the
  // vetted moves from one coordinator CPU task so costs charge as in
  // the classic path.
  void epoch_sharded();
  // Decay + snapshot + placement read shared by both epoch variants.
  void snapshot_placement(std::uint64_t epoch_idx);
  void issue(sim::TaskCtx& task, const Move& move, std::uint64_t epoch_idx);
  void on_migrate_done(std::uint64_t key, int dst);
  // Bounce detection after a completed migration (reads owner_of; runs
  // at a barrier under the sharded engine).
  void settle_bounce(std::uint64_t key, int dst);

  sim::Fabric* fabric_;
  gas::GasBase* gas_;
  LbConfig cfg_;
  HeatMap heat_;
  std::unique_ptr<Policy> policy_;
  bool active_ = false;
  bool enabled_ = true;
  bool armed_ = false;

  std::uint64_t epochs_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t rejected_cost_ = 0;
  std::uint64_t last_accesses_ = 0;
  std::uint32_t inflight_ = 0;
  std::uint32_t peak_inflight_ = 0;
  std::set<std::uint64_t> inflight_keys_;
  std::map<std::uint64_t, Backoff> backoff_;

  // Reused per-epoch buffers (steady state allocates nothing).
  std::vector<BlockHeat> views_;
  Snapshot snap_;
  std::vector<Move> plan_;
};

}  // namespace nvgas::lb
