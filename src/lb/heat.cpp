#include "lb/heat.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nvgas::lb {

void HeatMap::record(int node, std::uint64_t block_key) {
  NVGAS_DCHECK(node >= 0 && node < ranks_);
  NVGAS_SHARD_GUARD_MEMBER("lb heat entries");
  ++accesses_;
  auto [it, inserted] = index_.try_emplace(block_key, 0);
  if (inserted) {
    if (free_.empty()) {
      it->second = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
      // protolint:allow(P4: dense per-source heat row, the canonical O(P) site; ROADMAP item 2 replaces it with sparse top-k rows over active sources)
      pool_.back().by_node.assign(static_cast<std::size_t>(ranks_), 0);
    } else {
      it->second = free_.back();
      free_.pop_back();
    }
  }
  Entry& e = pool_[it->second];
  e.heat += kAccessUnit;
  e.by_node[static_cast<std::size_t>(node)] +=
      static_cast<std::uint32_t>(kAccessUnit);
}

void HeatMap::decay(std::uint32_t shift) {
  NVGAS_SHARD_GUARD_MEMBER("lb heat entries");
  if (shift == 0) return;
  for (auto it = index_.begin(); it != index_.end();) {
    Entry& e = pool_[it->second];
    e.heat >>= shift;
    for (std::uint32_t& v : e.by_node) v >>= shift;
    if (e.heat == 0) {
      // Recycle: zero the per-node vector in place (capacity retained).
      std::fill(e.by_node.begin(), e.by_node.end(), 0u);
      free_.push_back(it->second);
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
}

void HeatMap::snapshot(std::vector<BlockHeat>& out) const {
  out.clear();
  out.reserve(index_.size());
  for (const auto& [key, slot] : index_) {
    const Entry& e = pool_[slot];
    out.push_back(BlockHeat{key, e.heat, e.by_node.data()});
  }
}

std::uint64_t HeatMap::heat_of(std::uint64_t block_key) const {
  const auto it = index_.find(block_key);
  return it == index_.end() ? 0 : pool_[it->second].heat;
}

void HeatMap::on_block_freed(std::uint64_t block_key) {
  NVGAS_SHARD_GUARD_MEMBER("lb heat entries");
  const auto it = index_.find(block_key);
  if (it == index_.end()) return;
  Entry& e = pool_[it->second];
  e.heat = 0;
  std::fill(e.by_node.begin(), e.by_node.end(), 0u);
  free_.push_back(it->second);
  index_.erase(it);
}

}  // namespace nvgas::lb
