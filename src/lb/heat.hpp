// Per-block access heat accounting for the adaptive migration subsystem.
//
// HeatMap consumes the full GAS access stream (local hits included, via
// gas::AccessObserver) and maintains one decaying (EWMA) heat counter per
// touched block plus a per-source-node access vector, so a policy can see
// both HOW hot a block is and WHO is hitting it. Everything is integer
// fixed-point and iterates in key order: deterministic, no clocks, no
// floating point. Entries live in a recycled pool (per-node vectors are
// reused, never reallocated per block) so steady-state operation does not
// allocate — simlint/SimSan clean.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gas/gas_api.hpp"
#include "sim/shardsan.hpp"

namespace nvgas::lb {

// Fixed-point scale of a single access: heat counters advance in units of
// kAccessUnit so the right-shift decay keeps precision for warm blocks
// and still drives cold blocks to exactly zero (entry recycled).
inline constexpr std::uint64_t kAccessUnit = 256;

// One block's heat as seen by a snapshot. `by_node` points at the pooled
// per-source vector (ranks entries, same fixed-point units); it is valid
// until the next HeatMap mutation.
struct BlockHeat {
  std::uint64_t key = 0;   // Gva block key (directory/TLB key)
  std::uint64_t heat = 0;  // decayed access units (kAccessUnit per access)
  const std::uint32_t* by_node = nullptr;  // [ranks] per-source units
};

class HeatMap final : public gas::AccessObserver {
 public:
  explicit HeatMap(int ranks) : ranks_(ranks) {}

  // ShardSan owner tag: bound to the balancer coordinator's lane (all
  // heat state lives there); unbound for standalone unit-test use.
  NVGAS_SHARD_OWNER_DECL;

  // --- gas::AccessObserver -------------------------------------------------
  void on_local_access(int node, std::uint64_t block_key) override {
    record(node, block_key);
  }
  void on_remote_access(int node, std::uint64_t block_key) override {
    record(node, block_key);
  }
  void on_block_freed(std::uint64_t block_key) override;

  // --- epoch maintenance ---------------------------------------------------
  // EWMA decay step, applied once per balancer epoch: every counter is
  // multiplied by 2^-shift (heat >>= shift). With shift 1 this is the
  // classic S_k = (S_{k-1} + new) / 2 when called after an accumulation
  // window. Entries that reach zero heat are recycled into the pool.
  void decay(std::uint32_t shift);

  // Append one view per live block, ordered ascending by key.
  void snapshot(std::vector<BlockHeat>& out) const;

  // --- introspection -------------------------------------------------------
  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] std::size_t blocks() const { return index_.size(); }
  // Total accesses observed since construction (monotonic, not decayed).
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t heat_of(std::uint64_t block_key) const;

 private:
  struct Entry {
    std::uint64_t heat = 0;
    std::vector<std::uint32_t> by_node;  // [ranks] decayed units
  };

  void record(int node, std::uint64_t block_key);

  int ranks_;
  // key -> pool slot; ordered so decay sweeps and snapshots are
  // deterministic regardless of allocation addresses.
  std::map<std::uint64_t, std::uint32_t> index_;
  std::vector<Entry> pool_;          // slots recycled via free_
  std::vector<std::uint32_t> free_;  // recycled slot indices (LIFO)
  std::uint64_t accesses_ = 0;
};

}  // namespace nvgas::lb
