// Pluggable rebalance policies: given a placed heat snapshot, propose a
// migration plan. Policies are pure decision logic — the Balancer owns
// observation (HeatMap), execution (GasApi::migrate), the throttle and
// the cost gate. All arithmetic is integer and all iteration is in
// deterministic (key / rank) order.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lb/heat.hpp"
#include "sim/time.hpp"

namespace nvgas::lb {

enum class PolicyKind : std::uint8_t {
  kNone = 0,        // observe only, never migrate
  kGreedy = 1,      // periodic global argmax: busiest donates to idlest
  kHysteresis = 2,  // greedy + imbalance threshold + per-block cooldown
  kDiffusive = 3,   // neighbor-pairwise exchange, no global view
};

[[nodiscard]] constexpr const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kGreedy: return "greedy";
    case PolicyKind::kHysteresis: return "hysteresis";
    case PolicyKind::kDiffusive: return "diffusive";
  }
  return "?";
}

// Parse a policy name ("none"/"greedy"/"hysteresis"/"diffusive").
// Returns false (and leaves `out` untouched) on an unknown name.
[[nodiscard]] bool parse_policy(const std::string& name, PolicyKind& out);

// Balancer / policy tuning knobs. Plumbed through core::Config and, for
// the bench/tool CLIs, util::Options (see apply_options).
struct LbConfig {
  PolicyKind policy = PolicyKind::kNone;

  // Epoch cadence: the balancer samples heat and re-plans this often
  // while the application is generating accesses (it goes dormant after
  // a quiet epoch so the event queue can drain).
  sim::Time epoch_ns = 100'000;

  // EWMA decay per epoch: counters are multiplied by 2^-decay_shift.
  std::uint32_t decay_shift = 1;

  // Plan-size / throttle limits.
  std::uint32_t max_moves_per_epoch = 8;
  std::uint32_t max_inflight = 4;

  // Hysteresis: act only when busiest*100 > idlest*imbalance_pct (plus
  // the min_heat absolute floor), and never re-move a block within
  // cooldown_epochs of its last move.
  std::uint32_t imbalance_pct = 150;
  std::uint32_t cooldown_epochs = 2;

  // Blocks colder than this (decayed units; kAccessUnit per access) are
  // never moved, and diffusive ignores neighbor gaps below 2x this.
  std::uint64_t min_heat = 2 * kAccessUnit;

  // Cost gate: modeled saving per decayed access unit that migration
  // would localize, weighed against directory-update + invalidation +
  // transfer cost (see Balancer::profitable).
  sim::Time benefit_ns_per_access = 600;

  // Node that runs the epoch decision task and issues the migrations.
  int coordinator = 0;

  // Decision CPU cost charged to the coordinator per epoch.
  sim::Time decide_base_ns = 400;
  sim::Time decide_per_block_ns = 25;
};

// One block of a placed snapshot: heat plus authoritative owner.
struct PlacedBlock {
  std::uint64_t key = 0;
  int owner = 0;
  std::uint64_t heat = 0;                  // decayed units
  const std::uint32_t* by_node = nullptr;  // [ranks] per-source units
  // In-flight migration or exponential backoff: contributes load but
  // must not be proposed again this epoch.
  bool frozen = false;
};

struct Snapshot {
  int ranks = 0;
  std::uint64_t epoch = 0;  // balancer epoch index (cooldown bookkeeping)
  std::vector<PlacedBlock> blocks;       // ordered ascending by key
  std::vector<std::uint64_t> node_load;  // [ranks] sum of owned heat
};

struct Move {
  std::uint64_t key = 0;
  int dst = 0;
  std::uint64_t heat = 0;  // the block's heat when planned (cost gate input)
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual PolicyKind kind() const = 0;
  // Append proposed moves, highest priority first. The balancer may
  // drop entries (cost gate, throttle); only executed moves are
  // reported back through on_moved.
  virtual void plan(const Snapshot& snap, const LbConfig& cfg,
                    std::vector<Move>& out) = 0;
  // A planned move was actually issued (cooldown bookkeeping).
  virtual void on_moved(std::uint64_t key, std::uint64_t epoch) {
    (void)key;
    (void)epoch;
  }
};

[[nodiscard]] std::unique_ptr<Policy> make_policy(PolicyKind kind);

}  // namespace nvgas::lb

// CLI plumbing lives next to the knobs it fills.
namespace nvgas::util {
class Options;
}  // namespace nvgas::util

namespace nvgas::lb {
// Overlay --lb-* flags onto `cfg`: --lb-policy, --lb-epoch-ns,
// --lb-decay-shift, --lb-max-moves, --lb-max-inflight,
// --lb-imbalance-pct, --lb-cooldown, --lb-min-heat, --lb-benefit-ns,
// --lb-coordinator. Aborts on an unknown policy name.
void apply_options(LbConfig& cfg, const util::Options& opts);
}  // namespace nvgas::lb
