#include "lb/policy.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/options.hpp"

namespace nvgas::lb {
namespace {

// Ranks ordered by load descending (ties: lowest rank), recomputed from
// the working copy of the loads each time a move is applied.
std::vector<int> by_load_desc(const std::vector<std::uint64_t>& loads) {
  std::vector<int> order(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&loads](int a, int b) {
    return loads[static_cast<std::size_t>(a)] > loads[static_cast<std::size_t>(b)];
  });
  return order;
}

int argmin_load(const std::vector<std::uint64_t>& loads) {
  int best = 0;
  for (int n = 1; n < static_cast<int>(loads.size()); ++n) {
    if (loads[static_cast<std::size_t>(n)] < loads[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  return best;
}

// Movable-block candidate lists per owner, hottest first (ties: lowest
// key), as indices into snap.blocks.
std::vector<std::vector<std::size_t>> candidates_by_owner(
    const Snapshot& snap, const LbConfig& cfg,
    const std::map<std::uint64_t, std::uint64_t>* last_move) {
  std::vector<std::vector<std::size_t>> cand(
      static_cast<std::size_t>(snap.ranks));
  for (std::size_t i = 0; i < snap.blocks.size(); ++i) {
    const PlacedBlock& b = snap.blocks[i];
    if (b.frozen || b.heat < cfg.min_heat) continue;
    if (last_move != nullptr) {
      const auto it = last_move->find(b.key);
      if (it != last_move->end() &&
          snap.epoch < it->second + cfg.cooldown_epochs) {
        continue;  // per-block cooldown: recently moved, leave it alone
      }
    }
    cand[static_cast<std::size_t>(b.owner)].push_back(i);
  }
  for (auto& list : cand) {
    std::stable_sort(list.begin(), list.end(),
                     [&snap](std::size_t a, std::size_t b) {
                       if (snap.blocks[a].heat != snap.blocks[b].heat) {
                         return snap.blocks[a].heat > snap.blocks[b].heat;
                       }
                       return snap.blocks[a].key < snap.blocks[b].key;
                     });
  }
  return cand;
}

// Destination for `b` leaving `donor`: the heaviest accessor that can
// absorb the block without ending up above the donor (data-centric
// placement that cannot invert the imbalance), else the idlest node.
int pick_dst(const PlacedBlock& b, const std::vector<std::uint64_t>& loads,
             int donor) {
  int best = -1;
  std::uint32_t best_units = 0;
  for (int n = 0; n < static_cast<int>(loads.size()); ++n) {
    if (n == donor) continue;
    if (loads[static_cast<std::size_t>(n)] + b.heat >
        loads[static_cast<std::size_t>(donor)] - b.heat) {
      continue;
    }
    const std::uint32_t units = b.by_node[static_cast<std::size_t>(n)];
    if (best == -1 || units > best_units) {
      best = n;
      best_units = units;
    }
  }
  if (best != -1 && best_units > 0) return best;
  return argmin_load(loads);
}

// Shared busiest-donates-to-idlest planner. Greedy runs it with no
// trigger threshold and a full-gap block limit (it may bounce a block
// back and forth chasing noise); hysteresis adds the imbalance trigger,
// a half-gap block limit (a 50/50 split can never oscillate: moving the
// whole gap is forbidden) and the per-block cooldown applied above.
void plan_transfer(const Snapshot& snap, const LbConfig& cfg, bool hysteresis,
                   const std::map<std::uint64_t, std::uint64_t>* last_move,
                   std::vector<Move>& out) {
  if (snap.ranks < 2) return;
  std::vector<std::uint64_t> loads = snap.node_load;
  const auto cand = candidates_by_owner(snap, cfg, last_move);
  std::vector<bool> used(snap.blocks.size(), false);

  for (std::uint32_t moves = 0; moves < cfg.max_moves_per_epoch;) {
    const int idlest = argmin_load(loads);
    const std::uint64_t lo = loads[static_cast<std::size_t>(idlest)];
    int donor = -1;
    std::size_t pick = snap.blocks.size();
    for (const int dc : by_load_desc(loads)) {
      if (dc == idlest) break;
      const std::uint64_t hi = loads[static_cast<std::size_t>(dc)];
      const std::uint64_t gap = hi - lo;
      const bool triggered =
          hysteresis ? hi * 100 > lo * cfg.imbalance_pct + cfg.min_heat * 100
                     : gap > cfg.min_heat;
      if (!triggered) break;  // loads are ordered: nobody below triggers
      const std::uint64_t limit = hysteresis ? gap / 2 : gap;
      for (const std::size_t i : cand[static_cast<std::size_t>(dc)]) {
        if (used[i] || snap.blocks[i].heat > limit) continue;
        donor = dc;
        pick = i;
        break;
      }
      if (donor != -1) break;
    }
    if (donor == -1) break;
    const PlacedBlock& b = snap.blocks[pick];
    const int dst = pick_dst(b, loads, donor);
    if (dst == donor) break;
    used[pick] = true;
    out.push_back(Move{b.key, dst, b.heat});
    loads[static_cast<std::size_t>(donor)] -= b.heat;
    loads[static_cast<std::size_t>(dst)] += b.heat;
    ++moves;
  }
}

class NonePolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kNone; }
  void plan(const Snapshot&, const LbConfig&, std::vector<Move>&) override {}
};

class GreedyPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::kGreedy; }
  void plan(const Snapshot& snap, const LbConfig& cfg,
            std::vector<Move>& out) override {
    plan_transfer(snap, cfg, /*hysteresis=*/false, nullptr, out);
  }
};

class HysteresisPolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kHysteresis;
  }
  void plan(const Snapshot& snap, const LbConfig& cfg,
            std::vector<Move>& out) override {
    plan_transfer(snap, cfg, /*hysteresis=*/true, &last_move_, out);
  }
  void on_moved(std::uint64_t key, std::uint64_t epoch) override {
    last_move_[key] = epoch;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> last_move_;  // key -> epoch
};

// Neighbor-pairwise diffusion on a ring: each rank compares its load
// with its clockwise neighbor only and sheds half the difference toward
// the lighter side. Needs no global argmax/argmin — the decision each
// pair makes depends only on the pair — so it is the shape that scales;
// imbalance diffuses around the ring over successive epochs. The
// per-block cooldown is load-bearing here: without it, load circulates
// around the ring and a forwarded parcel chasing a block through stale
// NIC translations feeds resolve heat back into the policy — a
// self-sustaining migration livelock. The cooldown pins each block long
// enough for in-flight traffic to catch up.
class DiffusivePolicy final : public Policy {
 public:
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kDiffusive;
  }
  void plan(const Snapshot& snap, const LbConfig& cfg,
            std::vector<Move>& out) override {
    if (snap.ranks < 2) return;
    std::vector<std::uint64_t> loads = snap.node_load;
    const auto cand = candidates_by_owner(snap, cfg, &last_move_);
    std::vector<bool> used(snap.blocks.size(), false);
    for (int n = 0; n < snap.ranks; ++n) {
      const int r = (n + 1) % snap.ranks;
      const std::uint64_t ln = loads[static_cast<std::size_t>(n)];
      const std::uint64_t lr = loads[static_cast<std::size_t>(r)];
      const int donor = ln >= lr ? n : r;
      const int recv = ln >= lr ? r : n;
      const std::uint64_t diff = ln >= lr ? ln - lr : lr - ln;
      if (diff <= 2 * cfg.min_heat) continue;
      std::uint64_t budget = diff / 2;
      for (const std::size_t i : cand[static_cast<std::size_t>(donor)]) {
        if (used[i] || snap.blocks[i].heat > budget) continue;
        used[i] = true;
        out.push_back(Move{snap.blocks[i].key, recv, snap.blocks[i].heat});
        budget -= snap.blocks[i].heat;
        loads[static_cast<std::size_t>(donor)] -= snap.blocks[i].heat;
        loads[static_cast<std::size_t>(recv)] += snap.blocks[i].heat;
        if (out.size() >= cfg.max_moves_per_epoch) return;
      }
    }
  }
  void on_moved(std::uint64_t key, std::uint64_t epoch) override {
    last_move_[key] = epoch;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> last_move_;  // key -> epoch
};

}  // namespace

bool parse_policy(const std::string& name, PolicyKind& out) {
  if (name == "none") {
    out = PolicyKind::kNone;
  } else if (name == "greedy") {
    out = PolicyKind::kGreedy;
  } else if (name == "hysteresis") {
    out = PolicyKind::kHysteresis;
  } else if (name == "diffusive") {
    out = PolicyKind::kDiffusive;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<Policy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNone: return std::make_unique<NonePolicy>();
    case PolicyKind::kGreedy: return std::make_unique<GreedyPolicy>();
    case PolicyKind::kHysteresis: return std::make_unique<HysteresisPolicy>();
    case PolicyKind::kDiffusive: return std::make_unique<DiffusivePolicy>();
  }
  return std::make_unique<NonePolicy>();
}

void apply_options(LbConfig& cfg, const util::Options& opts) {
  const std::string name = opts.get("lb-policy", to_string(cfg.policy));
  NVGAS_CHECK_MSG(parse_policy(name, cfg.policy),
                  "unknown --lb-policy (want none/greedy/hysteresis/diffusive)");
  cfg.epoch_ns = static_cast<sim::Time>(
      opts.get_uint("lb-epoch-ns", static_cast<std::uint64_t>(cfg.epoch_ns)));
  cfg.decay_shift = static_cast<std::uint32_t>(
      opts.get_uint("lb-decay-shift", cfg.decay_shift));
  cfg.max_moves_per_epoch = static_cast<std::uint32_t>(
      opts.get_uint("lb-max-moves", cfg.max_moves_per_epoch));
  cfg.max_inflight = static_cast<std::uint32_t>(
      opts.get_uint("lb-max-inflight", cfg.max_inflight));
  cfg.imbalance_pct = static_cast<std::uint32_t>(
      opts.get_uint("lb-imbalance-pct", cfg.imbalance_pct));
  cfg.cooldown_epochs = static_cast<std::uint32_t>(
      opts.get_uint("lb-cooldown", cfg.cooldown_epochs));
  cfg.min_heat = opts.get_uint("lb-min-heat", cfg.min_heat);
  cfg.benefit_ns_per_access = static_cast<sim::Time>(opts.get_uint(
      "lb-benefit-ns", static_cast<std::uint64_t>(cfg.benefit_ns_per_access)));
  cfg.coordinator =
      static_cast<int>(opts.get_int("lb-coordinator", cfg.coordinator));
}

}  // namespace nvgas::lb
