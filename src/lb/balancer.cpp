#include "lb/balancer.hpp"

#include <algorithm>

#include "gas/invariants.hpp"
#include "util/assert.hpp"

namespace nvgas::lb {

Balancer::Balancer(sim::Fabric& fabric, gas::GasBase& gas, const LbConfig& cfg)
    : fabric_(&fabric),
      gas_(&gas),
      cfg_(cfg),
      // protolint:allow(P4: coordinator-resident heat table, one per world; sparse per-source rows are the ROADMAP item 2 follow-up)
      heat_(fabric.nodes()),
      policy_(make_policy(cfg.policy)) {
  NVGAS_CHECK(cfg_.coordinator >= 0 && cfg_.coordinator < fabric.nodes());
  NVGAS_CHECK(cfg_.max_inflight > 0);
  NVGAS_SHARD_BIND(heat_, cfg_.coordinator, &fabric.engine());
  active_ = gas.supports_migration() && cfg_.policy != PolicyKind::kNone;
  if (active_) gas_->set_access_observer(this);
}

Balancer::~Balancer() {
  if (active_) gas_->set_access_observer(nullptr);
}

void Balancer::on_local_access(int node, std::uint64_t block_key) {
  // Sharded engine: GasBase::note_access delivers these on the block's
  // home lane, but all balancer state lives on the coordinator's lane —
  // hop there (deterministic drain order keeps heat accumulation
  // thread-count-invariant).
  auto& e = fabric_->engine();
  if (e.sharded() && e.on_shard_context() && !e.on_adopted_context() &&
      e.current_shard(0) != static_cast<std::uint32_t>(cfg_.coordinator)) {
    e.post(static_cast<std::uint32_t>(cfg_.coordinator), e.now(),
           [this, node, block_key] { on_local_access(node, block_key); });
    return;
  }
  // Classic-mode coordinator hop: heat state and the tick timer live on
  // the coordinator's lane — the handoff the sharded branch posts above.
  NVGAS_SHARD_HOP(&e, cfg_.coordinator);
  heat_.on_local_access(node, block_key);
  arm();
}

void Balancer::on_remote_access(int node, std::uint64_t block_key) {
  auto& e = fabric_->engine();
  if (e.sharded() && e.on_shard_context() && !e.on_adopted_context() &&
      e.current_shard(0) != static_cast<std::uint32_t>(cfg_.coordinator)) {
    e.post(static_cast<std::uint32_t>(cfg_.coordinator), e.now(),
           [this, node, block_key] { on_remote_access(node, block_key); });
    return;
  }
  NVGAS_SHARD_HOP(&e, cfg_.coordinator);
  heat_.on_remote_access(node, block_key);
  arm();
}

void Balancer::on_block_freed(std::uint64_t block_key) {
  // Only reached inline (classic) or from the free_alloc barrier event
  // (sharded), where every lane is quiesced — no routing needed. The
  // classic inline call still runs in the freeing node's context, so hop
  // to the coordinator for attribution.
  NVGAS_SHARD_HOP(&fabric_->engine(), cfg_.coordinator);
  heat_.on_block_freed(block_key);
  backoff_.erase(block_key);
}

void Balancer::set_enabled(bool on) {
  if (enabled_ == on) return;
  enabled_ = on;
  if (on && heat_.accesses() > 0) arm();
}

void Balancer::arm() {
  if (armed_ || !enabled_ || !active_) return;
  armed_ = true;
  auto& e = fabric_->engine();
  if (e.sharded()) {
    // The tick timer (and everything it touches before taking the global
    // barrier) must live on the coordinator's lane, wherever arm() was
    // called from — an adopted setup context pins `after` to the caller's
    // own lane, which may not be the coordinator's.
    e.at_shard(static_cast<std::uint32_t>(cfg_.coordinator),
               e.now() + cfg_.epoch_ns, [this] { tick(); });
    return;
  }
  e.after(cfg_.epoch_ns, [this] { tick(); });
}

void Balancer::tick() {
  auto& engine = fabric_->engine();
  if (engine.sharded()) {
    // Placement reads span every home's lane: take the whole decision
    // at a global barrier (all state checks included, so nothing of the
    // balancer's is touched from whichever lane fired this timer).
    engine.at_global(engine.now(),
                     static_cast<std::uint32_t>(cfg_.coordinator), [this] {
                       if (!enabled_ || !active_) {
                         armed_ = false;
                         return;
                       }
                       epoch_sharded();
                     });
    return;
  }
  if (!enabled_ || !active_) {
    armed_ = false;
    return;
  }
  // The decision runs as a CPU task on the coordinator so its cost is
  // charged there and migrations are issued from a proper task context.
  fabric_->cpu(cfg_.coordinator)
      .submit_at(fabric_->engine().now(),
                 [this](sim::TaskCtx& t) { epoch(t); });
}

void Balancer::snapshot_placement(std::uint64_t epoch_idx) {
  heat_.decay(cfg_.decay_shift);
  heat_.snapshot(views_);

  const int ranks = fabric_->nodes();
  snap_.ranks = ranks;
  snap_.epoch = epoch_idx;
  snap_.blocks.clear();
  // protolint:allow(P4: coordinator-only aggregate rebuilt per epoch; ROADMAP item 2 keeps it on the single coordinator)
  snap_.node_load.assign(static_cast<std::size_t>(ranks), 0);
  for (const BlockHeat& v : views_) {
    const int owner = gas_->owner_of(gas::Gva(v.key)).first;
    const auto bit = backoff_.find(v.key);
    const bool frozen =
        inflight_keys_.count(v.key) != 0 ||
        (bit != backoff_.end() && epoch_idx < bit->second.until_epoch);
    snap_.blocks.push_back(PlacedBlock{v.key, owner, v.heat, v.by_node, frozen});
    snap_.node_load[static_cast<std::size_t>(owner)] += v.heat;
  }
}

void Balancer::epoch(sim::TaskCtx& task) {
  const std::uint64_t epoch_idx = epochs_++;
  ++fabric_->counters().lb_epochs;
  const std::uint64_t seen_before = heat_.accesses();

  snapshot_placement(epoch_idx);
  task.charge(cfg_.decide_base_ns +
              cfg_.decide_per_block_ns *
                  static_cast<sim::Time>(snap_.blocks.size()));

  plan_.clear();
  policy_->plan(snap_, cfg_, plan_);
  for (const Move& m : plan_) {
    if (inflight_ >= cfg_.max_inflight) {
      ++fabric_->counters().lb_throttled;
      continue;
    }
    const std::uint32_t block_size =
        gas_->heap().meta_of(gas::Gva(m.key)).block_size;
    if (!profitable(m.heat, block_size)) {
      ++rejected_cost_;
      ++fabric_->counters().lb_rejected_cost;
      continue;
    }
    issue(task, m, epoch_idx);
  }

  // Re-arm while the application is still generating accesses or our
  // own migrations are still draining; otherwise go dormant (the next
  // observed access re-arms).
  if (seen_before != last_accesses_ || inflight_ > 0) {
    fabric_->engine().after(cfg_.epoch_ns, [this] { tick(); });
  } else {
    armed_ = false;
  }
  last_accesses_ = seen_before;
}

void Balancer::epoch_sharded() {
  const std::uint64_t epoch_idx = epochs_++;
  ++fabric_->counters().lb_epochs;
  const std::uint64_t seen_before = heat_.accesses();

  snapshot_placement(epoch_idx);  // owner_of is safe: barrier context
  plan_.clear();
  policy_->plan(snap_, cfg_, plan_);

  // Vet the plan and take the bookkeeping here, where placement state is
  // stable; the actual migrations are issued from one coordinator CPU
  // task so the decision cost charges exactly as on the classic path.
  auto moves = std::make_shared<std::vector<Move>>();
  for (const Move& m : plan_) {
    if (inflight_ >= cfg_.max_inflight) {
      ++fabric_->counters().lb_throttled;
      continue;
    }
    const std::uint32_t block_size =
        gas_->heap().meta_of(gas::Gva(m.key)).block_size;
    if (!profitable(m.heat, block_size)) {
      ++rejected_cost_;
      ++fabric_->counters().lb_rejected_cost;
      continue;
    }
    if (gas_->owner_of(gas::Gva(m.key)).first == m.dst) continue;  // already there
    ++inflight_;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
    inflight_keys_.insert(m.key);
    ++migrations_;
    ++fabric_->counters().lb_migrations;
    policy_->on_moved(m.key, epoch_idx);
    if (gas::InvariantObserver* obs = gas_->observer()) {
      obs->on_balancer_migrate_issued(m.key);
    }
    moves->push_back(m);
  }

  const sim::Time decide =
      cfg_.decide_base_ns +
      cfg_.decide_per_block_ns * static_cast<sim::Time>(snap_.blocks.size());
  fabric_->cpu(cfg_.coordinator)
      .submit_at(fabric_->engine().now(),
                 [this, moves, decide](sim::TaskCtx& t) {
                   t.charge(decide);
                   for (const Move& m : *moves) {
                     gas_->migrate(t, cfg_.coordinator, gas::Gva(m.key), m.dst,
                                   [this, key = m.key, dst = m.dst](sim::Time) {
                                     on_migrate_done(key, dst);
                                   });
                   }
                 });

  if (seen_before != last_accesses_ || inflight_ > 0) {
    fabric_->engine().after(cfg_.epoch_ns, [this] { tick(); });
  } else {
    armed_ = false;
  }
  last_accesses_ = seen_before;
}

void Balancer::issue(sim::TaskCtx& task, const Move& m,
                     std::uint64_t epoch_idx) {
  const gas::Gva block(m.key);
  if (gas_->owner_of(block).first == m.dst) return;  // raced: already there
  ++inflight_;
  peak_inflight_ = std::max(peak_inflight_, inflight_);
  inflight_keys_.insert(m.key);
  ++migrations_;
  ++fabric_->counters().lb_migrations;
  policy_->on_moved(m.key, epoch_idx);
  if (gas::InvariantObserver* obs = gas_->observer()) {
    obs->on_balancer_migrate_issued(m.key);
  }
  gas_->migrate(task, cfg_.coordinator, block, m.dst,
                [this, key = m.key, dst = m.dst](sim::Time) {
                  on_migrate_done(key, dst);
                });
}

void Balancer::on_migrate_done(std::uint64_t key, int dst) {
  NVGAS_CHECK(inflight_ > 0);
  --inflight_;
  inflight_keys_.erase(key);
  if (gas::InvariantObserver* obs = gas_->observer()) {
    obs->on_balancer_migrate_done(key);
  }
  auto& engine = fabric_->engine();
  if (engine.sharded()) {
    // The bounce check reads the block's authoritative owner, which
    // lives on a foreign home's lane — take it at a barrier.
    engine.at_global(engine.now(),
                     static_cast<std::uint32_t>(cfg_.coordinator),
                     [this, key, dst] { settle_bounce(key, dst); });
    return;
  }
  settle_bounce(key, dst);
}

void Balancer::settle_bounce(std::uint64_t key, int dst) {
  if (!gas_->heap().contains(gas::Gva(key))) return;  // freed while settling
  if (gas_->owner_of(gas::Gva(key)).first != dst) {
    // Bounced: a competing migration moved the block after ours
    // committed. Back off exponentially before retrying this block.
    ++fabric_->counters().lb_bounced;
    Backoff& b = backoff_[key];
    b.fails = std::min<std::uint32_t>(b.fails + 1, 16);
    b.until_epoch =
        epochs_ + (1ull << std::min<std::uint32_t>(b.fails, 6));
  } else {
    backoff_.erase(key);
  }
}

bool Balancer::profitable(std::uint64_t heat_units,
                          std::uint32_t block_size) const {
  const gas::GasCosts& c = gas_->costs();
  const sim::MachineParams& p = fabric_->params();
  // Benefit: expected accesses over the next decay window, each saving
  // the modeled remote-vs-local delta.
  const std::uint64_t benefit =
      heat_units * static_cast<std::uint64_t>(cfg_.benefit_ns_per_access) /
      kAccessUnit;
  // Cost: directory update at the home, invalidation fan-out to every
  // other node, one fence round trip, and pushing the block's bytes.
  const std::uint64_t cost =
      c.dir_update_ns +
      static_cast<std::uint64_t>(fabric_->nodes() - 1) * c.invalidate_ns +
      2 * p.wire_latency_ns + p.wire_time(block_size);
  return benefit > cost;
}

}  // namespace nvgas::lb
