// Runtime-level message coalescing (the AM++ optimization): small active
// messages to the same destination are buffered and shipped as one
// parcel, trading per-message overhead (o_send, headers, rx gap,
// per-parcel CPU dispatch) for batching latency.
//
//   rt::Coalescer co(runtime);            // or with a custom config
//   co.send(ctx, dst, action, args);      // instead of ctx.send(...)
//   co.flush_all(ctx);                    // or rely on size/time triggers
//
// Flush triggers: the batch reaching `max_batch_bytes`, `max_messages`,
// or `max_delay_ns` elapsing since the batch's first message (a timer
// task on the sending rank). Per-destination FIFO order is preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/action.hpp"
#include "rt/context.hpp"
#include "rt/runtime.hpp"

namespace nvgas::rt {

struct CoalescerConfig {
  std::size_t max_batch_bytes = 2048;  // flush when a batch reaches this
  std::uint32_t max_messages = 64;     // ... or this many messages
  sim::Time max_delay_ns = 5'000;      // ... or this much buffering delay
};

class Coalescer {
 public:
  explicit Coalescer(Runtime& rt, CoalescerConfig config = {});
  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  // Buffer a message for (dst, action). Must run inside a fiber segment
  // on the sending rank (the rank is taken from `ctx`).
  void send(Context& ctx, int dst, ActionId action, util::Buffer args);

  // Force out the pending batch for one destination / all destinations.
  void flush(Context& ctx, int dst);
  void flush_all(Context& ctx);

  [[nodiscard]] std::uint64_t batches_sent() const { return batches_sent_; }
  [[nodiscard]] std::uint64_t messages_coalesced() const {
    return messages_coalesced_;
  }
  [[nodiscard]] const CoalescerConfig& config() const { return config_; }

 private:
  struct Slot {
    util::Buffer buf;            // [action u32][len u32][args]...
    std::uint32_t count = 0;
    std::uint64_t epoch = 0;     // invalidates stale flush timers
  };

  [[nodiscard]] Slot& slot(int src, int dst) {
    return slots_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(rt_.nodes()) +
                  static_cast<std::size_t>(dst)];
  }

  void ship(Context& ctx, int dst, Slot& s);
  void arm_timer(int src, int dst, std::uint64_t epoch);

  Runtime& rt_;
  CoalescerConfig config_;
  std::vector<Slot> slots_;  // (src, dst) matrix
  ActionId batch_action_ = kInvalidAction;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t messages_coalesced_ = 0;
};

}  // namespace nvgas::rt
