// Quiescence (termination) detection for message-driven computations.
//
// Chaotic algorithms (asynchronous SSSP relaxation, speculative work
// distribution, ...) have no natural "last message": handlers may send
// further parcels, so no single rank can observe completion locally.
// This is the classic double-counting detector: every rank counts
// application messages *injected* and *processed*; the computation is
// quiescent when two consecutive global snapshots agree AND injected ==
// processed. (Any message in flight at stable snapshot k would be
// processed — changing the counts — before snapshot k+1 could match.)
//
// Usage (SPMD):
//
//   rt::QuiescenceDetector qd(world.runtime(), /*poll_ns=*/20'000);
//   ... handlers call qd.note_sent(rank) / qd.note_processed(rank) ...
//   co_await qd.wait(ctx);       // on every rank
//
// Each rank reports its counters to rank 0 every poll interval; rank 0
// compares consecutive complete rounds and broadcasts the verdict.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/context.hpp"
#include "rt/lco.hpp"
#include "rt/runtime.hpp"

namespace nvgas::rt {

class QuiescenceDetector {
 public:
  QuiescenceDetector(Runtime& rt, sim::Time poll_ns = 20'000);
  QuiescenceDetector(const QuiescenceDetector&) = delete;
  QuiescenceDetector& operator=(const QuiescenceDetector&) = delete;

  // Application-message accounting (host-side, callable from handlers).
  void note_sent(int rank, std::uint64_t n = 1) {
    sent_[static_cast<std::size_t>(rank)] += n;
  }
  void note_processed(int rank, std::uint64_t n = 1) {
    processed_[static_cast<std::size_t>(rank)] += n;
  }

  // SPMD: every rank awaits this once; it triggers when global
  // quiescence is certain. Calling wait() arms this rank's reporter.
  [[nodiscard]] Event& wait(Context& ctx);

  [[nodiscard]] std::uint64_t rounds() const { return round_; }

 private:
  struct Latest {
    std::uint64_t sent = 0;
    std::uint64_t processed = 0;
    bool fresh = false;  // reported since the last snapshot
  };

  void arm_reporter(int rank);
  void root_accept(Context& c, int rank, std::uint64_t round, std::uint64_t s,
                   std::uint64_t p);

  Runtime& rt_;
  sim::Time poll_ns_;
  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> processed_;
  std::vector<std::unique_ptr<Event>> done_;  // per rank
  bool finished_ = false;

  // Root-side snapshot bookkeeping: a snapshot closes when every rank has
  // reported since the previous one; consecutive snapshots are compared
  // PER RANK (mixing sums across ranks would be unsound under report
  // reordering).
  std::uint64_t round_ = 0;
  std::vector<Latest> latest_;
  std::vector<Latest> prev_snapshot_;
  bool have_prev_ = false;

  ActionId report_ = kInvalidAction;
  ActionId verdict_ = kInvalidAction;
};

}  // namespace nvgas::rt
