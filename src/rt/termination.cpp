#include "rt/termination.hpp"

namespace nvgas::rt {

QuiescenceDetector::QuiescenceDetector(Runtime& rt, sim::Time poll_ns)
    : rt_(rt),
      poll_ns_(poll_ns),
      // protolint:allow(P4: detector-resident per-rank sent counters, one detector per world; ROADMAP item 2 aggregates them up the tree)
      sent_(static_cast<std::size_t>(rt.nodes()), 0),
      // protolint:allow(P4: detector-resident per-rank processed counters; ROADMAP item 2 aggregates them up the tree)
      processed_(static_cast<std::size_t>(rt.nodes()), 0) {
  // protolint:allow(P4: one quiescence event per rank on the world-level detector, resolved at detection)
  done_.reserve(static_cast<std::size_t>(rt.nodes()));
  for (int n = 0; n < rt.nodes(); ++n) {
    done_.push_back(std::make_unique<Event>());
  }

  verdict_ = register_action<std::uint8_t>(
      rt_.actions(), "nvgas.quiesce.verdict",
      [this](Context& c, int, std::uint8_t) {
        done_[static_cast<std::size_t>(c.rank())]->set(c.now());
      });

  report_ = register_action<std::uint64_t, std::uint64_t, std::uint64_t>(
      rt_.actions(), "nvgas.quiesce.report",
      [this](Context& c, int src, std::uint64_t round, std::uint64_t s,
             std::uint64_t p) { root_accept(c, src, round, s, p); });
}

Event& QuiescenceDetector::wait(Context& ctx) {
  arm_reporter(ctx.rank());
  return *done_[static_cast<std::size_t>(ctx.rank())];
}

void QuiescenceDetector::arm_reporter(int rank) {
  // Periodic reporter: a small CPU task that ships this rank's counters
  // to the root, then re-arms itself until the verdict lands.
  rt_.fabric().cpu(rank).submit_at(
      rt_.fabric().engine().now() + poll_ns_, [this, rank](sim::TaskCtx& task) {
        if (finished_ ||
            done_[static_cast<std::size_t>(rank)]->triggered()) {
          return;
        }
        CurrentTaskScope scope(rt_, task);
        Context& c = rt_.ctx(rank);
        // Round id is decided by the root on receipt; the rank just
        // reports its current counters.
        c.send(0, report_,
               pack_args(std::uint64_t{0}, sent_[static_cast<std::size_t>(rank)],
                         processed_[static_cast<std::size_t>(rank)]));
        arm_reporter(rank);
      });
}

void QuiescenceDetector::root_accept(Context& c, int rank,
                                     std::uint64_t /*round*/, std::uint64_t s,
                                     std::uint64_t p) {
  if (finished_) return;
  if (latest_.empty()) {
    // protolint:allow(P4: coordinator-only four-counter wave ledger; ROADMAP item 2 keeps it on the single coordinator)
    latest_.resize(static_cast<std::size_t>(rt_.nodes()));
  }
  Latest& l = latest_[static_cast<std::size_t>(rank)];
  l.sent = s;  // counters are monotone, so newest wins
  l.processed = p;
  l.fresh = true;

  for (const Latest& e : latest_) {
    if (!e.fresh) return;  // snapshot not complete yet
  }

  // Snapshot complete: quiescent iff (a) globally balanced and (b)
  // identical per rank to the previous complete snapshot. Any message
  // processed between a rank's two reports changes that rank's counters;
  // any message still in flight across both snapshots is counted as sent
  // but not processed, breaking (a).
  bool stable = have_prev_;
  std::uint64_t total_sent = 0;
  std::uint64_t total_processed = 0;
  for (std::size_t i = 0; i < latest_.size(); ++i) {
    total_sent += latest_[i].sent;
    total_processed += latest_[i].processed;
    if (have_prev_ && (latest_[i].sent != prev_snapshot_[i].sent ||
                       latest_[i].processed != prev_snapshot_[i].processed)) {
      stable = false;
    }
  }
  stable = stable && total_sent == total_processed;

  prev_snapshot_ = latest_;
  have_prev_ = true;
  for (Latest& e : latest_) e.fresh = false;
  ++round_;

  if (stable) {
    finished_ = true;
    for (int dst = 0; dst < rt_.nodes(); ++dst) {
      c.send(dst, verdict_, pack_args(std::uint8_t{1}));
    }
  }
}

}  // namespace nvgas::rt
