// Context: the per-node handle through which fibers touch the runtime —
// cost charging, parcel sends, LCO registration, sleeping.
//
// The GAS layers (src/gas, src/core) extend it through the `gas` hook so
// the runtime stays independent of address-space management.
#pragma once

#include <cstdint>
#include <functional>

#include "rt/action.hpp"
#include "rt/fiber.hpp"
#include "rt/lco.hpp"
#include "sim/time.hpp"
#include "util/buffer.hpp"

namespace nvgas::gas {
class GasBase;  // installed by core::World
}

namespace nvgas::rt {

class Runtime;

class Context {
 public:
  Context(Runtime& rt, int node) : runtime_(&rt), node_(node) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] int rank() const { return node_; }
  [[nodiscard]] int ranks() const;
  [[nodiscard]] Runtime& runtime() { return *runtime_; }

  // --- simulated-cost accounting (valid only inside a fiber segment) ----
  void charge(sim::Time ns);
  [[nodiscard]] sim::Time now() const;

  // --- parcels -----------------------------------------------------------
  // Fire-and-forget active message. Charges the descriptor-post cost.
  void send(int dst, ActionId action, util::Buffer args = {});

  // --- fiber spawning ----------------------------------------------------
  void spawn(int node, std::function<Fiber(Context&)> fn);

  // --- LCOs --------------------------------------------------------------
  // Register `lco` for remote setting; returns a shippable reference.
  LcoRef make_ref(LcoBase& lco);
  // Unregister a node-local reference (after the LCO's last use; the
  // registry stores raw pointers, so short-lived LCOs must deregister).
  void release_ref(LcoRef ref);
  // Contribute to a (possibly remote) LCO; `value` layout is LCO-specific.
  void set_lco(LcoRef ref, util::Buffer value = {});

  // --- time --------------------------------------------------------------
  [[nodiscard]] auto sleep(sim::Time ns) {
    struct Awaiter {
      Context& ctx;
      sim::Time wake;
      [[nodiscard]] bool await_ready() const { return false; }
      void await_suspend(Fiber::Handle h) const {
        detail::resume_fiber_at(*h.promise().runtime, h.promise().node, h, wake);
      }
      void await_resume() const {}
    };
    return Awaiter{*this, now() + ns};
  }

  // GAS extension hook, owned by core::World.
  gas::GasBase* gas = nullptr;

 private:
  Runtime* runtime_;
  int node_;
};

namespace detail {
inline Runtime& runtime_of(Context& ctx) { return ctx.runtime(); }
inline int node_of(Context& ctx) { return ctx.rank(); }
}  // namespace detail

}  // namespace nvgas::rt
