// Runtime-software cost parameters (CPU nanoseconds charged by the
// message-driven runtime itself, on top of the hardware model).
#pragma once

#include "sim/time.hpp"

namespace nvgas::rt {

struct RtCosts {
  sim::Time action_dispatch_ns = 150;  // decode parcel, look up action
  sim::Time fiber_resume_ns = 80;      // scheduler wakeup of a suspended fiber
  sim::Time lco_set_ns = 30;           // LCO state transition
  sim::Time spawn_ns = 100;            // create a new fiber/task
};

}  // namespace nvgas::rt
