// Fiber: the coroutine type for runtime actions and spawned tasks.
//
// A fiber is a fire-and-forget C++20 coroutine pinned to one simulated
// node. It starts eagerly inside the CPU task that created it (so its
// first segment is accounted to that task) and suspends by awaiting LCOs
// or network completions; each resumption is a fresh CPU task on its
// node, giving correct simulated-time accounting across suspension
// points.
//
// Convention: every fiber function takes `Context&` as its first
// parameter (after the closure object, for lambdas). The promise
// constructor harvests the node and runtime from it.
#pragma once

#include <coroutine>

#include "util/assert.hpp"

namespace nvgas::rt {

class Runtime;
class Context;

namespace detail {
// Defined in context.hpp to avoid a cycle.
Runtime& runtime_of(Context& ctx);
int node_of(Context& ctx);
// Defined in runtime.cpp: closure-retention handshake (see below).
std::uint64_t take_pending_spawn_slot(Runtime& rt, int node);
void fiber_finished(Runtime& rt, int node, std::uint64_t slot);
}  // namespace detail

class Fiber {
 public:
  struct promise_type {
    Runtime* runtime = nullptr;
    int node = -1;
    // Nonzero when this fiber was started through Runtime::spawn*: the id
    // of the runtime-retained closure that owns the lambda's captures.
    // A capturing lambda coroutine does NOT copy its closure into the
    // coroutine frame — the frame references the closure object — so the
    // runtime must keep that object alive until the fiber completes. The
    // promise destructor (which runs exactly at fiber completion)
    // releases it.
    std::uint64_t spawn_slot = 0;

    // Free-function fibers: Fiber f(Context& ctx, ...).
    template <typename... Rest>
    explicit promise_type(Context& ctx, Rest&&...)
        : runtime(&detail::runtime_of(ctx)), node(detail::node_of(ctx)) {
      spawn_slot = detail::take_pending_spawn_slot(*runtime, node);
    }

    // Lambdas / member functions: the object parameter comes first.
    template <typename Obj, typename... Rest>
    promise_type(Obj&&, Context& ctx, Rest&&...)
        : runtime(&detail::runtime_of(ctx)), node(detail::node_of(ctx)) {
      spawn_slot = detail::take_pending_spawn_slot(*runtime, node);
    }

    promise_type(const promise_type&) = delete;
    promise_type& operator=(const promise_type&) = delete;

    ~promise_type() {
      if (runtime != nullptr && spawn_slot != 0) {
        detail::fiber_finished(*runtime, node, spawn_slot);
      }
    }

    Fiber get_return_object() { return Fiber{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {
      ::nvgas::util::panic(__FILE__, __LINE__, "unhandled exception in fiber");
    }
  };

  using Handle = std::coroutine_handle<promise_type>;
};

}  // namespace nvgas::rt
