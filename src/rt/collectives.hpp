// SPMD collectives built on parcels + LCOs.
//
// Two algorithms, selectable at construction:
//
//   * kFlat — root-counted: every rank reports to rank 0, which releases
//     everyone. O(P) messages *at the root* — its rx port and CPU
//     serialize the fan-in, a real effect worth modelling.
//   * kTree — binomial tree: contributions combine up the tree
//     (parent(r) clears r's lowest set bit), releases flow back down.
//     O(log P) depth, O(1) fan-in per node.
//
// Calls must be made SPMD: every rank performs the same sequence of
// collective calls.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rt/context.hpp"
#include "rt/lco.hpp"
#include "rt/runtime.hpp"

namespace nvgas::rt {

enum class CollAlgo : std::uint8_t { kFlat = 0, kTree = 1 };

[[nodiscard]] constexpr const char* to_string(CollAlgo a) {
  return a == CollAlgo::kFlat ? "flat" : "tree";
}

class Collectives {
 public:
  explicit Collectives(Runtime& rt, CollAlgo algo = CollAlgo::kFlat);
  Collectives(const Collectives&) = delete;
  Collectives& operator=(const Collectives&) = delete;

  [[nodiscard]] CollAlgo algo() const { return algo_; }

  // Usage: co_await coll.barrier(ctx);
  [[nodiscard]] Event& barrier(Context& ctx);

  // Global sum; every rank receives the total.
  // Usage: double total = co_await coll.allreduce_sum(ctx, value);
  [[nodiscard]] Future<double>& allreduce_sum(Context& ctx, double value);

  // Root (rank 0) supplies `value`; everyone receives it. Non-root ranks'
  // `value` is ignored.
  [[nodiscard]] Future<std::uint64_t>& broadcast(Context& ctx, std::uint64_t value);

  // Binomial-tree helpers (public for tests).
  [[nodiscard]] static int tree_parent(int rank) { return rank & (rank - 1); }
  [[nodiscard]] static std::vector<int> tree_children(int rank, int ranks);

 private:
  struct BarrierGen {
    int arrived = 0;
  };
  struct ReduceGen {
    int arrived = 0;
    double acc = 0.0;
  };
  // Tree state at each node for one generation: contributions expected
  // from children plus self.
  struct TreeGen {
    int remaining = -1;  // initialized lazily to children+1
    double acc = 0.0;
  };

  struct NodeState {
    std::uint64_t next_barrier_gen = 0;
    std::uint64_t next_reduce_gen = 0;
    std::uint64_t next_bcast_gen = 0;
    // LCO storage: kept alive for the life of the Collectives object (the
    // count is bounded by the number of collective calls).
    // simlint:allow(D1: keyed by generation, find only, never iterated)
    std::unordered_map<std::uint64_t, std::unique_ptr<Event>> barrier_events;
    // simlint:allow(D1: keyed by generation, find only, never iterated)
    std::unordered_map<std::uint64_t, std::unique_ptr<Future<double>>> reduce_futures;
    // simlint:allow(D1: keyed by generation, find only, never iterated)
    std::unordered_map<std::uint64_t, std::unique_ptr<Future<std::uint64_t>>> bcast_futures;
    // Tree progress (barrier and reduce share the structure).
    // simlint:allow(D1: keyed by generation, find/erase only, never iterated)
    std::unordered_map<std::uint64_t, TreeGen> tree_barrier;
    // simlint:allow(D1: keyed by generation, find/erase only, never iterated)
    std::unordered_map<std::uint64_t, TreeGen> tree_reduce;
  };

  Event& barrier_event(int node, std::uint64_t gen);
  Future<double>& reduce_future(int node, std::uint64_t gen);
  Future<std::uint64_t>& bcast_future(int node, std::uint64_t gen);

  // Tree machinery: account one contribution at `node`; when complete,
  // send up or (at the root) start the downward release.
  void tree_barrier_contribute(Context& c, std::uint64_t gen);
  void tree_reduce_contribute(Context& c, std::uint64_t gen, double value);
  void tree_release_barrier(Context& c, std::uint64_t gen);
  void tree_release_reduce(Context& c, std::uint64_t gen, double total);
  void tree_release_bcast(Context& c, std::uint64_t gen, std::uint64_t value);

  Runtime& rt_;
  CollAlgo algo_;
  std::vector<NodeState> nodes_;
  // Root-side progress for the flat algorithm, keyed by generation.
  // simlint:allow(D1: keyed by generation, find/erase only, never iterated)
  std::unordered_map<std::uint64_t, BarrierGen> barrier_progress_;
  // simlint:allow(D1: keyed by generation, find/erase only, never iterated)
  std::unordered_map<std::uint64_t, ReduceGen> reduce_progress_;

  ActionId barrier_arrive_ = kInvalidAction;
  ActionId barrier_release_ = kInvalidAction;
  ActionId reduce_arrive_ = kInvalidAction;
  ActionId reduce_release_ = kInvalidAction;
  ActionId bcast_deliver_ = kInvalidAction;
  // Tree actions.
  ActionId tree_barrier_up_ = kInvalidAction;
  ActionId tree_barrier_down_ = kInvalidAction;
  ActionId tree_reduce_up_ = kInvalidAction;
  ActionId tree_reduce_down_ = kInvalidAction;
  ActionId tree_bcast_down_ = kInvalidAction;
};

}  // namespace nvgas::rt
