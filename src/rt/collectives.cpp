#include "rt/collectives.hpp"

namespace nvgas::rt {

std::vector<int> Collectives::tree_children(int rank, int ranks) {
  std::vector<int> out;
  // Children of r are r | 2^k for 2^k below r's lowest set bit (any k for
  // the root), while in range.
  const int limit = rank == 0 ? ranks : (rank & -rank);
  for (int bit = 1; bit < limit; bit <<= 1) {
    const int child = rank | bit;
    if (child < ranks && child != rank) out.push_back(child);
  }
  return out;
}

Collectives::Collectives(Runtime& rt, CollAlgo algo) : rt_(rt), algo_(algo) {
  // protolint:allow(P4: world-level array of per-rank collective slots; tree algorithms already bound fan-in, root aggregation is ROADMAP item 2)
  nodes_.resize(static_cast<std::size_t>(rt.nodes()));
  auto& reg = rt_.actions();
  const int ranks = rt_.nodes();

  // --- flat algorithm -------------------------------------------------------
  barrier_release_ = register_action<std::uint64_t>(
      reg, "nvgas.coll.barrier_release",
      [this](Context& c, int, std::uint64_t gen) {
        barrier_event(c.rank(), gen).set(c.now());
      });

  barrier_arrive_ = register_action<std::uint64_t>(
      reg, "nvgas.coll.barrier_arrive",
      [this, ranks](Context& c, int, std::uint64_t gen) {
        auto& prog = barrier_progress_[gen];
        if (++prog.arrived == ranks) {
          barrier_progress_.erase(gen);
          for (int dst = 0; dst < ranks; ++dst) {
            c.send(dst, barrier_release_, pack_args(gen));
          }
        }
      });

  reduce_release_ = register_action<std::uint64_t, double>(
      reg, "nvgas.coll.reduce_release",
      [this](Context& c, int, std::uint64_t gen, double total) {
        reduce_future(c.rank(), gen).set(c.now(), total);
      });

  reduce_arrive_ = register_action<std::uint64_t, double>(
      reg, "nvgas.coll.reduce_arrive",
      [this, ranks](Context& c, int, std::uint64_t gen, double value) {
        auto& prog = reduce_progress_[gen];
        prog.acc += value;
        if (++prog.arrived == ranks) {
          const double total = prog.acc;
          reduce_progress_.erase(gen);
          for (int dst = 0; dst < ranks; ++dst) {
            c.send(dst, reduce_release_, pack_args(gen, total));
          }
        }
      });

  bcast_deliver_ = register_action<std::uint64_t, std::uint64_t>(
      reg, "nvgas.coll.bcast_deliver",
      [this](Context& c, int, std::uint64_t gen, std::uint64_t value) {
        bcast_future(c.rank(), gen).set(c.now(), value);
      });

  // --- binomial tree ---------------------------------------------------------
  tree_barrier_up_ = register_action<std::uint64_t>(
      reg, "nvgas.coll.tree_barrier_up",
      [this](Context& c, int, std::uint64_t gen) {
        tree_barrier_contribute(c, gen);
      });

  tree_barrier_down_ = register_action<std::uint64_t>(
      reg, "nvgas.coll.tree_barrier_down",
      [this](Context& c, int, std::uint64_t gen) {
        tree_release_barrier(c, gen);
      });

  tree_reduce_up_ = register_action<std::uint64_t, double>(
      reg, "nvgas.coll.tree_reduce_up",
      [this](Context& c, int, std::uint64_t gen, double value) {
        tree_reduce_contribute(c, gen, value);
      });

  tree_reduce_down_ = register_action<std::uint64_t, double>(
      reg, "nvgas.coll.tree_reduce_down",
      [this](Context& c, int, std::uint64_t gen, double total) {
        tree_release_reduce(c, gen, total);
      });

  tree_bcast_down_ = register_action<std::uint64_t, std::uint64_t>(
      reg, "nvgas.coll.tree_bcast_down",
      [this](Context& c, int, std::uint64_t gen, std::uint64_t value) {
        tree_release_bcast(c, gen, value);
      });
}

// --- LCO slots --------------------------------------------------------------

Event& Collectives::barrier_event(int node, std::uint64_t gen) {
  auto& st = nodes_.at(static_cast<std::size_t>(node));
  auto& slot = st.barrier_events[gen];
  if (!slot) slot = std::make_unique<Event>();
  return *slot;
}

Future<double>& Collectives::reduce_future(int node, std::uint64_t gen) {
  auto& st = nodes_.at(static_cast<std::size_t>(node));
  auto& slot = st.reduce_futures[gen];
  if (!slot) slot = std::make_unique<Future<double>>();
  return *slot;
}

Future<std::uint64_t>& Collectives::bcast_future(int node, std::uint64_t gen) {
  auto& st = nodes_.at(static_cast<std::size_t>(node));
  auto& slot = st.bcast_futures[gen];
  if (!slot) slot = std::make_unique<Future<std::uint64_t>>();
  return *slot;
}

// --- tree machinery ---------------------------------------------------------

void Collectives::tree_barrier_contribute(Context& c, std::uint64_t gen) {
  auto& st = nodes_.at(static_cast<std::size_t>(c.rank()));
  auto& tg = st.tree_barrier[gen];
  if (tg.remaining < 0) {
    tg.remaining =
        static_cast<int>(tree_children(c.rank(), rt_.nodes()).size()) + 1;
  }
  if (--tg.remaining > 0) return;
  st.tree_barrier.erase(gen);
  if (c.rank() == 0) {
    tree_release_barrier(c, gen);
  } else {
    c.send(tree_parent(c.rank()), tree_barrier_up_, pack_args(gen));
  }
}

void Collectives::tree_release_barrier(Context& c, std::uint64_t gen) {
  for (int child : tree_children(c.rank(), rt_.nodes())) {
    c.send(child, tree_barrier_down_, pack_args(gen));
  }
  barrier_event(c.rank(), gen).set(c.now());
}

void Collectives::tree_reduce_contribute(Context& c, std::uint64_t gen,
                                         double value) {
  auto& st = nodes_.at(static_cast<std::size_t>(c.rank()));
  auto& tg = st.tree_reduce[gen];
  if (tg.remaining < 0) {
    tg.remaining =
        static_cast<int>(tree_children(c.rank(), rt_.nodes()).size()) + 1;
  }
  tg.acc += value;
  if (--tg.remaining > 0) return;
  const double partial = tg.acc;
  st.tree_reduce.erase(gen);
  if (c.rank() == 0) {
    tree_release_reduce(c, gen, partial);
  } else {
    c.send(tree_parent(c.rank()), tree_reduce_up_, pack_args(gen, partial));
  }
}

void Collectives::tree_release_reduce(Context& c, std::uint64_t gen,
                                      double total) {
  for (int child : tree_children(c.rank(), rt_.nodes())) {
    c.send(child, tree_reduce_down_, pack_args(gen, total));
  }
  reduce_future(c.rank(), gen).set(c.now(), total);
}

void Collectives::tree_release_bcast(Context& c, std::uint64_t gen,
                                     std::uint64_t value) {
  for (int child : tree_children(c.rank(), rt_.nodes())) {
    c.send(child, tree_bcast_down_, pack_args(gen, value));
  }
  bcast_future(c.rank(), gen).set(c.now(), value);
}

// --- public API -------------------------------------------------------------

Event& Collectives::barrier(Context& ctx) {
  auto& st = nodes_.at(static_cast<std::size_t>(ctx.rank()));
  const std::uint64_t gen = st.next_barrier_gen++;
  Event& ev = barrier_event(ctx.rank(), gen);
  if (algo_ == CollAlgo::kFlat) {
    ctx.send(0, barrier_arrive_, pack_args(gen));
  } else {
    tree_barrier_contribute(ctx, gen);
  }
  return ev;
}

Future<double>& Collectives::allreduce_sum(Context& ctx, double value) {
  auto& st = nodes_.at(static_cast<std::size_t>(ctx.rank()));
  const std::uint64_t gen = st.next_reduce_gen++;
  Future<double>& fut = reduce_future(ctx.rank(), gen);
  if (algo_ == CollAlgo::kFlat) {
    ctx.send(0, reduce_arrive_, pack_args(gen, value));
  } else {
    tree_reduce_contribute(ctx, gen, value);
  }
  return fut;
}

Future<std::uint64_t>& Collectives::broadcast(Context& ctx, std::uint64_t value) {
  auto& st = nodes_.at(static_cast<std::size_t>(ctx.rank()));
  const std::uint64_t gen = st.next_bcast_gen++;
  Future<std::uint64_t>& fut = bcast_future(ctx.rank(), gen);
  if (ctx.rank() == 0) {
    if (algo_ == CollAlgo::kFlat) {
      for (int dst = 0; dst < rt_.nodes(); ++dst) {
        ctx.send(dst, bcast_deliver_, pack_args(gen, value));
      }
    } else {
      tree_release_bcast(ctx, gen, value);
    }
  }
  return fut;
}

}  // namespace nvgas::rt
