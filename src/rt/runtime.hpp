// Runtime: the message-driven runtime tying parcels, actions, fibers and
// LCOs to the simulated cluster.
//
// One Runtime spans all simulated nodes (it is the distributed runtime
// instance, not a per-node object). Per-node state — Context, LCO
// registry — lives in NodeState.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hpp"
#include "rt/action.hpp"
#include "rt/context.hpp"
#include "rt/costs.hpp"
#include "rt/fiber.hpp"
#include "rt/lco.hpp"
#include "sim/fabric.hpp"

namespace nvgas::rt {

class Runtime {
 public:
  Runtime(sim::Fabric& fabric, net::EndpointGroup& endpoints,
          RtCosts costs = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] net::EndpointGroup& endpoints() { return *endpoints_; }
  [[nodiscard]] const RtCosts& costs() const { return costs_; }
  [[nodiscard]] ActionRegistry& actions() { return actions_; }
  [[nodiscard]] int nodes() const { return fabric_->nodes(); }
  [[nodiscard]] Context& ctx(int node) {
    return *states_.at(static_cast<std::size_t>(node)).ctx;
  }

  // Spawn a fiber on `node`, starting no earlier than `not_before`.
  void spawn_at(int node, sim::Time not_before, std::function<Fiber(Context&)> fn);
  void spawn(int node, std::function<Fiber(Context&)> fn) { spawn_at(node, 0, fn); }

  // Send a parcel [action|args] from `src` departing at `depart`.
  void send_parcel_at(int src, sim::Time depart, int dst, ActionId action,
                      util::Buffer args);

  // Run an action handler as a fresh CPU task on `node` (used by
  // software-forwarding layers such as the GAS apply trampoline).
  void invoke_action_at(int node, sim::Time t, ActionId action, int src,
                        util::Buffer args);

  // The GAS layer's apply trampoline (registered by core::World; invalid
  // until then).
  [[nodiscard]] ActionId apply_action() const { return apply_action_; }
  void set_apply_action(ActionId id) { apply_action_ = id; }

  // --- LCO registry -------------------------------------------------------
  LcoRef register_lco(int node, LcoBase& lco);

  // Ledger-style set: trigger a registered LCO at time `t` directly from
  // network/NIC context (no CPU task; waiters still resume as CPU tasks).
  // Models Photon's remote-completion ledger delivery.
  void ledger_set(LcoRef ref, sim::Time t);
  [[nodiscard]] LcoBase* find_lco(int node, std::uint64_t id);
  void release_lco(int node, std::uint64_t id);

  // Built-in action used by Context::set_lco for remote contributions.
  [[nodiscard]] ActionId lco_set_action() const { return lco_set_action_; }

  // --- fiber scheduling internals ----------------------------------------
  void resume_fiber_at(int node, Fiber::Handle h, sim::Time not_before);
  // The TaskCtx currently executing on `node` (null outside a task
  // segment). Per-node so concurrent shards never share a slot.
  [[nodiscard]] sim::TaskCtx* current_task(int node) const {
    return states_.at(static_cast<std::size_t>(node)).current;
  }

  // Closure-retention handshake with Fiber::promise_type (internal; see
  // the promise docs in fiber.hpp). unique_ptr keeps each std::function at
  // a stable address across map growth; reclamation is deferred to an
  // engine event on the fiber's own lane so a synchronously completing
  // fiber never destroys the closure it is running in.
  std::uint64_t take_pending_spawn_slot(int node) {
    auto& st = states_.at(static_cast<std::size_t>(node));
    const auto slot = st.pending_spawn_slot;
    st.pending_spawn_slot = 0;
    return slot;
  }
  void fiber_finished(int node, std::uint64_t slot);

  // Spawned fibers that have not yet completed. Zero after a full drain
  // means every spawned fiber ran to completion (deadlock detector).
  // Host-context only: sums per-node state across all lanes.
  [[nodiscard]] std::size_t live_fibers() const {
    std::size_t n = 0;
    for (const NodeState& st : states_) n += st.spawned.size();
    return n;
  }

 private:
  friend class Context;
  friend class CurrentTaskScope;

  void set_current(int node, sim::TaskCtx* task) {
    states_.at(static_cast<std::size_t>(node)).current = task;
  }
  void dispatch(int node, sim::TaskCtx& tctx, int src, util::Buffer payload);

  // True when the caller is executing on a shard other than `node`'s:
  // the operation must hop to `node`'s lane via Engine::post before it
  // may touch that node's state. Always false on the classic engine.
  [[nodiscard]] bool needs_route(int node) const;

  struct NodeState {
    std::unique_ptr<Context> ctx;
    // simlint:allow(D1: keyed by LCO id, find/erase only, never iterated)
    std::unordered_map<std::uint64_t, LcoBase*> lcos;
    std::uint64_t next_lco_id = 1;
    // Fiber machinery, touched only from this node's lane.
    sim::TaskCtx* current = nullptr;
    // simlint:allow(D1: keyed by spawn slot, find/erase only, never iterated)
    std::unordered_map<std::uint64_t,
                       std::unique_ptr<std::function<Fiber(Context&)>>>
        spawned;
    std::uint64_t next_spawn_slot = 1;
    std::uint64_t pending_spawn_slot = 0;
  };

  sim::Fabric* fabric_;
  net::EndpointGroup* endpoints_;
  RtCosts costs_;
  ActionRegistry actions_;
  std::vector<NodeState> states_;
  ActionId lco_set_action_ = kInvalidAction;
  ActionId apply_action_ = kInvalidAction;
};

// Install `task` as the current TaskCtx of its node for the duration of
// a scope (the node comes from the task's CPU, so the slot is always the
// one the executing lane owns).
class CurrentTaskScope {
 public:
  CurrentTaskScope(Runtime& rt, sim::TaskCtx& task);
  ~CurrentTaskScope();
  CurrentTaskScope(const CurrentTaskScope&) = delete;
  CurrentTaskScope& operator=(const CurrentTaskScope&) = delete;

 private:
  Runtime& rt_;
  int node_;
  sim::TaskCtx* prev_;
};

}  // namespace nvgas::rt
