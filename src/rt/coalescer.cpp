#include "rt/coalescer.hpp"

namespace nvgas::rt {

Coalescer::Coalescer(Runtime& rt, CoalescerConfig config)
    : rt_(rt), config_(config) {
  // protolint:allow(P4: dense per-(src,dst) coalescing slots, O(P^2) for the whole world; ROADMAP item 2 pools slots over active destinations)
  slots_.resize(static_cast<std::size_t>(rt.nodes()) *
                static_cast<std::size_t>(rt.nodes()));

  // Receiver side: unpack and dispatch each message in the batch. One
  // parcel's o_recv+dispatch has already been charged by the parcel path;
  // each inner message still pays the per-action dispatch.
  batch_action_ = rt_.actions().add(
      "nvgas.coalesce.batch",
      [this](Context& c, int src, util::Buffer payload) {
        auto r = payload.reader();
        const auto count = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto action = r.get<ActionId>();
          const auto len = r.get<std::uint32_t>();
          util::Buffer args;
          args.append_raw(r.rest().subspan(0, len));
          r.skip(len);
          c.charge(rt_.costs().action_dispatch_ns);
          rt_.actions().handler(action)(c, src, std::move(args));
        }
      });
}

void Coalescer::send(Context& ctx, int dst, ActionId action,
                     util::Buffer args) {
  Slot& s = slot(ctx.rank(), dst);
  if (s.count == 0) {
    s.buf.clear();
    s.buf.put<std::uint32_t>(0);  // count placeholder — rewritten at ship
    arm_timer(ctx.rank(), dst, s.epoch);
  }
  s.buf.put<ActionId>(action);
  s.buf.put<std::uint32_t>(static_cast<std::uint32_t>(args.size()));
  s.buf.append_raw(args.bytes());
  ++s.count;
  ++messages_coalesced_;
  // Tiny buffering cost per message (append to a pinned buffer).
  ctx.charge(15);

  if (s.buf.size() >= config_.max_batch_bytes ||
      s.count >= config_.max_messages) {
    ship(ctx, dst, s);
  }
}

void Coalescer::ship(Context& ctx, int dst, Slot& s) {
  if (s.count == 0) return;
  // Rewrite the count header.
  util::Buffer payload;
  payload.put<std::uint32_t>(s.count);
  payload.append_raw(s.buf.bytes().subspan(sizeof(std::uint32_t)));
  s.buf.clear();
  s.count = 0;
  ++s.epoch;  // kill the pending timer
  ++batches_sent_;
  ctx.send(dst, batch_action_, std::move(payload));
}

void Coalescer::flush(Context& ctx, int dst) {
  ship(ctx, dst, slot(ctx.rank(), dst));
}

void Coalescer::flush_all(Context& ctx) {
  for (int dst = 0; dst < rt_.nodes(); ++dst) {
    flush(ctx, dst);
  }
}

void Coalescer::arm_timer(int src, int dst, std::uint64_t epoch) {
  rt_.fabric().cpu(src).submit_at(
      rt_.fabric().engine().now() + config_.max_delay_ns,
      [this, src, dst, epoch](sim::TaskCtx& task) {
        Slot& s = slot(src, dst);
        if (s.epoch != epoch || s.count == 0) return;  // already shipped
        CurrentTaskScope scope(rt_, task);
        ship(rt_.ctx(src), dst, s);
      });
}

}  // namespace nvgas::rt
