// Action registry: the runtime's table of remotely-invokable handlers.
//
// A parcel names an action by id; the destination node's dispatch loop
// decodes the id and invokes the handler as a CPU task. Handlers may be
// plain functions or coroutine fibers (the returned Fiber is
// fire-and-forget).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"
#include "util/buffer.hpp"

namespace nvgas::rt {

class Context;

using ActionId = std::uint32_t;
inline constexpr ActionId kInvalidAction = 0;

// Raw handler: owns its decoded payload.
using ActionHandler = std::function<void(Context&, int src, util::Buffer args)>;

class ActionRegistry {
 public:
  ActionRegistry() {
    // Slot 0 stays empty so that id 0 means "no action".
    names_.emplace_back("<invalid>");
    handlers_.emplace_back(nullptr);
  }

  ActionId add(std::string name, ActionHandler fn) {
    NVGAS_CHECK(fn != nullptr);
    const auto id = static_cast<ActionId>(handlers_.size());
    names_.push_back(std::move(name));
    handlers_.push_back(std::move(fn));
    return id;
  }

  [[nodiscard]] const ActionHandler& handler(ActionId id) const {
    NVGAS_CHECK_MSG(id != kInvalidAction && id < handlers_.size(),
                    "unknown action id");
    return handlers_[id];
  }

  [[nodiscard]] const std::string& name(ActionId id) const {
    NVGAS_CHECK(id < names_.size());
    return names_[id];
  }

  [[nodiscard]] std::size_t size() const { return handlers_.size() - 1; }

 private:
  std::vector<std::string> names_;
  std::vector<ActionHandler> handlers_;
};

// Serialize a typed argument pack into a parcel payload.
template <typename... Args>
util::Buffer pack_args(const Args&... args) {
  util::Buffer buf;
  (buf.put(args), ...);
  return buf;
}

// Register a typed action. `fn` is invoked as fn(ctx, src, args...); the
// argument types are given explicitly and must be trivially copyable.
// Braced init of the tuple guarantees left-to-right decode order.
template <typename... Args, typename F>
ActionId register_action(ActionRegistry& registry, std::string name, F fn) {
  static_assert((std::is_trivially_copyable_v<std::decay_t<Args>> && ...),
                "typed action arguments must be trivially copyable");
  return registry.add(
      std::move(name),
      [fn = std::move(fn)](Context& ctx, int src, util::Buffer args) {
        auto r = args.reader();
        std::tuple<std::decay_t<Args>...> values{r.get<std::decay_t<Args>>()...};
        std::apply([&](auto&... a) { fn(ctx, src, a...); }, values);
      });
}

}  // namespace nvgas::rt
