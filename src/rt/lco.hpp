// Local Control Objects (LCOs): the synchronization primitives of the
// message-driven runtime (HPX-5 vocabulary).
//
// An LCO lives on one node. Fibers `co_await` it; setting it resumes the
// waiters as CPU tasks at the set time. Remote nodes contribute through
// the runtime's built-in lco-set action (see Runtime::lco_ref /
// Context::set_remote).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/fiber.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/buffer.hpp"

namespace nvgas::rt {

class Runtime;

namespace detail {
// Defined in runtime.cpp; kept free so LCO templates stay header-only
// without needing Runtime's definition.
void resume_fiber_at(Runtime& rt, int node, Fiber::Handle h, sim::Time t);
void run_event_at(Runtime& rt, sim::Time t, std::function<void(sim::Time)> fn);
}  // namespace detail

// Reference to an LCO registered with its node's runtime, shippable in
// parcels.
struct LcoRef {
  int node = -1;
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return node >= 0 && id != 0; }
};

class LcoBase {
 public:
  LcoBase() = default;
  LcoBase(const LcoBase&) = delete;
  LcoBase& operator=(const LcoBase&) = delete;
  virtual ~LcoBase() = default;

  [[nodiscard]] bool triggered() const { return triggered_; }
  [[nodiscard]] sim::Time trigger_time() const { return trigger_time_; }

  void add_waiter(Fiber::Handle h) {
    NVGAS_CHECK_MSG(!triggered_, "awaiting an already-triggered LCO");
    waiters_.push_back(h);
  }

  // Callback on trigger; runs as an engine event at the trigger time. If
  // already triggered, runs at the recorded trigger time's past — i.e.
  // immediately, with that timestamp.
  void on_trigger(Runtime& rt, std::function<void(sim::Time)> fn) {
    if (triggered_) {
      fn(trigger_time_);
      return;
    }
    runtime_for_callbacks_ = &rt;
    callbacks_.push_back(std::move(fn));
  }

  // Remote contribution entry point, driven by the built-in lco-set
  // action. Payload semantics are LCO-type-specific.
  virtual void remote_contribute(sim::Time t, util::Buffer::Reader& r) = 0;

 protected:
  void fire(sim::Time t) {
    NVGAS_CHECK_MSG(!triggered_, "LCO fired twice");
    triggered_ = true;
    trigger_time_ = t;
    // Detach ALL state before resuming anyone: a resumed fiber may run
    // inline (the CPU model executes same-time tasks synchronously when a
    // worker is free), and it may destroy this LCO and construct a new
    // one at the same address — so `this` must not be touched after the
    // first resume, and clearing members afterwards would corrupt the
    // successor object.
    std::vector<Fiber::Handle> waiters = std::move(waiters_);
    waiters_.clear();
    std::vector<std::function<void(sim::Time)>> callbacks = std::move(callbacks_);
    callbacks_.clear();
    Runtime* cb_runtime = runtime_for_callbacks_;
    for (auto h : waiters) {
      auto& p = h.promise();
      detail::resume_fiber_at(*p.runtime, p.node, h, t);
    }
    for (auto& cb : callbacks) {
      NVGAS_CHECK(cb_runtime != nullptr);
      detail::run_event_at(*cb_runtime, t, std::move(cb));
    }
  }

 private:
  bool triggered_ = false;
  sim::Time trigger_time_ = 0;
  std::vector<Fiber::Handle> waiters_;
  std::vector<std::function<void(sim::Time)>> callbacks_;
  Runtime* runtime_for_callbacks_ = nullptr;
};

// ---------------------------------------------------------------------------
// Event: a void future. Set once; all waiters resume.
// ---------------------------------------------------------------------------
class Event : public LcoBase {
 public:
  void set(sim::Time t) { fire(t); }

  void remote_contribute(sim::Time t, util::Buffer::Reader&) override { set(t); }

  [[nodiscard]] auto operator co_await() {
    struct Awaiter {
      Event& ev;
      [[nodiscard]] bool await_ready() const { return ev.triggered(); }
      void await_suspend(Fiber::Handle h) { ev.add_waiter(h); }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }
};

// ---------------------------------------------------------------------------
// Future<T>: a single-assignment value.
// ---------------------------------------------------------------------------
template <typename T>
class Future : public LcoBase {
 public:
  void set(sim::Time t, T value) {
    value_ = std::move(value);
    fire(t);
  }

  [[nodiscard]] const T& value() const {
    NVGAS_CHECK_MSG(triggered(), "reading an unset future");
    return value_;
  }

  void remote_contribute(sim::Time t, util::Buffer::Reader& r) override {
    if constexpr (std::is_trivially_copyable_v<T>) {
      set(t, r.get<T>());
    } else {
      NVGAS_CHECK_MSG(false, "remote set of non-trivial future");
    }
  }

  [[nodiscard]] auto operator co_await() {
    struct Awaiter {
      Future& fut;
      [[nodiscard]] bool await_ready() const { return fut.triggered(); }
      void await_suspend(Fiber::Handle h) { fut.add_waiter(h); }
      [[nodiscard]] T await_resume() const { return fut.value(); }
    };
    return Awaiter{*this};
  }

 private:
  T value_{};
};

// ---------------------------------------------------------------------------
// AndGate: triggers after N arrivals (HPX "and" LCO).
// ---------------------------------------------------------------------------
class AndGate : public LcoBase {
 public:
  explicit AndGate(std::uint64_t inputs) : remaining_(inputs) {
    NVGAS_CHECK(inputs > 0);
  }

  void arrive(sim::Time t) {
    NVGAS_CHECK_MSG(remaining_ > 0, "AndGate over-arrived");
    if (--remaining_ == 0) fire(t);
  }

  [[nodiscard]] std::uint64_t remaining() const { return remaining_; }

  void remote_contribute(sim::Time t, util::Buffer::Reader&) override { arrive(t); }

  [[nodiscard]] auto operator co_await() {
    struct Awaiter {
      AndGate& gate;
      [[nodiscard]] bool await_ready() const { return gate.triggered(); }
      void await_suspend(Fiber::Handle h) { gate.add_waiter(h); }
      void await_resume() const {}
    };
    return Awaiter{*this};
  }

 private:
  std::uint64_t remaining_;
};

// ---------------------------------------------------------------------------
// ReduceLco<T>: N contributions combined with a binary op; the reduced
// value becomes readable when all contributions arrive.
// ---------------------------------------------------------------------------
template <typename T>
class ReduceLco : public LcoBase {
 public:
  using Op = std::function<T(const T&, const T&)>;

  ReduceLco(std::uint64_t inputs, T init, Op op)
      : remaining_(inputs), acc_(std::move(init)), op_(std::move(op)) {
    NVGAS_CHECK(inputs > 0);
  }

  void contribute(sim::Time t, const T& value) {
    NVGAS_CHECK_MSG(remaining_ > 0, "ReduceLco over-contributed");
    acc_ = op_(acc_, value);
    if (--remaining_ == 0) fire(t);
  }

  [[nodiscard]] const T& value() const {
    NVGAS_CHECK_MSG(triggered(), "reading an incomplete reduction");
    return acc_;
  }

  void remote_contribute(sim::Time t, util::Buffer::Reader& r) override {
    static_assert(std::is_trivially_copyable_v<T>);
    contribute(t, r.get<T>());
  }

  [[nodiscard]] auto operator co_await() {
    struct Awaiter {
      ReduceLco& red;
      [[nodiscard]] bool await_ready() const { return red.triggered(); }
      void await_suspend(Fiber::Handle h) { red.add_waiter(h); }
      [[nodiscard]] T await_resume() const { return red.value(); }
    };
    return Awaiter{*this};
  }

 private:
  std::uint64_t remaining_;
  T acc_;
  Op op_;
};

}  // namespace nvgas::rt
