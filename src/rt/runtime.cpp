#include "rt/runtime.hpp"

#include <utility>

namespace nvgas::rt {

CurrentTaskScope::CurrentTaskScope(Runtime& rt, sim::TaskCtx& task)
    : rt_(rt),
      node_(task.cpu().node()),
      prev_(rt.current_task(task.cpu().node())) {
  rt_.set_current(node_, &task);
}
CurrentTaskScope::~CurrentTaskScope() { rt_.set_current(node_, prev_); }

bool Runtime::needs_route(int node) const {
  // Adopted (quiesced setup/teardown) contexts reach any node's state
  // directly, like host context — Cpu::submit re-adopts the target lane.
  auto& engine = fabric_->engine();
  return engine.sharded() && engine.on_shard_context() &&
         !engine.on_adopted_context() &&
         engine.current_shard(0) != static_cast<std::uint32_t>(node);
}

Runtime::Runtime(sim::Fabric& fabric, net::EndpointGroup& endpoints,
                 RtCosts costs)
    : fabric_(&fabric), endpoints_(&endpoints), costs_(costs) {
  // protolint:allow(P4: simulator-host array, one runtime state per simulated node)
  states_.resize(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    states_[static_cast<std::size_t>(n)].ctx = std::make_unique<Context>(*this, n);
    endpoints_->at(n).set_parcel_handler(
        [this, n](sim::TaskCtx& tctx, int src, util::Buffer payload) {
          dispatch(n, tctx, src, std::move(payload));
        });
  }

  // Built-in: remote LCO contribution. Payload: [u64 lco_id][value...].
  lco_set_action_ = actions_.add(
      "nvgas.lco_set", [this](Context& c, int /*src*/, util::Buffer args) {
        auto r = args.reader();
        const auto id = r.get<std::uint64_t>();
        LcoBase* lco = find_lco(c.rank(), id);
        NVGAS_CHECK_MSG(lco != nullptr, "lco_set for unknown LCO");
        c.charge(costs_.lco_set_ns);
        lco->remote_contribute(c.now(), r);
      });
}

void Runtime::spawn_at(int node, sim::Time not_before,
                       std::function<Fiber(Context&)> fn) {
  if (needs_route(node)) {
    // Cross-shard spawn: the target node's fiber state belongs to its
    // lane. Re-enter there (submit_at clamps a stale not_before).
    fabric_->engine().post(static_cast<std::uint32_t>(node), not_before,
                           [this, node, not_before, fn = std::move(fn)]() mutable {
                             spawn_at(node, not_before, std::move(fn));
                           });
    return;
  }
  // Retain the closure until the fiber completes; the coroutine frame
  // references it rather than copying it.
  auto& st = states_.at(static_cast<std::size_t>(node));
  const std::uint64_t slot = st.next_spawn_slot++;
  auto holder = std::make_unique<std::function<Fiber(Context&)>>(std::move(fn));
  auto* fptr = holder.get();
  st.spawned.emplace(slot, std::move(holder));

  fabric_->cpu(node).submit_at(
      not_before, [this, node, slot, fptr](sim::TaskCtx& tctx) {
        CurrentTaskScope scope(*this, tctx);
        tctx.charge(costs_.spawn_ns);
        auto& ns = states_.at(static_cast<std::size_t>(node));
        ns.pending_spawn_slot = slot;
        (void)(*fptr)(ctx(node));  // eager start: first segment runs here
        ns.pending_spawn_slot = 0;
      });
}

void Runtime::fiber_finished(int node, std::uint64_t slot) {
  // Defer: the completing fiber may still be executing inside the very
  // std::function we are about to destroy. The erase rides a post() to
  // the node's own lane (≡ after(0) on the classic engine), because the
  // completing segment may be a resume submitted from another lane.
  auto& engine = fabric_->engine();
  engine.post(engine.sharded() ? static_cast<std::uint32_t>(node) : 0u, 0,
              [this, node, slot] {
                states_.at(static_cast<std::size_t>(node)).spawned.erase(slot);
              });
}

void Runtime::send_parcel_at(int src, sim::Time depart, int dst,
                             ActionId action, util::Buffer args) {
  util::Buffer payload;
  payload.put<ActionId>(action);
  payload.append_raw(args.bytes());
  endpoints_->at(src).send_parcel(depart, dst, std::move(payload));
}

void Runtime::invoke_action_at(int node, sim::Time t, ActionId action, int src,
                               util::Buffer args) {
  if (needs_route(node)) {
    fabric_->engine().post(
        static_cast<std::uint32_t>(node), t,
        [this, node, t, action, src, args = std::move(args)]() mutable {
          invoke_action_at(node, t, action, src, std::move(args));
        });
    return;
  }
  fabric_->cpu(node).submit_at(
      t, [this, node, action, src, args = std::move(args)](sim::TaskCtx& tctx) mutable {
        CurrentTaskScope scope(*this, tctx);
        tctx.charge(costs_.action_dispatch_ns);
        actions_.handler(action)(ctx(node), src, std::move(args));
      });
}

void Runtime::dispatch(int node, sim::TaskCtx& tctx, int src,
                       util::Buffer payload) {
  CurrentTaskScope scope(*this, tctx);
  tctx.charge(costs_.action_dispatch_ns);
  auto r = payload.reader();
  const auto action = r.get<ActionId>();
  // Hand the handler its own copy of the remaining bytes so a suspending
  // fiber can outlive this dispatch frame.
  util::Buffer args;
  args.append_raw(std::span<const std::byte>(
      payload.bytes().data() + sizeof(ActionId),
      payload.size() - sizeof(ActionId)));
  actions_.handler(action)(ctx(node), src, std::move(args));
}

LcoRef Runtime::register_lco(int node, LcoBase& lco) {
  auto& st = states_.at(static_cast<std::size_t>(node));
  const std::uint64_t id = st.next_lco_id++;
  st.lcos.emplace(id, &lco);
  return LcoRef{node, id};
}

void Runtime::ledger_set(LcoRef ref, sim::Time t) {
  if (needs_route(ref.node)) {
    // Ledger delivery from a foreign lane (e.g. a remote-completion
    // notify running at the data's owner): hop to the LCO's home lane.
    fabric_->engine().post(static_cast<std::uint32_t>(ref.node), t,
                           [this, ref, t] { ledger_set(ref, t); });
    return;
  }
  LcoBase* lco = find_lco(ref.node, ref.id);
  NVGAS_CHECK_MSG(lco != nullptr, "ledger_set for unknown LCO");
  util::Buffer empty;
  auto r = empty.reader();
  lco->remote_contribute(t, r);
}

LcoBase* Runtime::find_lco(int node, std::uint64_t id) {
  auto& st = states_.at(static_cast<std::size_t>(node));
  const auto it = st.lcos.find(id);
  return it == st.lcos.end() ? nullptr : it->second;
}

void Runtime::release_lco(int node, std::uint64_t id) {
  states_.at(static_cast<std::size_t>(node)).lcos.erase(id);
}

void Runtime::resume_fiber_at(int node, Fiber::Handle h, sim::Time not_before) {
  if (needs_route(node)) {
    fabric_->engine().post(static_cast<std::uint32_t>(node), not_before,
                           [this, node, h, not_before] {
                             resume_fiber_at(node, h, not_before);
                           });
    return;
  }
  fabric_->cpu(node).submit_at(not_before, [this, h](sim::TaskCtx& tctx) {
    CurrentTaskScope scope(*this, tctx);
    tctx.charge(costs_.fiber_resume_ns);
    h.resume();
  });
}

// --- Context methods needing Runtime's definition --------------------------

int Context::ranks() const { return runtime_->nodes(); }

void Context::charge(sim::Time ns) {
  sim::TaskCtx* task = runtime_->current_task(node_);
  NVGAS_CHECK_MSG(task != nullptr, "charge() outside a fiber segment");
  task->charge(ns);
}

sim::Time Context::now() const {
  sim::TaskCtx* task = runtime_->current_task(node_);
  NVGAS_CHECK_MSG(task != nullptr, "now() outside a fiber segment");
  return task->now();
}

void Context::send(int dst, ActionId action, util::Buffer args) {
  charge(runtime_->endpoints().at(node_).post_cost());
  runtime_->send_parcel_at(node_, now(), dst, action, std::move(args));
}

void Context::spawn(int node, std::function<Fiber(Context&)> fn) {
  runtime_->spawn_at(node, now(), std::move(fn));
}

LcoRef Context::make_ref(LcoBase& lco) {
  return runtime_->register_lco(node_, lco);
}

void Context::release_ref(LcoRef ref) {
  NVGAS_CHECK_MSG(ref.node == node_, "release_ref on a foreign node's LCO");
  runtime_->release_lco(ref.node, ref.id);
}

void Context::set_lco(LcoRef ref, util::Buffer value) {
  NVGAS_CHECK(ref.valid());
  if (ref.node == node_) {
    // Local fast path: no parcel, just the LCO transition cost.
    charge(runtime_->costs().lco_set_ns);
    LcoBase* lco = runtime_->find_lco(node_, ref.id);
    NVGAS_CHECK_MSG(lco != nullptr, "set_lco for unknown local LCO");
    auto r = value.reader();
    lco->remote_contribute(now(), r);
    return;
  }
  util::Buffer args;
  args.put<std::uint64_t>(ref.id);
  args.append_raw(value.bytes());
  send(ref.node, runtime_->lco_set_action(), std::move(args));
}

// --- detail hooks used by lco.hpp ------------------------------------------

namespace detail {

void resume_fiber_at(Runtime& rt, int node, Fiber::Handle h, sim::Time t) {
  rt.resume_fiber_at(node, h, t);
}

std::uint64_t take_pending_spawn_slot(Runtime& rt, int node) {
  return rt.take_pending_spawn_slot(node);
}

void fiber_finished(Runtime& rt, int node, std::uint64_t slot) {
  rt.fiber_finished(node, slot);
}

void run_event_at(Runtime& rt, sim::Time t, std::function<void(sim::Time)> fn) {
  auto& engine = rt.fabric().engine();
  const sim::Time when = std::max(t, engine.now());
  engine.at(when, [when, fn = std::move(fn)] { fn(when); });
}

}  // namespace detail
}  // namespace nvgas::rt
