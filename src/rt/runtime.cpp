#include "rt/runtime.hpp"

#include <utility>

namespace nvgas::rt {

CurrentTaskScope::CurrentTaskScope(Runtime& rt, sim::TaskCtx& task)
    : rt_(rt), prev_(rt.current_task()) {
  rt_.set_current(&task);
}
CurrentTaskScope::~CurrentTaskScope() { rt_.set_current(prev_); }

Runtime::Runtime(sim::Fabric& fabric, net::EndpointGroup& endpoints,
                 RtCosts costs)
    : fabric_(&fabric), endpoints_(&endpoints), costs_(costs) {
  states_.resize(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    states_[static_cast<std::size_t>(n)].ctx = std::make_unique<Context>(*this, n);
    endpoints_->at(n).set_parcel_handler(
        [this, n](sim::TaskCtx& tctx, int src, util::Buffer payload) {
          dispatch(n, tctx, src, std::move(payload));
        });
  }

  // Built-in: remote LCO contribution. Payload: [u64 lco_id][value...].
  lco_set_action_ = actions_.add(
      "nvgas.lco_set", [this](Context& c, int /*src*/, util::Buffer args) {
        auto r = args.reader();
        const auto id = r.get<std::uint64_t>();
        LcoBase* lco = find_lco(c.rank(), id);
        NVGAS_CHECK_MSG(lco != nullptr, "lco_set for unknown LCO");
        c.charge(costs_.lco_set_ns);
        lco->remote_contribute(c.now(), r);
      });
}

void Runtime::spawn_at(int node, sim::Time not_before,
                       std::function<Fiber(Context&)> fn) {
  // Retain the closure until the fiber completes; the coroutine frame
  // references it rather than copying it.
  const std::uint64_t slot = next_spawn_slot_++;
  auto holder = std::make_unique<std::function<Fiber(Context&)>>(std::move(fn));
  auto* fptr = holder.get();
  spawned_.emplace(slot, std::move(holder));

  fabric_->cpu(node).submit_at(
      not_before, [this, node, slot, fptr](sim::TaskCtx& tctx) {
        CurrentTaskScope scope(*this, tctx);
        tctx.charge(costs_.spawn_ns);
        pending_spawn_slot_ = slot;
        (void)(*fptr)(ctx(node));  // eager start: first segment runs here
        pending_spawn_slot_ = 0;
      });
}

void Runtime::fiber_finished(std::uint64_t slot) {
  // Defer: the completing fiber may still be executing inside the very
  // std::function we are about to destroy.
  fabric_->engine().after(0, [this, slot] { spawned_.erase(slot); });
}

void Runtime::send_parcel_at(int src, sim::Time depart, int dst,
                             ActionId action, util::Buffer args) {
  util::Buffer payload;
  payload.put<ActionId>(action);
  payload.append_raw(args.bytes());
  endpoints_->at(src).send_parcel(depart, dst, std::move(payload));
}

void Runtime::invoke_action_at(int node, sim::Time t, ActionId action, int src,
                               util::Buffer args) {
  fabric_->cpu(node).submit_at(
      t, [this, node, action, src, args = std::move(args)](sim::TaskCtx& tctx) mutable {
        CurrentTaskScope scope(*this, tctx);
        tctx.charge(costs_.action_dispatch_ns);
        actions_.handler(action)(ctx(node), src, std::move(args));
      });
}

void Runtime::dispatch(int node, sim::TaskCtx& tctx, int src,
                       util::Buffer payload) {
  CurrentTaskScope scope(*this, tctx);
  tctx.charge(costs_.action_dispatch_ns);
  auto r = payload.reader();
  const auto action = r.get<ActionId>();
  // Hand the handler its own copy of the remaining bytes so a suspending
  // fiber can outlive this dispatch frame.
  util::Buffer args;
  args.append_raw(std::span<const std::byte>(
      payload.bytes().data() + sizeof(ActionId),
      payload.size() - sizeof(ActionId)));
  actions_.handler(action)(ctx(node), src, std::move(args));
}

LcoRef Runtime::register_lco(int node, LcoBase& lco) {
  auto& st = states_.at(static_cast<std::size_t>(node));
  const std::uint64_t id = st.next_lco_id++;
  st.lcos.emplace(id, &lco);
  return LcoRef{node, id};
}

void Runtime::ledger_set(LcoRef ref, sim::Time t) {
  LcoBase* lco = find_lco(ref.node, ref.id);
  NVGAS_CHECK_MSG(lco != nullptr, "ledger_set for unknown LCO");
  util::Buffer empty;
  auto r = empty.reader();
  lco->remote_contribute(t, r);
}

LcoBase* Runtime::find_lco(int node, std::uint64_t id) {
  auto& st = states_.at(static_cast<std::size_t>(node));
  const auto it = st.lcos.find(id);
  return it == st.lcos.end() ? nullptr : it->second;
}

void Runtime::release_lco(int node, std::uint64_t id) {
  states_.at(static_cast<std::size_t>(node)).lcos.erase(id);
}

void Runtime::resume_fiber_at(int node, Fiber::Handle h, sim::Time not_before) {
  fabric_->cpu(node).submit_at(not_before, [this, h](sim::TaskCtx& tctx) {
    CurrentTaskScope scope(*this, tctx);
    tctx.charge(costs_.fiber_resume_ns);
    h.resume();
  });
}

// --- Context methods needing Runtime's definition --------------------------

int Context::ranks() const { return runtime_->nodes(); }

void Context::charge(sim::Time ns) {
  sim::TaskCtx* task = runtime_->current_task();
  NVGAS_CHECK_MSG(task != nullptr, "charge() outside a fiber segment");
  task->charge(ns);
}

sim::Time Context::now() const {
  sim::TaskCtx* task = runtime_->current_task();
  NVGAS_CHECK_MSG(task != nullptr, "now() outside a fiber segment");
  return task->now();
}

void Context::send(int dst, ActionId action, util::Buffer args) {
  charge(runtime_->endpoints().at(node_).post_cost());
  runtime_->send_parcel_at(node_, now(), dst, action, std::move(args));
}

void Context::spawn(int node, std::function<Fiber(Context&)> fn) {
  runtime_->spawn_at(node, now(), std::move(fn));
}

LcoRef Context::make_ref(LcoBase& lco) {
  return runtime_->register_lco(node_, lco);
}

void Context::release_ref(LcoRef ref) {
  NVGAS_CHECK_MSG(ref.node == node_, "release_ref on a foreign node's LCO");
  runtime_->release_lco(ref.node, ref.id);
}

void Context::set_lco(LcoRef ref, util::Buffer value) {
  NVGAS_CHECK(ref.valid());
  if (ref.node == node_) {
    // Local fast path: no parcel, just the LCO transition cost.
    charge(runtime_->costs().lco_set_ns);
    LcoBase* lco = runtime_->find_lco(node_, ref.id);
    NVGAS_CHECK_MSG(lco != nullptr, "set_lco for unknown local LCO");
    auto r = value.reader();
    lco->remote_contribute(now(), r);
    return;
  }
  util::Buffer args;
  args.put<std::uint64_t>(ref.id);
  args.append_raw(value.bytes());
  send(ref.node, runtime_->lco_set_action(), std::move(args));
}

// --- detail hooks used by lco.hpp ------------------------------------------

namespace detail {

void resume_fiber_at(Runtime& rt, int node, Fiber::Handle h, sim::Time t) {
  rt.resume_fiber_at(node, h, t);
}

std::uint64_t take_pending_spawn_slot(Runtime& rt) {
  return rt.take_pending_spawn_slot();
}

void fiber_finished(Runtime& rt, std::uint64_t slot) {
  rt.fiber_finished(slot);
}

void run_event_at(Runtime& rt, sim::Time t, std::function<void(sim::Time)> fn) {
  auto& engine = rt.fabric().engine();
  const sim::Time when = std::max(t, engine.now());
  engine.at(when, [when, fn = std::move(fn)] { fn(when); });
}

}  // namespace detail
}  // namespace nvgas::rt
