#include "net/nic_tlb.hpp"

#include <algorithm>

namespace nvgas::net {

bool NicTlb::insert(std::uint64_t block, const TlbEntry& entry) {
  auto it = map_.find(block);
  if (it != map_.end()) {
    // Overwrite in place; adjust pinned bookkeeping and LRU membership.
    Slot& slot = it->second;
    const bool was_pinned = slot.entry.pinned;
    if (was_pinned && !entry.pinned) {
      --pinned_count_;
      unpin_key(block);
      lru_.push_front(block);
      slot.lru_pos = lru_.begin();
    } else if (!was_pinned && entry.pinned) {
      ++pinned_count_;
      pinned_keys_.push_back(block);
      lru_.erase(slot.lru_pos);
    } else if (!entry.pinned) {
      lru_.splice(lru_.begin(), lru_, slot.lru_pos);
      slot.lru_pos = lru_.begin();
    }
    slot.entry = entry;
    return true;
  }

  if (!entry.pinned && lru_.size() >= capacity_) evict_one();

  Slot slot;
  slot.entry = entry;
  if (entry.pinned) {
    ++pinned_count_;
    pinned_keys_.push_back(block);
  } else {
    lru_.push_front(block);
    slot.lru_pos = lru_.begin();
  }
  map_.emplace(block, std::move(slot));
  return true;
}

std::optional<TlbEntry> NicTlb::lookup(std::uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  Slot& slot = it->second;
  if (!slot.entry.pinned) {
    lru_.splice(lru_.begin(), lru_, slot.lru_pos);
    slot.lru_pos = lru_.begin();
  }
  return slot.entry;
}

TlbEntry* NicTlb::find(std::uint64_t block) {
  auto it = map_.find(block);
  return it == map_.end() ? nullptr : &it->second.entry;
}

void NicTlb::erase(std::uint64_t block) {
  auto it = map_.find(block);
  if (it == map_.end()) return;
  if (it->second.entry.pinned) {
    --pinned_count_;
    unpin_key(block);
  } else {
    lru_.erase(it->second.lru_pos);
  }
  map_.erase(it);
}

const TlbEntry* NicTlb::peek(std::uint64_t block) const {
  auto it = map_.find(block);
  return it == map_.end() ? nullptr : &it->second.entry;
}

std::vector<std::pair<std::uint64_t, TlbEntry>> NicTlb::entries() const {
  std::vector<std::pair<std::uint64_t, TlbEntry>> out;
  out.reserve(map_.size());
  for (const std::uint64_t key : pinned_keys_) {
    out.emplace_back(key, map_.find(key)->second.entry);
  }
  for (const std::uint64_t key : lru_) {
    out.emplace_back(key, map_.find(key)->second.entry);
  }
  return out;
}

void NicTlb::unpin_key(std::uint64_t block) {
  auto it = std::find(pinned_keys_.begin(), pinned_keys_.end(), block);
  if (it != pinned_keys_.end()) pinned_keys_.erase(it);
}

void NicTlb::evict_one() {
  NVGAS_CHECK(!lru_.empty());
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  map_.erase(victim);
  ++evictions_;
}

}  // namespace nvgas::net
