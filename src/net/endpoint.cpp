#include "net/endpoint.hpp"

#include <utility>

#include "net/reliability.hpp"
#include "util/assert.hpp"

namespace nvgas::net {

Endpoint::Endpoint(sim::Fabric& fabric, int node, const NetConfig& config)
    : fabric_(&fabric), node_(node), config_(config) {}

// --------------------------------------------------------------------------
// put: source NIC -> wire -> target NIC command processor does the DMA
// write -> small ack back to the source. No target CPU task anywhere.
// --------------------------------------------------------------------------
void Endpoint::put(Time depart, int dst, Lva dst_lva,
                   std::vector<std::byte> data, OnDone on_complete,
                   OnDone on_remote) {
  auto& f = *fabric_;
  ++f.counters().rma_puts;
  const auto n = static_cast<std::uint64_t>(data.size());
  const int src = node_;
  ReliabilityGroup* rel = rels_;
  channel_send(
      f, rel, node_, dst, depart, config_.rma_header_bytes + n,
      [&f, rel, dst, src, dst_lva, data = std::move(data),
       on_complete = std::move(on_complete),
       on_remote = std::move(on_remote)](Time arrived) mutable {
        auto& nic = f.nic(dst);
        const Time cost = f.params().nic_dma_ns +
                          f.params().copy_time(data.size());
        const Time done = nic.occupy_command_processor(arrived, cost);
        // simlint:allow(D5: &f is the Fabric, which owns and outlives the engine)
        f.engine().at(done, [&f, rel, dst, src, dst_lva, done,
                             data = std::move(data),
                             on_complete = std::move(on_complete),
                             on_remote = std::move(on_remote)]() mutable {
          f.mem(dst).write(dst_lva, data);  // simlint:allow(D8: delivery continuation — reliability hands this frame off on dst's own lane)
          if (on_remote) on_remote(done);  // remote completion ledger
          if (on_complete) {
            const auto ack_bytes = std::uint64_t{16};
            channel_send(f, rel, dst, src, done, ack_bytes,
                         [on_complete = std::move(on_complete)](Time t) {
                           on_complete(t);
                         });
          }
        });
      });
}

// --------------------------------------------------------------------------
// get: small request -> target NIC DMA-reads the data -> reply carries the
// payload -> source NIC DMA-writes it and raises the completion.
// --------------------------------------------------------------------------
void Endpoint::get(Time depart, int dst, Lva src_lva, std::size_t len,
                   OnData on_data) {
  auto& f = *fabric_;
  ++f.counters().rma_gets;
  const int src = node_;
  const NetConfig cfg = config_;
  ReliabilityGroup* rel = rels_;
  channel_send(
      f, rel, node_, dst, depart, cfg.rma_header_bytes,
      [&f, rel, cfg, dst, src, src_lva, len,
       on_data = std::move(on_data)](Time arrived) mutable {
        auto& nic = f.nic(dst);
        const Time cost = f.params().nic_dma_ns + f.params().copy_time(len);
        const Time done = nic.occupy_command_processor(arrived, cost);
        // simlint:allow(D5: &f is the Fabric, which owns and outlives the engine)
        f.engine().at(done, [&f, rel, cfg, dst, src, src_lva, len, done,
                             on_data = std::move(on_data)]() mutable {
          std::vector<std::byte> payload = f.mem(dst).read_vec(src_lva, len);  // simlint:allow(D8: delivery continuation — the get request was delivered on dst's own lane)
          channel_send(
              f, rel, dst, src, done, cfg.rma_header_bytes + len,
              [&f, src, on_data = std::move(on_data),
               payload = std::move(payload)](Time replied) mutable {
                auto& src_nic = f.nic(src);
                const Time wcost = f.params().nic_dma_ns +
                                   f.params().copy_time(payload.size());
                const Time ready = src_nic.occupy_command_processor(replied, wcost);
                f.engine().at(ready, [ready, on_data = std::move(on_data),
                                      payload = std::move(payload)]() mutable {
                  on_data(ready, std::move(payload));
                });
              });
        });
      });
}

// --------------------------------------------------------------------------
// NIC-executed remote atomics.
// --------------------------------------------------------------------------
namespace {

template <typename Op>
void atomic_op(sim::Fabric& f, ReliabilityGroup* rel, const NetConfig& cfg,
               int src, Time depart, int dst, OnU64 on_old, Op op) {
  ++f.counters().rma_atomics;
  channel_send(
      f, rel, src, dst, depart, cfg.atomic_bytes,
      [&f, rel, cfg, dst, src, on_old = std::move(on_old),
       op](Time arrived) mutable {
        auto& nic = f.nic(dst);
        const Time done =
            nic.occupy_command_processor(arrived, f.params().nic_atomic_ns);
        // simlint:allow(D5: &f is the Fabric, which owns and outlives the engine)
        f.engine().at(done, [&f, rel, cfg, dst, src, done,
                             on_old = std::move(on_old), op]() mutable {
          const std::uint64_t old = op(f.mem(dst));
          channel_send(f, rel, dst, src, done, cfg.atomic_bytes,
                       [old, on_old = std::move(on_old)](Time t) {
                         on_old(t, old);
                       });
        });
      });
}

}  // namespace

void Endpoint::fetch_add(Time depart, int dst, Lva lva, std::uint64_t operand,
                         OnU64 on_old) {
  atomic_op(*fabric_, rels_, config_, node_, depart, dst, std::move(on_old),
            [lva, operand](sim::Memory& mem) {
              return mem.fetch_add_u64(lva, operand);
            });
}

void Endpoint::compare_swap(Time depart, int dst, Lva lva,
                            std::uint64_t expected, std::uint64_t desired,
                            OnU64 on_old) {
  atomic_op(*fabric_, rels_, config_, node_, depart, dst, std::move(on_old),
            [lva, expected, desired](sim::Memory& mem) {
              return mem.compare_swap_u64(lva, expected, desired);
            });
}

// --------------------------------------------------------------------------
// Parcels.
// --------------------------------------------------------------------------
void Endpoint::deliver_parcel_to_cpu(Time at, int src, util::Buffer payload) {
  NVGAS_CHECK_MSG(handler_ != nullptr, "parcel arrived with no handler set");
  auto& f = *fabric_;
  f.cpu(node_).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
      at, [this, &f, src, payload = std::move(payload)](sim::TaskCtx& ctx) mutable {
        ctx.charge(f.params().cpu_recv_overhead_ns);
        handler_(ctx, src, std::move(payload));
      });
}

void Endpoint::send_parcel(Time depart, int dst, util::Buffer payload,
                           OnDone on_delivered) {
  auto& f = *fabric_;
  ++f.counters().parcels_sent;
  Endpoint* self = this;
  // EndpointGroup guarantees all endpoints outlive the fabric's events, so
  // capturing the raw destination endpoint pointer is safe.
  NVGAS_CHECK_MSG(peer_ != nullptr || dst == node_,
                  "endpoint not wired into a group");
  Endpoint* target = dst == node_ ? this : peer_(dst);
  NVGAS_CHECK(target != nullptr);

  if (payload.size() <= config_.eager_threshold) {
    ++f.counters().parcels_eager;
    const std::uint64_t bytes = config_.parcel_header_bytes + payload.size();
    const int src = node_;
    channel_send(f, rels_, node_, dst, depart, bytes,
                 [target, src, payload = std::move(payload),
                  on_delivered = std::move(on_delivered),
                  self](Time arrived) mutable {
                   target->deliver_parcel_to_cpu(arrived, src,
                                                 std::move(payload));
                   if (on_delivered) {
                     auto& f2 = *target->fabric_;
                     channel_send(
                         f2, target->rels_, target->node_, self->node_,
                         arrived, 16,
                         [on_delivered = std::move(on_delivered)](Time t) {
                           on_delivered(t);
                         });
                   }
                 });
    return;
  }

  // Rendezvous: stage the payload, send an RTS; the target CPU pulls the
  // payload from the source stage with a NIC get-like transfer, then runs
  // the handler. This keeps large payloads off the eager path, mirroring
  // Photon's RTS/CTS rendezvous.
  ++f.counters().parcels_rendezvous;
  const std::uint64_t stage_id = next_stage_id_++;
  const std::size_t payload_size = payload.size();
  staged_.emplace(stage_id, std::move(payload));

  const int src = node_;
  const NetConfig cfg = config_;
  channel_send(
      f, rels_, node_, dst, depart, cfg.rts_bytes,
      [&f, cfg, target, self, src, stage_id, payload_size,
       on_delivered = std::move(on_delivered)](Time arrived) mutable {
        // Target CPU handles the RTS: post the pull.
        f.cpu(target->node_).submit_at(  // simlint:allow(D8: Cpu::submit_at routes via Engine::at_shard, the sanctioned cross-lane scheduling entry)
            arrived, [&f, cfg, target, self, src, stage_id, payload_size,
                      on_delivered = std::move(on_delivered)](
                         sim::TaskCtx& ctx) mutable {
              ctx.charge(f.params().cpu_recv_overhead_ns);
              ctx.charge(target->post_cost());
              // Pull request back to the source NIC (NIC-level; the source
              // CPU is not disturbed).
              channel_send(
                  f, target->rels_, target->node_, src, ctx.now(),
                  cfg.rma_header_bytes,
                  [&f, cfg, target, self, stage_id, payload_size,
                   on_delivered = std::move(on_delivered)](Time at_src) mutable {
                    auto it = self->staged_.find(stage_id);
                    NVGAS_CHECK_MSG(it != self->staged_.end(),
                                    "rendezvous pull for unknown stage");
                    util::Buffer staged_payload = std::move(it->second);
                    self->staged_.erase(it);
                    const Time cost = f.params().nic_dma_ns +
                                      f.params().copy_time(staged_payload.size());
                    const Time done = f.nic(self->node_).occupy_command_processor(  // simlint:allow(D8: self-indexed — the rendezvous source charges its own NIC command processor)
                        at_src, cost);
                    if (on_delivered) on_delivered(done);
                    // simlint:allow(D5: &f is the Fabric, which owns and outlives the engine)
                    f.engine().at(done, [&f, cfg, target, self, done,
                                         staged_payload = std::move(staged_payload),
                                         payload_size]() mutable {
                      channel_send(
                          f, self->rels_, self->node_, target->node_, done,
                          cfg.rma_header_bytes + payload_size,
                          [target, self, staged_payload =
                                             std::move(staged_payload)](Time t) mutable {
                            target->deliver_parcel_to_cpu(
                                t, self->node_, std::move(staged_payload));
                          });
                    });
                  });
            });
      });
}

// --------------------------------------------------------------------------
// Raw sends share the verbs' gateway.
// --------------------------------------------------------------------------
void Endpoint::raw_send(Time depart, int dst, std::uint64_t bytes,
                        sim::Nic::Deliver fn) {
  channel_send(*fabric_, rels_, node_, dst, depart, bytes, std::move(fn));
}

// --------------------------------------------------------------------------
// EndpointGroup.
// --------------------------------------------------------------------------
EndpointGroup::EndpointGroup(sim::Fabric& fabric, const NetConfig& config)
    : config_(config),
      rels_(std::make_unique<ReliabilityGroup>(fabric, config)) {
  // protolint:allow(P4: simulator-host array, one Endpoint per simulated node)
  endpoints_.reserve(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    endpoints_.push_back(std::make_unique<Endpoint>(fabric, n, config_));
  }
  for (auto& ep : endpoints_) {
    ep->peer_ = [this](int node) { return &at(node); };
    ep->rels_ = rels_.get();
  }
}

EndpointGroup::~EndpointGroup() = default;

}  // namespace nvgas::net
