// Software-level network configuration (the middleware knobs, as opposed
// to the hardware model in sim::MachineParams).
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvgas::net {

struct NetConfig {
  // Parcels at or below this payload size go eager (payload rides the
  // first message); larger ones use the rendezvous (RTS + get) protocol.
  std::size_t eager_threshold = 4096;

  // Wire header sizes, charged on every message of the given class.
  std::uint64_t rma_header_bytes = 32;
  std::uint64_t ack_bytes = 16;
  std::uint64_t atomic_bytes = 40;
  std::uint64_t parcel_header_bytes = 48;
  std::uint64_t rts_bytes = 40;

  // End-to-end reliability layer (net/reliability), active only when a
  // fault plan is armed. The sequence/ack header rides every data frame;
  // retransmit timers start at retransmit_timeout_ns (sized a few RTTs
  // above the ~2.5 µs put round trip of the default machine) and double
  // per retry up to the cap. Receivers delay pure acks by ack_delay_ns
  // hoping to piggyback on reverse traffic instead.
  std::uint64_t rel_header_bytes = 12;
  std::uint64_t retransmit_timeout_ns = 12000;
  std::uint64_t retransmit_backoff_cap_ns = 96000;
  std::uint64_t ack_delay_ns = 1500;
};

}  // namespace nvgas::net
