// Software-level network configuration (the middleware knobs, as opposed
// to the hardware model in sim::MachineParams).
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvgas::net {

struct NetConfig {
  // Parcels at or below this payload size go eager (payload rides the
  // first message); larger ones use the rendezvous (RTS + get) protocol.
  std::size_t eager_threshold = 4096;

  // Wire header sizes, charged on every message of the given class.
  std::uint64_t rma_header_bytes = 32;
  std::uint64_t ack_bytes = 16;
  std::uint64_t atomic_bytes = 40;
  std::uint64_t parcel_header_bytes = 48;
  std::uint64_t rts_bytes = 40;
};

}  // namespace nvgas::net
