// Photon-style RMA middleware endpoint.
//
// One Endpoint per node, layered directly on the simulated NIC. It
// provides the verbs the original system gets from Photon:
//
//   * put / get with completion  — one-sided RMA on registered memory;
//     the target CPU is never involved (DMA + ack ride the NIC command
//     processor),
//   * fetch_add / compare_swap   — NIC-executed remote atomics,
//   * parcels                    — two-sided active-message transport
//     with eager and rendezvous (RTS+get) protocols; these DO raise a
//     CPU task at the target, which is exactly the cost the
//     network-managed AGAS avoids on its data path.
//
// Completion callbacks run as engine events at the time the completion
// would appear in the source's completion ledger.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/config.hpp"
#include "sim/cpu.hpp"
#include "sim/fabric.hpp"
#include "sim/memory.hpp"
#include "util/buffer.hpp"

namespace nvgas::net {

class ReliabilityGroup;  // net/reliability.hpp — retransmission channels

using sim::Lva;
using sim::Time;

// Public verb-completion callback types. std::function is deliberate at
// this API boundary: callers (gas/, rt/, tests) hand in arbitrary-size
// copyable closures, and each callback crosses the wire boundary exactly
// once per verb — the per-event hot path below converts to
// util::InlineFunction at the engine layer.
// simlint:allow(D4: public API boundary type, converted to InlineFunction per event)
using OnDone = std::function<void(Time)>;
// simlint:allow(D4: public API boundary type, converted to InlineFunction per event)
using OnData = std::function<void(Time, std::vector<std::byte>)>;
// simlint:allow(D4: public API boundary type, converted to InlineFunction per event)
using OnU64 = std::function<void(Time, std::uint64_t)>;

// Parcel handlers run as CPU tasks at the destination.
using ParcelHandler =
    // simlint:allow(D4: installed once per endpoint, not a per-event allocation)
    std::function<void(sim::TaskCtx&, int src, util::Buffer payload)>;

class Endpoint {
 public:
  Endpoint(sim::Fabric& fabric, int node, const NetConfig& config);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] const NetConfig& config() const { return config_; }
  [[nodiscard]] sim::Fabric& fabric() { return *fabric_; }

  // --- one-sided RMA ------------------------------------------------------
  // All verbs take an explicit departure time; runtime-layer callers pass
  // TaskCtx::now() after charging cpu_send_overhead_ns (use post_cost()).

  // Write `data` into dst's registered segment at dst_lva. `on_complete`
  // fires at the source once the remote write is acknowledged;
  // `on_remote` (optional) fires AT THE TARGET the moment the data is
  // visible — Photon's put-with-completion remote ledger, which lets a
  // consumer learn of arriving data without any two-sided traffic.
  void put(Time depart, int dst, Lva dst_lva, std::vector<std::byte> data,
           OnDone on_complete, OnDone on_remote = nullptr);

  // Read `len` bytes from dst's registered segment at src_lva.
  void get(Time depart, int dst, Lva src_lva, std::size_t len, OnData on_data);

  // NIC-executed atomics on 8-byte-aligned remote words.
  void fetch_add(Time depart, int dst, Lva lva, std::uint64_t operand,
                 OnU64 on_old);
  void compare_swap(Time depart, int dst, Lva lva, std::uint64_t expected,
                    std::uint64_t desired, OnU64 on_old);

  // --- two-sided parcels --------------------------------------------------

  void set_parcel_handler(ParcelHandler handler) { handler_ = std::move(handler); }

  // Deliver `payload` to dst's parcel handler (CPU task at dst). Eager for
  // small payloads; rendezvous for large ones. `on_delivered` (optional)
  // fires at the source once the target handler task has been enqueued.
  void send_parcel(Time depart, int dst, util::Buffer payload,
                   OnDone on_delivered = nullptr);

  // --- escape hatch for NIC-level protocols --------------------------------
  // The network-managed AGAS builds its GVA ops directly on raw messages so
  // it can run entirely on NIC command processors (see core/agas_net). Like
  // every other verb, raw sends go through the reliability gateway: a plain
  // Nic::send without faults armed, a sequenced channel frame with them.
  void raw_send(Time depart, int dst, std::uint64_t bytes, sim::Nic::Deliver fn);

  // CPU cost of posting a descriptor; callers charge this before picking
  // the departure time.
  [[nodiscard]] Time post_cost() const {
    return fabric_->params().cpu_send_overhead_ns;
  }

 private:
  friend class EndpointGroup;

  void deliver_parcel_to_cpu(Time at, int src, util::Buffer payload);

  sim::Fabric* fabric_;
  int node_;
  NetConfig config_;
  ParcelHandler handler_;

  // Resolves a node id to its Endpoint; installed by EndpointGroup.
  // simlint:allow(D4: installed once at wiring time, never on the event path)
  std::function<Endpoint*(int)> peer_;

  // Retransmission channels; installed by EndpointGroup, null for
  // standalone endpoints (which can never have faults armed).
  ReliabilityGroup* rels_ = nullptr;

  // Rendezvous staging: payloads parked at the source until the target
  // pulls them.
  // simlint:allow(D1: keyed find/erase only, never iterated)
  std::unordered_map<std::uint64_t, util::Buffer> staged_;
  std::uint64_t next_stage_id_ = 1;
};

// All endpoints of a fabric; wires up cross-endpoint delivery.
class EndpointGroup {
 public:
  EndpointGroup(sim::Fabric& fabric, const NetConfig& config);
  ~EndpointGroup();  // out-of-line: ReliabilityGroup is incomplete here

  [[nodiscard]] Endpoint& at(int node) { return *endpoints_.at(static_cast<std::size_t>(node)); }
  [[nodiscard]] ReliabilityGroup& reliability() { return *rels_; }
  [[nodiscard]] int size() const { return static_cast<int>(endpoints_.size()); }
  [[nodiscard]] const NetConfig& config() const { return config_; }

 private:
  NetConfig config_;
  std::unique_ptr<ReliabilityGroup> rels_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace nvgas::net
