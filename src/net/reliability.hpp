// End-to-end retransmission over an unreliable fabric.
//
// When a FaultInjector is armed (sim/faults.hpp), the wire may drop,
// duplicate, or reorder frames; this layer restores the exactly-once,
// per-link in-order delivery the upper layers (RMA completions, parcels,
// NIC-TLB updates, migration fences) were built against:
//
//   * per-(src, dst) sequence numbers — every data frame carries the
//     channel's next seq and a piggybacked cumulative ack of the
//     reverse channel;
//   * sender window — each unacked frame holds its upper-layer Deliver
//     closure in a pooled slot with an O(1)-cancellable retransmit
//     timer (Engine::at_cancellable) backing off exponentially to a
//     configurable cap (NetConfig::retransmit_backoff_cap_ns);
//   * receiver reassembly — frames at or below the channel floor (or
//     already buffered) are discarded as duplicates; out-of-order
//     frames wait in a reorder buffer until the gap fills, so
//     fault-induced reordering never reaches the upper layers (the
//     base simulator's per-link FIFO is part of their contract);
//   * delayed acks — a receiver arms one ack timer per channel
//     (NetConfig::ack_delay_ns); any reverse data frame departing first
//     cancels it and piggybacks the floor instead. Pure acks are
//     unsequenced and themselves fault-exposed: a lost ack is repaired
//     by the next retransmission soliciting a fresh one.
//
// Simulation trick: the wire frame is a thin POD closure carrying only
// {dst endpoint, src, seq, piggybacked ack} — re-invocable, so the NIC
// can deliver a fault-duplicated copy twice, and cheap to re-create for
// retransmits. The upper layer's one-shot Deliver closure never rides
// the wire: it stays in the sender's window slot and is consumed
// exactly once, at the moment the receiver ACCEPTS the seq (the bytes
// it models were on the wire; frames are billed header + payload).
//
// The layer is structurally inert without faults: channel_send() then
// degenerates to a plain Nic::send — no extra events, timers, headers,
// or sequence numbers — so fault-free traces are byte-identical to a
// build without this subsystem (gated by tests/net_faults_test.cpp).
//
// See docs/FAULT_INJECTION.md for the protocol state machine and the
// backoff math; mcheck's drop-under-put / retransmit-vs-migrate
// scenarios model-check it against concurrent migrations.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/config.hpp"
#include "sim/engine.hpp"
#include "sim/fabric.hpp"
#include "sim/nic.hpp"

namespace nvgas::net {

class ReliabilityGroup;

class Reliability {
 public:
  Reliability(sim::Fabric& fabric, int node, const NetConfig& cfg,
              ReliabilityGroup& group);
  Reliability(const Reliability&) = delete;
  Reliability& operator=(const Reliability&) = delete;

  // Sender entry: queue `deliver` for exactly-once in-order delivery at
  // `dst` (!= node; loopback never enters the channel). `bytes` is the
  // upper-layer payload size; the data frame adds rel_header_bytes.
  void send(sim::Time depart, int dst, std::uint64_t bytes,
            sim::Nic::Deliver deliver);

  // Wire-frame entry points, invoked at THIS (receiving) node by the
  // frame closures the peer put on the wire.
  void on_data(sim::Time t, int src, std::uint64_t seq, std::uint64_t acked);
  void on_ack(sim::Time t, int src, std::uint64_t acked);

  // Receiver-side accept calls back here (at the SENDER) to consume the
  // stored payload closure for `seq` toward `dst` and run it at time t.
  void deliver_payload(sim::Time t, int dst, std::uint64_t seq);

  // Sharded-aware accept path: on the classic engine this IS
  // deliver_payload; on the sharded engine the sender's window state
  // belongs to the sender's lane, so the consume hops there via
  // Engine::post and the moved-out payload hops back to execute on the
  // consumer's lane. Drain order guarantees the consume lands before
  // the cumulative ack that covers `seq` (the ack needs a full wire
  // flight plus rx occupancy; the consume only a window boundary), so
  // process_ack still finds the slot delivered.
  void consume_payload(sim::Time t, int consumer, std::uint64_t seq);

  [[nodiscard]] int node() const { return node_; }
  // Frames sent but not yet cumulatively acked, across all channels.
  [[nodiscard]] std::uint64_t unacked() const;

#if NVGAS_SHARDSAN
  // Death-test hook: re-arm the oldest unacked slot's retransmit timer
  // from the CALLER's context, modeling a buggy cross-lane caller arming
  // an RTO on the wrong lane; ShardSan must abort. Tests only.
  void shardsan_rearm_oldest_rto(int dst);
#endif

#ifdef NVGAS_SIMSAN
  // Death-test hook: cancel the oldest unacked slot's armed retransmit
  // timer twice; the second cancel must die with the engine's
  // double-cancel diagnostic. Tests only.
  void simsan_double_cancel_rto(int dst);
  // Death-test hook: invoke a retired (recycled, poisoned) window
  // slot's payload closure; must die with use-after-recycle. Tests only.
  void simsan_invoke_retired_slot(std::uint32_t slot) {
    slots_.at(slot).payload(sim::Time{0});
  }
#endif

 private:
  struct TxSlot {
    std::uint64_t seq = 0;
    std::uint64_t bytes = 0;        // upper-layer payload bytes
    sim::Nic::Deliver payload;      // consumed once, on receiver accept
    sim::Engine::TimerId rto;       // armed while the slot is unacked
    sim::Time rto_ns = 0;           // current backoff interval
    bool delivered = false;         // payload consumed; awaiting ack
    std::int32_t next_free = -1;
  };
  struct TxChannel {
    std::uint64_t next_seq = 1;
    // seq -> slot pool index; ordered so cumulative acks retire a prefix
    // deterministically.
    std::map<std::uint64_t, std::int32_t> unacked;
  };
  struct RxChannel {
    std::uint64_t floor = 0;  // highest contiguously accepted seq
    std::set<std::uint64_t> buffered;  // out-of-order seqs past the gap
    sim::Engine::TimerId ack_timer;
    bool ack_armed = false;
  };

  void send_frame(sim::Time depart, int dst, std::uint64_t seq);
  void arm_rto(sim::Time ref, int dst, std::uint64_t seq);
  void on_rto(int dst, std::uint64_t seq);
  void schedule_ack(sim::Time t, int src);
  void send_pure_ack(sim::Time t, int dst);
  void process_ack(int dst, std::uint64_t acked);
  std::int32_t alloc_slot();
  void retire_slot(std::int32_t idx);

  sim::Fabric* fabric_;
  int node_;
  NetConfig cfg_;
  ReliabilityGroup* group_;
  std::vector<TxChannel> tx_;  // indexed by dst
  std::vector<RxChannel> rx_;  // indexed by src
  std::vector<TxSlot> slots_;
  std::int32_t slots_free_ = -1;
};

// One Reliability per node, wired for cross-node frame dispatch; owned
// by the EndpointGroup.
class ReliabilityGroup {
 public:
  ReliabilityGroup(sim::Fabric& fabric, const NetConfig& cfg);

  [[nodiscard]] Reliability& at(int node) {
    return *rels_.at(static_cast<std::size_t>(node));
  }

 private:
  std::vector<std::unique_ptr<Reliability>> rels_;
};

// THE traffic gateway above the NIC: every endpoint-level send funnels
// through here. Without faults armed (or on loopback) it is a plain
// Nic::send — structurally inert, nothing added to the event stream —
// otherwise the frame enters `from`'s reliability channel. `rel` may be
// null only for standalone endpoints outside a group, which can never
// have faults armed.
void channel_send(sim::Fabric& fabric, ReliabilityGroup* rel, int from,
                  int dst, sim::Time depart, std::uint64_t bytes,
                  sim::Nic::Deliver fn);

}  // namespace nvgas::net
