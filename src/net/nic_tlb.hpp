// NIC-resident translation table ("NIC TLB").
//
// This is the hardware structure the paper's contribution programs: each
// NIC holds a finite map from global block id to {owner node, local base
// address, generation}. Lookups, inserts and the atomic remap used by
// migration all execute on the NIC command processor, never the CPU.
//
// Capacity bounds the *cached* (unpinned) entries; eviction is LRU.
// Pinned entries — the home NIC's authoritative records, which live in a
// dedicated directory region of NIC memory — are not counted against the
// cache capacity and never evict: the home NIC is the forwarder of last
// resort, exactly like AGAS's home-based resolution.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/memory.hpp"
#include "util/assert.hpp"

namespace nvgas::net {

struct TlbEntry {
  int owner = -1;            // node currently holding the block
  sim::Lva base = 0;         // block base LVA at the owner
  std::uint32_t generation = 0;  // bumped on every migration
  bool pinned = false;       // home entries are pinned
  bool in_flight = false;    // set while a migration is moving the block
};

class NicTlb {
 public:
  explicit NicTlb(std::size_t capacity) : capacity_(capacity) {
    NVGAS_CHECK(capacity_ >= 1);
  }

  // Insert or overwrite. Pinned entries always fit (directory region);
  // unpinned entries LRU-evict once the cached-entry count exceeds the
  // capacity. Returns true iff the entry is resident afterwards (always,
  // today; kept boolean for symmetry with hardware that can refuse).
  bool insert(std::uint64_t block, const TlbEntry& entry);

  // Lookup; refreshes LRU position on hit.
  [[nodiscard]] std::optional<TlbEntry> lookup(std::uint64_t block);

  // Mutating access for migration (remap / in-flight flag). Returns null
  // if absent. Does not refresh LRU: migrations should not keep stale
  // cached entries warm.
  [[nodiscard]] TlbEntry* find(std::uint64_t block);

  void erase(std::uint64_t block);

  // Read-only probe: no LRU refresh and no hit/miss accounting, so
  // invariant audits never perturb eviction or counters.
  [[nodiscard]] const TlbEntry* peek(std::uint64_t block) const;

  // Deterministic snapshot for the mcheck invariant audits: pinned
  // entries in pin order, then cached entries most-recent-first. Both
  // orders are simulation state, never hash order.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, TlbEntry>> entries()
      const;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Slot {
    TlbEntry entry;
    std::list<std::uint64_t>::iterator lru_pos;  // valid iff !entry.pinned
  };

  void evict_one();
  void unpin_key(std::uint64_t block);

  std::size_t capacity_;
  // simlint:allow(D1: keyed find/erase; eviction order comes from lru_, not the map)
  std::unordered_map<std::uint64_t, Slot> map_;
  std::list<std::uint64_t> lru_;  // front = most recent
  // Pinned keys in pin order; mirrors the pinned entries in map_ so
  // entries() can snapshot them deterministically.
  std::vector<std::uint64_t> pinned_keys_;
  std::size_t pinned_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace nvgas::net
