#include "net/reliability.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nvgas::net {

Reliability::Reliability(sim::Fabric& fabric, int node, const NetConfig& cfg,
                         ReliabilityGroup& group)
    : fabric_(&fabric),
      node_(node),
      cfg_(cfg),
      group_(&group),
      // protolint:allow(P4: dense per-(src,dst) send windows, the canonical reliability O(P) site; ROADMAP item 2 pools them over active peers)
      tx_(static_cast<std::size_t>(fabric.nodes())),
      // protolint:allow(P4: dense per-(src,dst) receive windows; ROADMAP item 2 pools them over active peers)
      rx_(static_cast<std::size_t>(fabric.nodes())) {}

std::int32_t Reliability::alloc_slot() {
  if (slots_free_ >= 0) {
    const std::int32_t idx = slots_free_;
    slots_free_ = slots_[static_cast<std::size_t>(idx)].next_free;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::int32_t>(slots_.size() - 1);
}

void Reliability::retire_slot(std::int32_t idx) {
  TxSlot& s = slots_[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  s.payload.poison();  // a late consume of a retired slot must abort
#endif
  s.delivered = false;
  s.seq = 0;
  s.bytes = 0;
  s.rto = {};
  s.next_free = slots_free_;
  slots_free_ = idx;
}

void Reliability::send(sim::Time depart, int dst, std::uint64_t bytes,
                       sim::Nic::Deliver deliver) {
  NVGAS_CHECK_MSG(dst != node_,
                  "loopback frames never enter the reliability channel");
  NVGAS_SHARD_GUARD("reliability tx window", node_, &fabric_->engine());
  TxChannel& ch = tx_[static_cast<std::size_t>(dst)];
  const std::uint64_t seq = ch.next_seq++;
  const std::int32_t idx = alloc_slot();
  TxSlot& s = slots_[static_cast<std::size_t>(idx)];
  s.seq = seq;
  s.bytes = bytes;
  s.payload = std::move(deliver);
  s.rto_ns = cfg_.retransmit_timeout_ns;
  s.delivered = false;
  ch.unacked.emplace(seq, idx);
  send_frame(depart, dst, seq);
  arm_rto(depart, dst, seq);
}

void Reliability::send_frame(sim::Time depart, int dst, std::uint64_t seq) {
  NVGAS_SHARD_GUARD("reliability tx window", node_, &fabric_->engine());
  TxChannel& ch = tx_[static_cast<std::size_t>(dst)];
  const auto it = ch.unacked.find(seq);
  NVGAS_CHECK_MSG(it != ch.unacked.end(), "framing a retired seq");
  const TxSlot& s = slots_[static_cast<std::size_t>(it->second)];

  // Piggyback our cumulative floor for dst's reverse channel; a pending
  // delayed pure ack becomes redundant and is cancelled.
  RxChannel& r = rx_[static_cast<std::size_t>(dst)];
  if (r.ack_armed) {
    (void)fabric_->engine().cancel(r.ack_timer);
    r.ack_armed = false;
    r.ack_timer = {};
  }
  const std::uint64_t piggy = r.floor;

  // The wire frame: a re-invocable POD closure (survives fault
  // duplication); the payload closure stays in the window slot.
  Reliability* peer = &group_->at(dst);
  const int src = node_;
  fabric_->nic(node_).send(  // simlint:allow(D8: self-indexed — the sender's own NIC; Nic::send is the sanctioned injection point)
      depart, dst, cfg_.rel_header_bytes + s.bytes,
      [peer, src, seq, piggy](sim::Time t) { peer->on_data(t, src, seq, piggy); });
}

void Reliability::arm_rto(sim::Time ref, int dst, std::uint64_t seq) {
  // The retransmit timer must live on this (sender) node's lane: it
  // mutates the window slot when it fires.
  NVGAS_SHARD_GUARD("reliability rto timer", node_, &fabric_->engine());
  TxChannel& ch = tx_[static_cast<std::size_t>(dst)];
  const auto it = ch.unacked.find(seq);
  NVGAS_CHECK_MSG(it != ch.unacked.end(), "arming RTO for a retired seq");
  TxSlot& s = slots_[static_cast<std::size_t>(it->second)];
  s.rto = fabric_->engine().at_cancellable(
      ref + s.rto_ns, [this, dst, seq] { on_rto(dst, seq); });
}

void Reliability::on_rto(int dst, std::uint64_t seq) {
  NVGAS_SHARD_GUARD("reliability rto timer", node_, &fabric_->engine());
  TxChannel& ch = tx_[static_cast<std::size_t>(dst)];
  const auto it = ch.unacked.find(seq);
  // Retirement cancels the timer, so a fired RTO always finds its slot.
  NVGAS_CHECK_MSG(it != ch.unacked.end(), "RTO fired for a retired seq");
  TxSlot& s = slots_[static_cast<std::size_t>(it->second)];
  s.rto = {};
  ++fabric_->counters().net_retransmits;
  s.rto_ns = std::min<sim::Time>(s.rto_ns * 2, cfg_.retransmit_backoff_cap_ns);
  // Resend even if already delivered: the ack was lost, and the
  // retransmitted frame solicits a fresh one via the dedup path.
  const sim::Time now = fabric_->engine().now();
  send_frame(now, dst, seq);
  arm_rto(now, dst, seq);
}

void Reliability::on_data(sim::Time t, int src, std::uint64_t seq,
                          std::uint64_t acked) {
  NVGAS_SHARD_GUARD("reliability rx channel", node_, &fabric_->engine());
  process_ack(src, acked);
  RxChannel& rx = rx_[static_cast<std::size_t>(src)];
  if (seq <= rx.floor || rx.buffered.count(seq) != 0) {
    // Duplicate (wire dup, or a retransmit racing its own ack). Re-ack:
    // the sender retransmitting means our previous ack didn't land.
    ++fabric_->counters().net_dup_discards;
    schedule_ack(t, src);
    return;
  }
  if (seq == rx.floor + 1) {
    const std::uint64_t old_floor = rx.floor;
    rx.floor = seq;
    auto it = rx.buffered.begin();
    while (it != rx.buffered.end() && *it == rx.floor + 1) {
      rx.floor = *it;
      it = rx.buffered.erase(it);
    }
    const std::uint64_t new_floor = rx.floor;
    // Arm the ack BEFORE delivering: the upper layer's reaction may send
    // a reverse frame that cancels it and piggybacks instead.
    schedule_ack(t, src);
    for (std::uint64_t s = old_floor + 1; s <= new_floor; ++s) {
      group_->at(src).consume_payload(t, node_, s);
    }
  } else {
    rx.buffered.insert(seq);
    schedule_ack(t, src);
  }
}

void Reliability::on_ack(sim::Time /*t*/, int src, std::uint64_t acked) {
  process_ack(src, acked);
}

void Reliability::deliver_payload(sim::Time t, int dst, std::uint64_t seq) {
  sim::Nic::Deliver payload;
  {
    // Classic-mode equivalent of consume_payload's hop 1: the window slot
    // belongs to this (sender) node's lane even though the accept that
    // called us ran at the receiver.
    NVGAS_SHARD_HOP(&fabric_->engine(), node_);
    NVGAS_SHARD_GUARD("reliability tx window", node_, &fabric_->engine());
    TxChannel& ch = tx_[static_cast<std::size_t>(dst)];
    const auto it = ch.unacked.find(seq);
    NVGAS_CHECK_MSG(it != ch.unacked.end(),
                    "payload consumed for a retired seq");
    TxSlot& s = slots_[static_cast<std::size_t>(it->second)];
    NVGAS_CHECK_MSG(!s.delivered, "payload consumed twice");
    s.delivered = true;
    // Move out before invoking: the payload may reentrantly send() and
    // grow slots_, invalidating `s`. Nothing touches the slot afterwards.
    payload = std::move(s.payload);
  }
  // The payload acts on the consumer's state, so it runs in the caller's
  // (receiver's) attribution — mirroring consume_payload's hop 2.
  payload(t);
}

void Reliability::consume_payload(sim::Time t, int consumer, std::uint64_t seq) {
  auto& engine = fabric_->engine();
  if (!engine.sharded()) {
    deliver_payload(t, consumer, seq);
    return;
  }
  // Hop 1: consume on the sender's own lane (this object's node).
  engine.post(static_cast<std::uint32_t>(node_), t, [this, consumer, seq] {
    TxChannel& ch = tx_[static_cast<std::size_t>(consumer)];
    const auto it = ch.unacked.find(seq);
    NVGAS_CHECK_MSG(it != ch.unacked.end(),
                    "payload consumed for a retired seq");
    TxSlot& s = slots_[static_cast<std::size_t>(it->second)];
    NVGAS_CHECK_MSG(!s.delivered, "payload consumed twice");
    s.delivered = true;
    // Hop 2: run the upper-layer delivery back on the consumer's lane,
    // at that lane's then-current time.
    auto& e = fabric_->engine();
    e.post(static_cast<std::uint32_t>(consumer), e.now(),
           [f = fabric_, payload = std::move(s.payload)]() mutable {
             payload(f->engine().now());
           });
  });
}

void Reliability::process_ack(int dst, std::uint64_t acked) {
  NVGAS_SHARD_GUARD("reliability tx window", node_, &fabric_->engine());
  TxChannel& ch = tx_[static_cast<std::size_t>(dst)];
  while (!ch.unacked.empty()) {
    const auto it = ch.unacked.begin();
    if (it->first > acked) break;
    TxSlot& s = slots_[static_cast<std::size_t>(it->second)];
    // The receiver's floor only advances on accept, which synchronously
    // consumed the payload here at the sender — so a covered seq is
    // always delivered.
    NVGAS_CHECK_MSG(s.delivered, "cumulative ack covers an undelivered seq");
    if (s.rto.valid()) {
      (void)fabric_->engine().cancel(s.rto);
    }
    retire_slot(it->second);
    ch.unacked.erase(it);
  }
}

void Reliability::schedule_ack(sim::Time t, int src) {
  NVGAS_SHARD_GUARD("reliability ack timer", node_, &fabric_->engine());
  RxChannel& rx = rx_[static_cast<std::size_t>(src)];
  if (rx.ack_armed) return;
  rx.ack_armed = true;
  rx.ack_timer = fabric_->engine().at_cancellable(
      t + cfg_.ack_delay_ns, [this, src] {
        RxChannel& r = rx_[static_cast<std::size_t>(src)];
        r.ack_armed = false;
        r.ack_timer = {};
        send_pure_ack(fabric_->engine().now(), src);
      });
}

void Reliability::send_pure_ack(sim::Time t, int dst) {
  ++fabric_->counters().net_acks;
  // Pure acks are unsequenced and unretransmitted; the wire may eat
  // them, in which case the peer's next retransmit solicits another.
  Reliability* peer = &group_->at(dst);
  const int src = node_;
  const std::uint64_t acked = rx_[static_cast<std::size_t>(dst)].floor;
  fabric_->nic(node_).send(  // simlint:allow(D8: self-indexed — the sender's own NIC; Nic::send is the sanctioned injection point)
      t, dst, cfg_.rel_header_bytes,
      [peer, src, acked](sim::Time at) { peer->on_ack(at, src, acked); });
}

std::uint64_t Reliability::unacked() const {
  std::uint64_t n = 0;
  for (const auto& ch : tx_) n += ch.unacked.size();
  return n;
}

#if NVGAS_SHARDSAN
void Reliability::shardsan_rearm_oldest_rto(int dst) {
  TxChannel& ch = tx_.at(static_cast<std::size_t>(dst));
  NVGAS_CHECK_MSG(!ch.unacked.empty(), "no unacked slot to re-arm");
  arm_rto(fabric_->engine().now(), dst, ch.unacked.begin()->first);
}
#endif

#ifdef NVGAS_SIMSAN
void Reliability::simsan_double_cancel_rto(int dst) {
  TxChannel& ch = tx_.at(static_cast<std::size_t>(dst));
  NVGAS_CHECK_MSG(!ch.unacked.empty(), "no unacked slot to cancel");
  TxSlot& s = slots_[static_cast<std::size_t>(ch.unacked.begin()->second)];
  (void)fabric_->engine().cancel(s.rto);
  (void)fabric_->engine().cancel(s.rto);  // double cancel: SimSan aborts
}
#endif

ReliabilityGroup::ReliabilityGroup(sim::Fabric& fabric, const NetConfig& cfg) {
  // protolint:allow(P4: simulator-host array, one Reliability instance per simulated node)
  rels_.reserve(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    rels_.push_back(std::make_unique<Reliability>(fabric, n, cfg, *this));
  }
}

void channel_send(sim::Fabric& fabric, ReliabilityGroup* rel, int from,
                  int dst, sim::Time depart, std::uint64_t bytes,
                  sim::Nic::Deliver fn) {
  if (from == dst || fabric.faults() == nullptr) {
    fabric.nic(from).send(depart, dst, bytes, std::move(fn));  // simlint:allow(D8: self-indexed — the sender's own NIC; Nic::send is the sanctioned injection point)
    return;
  }
  NVGAS_CHECK_MSG(
      rel != nullptr,
      "fault injection armed on an endpoint outside a reliability group");
  rel->at(from).send(depart, dst, bytes, std::move(fn));
}

}  // namespace nvgas::net
