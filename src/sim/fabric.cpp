#include "sim/fabric.hpp"

namespace nvgas::sim {

Fabric::Fabric(const MachineParams& params)
    : params_(params),
      topology_(params.topology, params.nodes, params.dragonfly_group_size),
      jitter_rng_(params.jitter_seed) {
  NVGAS_CHECK(params_.nodes >= 1);
  if (params_.threads > 0 && params_.nodes > 1) {
    // Conservative-parallel mode: one engine lane per node, advancing in
    // safe windows of the minimum cross-node wire latency (topology hops
    // and jitter only add on top, so wire_latency_ns is a valid global
    // lookahead lower bound).
    NVGAS_CHECK_MSG(params_.wire_latency_ns >= 1,
                    "sharded engine needs wire_latency_ns >= 1 for lookahead");
    engine_.configure_shards(static_cast<std::uint32_t>(params_.nodes),
                             params_.wire_latency_ns, params_.threads);
    // protolint:allow(P4: simulator-host array, one jitter RNG stream per simulated node for determinism)
    jitter_rngs_.reserve(static_cast<std::size_t>(params_.nodes));
    for (int n = 0; n < params_.nodes; ++n) {
      jitter_rngs_.emplace_back(
          util::SplitMix64(params_.jitter_seed ^
                           static_cast<std::uint64_t>(n))
              .next());
    }
  }
  counters_.resize(engine_.shards());
  // protolint:allow(P4: simulator-host array, the simulated machine's nodes themselves)
  nodes_.reserve(static_cast<std::size_t>(params_.nodes));
  for (int n = 0; n < params_.nodes; ++n) {
    Node node;
    node.cpu = std::make_unique<Cpu>(
        engine_, n, params_.workers_per_node,
        counters_[engine_.sharded() ? static_cast<std::size_t>(n) : 0],
        &trace_);
    node.nic = std::make_unique<Nic>(*this, n);
    node.mem = std::make_unique<Memory>(params_.mem_bytes_per_node);
    nodes_.push_back(std::move(node));
  }
}

}  // namespace nvgas::sim
