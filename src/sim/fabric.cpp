#include "sim/fabric.hpp"

namespace nvgas::sim {

Fabric::Fabric(const MachineParams& params)
    : params_(params),
      topology_(params.topology, params.nodes, params.dragonfly_group_size),
      jitter_rng_(params.jitter_seed) {
  NVGAS_CHECK(params_.nodes >= 1);
  nodes_.reserve(static_cast<std::size_t>(params_.nodes));
  for (int n = 0; n < params_.nodes; ++n) {
    Node node;
    node.cpu = std::make_unique<Cpu>(engine_, n, params_.workers_per_node, counters_, &trace_);
    node.nic = std::make_unique<Nic>(*this, n);
    node.mem = std::make_unique<Memory>(params_.mem_bytes_per_node);
    nodes_.push_back(std::move(node));
  }
}

}  // namespace nvgas::sim
