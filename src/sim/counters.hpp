// Simulation-wide event counters.
//
// The paper's argument is structural (how many messages, hops, CPU tasks
// are on each critical path), so these counters are first-class outputs:
// tests assert on them and benches report them next to times.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nvgas::sim {

struct Counters {
  // Network.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;

  // CPU.
  std::uint64_t cpu_tasks = 0;
  std::uint64_t cpu_busy_ns = 0;

  // RMA verbs.
  std::uint64_t rma_puts = 0;
  std::uint64_t rma_gets = 0;
  std::uint64_t rma_atomics = 0;

  // Parcels (two-sided).
  std::uint64_t parcels_sent = 0;
  std::uint64_t parcels_eager = 0;
  std::uint64_t parcels_rendezvous = 0;

  // NIC translation unit (network-managed AGAS).
  std::uint64_t nic_tlb_hits = 0;
  std::uint64_t nic_tlb_misses = 0;
  std::uint64_t nic_forwards = 0;
  std::uint64_t nic_tlb_updates = 0;

  // Software AGAS.
  std::uint64_t sw_cache_hits = 0;
  std::uint64_t sw_cache_misses = 0;
  std::uint64_t sw_cache_invalidations = 0;
  std::uint64_t directory_lookups = 0;
  std::uint64_t directory_nacks = 0;

  // GAS-level operations.
  std::uint64_t gas_memputs = 0;
  std::uint64_t gas_memgets = 0;
  std::uint64_t gas_atomics = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migration_bytes = 0;

  // Wire-fault injection (sim/faults) and the end-to-end reliability
  // layer that survives it (net/reliability). The fault ledger is what
  // conservation checks reconcile against: at quiescence,
  // delivered = sent - faults_injected_drops + faults_injected_dups
  // (and the byte analogue), because every injected frame is either
  // dropped, delivered once, or delivered twice.
  std::uint64_t faults_injected_drops = 0;
  std::uint64_t faults_dropped_bytes = 0;
  std::uint64_t faults_injected_dups = 0;
  std::uint64_t faults_dup_bytes = 0;
  std::uint64_t faults_injected_delays = 0;
  std::uint64_t net_retransmits = 0;    // RTO-fired frame resends
  std::uint64_t net_dup_discards = 0;   // receiver-side dedup hits
  std::uint64_t net_acks = 0;           // pure (non-piggybacked) ack frames

  // Load balancer (src/lb).
  std::uint64_t lb_epochs = 0;
  std::uint64_t lb_migrations = 0;        // issued to the manager
  std::uint64_t lb_rejected_cost = 0;     // plan entries failing the cost gate
  std::uint64_t lb_throttled = 0;         // plan entries over max_inflight
  std::uint64_t lb_bounced = 0;           // completions that missed their dst

  void reset() { *this = Counters{}; }

  // Field-wise accumulation, used by the sharded engine's quiesce-time
  // aggregation (Fabric::counters_total sums per-shard blocks in shard-id
  // order). Every counter is a sum, so totals are thread-count-invariant.
  void add(const Counters& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_delivered += o.messages_delivered;
    bytes_delivered += o.bytes_delivered;
    cpu_tasks += o.cpu_tasks;
    cpu_busy_ns += o.cpu_busy_ns;
    rma_puts += o.rma_puts;
    rma_gets += o.rma_gets;
    rma_atomics += o.rma_atomics;
    parcels_sent += o.parcels_sent;
    parcels_eager += o.parcels_eager;
    parcels_rendezvous += o.parcels_rendezvous;
    nic_tlb_hits += o.nic_tlb_hits;
    nic_tlb_misses += o.nic_tlb_misses;
    nic_forwards += o.nic_forwards;
    nic_tlb_updates += o.nic_tlb_updates;
    sw_cache_hits += o.sw_cache_hits;
    sw_cache_misses += o.sw_cache_misses;
    sw_cache_invalidations += o.sw_cache_invalidations;
    directory_lookups += o.directory_lookups;
    directory_nacks += o.directory_nacks;
    gas_memputs += o.gas_memputs;
    gas_memgets += o.gas_memgets;
    gas_atomics += o.gas_atomics;
    migrations += o.migrations;
    migration_bytes += o.migration_bytes;
    faults_injected_drops += o.faults_injected_drops;
    faults_dropped_bytes += o.faults_dropped_bytes;
    faults_injected_dups += o.faults_injected_dups;
    faults_dup_bytes += o.faults_dup_bytes;
    faults_injected_delays += o.faults_injected_delays;
    net_retransmits += o.net_retransmits;
    net_dup_discards += o.net_dup_discards;
    net_acks += o.net_acks;
    lb_epochs += o.lb_epochs;
    lb_migrations += o.lb_migrations;
    lb_rejected_cost += o.lb_rejected_cost;
    lb_throttled += o.lb_throttled;
    lb_bounced += o.lb_bounced;
  }

  // Stable name→value view for reporting and for test snapshots.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> items() const {
    return {
        {"messages_sent", messages_sent},
        {"bytes_sent", bytes_sent},
        {"messages_delivered", messages_delivered},
        {"bytes_delivered", bytes_delivered},
        {"cpu_tasks", cpu_tasks},
        {"cpu_busy_ns", cpu_busy_ns},
        {"rma_puts", rma_puts},
        {"rma_gets", rma_gets},
        {"rma_atomics", rma_atomics},
        {"parcels_sent", parcels_sent},
        {"parcels_eager", parcels_eager},
        {"parcels_rendezvous", parcels_rendezvous},
        {"nic_tlb_hits", nic_tlb_hits},
        {"nic_tlb_misses", nic_tlb_misses},
        {"nic_forwards", nic_forwards},
        {"nic_tlb_updates", nic_tlb_updates},
        {"sw_cache_hits", sw_cache_hits},
        {"sw_cache_misses", sw_cache_misses},
        {"sw_cache_invalidations", sw_cache_invalidations},
        {"directory_lookups", directory_lookups},
        {"directory_nacks", directory_nacks},
        {"gas_memputs", gas_memputs},
        {"gas_memgets", gas_memgets},
        {"gas_atomics", gas_atomics},
        {"migrations", migrations},
        {"migration_bytes", migration_bytes},
        {"faults_injected_drops", faults_injected_drops},
        {"faults_dropped_bytes", faults_dropped_bytes},
        {"faults_injected_dups", faults_injected_dups},
        {"faults_dup_bytes", faults_dup_bytes},
        {"faults_injected_delays", faults_injected_delays},
        {"net_retransmits", net_retransmits},
        {"net_dup_discards", net_dup_discards},
        {"net_acks", net_acks},
        {"lb_epochs", lb_epochs},
        {"lb_migrations", lb_migrations},
        {"lb_rejected_cost", lb_rejected_cost},
        {"lb_throttled", lb_throttled},
        {"lb_bounced", lb_bounced},
    };
  }
};

}  // namespace nvgas::sim
