#include "sim/shardsan.hpp"

#if NVGAS_SHARDSAN

#include <cinttypes>
#include <cstdio>

#include "util/assert.hpp"

namespace nvgas::sim::shardsan {

namespace {
// simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
thread_local TlCtx g_ctx;

// Render a lane id for diagnostics: node number or "host".
void fmt_lane(std::uint32_t lane, char* buf, std::size_t n) {
  if (lane == kNone) {
    std::snprintf(buf, n, "host");
  } else {
    std::snprintf(buf, n, "lane %" PRIu32, lane);
  }
}
}  // namespace

TlCtx& tls() { return g_ctx; }

std::uint32_t current_lane(const void* domain) {
  const TlCtx& c = g_ctx;
  return c.domain == domain ? c.lane : kNone;
}

void check(const char* family, std::uint32_t owner, const void* domain,
           const char* file, int line) {
  // Unbound objects (standalone unit-test use, no machine) are unchecked.
  if (owner == kNone) return;
  const TlCtx& c = g_ctx;
  // Sanctioned contexts: adopted host (Engine::ShardContext), the serial
  // at_global barrier, and explicit NVGAS_SHARD_CROSS contract scopes.
  if (c.sanction > 0) return;
  // Unattributed contexts — quiesced host between runs, raw
  // host-scheduled events, or another engine's execution — may read and
  // mutate freely: nothing else can be running.
  if (c.domain != domain || c.lane == kNone) return;
  if (c.lane == owner) return;

  char who[32];
  char win[64];
  fmt_lane(c.lane, who, sizeof(who));
  if (c.win_open) {
    std::snprintf(win, sizeof(win), "window=(deadline %" PRIu64 "]",
                  static_cast<std::uint64_t>(c.win_deadline));
  } else {
    std::snprintf(win, sizeof(win), "window=closed");
  }
  char msg[256];
  std::snprintf(msg, sizeof(msg),
                "ShardSan: cross-lane access to %s (owner lane %" PRIu32
                ") from %s context at t=%" PRIu64
                " %s; route via Engine::post/at_global or adopt the lane "
                "(Engine::ShardContext)",
                family, owner, who, static_cast<std::uint64_t>(c.now), win);
  util::panic(file, line, msg);
}

void audit_fail(const char* what, const char* file, int line) {
  const TlCtx& c = g_ctx;
  char who[32];
  fmt_lane(c.lane, who, sizeof(who));
  char msg[256];
  std::snprintf(msg, sizeof(msg),
                "ShardSan window auditor: %s (context %s, t=%" PRIu64 ")",
                what, who, static_cast<std::uint64_t>(c.now));
  util::panic(file, line, msg);
}

void audit_event_time(Time at, const char* file, int line) {
  const TlCtx& c = g_ctx;
  if (!c.win_open || at <= c.win_deadline) return;
  char msg[160];
  std::snprintf(msg, sizeof(msg),
                "ShardSan window auditor: event at t=%" PRIu64
                " executed past its safe window deadline %" PRIu64,
                static_cast<std::uint64_t>(at),
                static_cast<std::uint64_t>(c.win_deadline));
  util::panic(file, line, msg);
}

}  // namespace nvgas::sim::shardsan

#endif  // NVGAS_SHARDSAN
