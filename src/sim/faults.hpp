// Deterministic wire-fault injection.
//
// The simulated fabric is lossless by construction; this layer makes it
// deliberately unreliable — dropped, duplicated, and extra-delayed
// messages plus timed link brownouts — while staying bit-for-bit
// reproducible. Each (src, dst) link owns an independent seeded RNG
// stream (SplitMix64-expanded from plan.seed and the link key) and a
// frame counter, so a fault decision depends only on the link and how
// many frames preceded it there: replaying the same run re-draws the
// same faults, and mcheck schedules stay replayable from their schedule
// string alone.
//
// The injector hooks the single sanctioned message-injection point
// (Nic::send, the same spot the mcheck Explorer owns; see simlint rule
// D6). A World arms it only when Config::faults.active() — an empty
// plan installs nothing, so the reliable build's traces are untouched
// (the inertness gate in tests/net_faults_test.cpp proves it).
//
// Every injected fault is counted (faults_injected_* in sim::Counters)
// so conservation checks can reconcile delivered = sent - drops + dups
// instead of silently losing bytes. See docs/FAULT_INJECTION.md.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/counters.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace nvgas::sim {

class Fabric;

// One probabilistic fault rule. src/dst of -1 match any node; the first
// matching rule in FaultPlan::rules wins, so specific links can be
// listed before a catch-all.
struct FaultRule {
  int src = -1;
  int dst = -1;
  double drop = 0.0;      // P(frame silently dropped)
  double dup = 0.0;       // P(frame delivered twice)
  double delay = 0.0;     // P(frame gets extra wire delay)
  Time delay_ns = 0;      // extra delay drawn uniformly from [1, delay_ns]
};

// A timed link outage: every matching frame departing in [begin, end)
// is dropped. Finite by construction, so retransmission always has a
// clear window to succeed in.
struct Brownout {
  int src = -1;
  int dst = -1;
  Time begin = 0;
  Time end = 0;
};

// Deterministic single-frame drop: the nth frame (0-based, counted per
// link) on every matching link is dropped. mcheck scenarios use these to
// force a retransmission without any probabilistic draw.
struct ForcedDrop {
  int src = -1;
  int dst = -1;
  std::uint64_t nth = 0;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  std::vector<Brownout> brownouts;
  std::vector<ForcedDrop> forced_drops;
  std::uint64_t seed = 0xfa17fa17;

  // True when the plan can affect any frame at all. World installs a
  // FaultInjector only in that case; an inactive plan leaves the fabric
  // byte-identical to a build without this subsystem.
  [[nodiscard]] bool active() const;
};

// What the injector decided for one frame.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  Time extra_delay = 0;      // added to the primary copy's wire flight
  Time dup_extra_delay = 0;  // added to the duplicate copy's wire flight
};

class FaultInjector {
 public:
  // Counters route through the fabric's current-shard block (per-source
  // attribution under the sharded engine; the single global block
  // otherwise). With the sharded engine, every (src, dst) link stream is
  // pre-seeded here so on_injection never mutates the shared map from a
  // lane — each link's state is then touched only by its source's lane.
  FaultInjector(const FaultPlan& plan, Fabric& fabric);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Called by Nic::send for every non-loopback frame; `depart` is the
  // tx-port departure time (brownouts key off it). Counts whatever it
  // injects.
  FaultDecision on_injection(int src, int dst, Time depart,
                             std::uint64_t bytes);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct LinkState {
    // simlint:allow(D2: seeded fault plan — per-link stream derived from plan.seed)
    util::Rng rng;
    std::uint64_t frames = 0;
  };

  [[nodiscard]] static std::uint64_t link_key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }
  LinkState& link(int src, int dst);
  [[nodiscard]] const FaultRule* rule_for(int src, int dst) const;

  FaultPlan plan_;
  Fabric* fabric_;
  // simlint:allow(D1: keyed access only, never iterated)
  std::unordered_map<std::uint64_t, LinkState> links_;
};

}  // namespace nvgas::sim
