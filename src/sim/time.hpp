// Simulated time base: unsigned nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace nvgas::sim {

using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

// Convert a byte count and a per-byte cost in (possibly fractional)
// nanoseconds into an integral duration, rounding up so that zero-cost
// transfers of nonzero size never happen when the rate is nonzero.
constexpr Time bytes_time(std::uint64_t bytes, double ns_per_byte) {
  if (bytes == 0 || ns_per_byte <= 0.0) return 0;
  const double t = static_cast<double>(bytes) * ns_per_byte;
  const auto whole = static_cast<Time>(t);
  return whole + (static_cast<double>(whole) < t ? 1 : 0);
}

}  // namespace nvgas::sim
