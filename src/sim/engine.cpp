#include "sim/engine.hpp"

namespace nvgas::sim {

bool Engine::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires the
  // usual const_cast dance or a copy. The callback is heap-allocated state
  // (std::function), so move it: the element is popped immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  NVGAS_DCHECK(ev.at >= now_);
  now_ = ev.at;
  note_executed(ev);
  ev.fn();
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.top().at <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace nvgas::sim
