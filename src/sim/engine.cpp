#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "util/bitops.hpp"

namespace nvgas::sim {

// simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
thread_local Engine* Engine::tl_engine = nullptr;
// simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
thread_local std::uint32_t Engine::tl_lane = 0;
// simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
thread_local bool Engine::tl_adopted = false;

namespace {
// Restore the host thread's previous execution context on scope exit, so
// nested engines (a World built inside another World's event) unwind
// correctly.
struct LaneScope {
  LaneScope(Engine** eng_slot, std::uint32_t* lane_slot, Engine* eng,
            std::uint32_t lane)
      : eng_slot_(eng_slot),
        lane_slot_(lane_slot),
        prev_eng_(*eng_slot),
        prev_lane_(*lane_slot) {
    *eng_slot_ = eng;
    *lane_slot_ = lane;
  }
  ~LaneScope() {
    *eng_slot_ = prev_eng_;
    *lane_slot_ = prev_lane_;
  }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  Engine** eng_slot_;
  std::uint32_t* lane_slot_;
  Engine* prev_eng_;
  std::uint32_t prev_lane_;
};
}  // namespace

// ---- Lane: one complete event queue ---------------------------------------

void Engine::Lane::init(Time horizon_ns, std::uint32_t nshards) {
  // At least 1024 slots so the occupancy bitmaps have whole words to
  // work with; the default 64 µs horizon is 65536 slots (one per ns).
  const Time clamped = std::max<Time>(horizon_ns, 1024);
  slots = static_cast<std::uint32_t>(util::ceil_pow2(clamped));
  mask = slots - 1;
  bucket_head.assign(slots, -1);
  bucket_tail.assign(slots, -1);
  occ.assign(slots / 64, 0);
  occ_sum.assign((slots / 64 + 63) / 64, 0);
  out.resize(nshards);
}

#ifdef NVGAS_SIMSAN
// Canary + lifecycle audit on every pool transition. `seq` doubles as
// the generation tag: it is unique per schedule() and never reused, so
// a stale TimerId can never match a recycled-and-reused node.
void Engine::Lane::simsan_audit(const EventNode& n, const char* site) const {
  if (n.canary_pre != kSimsanCanary || n.canary_post != kSimsanCanary) {
    util::panic(__FILE__, __LINE__, site);
  }
}
#endif

std::int32_t Engine::Lane::alloc_node() {
  if (free_head >= 0) {
    const std::int32_t idx = free_head;
    free_head = pool[static_cast<std::size_t>(idx)].next;
#ifdef NVGAS_SIMSAN
    const EventNode& n = pool[static_cast<std::size_t>(idx)];
    simsan_audit(n, "SimSan: canary smashed on free-list node (alloc)");
    NVGAS_CHECK_MSG(!n.live, "SimSan: free list holds a live event node");
    NVGAS_CHECK_MSG(n.fn.is_poisoned(),
                    "SimSan: recycled node escaped poisoning");
#endif
    return idx;
  }
  pool.emplace_back();
  return static_cast<std::int32_t>(pool.size() - 1);
}

void Engine::Lane::recycle(std::int32_t idx) {
  EventNode& n = pool[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  simsan_audit(n, "SimSan: canary smashed on event node (recycle)");
  NVGAS_CHECK_MSG(n.live, "SimSan: double recycle of event node");
  n.fn.poison();  // a stale invocation now aborts with a diagnostic
#else
  n.fn.reset();
#endif
  n.live = false;
  n.next = free_head;
  free_head = idx;
}

void Engine::Lane::set_bit(std::uint32_t slot) {
  occ[slot >> 6] |= 1ULL << (slot & 63);
  occ_sum[slot >> 12] |= 1ULL << ((slot >> 6) & 63);
}

void Engine::Lane::clear_bit(std::uint32_t slot) {
  occ[slot >> 6] &= ~(1ULL << (slot & 63));
  if (occ[slot >> 6] == 0) {
    occ_sum[slot >> 12] &= ~(1ULL << ((slot >> 6) & 63));
  }
}

void Engine::Lane::push_bucket(std::int32_t idx) {
  EventNode& n = pool[static_cast<std::size_t>(idx)];
  const auto slot = static_cast<std::uint32_t>(n.at & mask);
  n.next = -1;
  if (bucket_head[slot] < 0) {
    bucket_head[slot] = idx;
    bucket_tail[slot] = idx;
    set_bit(slot);
  } else {
    pool[static_cast<std::size_t>(bucket_tail[slot])].next = idx;
    bucket_tail[slot] = idx;
  }
  ++wheel_count;
}

void Engine::Lane::remove_bucket_head(std::uint32_t slot) {
  const std::int32_t idx = bucket_head[slot];
  NVGAS_DCHECK(idx >= 0);
  bucket_head[slot] = pool[static_cast<std::size_t>(idx)].next;
  if (bucket_head[slot] < 0) {
    bucket_tail[slot] = -1;
    clear_bit(slot);
  }
  --wheel_count;
}

std::int32_t Engine::Lane::scan_range(std::uint32_t from,
                                      std::uint32_t end) const {
  if (from >= end) return -1;
  std::uint32_t w = from >> 6;
  const std::uint32_t end_w = (end + 63) >> 6;
  std::uint64_t word = occ[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      const auto s =
          (w << 6) | static_cast<std::uint32_t>(std::countr_zero(word));
      return s < end ? static_cast<std::int32_t>(s) : -1;
    }
    ++w;
    if (w >= end_w) return -1;
    // Jump over runs of empty words through the summary bitmap.
    std::uint32_t sw = w >> 6;
    std::uint64_t sword = occ_sum[sw] & (~0ULL << (w & 63));
    while (sword == 0) {
      ++sw;
      if ((sw << 6) >= end_w) return -1;
      sword = occ_sum[sw];
    }
    w = (sw << 6) | static_cast<std::uint32_t>(std::countr_zero(sword));
    if (w >= end_w) return -1;
    word = occ[w];
  }
}

std::uint64_t Engine::Lane::schedule(Time t, Callback fn,
                                     std::int32_t* out_idx) {
  NVGAS_CHECK_MSG(t >= now, "scheduling into the past");
  const std::int32_t idx = alloc_node();
  EventNode& n = pool[static_cast<std::size_t>(idx)];
  n.at = t;
  n.seq = next_seq++;
  n.cancelled = false;
  n.live = true;
  n.fn = std::move(fn);
  ++pending;
  // An empty wheel can be re-anchored anywhere; park the window right at
  // this event so it lands in a bucket instead of the overflow heap.
  if (wheel_count == 0) window_start = t;
  if (t >= window_start && t - window_start < slots) {
    push_bucket(idx);
  } else {
    far.push(FarRef{t, n.seq, idx});
  }
  *out_idx = idx;
  return n.seq;
}

bool Engine::Lane::cancel(std::uint32_t node, std::uint64_t seq) {
  if (node >= pool.size()) return false;
  EventNode& n = pool[node];
#ifdef NVGAS_SIMSAN
  // Generation audit: `seq` matching means this token refers to exactly
  // this scheduled instance. Cancelling it twice is a caller lifecycle
  // bug (the first cancel already released the closure); cancelling
  // after the event fired is legal API use and still returns false
  // below, because the node's seq has moved on or the node is free.
  if (n.live && n.seq == seq && n.cancelled) {
    util::panic(__FILE__, __LINE__,
                "SimSan: double cancel of timer (token already cancelled)");
  }
#endif
  if (!n.live || n.cancelled || n.seq != seq) return false;
  n.cancelled = true;
  n.fn.reset();  // release the closure eagerly
  --pending;
  return true;
}

void Engine::Lane::decant() {
  while (!far.empty()) {
    const FarRef top = far.top();
    // Entries below the window (possible only after a re-anchor raced an
    // insert) or beyond it stay in the heap; pop_next handles them.
    if (top.at < window_start || top.at - window_start >= slots) break;
    far.pop();
    if (pool[static_cast<std::size_t>(top.node)].cancelled) {
      recycle(top.node);
      continue;
    }
    push_bucket(top.node);
  }
}

std::int32_t Engine::Lane::pop_next(bool bounded, Time deadline) {
  while (true) {
    // Wheel candidate: earliest occupied slot, circular from the window
    // base. All wheel events lie in [window_start, window_start +
    // slots), so slot order from the base is time order.
    std::int32_t wslot = -1;
    std::int32_t widx = -1;
    if (wheel_count > 0) {
      const auto base = static_cast<std::uint32_t>(window_start & mask);
      wslot = scan_range(base, slots);
      if (wslot < 0) wslot = scan_range(0, base);
      NVGAS_DCHECK(wslot >= 0);
      widx = bucket_head[static_cast<std::uint32_t>(wslot)];
      if (pool[static_cast<std::size_t>(widx)].cancelled) {
        remove_bucket_head(static_cast<std::uint32_t>(wslot));
        recycle(widx);
        continue;
      }
    }
    // Far candidate: prune cancelled tops.
    if (!far.empty()) {
      const std::int32_t fidx = far.top().node;
      if (pool[static_cast<std::size_t>(fidx)].cancelled) {
        far.pop();
        recycle(fidx);
        continue;
      }
    }

    const bool have_w = widx >= 0;
    const bool have_f = !far.empty();
    if (!have_w && !have_f) return -1;
    bool take_far;
    if (!have_w) {
      take_far = true;
    } else if (!have_f) {
      take_far = false;
    } else {
      const FarRef& f = far.top();
      const EventNode& wn = pool[static_cast<std::size_t>(widx)];
      take_far = f.at < wn.at || (f.at == wn.at && f.seq < wn.seq);
    }
    if (bounded) {
      const Time t =
          take_far ? far.top().at : pool[static_cast<std::size_t>(widx)].at;
      if (t > deadline) return -1;
    }
    if (!take_far) {
      remove_bucket_head(static_cast<std::uint32_t>(wslot));
      return widx;
    }
    const std::int32_t idx = far.top().node;
    far.pop();
    if (wheel_count == 0 && !far.empty()) {
      window_start =
          std::max(window_start, pool[static_cast<std::size_t>(idx)].at);
      decant();
    }
    return idx;
  }
}

void Engine::Lane::execute(std::int32_t idx) {
  EventNode& n = pool[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  simsan_audit(n, "SimSan: canary smashed on event node (execute)");
  NVGAS_CHECK_MSG(n.live && !n.cancelled,
                  "SimSan: executing a recycled or cancelled event node");
#endif
#if NVGAS_SHARDSAN
  const std::uint32_t ss_lane = n.ss_lane;
  // The window's lookahead proof bounds every event this lane may run:
  // executing past the deadline means the window computation was wrong.
  shardsan::audit_event_time(n.at, __FILE__, __LINE__);
#endif
  NVGAS_DCHECK(n.at >= now);
  now = n.at;
  NVGAS_DCHECK(pending > 0);
  --pending;
  // Slide the window base up to now: keeps bitmap scans short, and every
  // pending event is >= now, so the slot mapping stays unique.
  if (now > window_start) window_start = now;
  const Time t = n.at;
  const std::uint64_t seq = n.seq;
  // Pinned tie-break contract: execution order is the strict total order
  // (time, seq) — co-timed events run in scheduling order. mcheck's
  // schedule replay (sim/explorer.hpp) reconstructs delivery orders from
  // this guarantee, so it is asserted in every build type, not just
  // debug. Cancelled events consume a seq but never execute, preserving
  // strict monotonicity here.
  NVGAS_CHECK_MSG(
      !executed_any || t > last_exec_at ||
          (t == last_exec_at && seq > last_exec_seq),
      "event execution violated the pinned (time, seq) total order");
  last_exec_at = t;
  last_exec_seq = seq;
  executed_any = true;
  Callback fn = std::move(n.fn);
  // Recycle before invoking: the callback may schedule events and grow
  // the pool, invalidating the reference.
  recycle(idx);
  note_executed(t, seq);
#if NVGAS_SHARDSAN
  // Re-open the attribution captured at schedule time, so ownership
  // checks see the lane this event chain logically belongs to.
  shardsan::ExecScope ss_scope(ss_domain, ss_lane, t);
#endif
  fn();
}

Time Engine::Lane::next_time() {
  while (true) {
    std::int32_t widx = -1;
    if (wheel_count > 0) {
      const auto base = static_cast<std::uint32_t>(window_start & mask);
      std::int32_t wslot = scan_range(base, slots);
      if (wslot < 0) wslot = scan_range(0, base);
      NVGAS_DCHECK(wslot >= 0);
      widx = bucket_head[static_cast<std::uint32_t>(wslot)];
      if (pool[static_cast<std::size_t>(widx)].cancelled) {
        remove_bucket_head(static_cast<std::uint32_t>(wslot));
        recycle(widx);
        continue;
      }
    }
    if (!far.empty()) {
      const std::int32_t fidx = far.top().node;
      if (pool[static_cast<std::size_t>(fidx)].cancelled) {
        far.pop();
        recycle(fidx);
        continue;
      }
    }
    const bool have_w = widx >= 0;
    const bool have_f = !far.empty();
    if (!have_w && !have_f) return ~Time{0};
    if (!have_w) return far.top().at;
    const Time wt = pool[static_cast<std::size_t>(widx)].at;
    if (!have_f) return wt;
    return std::min(wt, far.top().at);
  }
}

void Engine::Lane::run_window(Time deadline, std::uint64_t cap) {
#if NVGAS_SHARDSAN
  // Publish the window bound the lookahead proof established, for the
  // per-event deadline audit in execute().
  shardsan::WindowScope ss_window(deadline);
#endif
  std::uint64_t n = 0;
  while (n < cap) {
    const std::int32_t idx = pop_next(/*bounded=*/true, deadline);
    if (idx < 0) break;
    execute(idx);
    ++n;
  }
}

// ---- Engine ---------------------------------------------------------------

Engine::Engine(Time horizon_ns) {
  lanes_.resize(1);
  lanes_[0].init(horizon_ns, 1);
#if NVGAS_SHARDSAN
  lanes_[0].ss_domain = this;
#endif
}

Engine::~Engine() {
#if NVGAS_PARALLEL
  stop_pool();
#endif
}

void Engine::configure_shards(std::uint32_t nshards, Time lookahead,
                              int threads, Time horizon_ns) {
  NVGAS_CHECK_MSG(kParallelEnabled,
                  "sharded engine requires -DNVGAS_PARALLEL=ON");
  NVGAS_CHECK(nshards >= 1);
  NVGAS_CHECK_MSG(lookahead >= 1, "sharded engine needs lookahead >= 1 ns");
  NVGAS_CHECK_MSG(lanes_.size() == 1 && lanes_[0].pending == 0 &&
                      lanes_[0].executed == 0,
                  "configure_shards after scheduling or execution");
  lanes_.clear();
  lanes_.resize(nshards);
  for (Lane& l : lanes_) {
    l.init(horizon_ns, nshards);
#if NVGAS_SHARDSAN
    l.ss_domain = this;
#endif
  }
  sharded_ = nshards > 1;
  lookahead_ = lookahead;
  threads_ = std::clamp(threads, 1, static_cast<int>(nshards));
}

Time Engine::now() const {
  if (tl_engine == this) return lanes_[tl_lane].now;
  if (!sharded_) return lanes_[0].now;
  Time t = 0;
  for (const Lane& l : lanes_) t = std::max(t, l.now);
  return t;
}

std::size_t Engine::pending() const {
  std::size_t n = globals_.size() + serial_gout_.size();
  for (const Lane& l : lanes_) {
    n += l.pending + l.gout.size();
    for (const auto& v : l.out) n += v.size();
  }
  return n;
}

std::uint64_t Engine::events_executed() const {
  std::uint64_t n = globals_executed_;
  for (const Lane& l : lanes_) n += l.executed;
  return n;
}

std::size_t Engine::overflow_pending() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.far.size();
  return n;
}

std::uint64_t Engine::trace_hash() const {
  if (!sharded_) return lanes_[0].trace_hash;
  // Deterministic fold over per-lane hashes in lane order, plus the
  // barrier-event stream: a pure function of every lane's executed
  // (time, seq) sequence, and therefore of the program — identical for
  // every host thread count.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(lanes_.size());
  for (const Lane& l : lanes_) {
    mix(l.trace_hash);
    mix(l.executed);
  }
  mix(global_hash_);
  mix(globals_executed_);
  return h;
}

Engine::TimerId Engine::schedule_on(std::uint32_t lane, Time t, Callback fn) {
  NVGAS_DCHECK(lane < lanes_.size());
#if NVGAS_SHARDSAN
  // The wheel ownership guard is sharded-only: the classic lanes_[0]
  // wheel is deliberately shared by every logical lane, so a logical
  // check there would reject legitimate at_shard(0) use.
  if (sharded_) NVGAS_SHARD_GUARD("engine lane wheel", lane, this);
#endif
  std::int32_t idx = -1;
  const std::uint64_t seq = lanes_[lane].schedule(t, std::move(fn), &idx);
#if NVGAS_SHARDSAN
  lanes_[lane].pool[static_cast<std::size_t>(idx)].ss_lane =
      sharded_ ? lane : shardsan::current_lane(this);
#endif
  return TimerId{static_cast<std::uint32_t>(idx), lane, seq};
}

bool Engine::cancel(TimerId id) {
  if (!id.valid() || id.shard >= lanes_.size()) return false;
  NVGAS_DCHECK(!on_shard_context() || tl_lane == id.shard || tl_adopted);
#if NVGAS_SHARDSAN
  if (sharded_) NVGAS_SHARD_GUARD("engine lane wheel (cancel)", id.shard, this);
#endif
  return lanes_[id.shard].cancel(id.node, id.seq);
}

void Engine::post(std::uint32_t dst, Time t, Callback fn) {
  NVGAS_DCHECK(dst < lanes_.size());
  if (!sharded_ || (on_shard_context() && tl_lane == dst) ||
      !on_shard_context()) {
    // Same shard, unsharded, or host/setup context: a plain local event.
    // (Host context is only legal while quiesced — same rule as at_shard.)
    (void)schedule_on(sharded_ ? dst : ctx_lane(),
                      std::max(t, lanes_[sharded_ ? dst : ctx_lane()].now),
                      std::move(fn));
    return;
  }
  Lane& src = lanes_[tl_lane];
  OutMsg m{t, src.out_order++, std::move(fn)};
#if NVGAS_SHARDSAN
  m.ss_posted_at = src.now;
  m.ss_epoch = ss_epoch_;
  m.ss_windowed = shardsan::tls().win_open;
#endif
  src.out[dst].push_back(std::move(m));
}

void Engine::at_global(Time g, std::uint32_t home, Callback fn) {
  NVGAS_CHECK_MSG(sharded_, "at_global requires a sharded engine");
  NVGAS_DCHECK(home < lanes_.size());
  if (on_shard_context()) {
    Lane& src = lanes_[tl_lane];
    src.gout.push_back(GlobalReq{g, tl_lane, home, src.gout_order++, std::move(fn)});
  } else {
    // Host or barrier context (serial): a dedicated request stream that
    // sorts after every lane's, keeping the drain order total.
    serial_gout_.push_back(GlobalReq{g, shards(), home, serial_gout_order_++,
                                     std::move(fn)});
  }
}

void Engine::drain_outboxes() {
  const std::uint32_t n = shards();
#if NVGAS_SHARDSAN
  if (ss_window_open_) {
    shardsan::audit_fail("outbox drain while a window was executing",
                         __FILE__, __LINE__);
  }
#endif
  // Wire/handoff entries: per destination, merge all sources in the
  // deterministic total order (time, src lane, post order) and schedule
  // them as ordinary lane events. Entries before the last window
  // boundary are clamped to it (boundaries are themselves deterministic,
  // so the clamp is too); boundary B <= t_post + lookahead, so a clamped
  // handoff still lands no later than any wire arrival it could cause.
  struct Key {
    Time t;
    std::uint32_t src;
    std::uint64_t order;
    OutMsg* msg;
  };
  std::vector<Key> merged;
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    merged.clear();
    for (std::uint32_t src = 0; src < n; ++src) {
      for (OutMsg& m : lanes_[src].out[dst]) {
        merged.push_back(Key{m.t, src, m.order, &m});
      }
    }
    if (merged.empty()) continue;
    std::sort(merged.begin(), merged.end(), [](const Key& a, const Key& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.src != b.src) return a.src < b.src;
      return a.order < b.order;
    });
#if NVGAS_SHARDSAN
    // The drain order must be exactly the strict (time, src lane, post
    // order) tie-break — any tie left after the sort means two messages
    // shared a full key and delivery order would depend on merge order.
    for (std::size_t j = 0; j + 1 < merged.size(); ++j) {
      const Key& a = merged[j];
      const Key& b = merged[j + 1];
      if (a.t == b.t && a.src == b.src && a.order == b.order) {
        shardsan::audit_fail(
            "duplicate (time, src lane, post order) key in outbox drain",
            __FILE__, __LINE__);
      }
    }
#endif
    for (Key& k : merged) {
      const Time sched = std::max(k.t, floor_);
#if NVGAS_SHARDSAN
      // Machine-check the lookahead proof: a window post at source time
      // P may be clamped at most to P + L (boundary B <= t_post + L), so
      // a clamp beyond that means a window ran wider than its proof.
      if (k.msg->ss_windowed && floor_ > k.msg->ss_posted_at + lookahead_) {
        shardsan::audit_fail(
            "cross-lane delivery clamped past its lookahead bound",
            __FILE__, __LINE__);
      }
      // No message may sit out a window boundary: every outbox is fully
      // drained between windows, so a stale epoch means a missed drain.
      if (k.msg->ss_epoch != ss_epoch_) {
        shardsan::audit_fail(
            "outbox message survived a window boundary undrained",
            __FILE__, __LINE__);
      }
      // Delivery time >= the destination's window floor (its clock).
      if (sched < lanes_[dst].now) {
        shardsan::audit_fail(
            "cross-lane delivery scheduled into the destination's past",
            __FILE__, __LINE__);
      }
#endif
      (void)schedule_on(dst, sched, std::move(k.msg->fn));
    }
    for (std::uint32_t src = 0; src < n; ++src) lanes_[src].out[dst].clear();
  }
  // Barrier-event requests.
  bool added = false;
  for (std::uint32_t src = 0; src < n; ++src) {
    for (GlobalReq& r : lanes_[src].gout) {
      globals_.push_back(std::move(r));
      added = true;
    }
    lanes_[src].gout.clear();
  }
  for (GlobalReq& r : serial_gout_) {
    globals_.push_back(std::move(r));
    added = true;
  }
  serial_gout_.clear();
  if (added) {
    std::sort(globals_.begin(), globals_.end(),
              [](const GlobalReq& a, const GlobalReq& b) {
                if (a.g != b.g) return a.g < b.g;
                if (a.src != b.src) return a.src < b.src;
                return a.order < b.order;
              });
  }
}

void Engine::run_globals_at(Time g) {
  // Execute every pending barrier event at exactly `g`, serially, each in
  // its home shard's context with that shard's clock advanced to g (legal:
  // every lane's next pending event is >= g). Each execution is folded
  // into a dedicated barrier-event hash so the total trace hash covers
  // this stream too.
#if NVGAS_SHARDSAN
  if (ss_window_open_) {
    shardsan::audit_fail("barrier event ran while a window was executing",
                         __FILE__, __LINE__);
  }
  // A barrier may only run once every lane's horizon has passed g: any
  // lane with an earlier pending event could still affect barrier state.
  for (Lane& l : lanes_) {
    if (l.next_time() < g) {
      shardsan::audit_fail("barrier event ran before every lane reached it",
                           __FILE__, __LINE__);
    }
  }
#endif
  std::size_t i = 0;
  while (i < globals_.size() && globals_[i].g == g) ++i;
  std::vector<GlobalReq> batch(std::make_move_iterator(globals_.begin()),
                               std::make_move_iterator(globals_.begin() +
                                                       static_cast<std::ptrdiff_t>(i)));
  globals_.erase(globals_.begin(),
                 globals_.begin() + static_cast<std::ptrdiff_t>(i));
  for (GlobalReq& r : batch) {
    Lane& home = lanes_[r.home];
    home.now = std::max(home.now, g);
    ++globals_executed_;
    auto mix = [this](std::uint64_t v) {
      global_hash_ ^= v;
      global_hash_ *= 0x100000001b3ULL;
    };
    mix(g);
    mix(r.home);
    mix(global_seq_++);
    LaneScope scope(&tl_engine, &tl_lane, this, r.home);
#if NVGAS_SHARDSAN
    // Barrier events run serially while every lane is quiesced past g —
    // the sanctioned home for cross-lane state (attribute the home lane,
    // sanction everything else).
    shardsan::ExecScope ss_scope(this, r.home, g);
    shardsan::SanctionScope ss_sanction;
#endif
    r.fn();
  }
  floor_ = std::max(floor_, g);
}

void Engine::run_window_parallel(Time deadline, std::uint64_t cap) {
#if NVGAS_PARALLEL
  if (threads_ > 1) {
    ensure_pool();
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      window_deadline_ = deadline;
      window_cap_ = cap;
      pool_remaining_ = static_cast<std::uint32_t>(pool_.size());
      ++pool_gen_;
    }
    pool_cv_start_.notify_all();
    std::unique_lock<std::mutex> lk(pool_mu_);
    pool_cv_done_.wait(lk, [this] { return pool_remaining_ == 0; });
    return;
  }
#endif
  for (std::uint32_t l = 0; l < shards(); ++l) {
    LaneScope scope(&tl_engine, &tl_lane, this, l);
    lanes_[l].run_window(deadline, cap);
  }
}

#if NVGAS_PARALLEL
void Engine::ensure_pool() {
  if (!pool_.empty()) return;
  const auto workers = static_cast<std::uint32_t>(
      std::min<int>(threads_, static_cast<int>(shards())));
  pool_.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool_.emplace_back([this, w] { worker_main(w); });
  }
}

void Engine::stop_pool() {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_shutdown_ = true;
  }
  pool_cv_start_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void Engine::worker_main(std::uint32_t worker) {
  std::uint64_t seen_gen = 0;
  for (;;) {
    Time deadline;
    std::uint64_t cap;
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_start_.wait(
          lk, [&] { return pool_shutdown_ || pool_gen_ != seen_gen; });
      if (pool_shutdown_) return;
      seen_gen = pool_gen_;
      deadline = window_deadline_;
      cap = window_cap_;
    }
    const auto nworkers = static_cast<std::uint32_t>(pool_.size());
    for (std::uint32_t l = worker; l < shards(); l += nworkers) {
      LaneScope scope(&tl_engine, &tl_lane, this, l);
      lanes_[l].run_window(deadline, cap);
    }
    {
      std::lock_guard<std::mutex> lk(pool_mu_);
      if (--pool_remaining_ == 0) pool_cv_done_.notify_one();
    }
  }
}
#endif

std::uint64_t Engine::run_sharded(bool bounded, Time deadline,
                                  std::uint64_t max_events) {
  const std::uint64_t start = events_executed();
  while (true) {
    drain_outboxes();
    Time t_min = ~Time{0};
    for (Lane& l : lanes_) t_min = std::min(t_min, l.next_time());
    const Time g_min = globals_.empty() ? ~Time{0} : globals_.front().g;
    if (t_min == ~Time{0} && g_min == ~Time{0}) break;
    if (bounded && std::min(t_min, g_min) > deadline) break;
    const std::uint64_t done = events_executed() - start;
    if (done >= max_events) break;
    if (g_min <= t_min) {
      // Every lane's horizon has passed g_min: run the barrier events,
      // then re-drain (they may have posted handoffs or new requests).
      run_globals_at(g_min);
      continue;
    }
    // Safe window [t_min, B): nothing outside a lane can affect it before
    // B = t_min + L, and the window never crosses a pending barrier event
    // (or the bounded deadline).
    NVGAS_DCHECK(t_min <= ~Time{0} - lookahead_);
    Time b = t_min + lookahead_;
    if (g_min != ~Time{0}) b = std::min(b, g_min);
    if (bounded && deadline != ~Time{0}) b = std::min(b, deadline + 1);
#if NVGAS_SHARDSAN
    ++ss_epoch_;
    ss_window_open_ = true;
#endif
    run_window_parallel(b - 1, max_events - done);
#if NVGAS_SHARDSAN
    ss_window_open_ = false;
#endif
    floor_ = std::max(floor_, b);
  }
  if (bounded) {
    for (Lane& l : lanes_) l.now = std::max(l.now, deadline);
  }
  return events_executed() - start;
}

bool Engine::step() {
  NVGAS_CHECK_MSG(!sharded_, "step() is classic-mode only");
  Lane& l = lanes_[0];
  const std::int32_t idx = l.pop_next(/*bounded=*/false, 0);
  if (idx < 0) return false;
  l.execute(idx);
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  if (sharded_) return run_sharded(/*bounded=*/false, 0, max_events);
  Lane& l = lanes_[0];
  std::uint64_t n = 0;
  while (n < max_events) {
    const std::int32_t idx = l.pop_next(/*bounded=*/false, 0);
    if (idx < 0) break;
    l.execute(idx);
    ++n;
  }
  return n;
}

std::uint64_t Engine::run_until(Time deadline) {
  if (sharded_) return run_sharded(/*bounded=*/true, deadline, ~0ULL);
  Lane& l = lanes_[0];
  std::uint64_t n = 0;
  while (true) {
    const std::int32_t idx = l.pop_next(/*bounded=*/true, deadline);
    if (idx < 0) break;
    l.execute(idx);
    ++n;
  }
  if (l.now < deadline) l.now = deadline;
  return n;
}

}  // namespace nvgas::sim
