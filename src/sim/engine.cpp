#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "util/bitops.hpp"

namespace nvgas::sim {

Engine::Engine(Time horizon_ns) {
  // At least 1024 slots so the occupancy bitmaps have whole words to
  // work with; the default 64 µs horizon is 65536 slots (one per ns).
  const Time clamped = std::max<Time>(horizon_ns, 1024);
  slots_ = static_cast<std::uint32_t>(util::ceil_pow2(clamped));
  mask_ = slots_ - 1;
  bucket_head_.assign(slots_, -1);
  bucket_tail_.assign(slots_, -1);
  occ_.assign(slots_ / 64, 0);
  occ_sum_.assign((slots_ / 64 + 63) / 64, 0);
}

std::int32_t Engine::alloc_node() {
  if (free_head_ >= 0) {
    const std::int32_t idx = free_head_;
    free_head_ = pool_[static_cast<std::size_t>(idx)].next;
#ifdef NVGAS_SIMSAN
    const EventNode& n = pool_[static_cast<std::size_t>(idx)];
    simsan_audit(n, "SimSan: canary smashed on free-list node (alloc)");
    NVGAS_CHECK_MSG(!n.live, "SimSan: free list holds a live event node");
    NVGAS_CHECK_MSG(n.fn.is_poisoned(),
                    "SimSan: recycled node escaped poisoning");
#endif
    return idx;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void Engine::recycle(std::int32_t idx) {
  EventNode& n = pool_[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  simsan_audit(n, "SimSan: canary smashed on event node (recycle)");
  NVGAS_CHECK_MSG(n.live, "SimSan: double recycle of event node");
  n.fn.poison();  // a stale invocation now aborts with a diagnostic
#else
  n.fn.reset();
#endif
  n.live = false;
  n.next = free_head_;
  free_head_ = idx;
}

void Engine::set_bit(std::uint32_t slot) {
  occ_[slot >> 6] |= 1ULL << (slot & 63);
  occ_sum_[slot >> 12] |= 1ULL << ((slot >> 6) & 63);
}

void Engine::clear_bit(std::uint32_t slot) {
  occ_[slot >> 6] &= ~(1ULL << (slot & 63));
  if (occ_[slot >> 6] == 0) {
    occ_sum_[slot >> 12] &= ~(1ULL << ((slot >> 6) & 63));
  }
}

void Engine::push_bucket(std::int32_t idx) {
  EventNode& n = pool_[static_cast<std::size_t>(idx)];
  const auto slot = static_cast<std::uint32_t>(n.at & mask_);
  n.next = -1;
  if (bucket_head_[slot] < 0) {
    bucket_head_[slot] = idx;
    bucket_tail_[slot] = idx;
    set_bit(slot);
  } else {
    pool_[static_cast<std::size_t>(bucket_tail_[slot])].next = idx;
    bucket_tail_[slot] = idx;
  }
  ++wheel_count_;
}

void Engine::remove_bucket_head(std::uint32_t slot) {
  const std::int32_t idx = bucket_head_[slot];
  NVGAS_DCHECK(idx >= 0);
  bucket_head_[slot] = pool_[static_cast<std::size_t>(idx)].next;
  if (bucket_head_[slot] < 0) {
    bucket_tail_[slot] = -1;
    clear_bit(slot);
  }
  --wheel_count_;
}

std::int32_t Engine::scan_range(std::uint32_t from, std::uint32_t end) const {
  if (from >= end) return -1;
  std::uint32_t w = from >> 6;
  const std::uint32_t end_w = (end + 63) >> 6;
  std::uint64_t word = occ_[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      const auto s =
          (w << 6) | static_cast<std::uint32_t>(std::countr_zero(word));
      return s < end ? static_cast<std::int32_t>(s) : -1;
    }
    ++w;
    if (w >= end_w) return -1;
    // Jump over runs of empty words through the summary bitmap.
    std::uint32_t sw = w >> 6;
    std::uint64_t sword = occ_sum_[sw] & (~0ULL << (w & 63));
    while (sword == 0) {
      ++sw;
      if ((sw << 6) >= end_w) return -1;
      sword = occ_sum_[sw];
    }
    w = (sw << 6) | static_cast<std::uint32_t>(std::countr_zero(sword));
    if (w >= end_w) return -1;
    word = occ_[w];
  }
}

Engine::TimerId Engine::schedule(Time t, Callback fn) {
  NVGAS_CHECK_MSG(t >= now_, "scheduling into the past");
  const std::int32_t idx = alloc_node();
  EventNode& n = pool_[static_cast<std::size_t>(idx)];
  n.at = t;
  n.seq = next_seq_++;
  n.cancelled = false;
  n.live = true;
  n.fn = std::move(fn);
  ++pending_;
  // An empty wheel can be re-anchored anywhere; park the window right at
  // this event so it lands in a bucket instead of the overflow heap.
  if (wheel_count_ == 0) window_start_ = t;
  if (t >= window_start_ && t - window_start_ < slots_) {
    push_bucket(idx);
  } else {
    far_.push(FarRef{t, n.seq, idx});
  }
  return TimerId{static_cast<std::uint32_t>(idx), n.seq};
}

bool Engine::cancel(TimerId id) {
  if (!id.valid() || id.node >= pool_.size()) return false;
  EventNode& n = pool_[id.node];
#ifdef NVGAS_SIMSAN
  // Generation audit: `seq` matching means this token refers to exactly
  // this scheduled instance. Cancelling it twice is a caller lifecycle
  // bug (the first cancel already released the closure); cancelling
  // after the event fired is legal API use and still returns false
  // below, because the node's seq has moved on or the node is free.
  if (n.live && n.seq == id.seq && n.cancelled) {
    util::panic(__FILE__, __LINE__,
                "SimSan: double cancel of timer (token already cancelled)");
  }
#endif
  if (!n.live || n.cancelled || n.seq != id.seq) return false;
  n.cancelled = true;
  n.fn.reset();  // release the closure eagerly
  --pending_;
  return true;
}

void Engine::decant() {
  while (!far_.empty()) {
    const FarRef top = far_.top();
    // Entries below the window (possible only after a re-anchor raced an
    // insert) or beyond it stay in the heap; pop_next handles them.
    if (top.at < window_start_ || top.at - window_start_ >= slots_) break;
    far_.pop();
    if (pool_[static_cast<std::size_t>(top.node)].cancelled) {
      recycle(top.node);
      continue;
    }
    push_bucket(top.node);
  }
}

std::int32_t Engine::pop_next(bool bounded, Time deadline) {
  while (true) {
    // Wheel candidate: earliest occupied slot, circular from the window
    // base. All wheel events lie in [window_start_, window_start_ +
    // slots_), so slot order from the base is time order.
    std::int32_t wslot = -1;
    std::int32_t widx = -1;
    if (wheel_count_ > 0) {
      const auto base = static_cast<std::uint32_t>(window_start_ & mask_);
      wslot = scan_range(base, slots_);
      if (wslot < 0) wslot = scan_range(0, base);
      NVGAS_DCHECK(wslot >= 0);
      widx = bucket_head_[static_cast<std::uint32_t>(wslot)];
      if (pool_[static_cast<std::size_t>(widx)].cancelled) {
        remove_bucket_head(static_cast<std::uint32_t>(wslot));
        recycle(widx);
        continue;
      }
    }
    // Far candidate: prune cancelled tops.
    if (!far_.empty()) {
      const std::int32_t fidx = far_.top().node;
      if (pool_[static_cast<std::size_t>(fidx)].cancelled) {
        far_.pop();
        recycle(fidx);
        continue;
      }
    }

    const bool have_w = widx >= 0;
    const bool have_f = !far_.empty();
    if (!have_w && !have_f) return -1;
    bool take_far;
    if (!have_w) {
      take_far = true;
    } else if (!have_f) {
      take_far = false;
    } else {
      const FarRef& f = far_.top();
      const EventNode& wn = pool_[static_cast<std::size_t>(widx)];
      take_far = f.at < wn.at || (f.at == wn.at && f.seq < wn.seq);
    }
    if (bounded) {
      const Time t =
          take_far ? far_.top().at : pool_[static_cast<std::size_t>(widx)].at;
      if (t > deadline) return -1;
    }
    if (!take_far) {
      remove_bucket_head(static_cast<std::uint32_t>(wslot));
      return widx;
    }
    const std::int32_t idx = far_.top().node;
    far_.pop();
    if (wheel_count_ == 0 && !far_.empty()) {
      window_start_ =
          std::max(window_start_, pool_[static_cast<std::size_t>(idx)].at);
      decant();
    }
    return idx;
  }
}

void Engine::execute(std::int32_t idx) {
  EventNode& n = pool_[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  simsan_audit(n, "SimSan: canary smashed on event node (execute)");
  NVGAS_CHECK_MSG(n.live && !n.cancelled,
                  "SimSan: executing a recycled or cancelled event node");
#endif
  NVGAS_DCHECK(n.at >= now_);
  now_ = n.at;
  NVGAS_DCHECK(pending_ > 0);
  --pending_;
  // Slide the window base up to now: keeps bitmap scans short, and every
  // pending event is >= now_, so the slot mapping stays unique.
  if (now_ > window_start_) window_start_ = now_;
  const Time t = n.at;
  const std::uint64_t seq = n.seq;
  // Pinned tie-break contract: execution order is the strict total order
  // (time, seq) — co-timed events run in scheduling order. mcheck's
  // schedule replay (sim/explorer.hpp) reconstructs delivery orders from
  // this guarantee, so it is asserted in every build type, not just
  // debug. Cancelled events consume a seq but never execute, preserving
  // strict monotonicity here.
  NVGAS_CHECK_MSG(
      !executed_any_ || t > last_exec_at_ ||
          (t == last_exec_at_ && seq > last_exec_seq_),
      "event execution violated the pinned (time, seq) total order");
  last_exec_at_ = t;
  last_exec_seq_ = seq;
  executed_any_ = true;
  Callback fn = std::move(n.fn);
  // Recycle before invoking: the callback may schedule events and grow
  // the pool, invalidating the reference.
  recycle(idx);
  note_executed(t, seq);
  fn();
}

bool Engine::step() {
  const std::int32_t idx = pop_next(/*bounded=*/false, 0);
  if (idx < 0) return false;
  execute(idx);
  return true;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Engine::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (true) {
    const std::int32_t idx = pop_next(/*bounded=*/true, deadline);
    if (idx < 0) break;
    execute(idx);
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace nvgas::sim
