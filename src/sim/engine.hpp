// Discrete-event simulation engine.
//
// Deterministic: events execute in (time, sequence) order, so a given
// program + seed always yields the identical event trace. The engine
// folds every executed (time, seq) pair into a running FNV-1a hash,
// which tests use to assert determinism end-to-end.
//
// The same-timestamp tie-break is a PINNED, asserted contract: co-timed
// events execute in ascending seq — i.e. scheduling — order, making the
// execution order a strict total order over (time, seq). Lane::execute
// checks this on every event in all build types. mcheck (tools/mcheck)
// replays counterexample schedules from a schedule string alone and
// depends on this order never changing; see docs/MODEL_CHECKING.md.
//
// Implementation: a calendar-queue / timing-wheel hybrid tuned for
// zero-allocation steady state (see DESIGN.md §3 and
// sim/reference_engine.hpp for the original binary-heap oracle):
//   * events live in pooled, recycled nodes whose callbacks use
//     util::InlineFunction (no malloc for captures <= 48 bytes);
//   * events within the wheel horizon (default 64 µs, one slot per
//     nanosecond) go into power-of-two time buckets — O(1) insert, and
//     pop finds the next occupied slot through a two-level occupancy
//     bitmap;
//   * events beyond the horizon overflow into a small binary heap of
//     16-byte references and are decanted into the wheel as it advances.
// Each bucket covers exactly one nanosecond, so FIFO order within a
// bucket is (time, seq) order, and the trace hash is byte-identical to
// the reference heap engine for any schedule.
//
// ---- Sharded (conservative-parallel) mode --------------------------------
//
// configure_shards(n, L, threads) splits the engine into n independent
// *lanes* (one per simulated node), each a complete timing wheel with its
// own sequence counter and FNV-1a trace hash. Lanes advance together in
// safe windows: with T = min over lanes of the next pending event time,
// every event in [T, T + L) may execute without hearing from any other
// lane, because the only cross-lane influence is a wire message with
// minimum latency L (classic conservative PDES lookahead; see DESIGN.md
// §"Parallel engine"). Cross-lane effects travel through per-source
// mailboxes drained between windows in the deterministic order
// (time, src lane, post order), so the whole computation — and therefore
// every lane's trace hash — is a pure function of the program, NOT of
// the host thread count. `threads` only picks how many host threads
// execute lane windows; threads=1 is the serial baseline the parallel
// hashes must match byte-for-byte (tools/determinism_probe enforces it).
//
// Barrier events (at_global) run serially between windows once every
// lane's horizon has passed their time; they are the sanctioned home for
// operations that must observe globally quiesced state (allocation
// teardown, balancer epochs). A window never crosses a pending barrier
// event's time.
//
// With a single lane (the default) none of this machinery is reachable
// and the engine is exactly the classic single-threaded one: same seqs,
// same hash, same pool behavior. mcheck and the Explorer always run the
// classic engine.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#if NVGAS_PARALLEL
#include <condition_variable>
#include <mutex>
#include <thread>
#endif

#include "sim/shardsan.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/inline_function.hpp"

namespace nvgas::sim {

class Engine {
 public:
  using Callback = util::InlineFunction<void(), 48>;

#if NVGAS_PARALLEL
  static constexpr bool kParallelEnabled = true;
#else
  static constexpr bool kParallelEnabled = false;
#endif

  // Handle for cancellable timers. Tokens are single-use: once the event
  // fired or was cancelled, further cancel() calls return false.
  struct TimerId {
    std::uint32_t node = kNoNode;  // pool index within the owning shard
    std::uint32_t shard = 0;
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return node != kNoNode; }
  };

  static constexpr Time kDefaultHorizonNs = 64 * kMicrosecond;

  explicit Engine(Time horizon_ns = kDefaultHorizonNs);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Current simulated time: the executing lane's clock from inside an
  // event, the single lane's clock in classic mode, and the maximum lane
  // clock from host context in sharded mode (e.g. after a run).
  [[nodiscard]] Time now() const;

  // Schedule `fn` at absolute simulated time `t` (must be >= now()).
  // From inside an event this targets the executing shard; from host
  // context it targets shard 0 (classic mode's only shard).
  void at(Time t, Callback fn) { (void)schedule_on(ctx_lane(), t, std::move(fn)); }

  // Schedule `fn` `delay` nanoseconds from now. `now() + delay` must not
  // wrap around the 64-bit Time range.
  void after(Time delay, Callback fn) {
    const Time base = lanes_[ctx_lane()].now;
    NVGAS_CHECK_MSG(delay <= ~Time{0} - base, "Time overflow in after()");
    (void)schedule_on(ctx_lane(), base + delay, std::move(fn));
  }

  // Cancellable variants. A cancelled event never runs and never enters
  // the trace hash; its sequence number is still consumed.
  [[nodiscard]] TimerId at_cancellable(Time t, Callback fn) {
    return schedule_on(ctx_lane(), t, std::move(fn));
  }
  [[nodiscard]] TimerId after_cancellable(Time delay, Callback fn) {
    const Time base = lanes_[ctx_lane()].now;
    NVGAS_CHECK_MSG(delay <= ~Time{0} - base, "Time overflow in after()");
    return schedule_on(ctx_lane(), base + delay, std::move(fn));
  }

  // O(1); returns true if the event had not yet fired or been cancelled.
  // In sharded mode a timer may only be cancelled from its own shard's
  // execution context (or from host context while quiesced).
  bool cancel(TimerId id);

  [[nodiscard]] bool idle() const { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t trace_hash() const;

  // Introspection for tests: events currently parked in the overflow
  // heaps (beyond the wheel horizon), and the configured horizon.
  [[nodiscard]] std::size_t overflow_pending() const;
  [[nodiscard]] Time horizon() const { return lanes_[0].slots; }

  // Execute the next event; returns false when idle. Classic mode only.
  bool step();

  // Run until the event queue drains or `max_events` have executed.
  // Returns the number of events executed. Benchmarks use the event cap
  // as a livelock watchdog; in sharded mode it is enforced per lane per
  // window, so the total may overshoot by up to one window per lane.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  // Run until simulated time reaches `deadline` (events at exactly
  // `deadline` still run) or the queue drains.
  std::uint64_t run_until(Time deadline);

  // ---- sharded mode --------------------------------------------------

  // Split the engine into `nshards` lanes advancing in safe windows of
  // lookahead `L` (the minimum cross-shard wire latency), executed by
  // `threads` host threads (clamped to [1, nshards]). Must be called
  // before anything is scheduled. Requires -DNVGAS_PARALLEL=ON.
  void configure_shards(std::uint32_t nshards, Time lookahead, int threads,
                        Time horizon_ns = kDefaultHorizonNs);

  [[nodiscard]] bool sharded() const { return sharded_; }
  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  [[nodiscard]] Time lookahead() const { return lookahead_; }
  [[nodiscard]] int threads() const { return threads_; }

  // True when called from inside an event (or barrier event) of this
  // engine; current_shard() then names the executing shard.
  [[nodiscard]] bool on_shard_context() const { return tl_engine == this; }
  [[nodiscard]] std::uint32_t current_shard(std::uint32_t fallback = 0) const {
    return tl_engine == this ? tl_lane : fallback;
  }

  // True when the current shard context was adopted by a host thread via
  // ShardContext (setup/teardown pumps) rather than entered by window or
  // barrier execution. Adopted contexts run while every lane is quiesced,
  // so cross-lane state access is safe — direct-vs-post routing decisions
  // should treat them like host context, while event scheduling still
  // lands on the adopted lane.
  [[nodiscard]] bool on_adopted_context() const {
    return tl_engine == this && tl_adopted;
  }

  // Schedule directly onto `shard`. Legal from that shard's own execution
  // context, or from host/adopted context while no window is running.
  void at_shard(std::uint32_t shard, Time t, Callback fn) {
    NVGAS_DCHECK(!on_shard_context() || tl_lane == shard || tl_adopted);
    (void)schedule_on(shard, t, std::move(fn));
  }

  // Cross-shard handoff: run `fn` on `dst` no earlier than `t`, delivered
  // at the next window boundary B if `t` lies before it (B <= t_send + L,
  // so a deferred handoff is never later than any wire arrival it could
  // have caused). Delivery order is the pure function
  // (time, src shard, post order) of the computation — never of the host
  // schedule. Same-shard (or unsharded) calls degrade to a plain at().
  void post(std::uint32_t dst, Time t, Callback fn);

  // Barrier event: run `fn` serially between windows once every lane's
  // next pending event time has reached `g`, in the executing-shard
  // context of `home` (counters, clock and follow-up scheduling all
  // attribute there). Windows never cross a pending barrier event.
  void at_global(Time g, std::uint32_t home, Callback fn);

  // RAII: adopt `shard`'s execution context on the current host thread,
  // so code that normally runs inside that shard's events (setup-phase
  // task pumps, teardown) schedules onto the correct lane instead of the
  // host fallback. Legal only while no window is running (the same rule
  // as any host-context scheduling); nests like event execution does.
  class ShardContext {
   public:
    ShardContext(Engine& engine, std::uint32_t shard)
        : prev_engine_(tl_engine),
          prev_lane_(tl_lane),
          prev_adopted_(tl_adopted)
#if NVGAS_SHARDSAN
          ,
          ss_exec_(&engine, shard)
#endif
    {
      NVGAS_DCHECK(shard < engine.lanes_.size());
      tl_engine = &engine;
      tl_lane = shard;
      tl_adopted = true;
    }
    ~ShardContext() {
      tl_engine = prev_engine_;
      tl_lane = prev_lane_;
      tl_adopted = prev_adopted_;
    }
    ShardContext(const ShardContext&) = delete;
    ShardContext& operator=(const ShardContext&) = delete;

   private:
    Engine* prev_engine_;
    std::uint32_t prev_lane_;
    bool prev_adopted_;
#if NVGAS_SHARDSAN
    // Adopted contexts run while every lane is quiesced: attribute the
    // adopted lane and sanction cross-lane access, matching the engine's
    // own adopted-context contract.
    shardsan::ExecScope ss_exec_;
    shardsan::SanctionScope ss_sanction_;
#endif
  };

#ifdef NVGAS_SIMSAN
  // Death-test hook: invoke a node's callback slot directly, bypassing
  // all scheduling bookkeeping. On a recycled node this hits the poison
  // vtable and aborts with the use-after-recycle diagnostic. Tests only.
  void simsan_invoke_slot(std::uint32_t node) { lanes_[0].pool.at(node).fn(); }
#endif

 private:
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  struct EventNode {
    Time at = 0;
    std::uint64_t seq = 0;
    std::int32_t next = -1;  // bucket chain when scheduled, else free list
    bool cancelled = false;
    bool live = false;  // scheduled (possibly cancelled) vs recycled
#ifdef NVGAS_SIMSAN
    // Canaries bracket the callback storage; an overwrite from either
    // side (chain corruption, closure overrun) trips the audit.
    std::uint64_t canary_pre = kSimsanCanary;
#endif
    Callback fn;
#ifdef NVGAS_SIMSAN
    std::uint64_t canary_post = kSimsanCanary;
#endif
#if NVGAS_SHARDSAN
    // Logical lane attribution captured at schedule time: the target lane
    // in sharded mode (lane events belong to their lane), the scheduling
    // context's logical lane in classic mode (propagates through chains).
    std::uint32_t ss_lane = shardsan::kNone;
#endif
  };

#ifdef NVGAS_SIMSAN
  static constexpr std::uint64_t kSimsanCanary = 0x51edC0DE5AFEC0DEULL;
#endif

  // 16-byte sort key + pool index for far-future events; the closure
  // stays in the pool, so heap sift operations move only PODs.
  struct FarRef {
    Time at;
    std::uint64_t seq;
    std::int32_t node;
  };
  struct FarLater {
    bool operator()(const FarRef& a, const FarRef& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Cross-shard mailbox entry (lane-private until drained at a barrier).
  struct OutMsg {
    Time t = 0;
    std::uint64_t order = 0;
    Callback fn;
#if NVGAS_SHARDSAN
    // Safe-window auditor provenance: the posting lane's clock and the
    // window epoch the post happened in. The drain verifies the clamp
    // never exceeds posted_at + lookahead (the conservative-PDES proof)
    // and that no message survives a window boundary undrained.
    Time ss_posted_at = 0;
    std::uint64_t ss_epoch = 0;
    // Posted from inside a window (vs an adopted/barrier context while
    // quiesced, where the clamp-vs-lookahead bound doesn't apply).
    bool ss_windowed = false;
#endif
  };
  // Barrier-event request; `src` tags the posting lane for the drain sort.
  struct GlobalReq {
    Time g = 0;
    std::uint32_t src = 0;
    std::uint32_t home = 0;
    std::uint64_t order = 0;
    Callback fn;
  };

  // One complete event queue: the entire classic engine's state. The
  // classic engine IS lanes_[0]; sharded mode runs one Lane per node.
  struct Lane {
    void init(Time horizon_ns, std::uint32_t nshards);

    std::int32_t alloc_node();
    void recycle(std::int32_t idx);
    void push_bucket(std::int32_t idx);
    void remove_bucket_head(std::uint32_t slot);
    void set_bit(std::uint32_t slot);
    void clear_bit(std::uint32_t slot);
    [[nodiscard]] std::int32_t scan_range(std::uint32_t from,
                                          std::uint32_t end) const;
    std::uint64_t schedule(Time t, Callback fn, std::int32_t* out_idx);
    bool cancel(std::uint32_t node, std::uint64_t seq);
    void decant();
    std::int32_t pop_next(bool bounded, Time deadline);
    void execute(std::int32_t idx);
    // Earliest pending event time, or ~Time{0} when drained.
    [[nodiscard]] Time next_time();
    // Execute events with time <= deadline, at most `cap` of them.
    void run_window(Time deadline, std::uint64_t cap);

    void note_executed(Time at, std::uint64_t seq) {
      ++executed;
      // FNV-1a over the (time, seq) pair.
      auto mix = [this](std::uint64_t v) {
        trace_hash ^= v;
        trace_hash *= 0x100000001b3ULL;
      };
      mix(at);
      mix(seq);
    }

#ifdef NVGAS_SIMSAN
    void simsan_audit(const EventNode& n, const char* site) const;
#endif

    // Event node pool.
    std::vector<EventNode> pool;
    std::int32_t free_head = -1;

    // Timing wheel: one slot per nanosecond over [window_start,
    // window_start + slots). Within a bucket, the chain is FIFO — all
    // entries share one timestamp, so insertion order is seq order.
    std::uint32_t slots = 0;  // power of two
    std::uint32_t mask = 0;
    Time window_start = 0;
    std::vector<std::int32_t> bucket_head;
    std::vector<std::int32_t> bucket_tail;
    std::vector<std::uint64_t> occ;      // one bit per slot
    std::vector<std::uint64_t> occ_sum;  // one bit per occ word
    std::size_t wheel_count = 0;         // nodes resident in the wheel

    // Far-future overflow (at >= window_start + slots at insert time).
    std::priority_queue<FarRef, std::vector<FarRef>, FarLater> far;

    // Tie-break audit state: the last executed (time, seq) pair, used to
    // assert the pinned total order in execute().
    Time last_exec_at = 0;
    std::uint64_t last_exec_seq = 0;
    bool executed_any = false;

    Time now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    std::size_t pending = 0;  // live (non-cancelled) scheduled events
    std::uint64_t trace_hash = 0xcbf29ce484222325ULL;

    // Cross-shard mailboxes (one per destination lane) and barrier-event
    // requests, written only by this lane's own window execution and
    // drained by the coordinator between windows.
    std::vector<std::vector<OutMsg>> out;
    std::uint64_t out_order = 0;
    std::vector<GlobalReq> gout;
    std::uint64_t gout_order = 0;

#if NVGAS_SHARDSAN
    // The owning Engine — ShardSan's attribution domain (distinguishes
    // nested engines), set at init and never changed.
    const void* ss_domain = nullptr;
#endif
  };

  [[nodiscard]] std::uint32_t ctx_lane() const {
    return tl_engine == this ? tl_lane : 0;
  }
  TimerId schedule_on(std::uint32_t lane, Time t, Callback fn);
  void drain_outboxes();
  void run_globals_at(Time g);
  void run_window_parallel(Time deadline, std::uint64_t cap);
  std::uint64_t run_sharded(bool bounded, Time deadline,
                            std::uint64_t max_events);
#if NVGAS_PARALLEL
  void ensure_pool();
  void stop_pool();
  void worker_main(std::uint32_t worker);
#endif

  // Host-thread execution context: which engine + lane the current host
  // thread is executing events for. thread_local by necessity — it is
  // the one piece of state that must follow the *host* thread, not a
  // shard; each worker writes only its own thread's copy.
  // simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
  static thread_local Engine* tl_engine;
  // simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
  static thread_local std::uint32_t tl_lane;
  // simlint:allow(D7: host-thread execution context, one copy per host thread, never shared across shards)
  static thread_local bool tl_adopted;

  std::vector<Lane> lanes_;
  bool sharded_ = false;
  Time lookahead_ = 0;
  int threads_ = 1;
  Time floor_ = 0;  // boundary of the last completed window

#if NVGAS_SHARDSAN
  // Safe-window auditor state: the current window epoch (bumped before
  // each window) and whether a window is executing right now. Both are
  // only touched by the coordinating thread between windows.
  std::uint64_t ss_epoch_ = 0;
  bool ss_window_open_ = false;
#endif

  // Pending barrier events, kept sorted by (g, src, order) after drains.
  std::vector<GlobalReq> globals_;
  // Barrier-context at_global() requests (host context; no lane outbox).
  std::vector<GlobalReq> serial_gout_;
  std::uint64_t serial_gout_order_ = 0;
  std::uint64_t globals_executed_ = 0;
  std::uint64_t global_hash_ = 0xcbf29ce484222325ULL;
  std::uint64_t global_seq_ = 0;

#if NVGAS_PARALLEL
  std::vector<std::thread> pool_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_start_;
  std::condition_variable pool_cv_done_;
  std::uint64_t pool_gen_ = 0;
  std::uint32_t pool_remaining_ = 0;
  bool pool_shutdown_ = false;
  Time window_deadline_ = 0;
  std::uint64_t window_cap_ = 0;
#endif
};

}  // namespace nvgas::sim
