// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events execute in (time, sequence)
// order, so a given program + seed always yields the identical event
// trace. The engine also folds every executed (time, seq) pair into a
// running FNV-1a hash, which tests use to assert determinism end-to-end.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace nvgas::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` at absolute simulated time `t` (must be >= now()).
  void at(Time t, Callback fn) {
    NVGAS_CHECK_MSG(t >= now_, "scheduling into the past");
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  // Schedule `fn` `delay` nanoseconds from now.
  void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  // Execute the next event; returns false when idle.
  bool step();

  // Run until the event queue drains or `max_events` have executed.
  // Returns the number of events executed. Benchmarks use the event cap
  // as a livelock watchdog.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  // Run until simulated time reaches `deadline` (events at exactly
  // `deadline` still run) or the queue drains.
  std::uint64_t run_until(Time deadline);

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void note_executed(const Event& ev) {
    ++executed_;
    // FNV-1a over the (time, seq) pair.
    auto mix = [this](std::uint64_t v) {
      trace_hash_ ^= v;
      trace_hash_ *= 0x100000001b3ULL;
    };
    mix(ev.at);
    mix(ev.seq);
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace nvgas::sim
