// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events execute in (time, sequence)
// order, so a given program + seed always yields the identical event
// trace. The engine also folds every executed (time, seq) pair into a
// running FNV-1a hash, which tests use to assert determinism end-to-end.
//
// The same-timestamp tie-break is a PINNED, asserted contract: co-timed
// events execute in ascending seq — i.e. scheduling — order, making the
// execution order a strict total order over (time, seq). Engine::execute
// checks this on every event in all build types. mcheck (tools/mcheck)
// replays counterexample schedules from a schedule string alone and
// depends on this order never changing; see docs/MODEL_CHECKING.md.
//
// Implementation: a calendar-queue / timing-wheel hybrid tuned for
// zero-allocation steady state (see DESIGN.md §3 and
// sim/reference_engine.hpp for the original binary-heap oracle):
//   * events live in pooled, recycled nodes whose callbacks use
//     util::InlineFunction (no malloc for captures <= 48 bytes);
//   * events within the wheel horizon (default 64 µs, one slot per
//     nanosecond) go into power-of-two time buckets — O(1) insert, and
//     pop finds the next occupied slot through a two-level occupancy
//     bitmap;
//   * events beyond the horizon overflow into a small binary heap of
//     16-byte references and are decanted into the wheel as it advances.
// Each bucket covers exactly one nanosecond, so FIFO order within a
// bucket is (time, seq) order, and the trace hash is byte-identical to
// the reference heap engine for any schedule.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/inline_function.hpp"

namespace nvgas::sim {

class Engine {
 public:
  using Callback = util::InlineFunction<void(), 48>;

  // Handle for cancellable timers. Tokens are single-use: once the event
  // fired or was cancelled, further cancel() calls return false.
  struct TimerId {
    std::uint32_t node = kNoNode;
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return node != kNoNode; }
  };

  static constexpr Time kDefaultHorizonNs = 64 * kMicrosecond;

  explicit Engine(Time horizon_ns = kDefaultHorizonNs);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` at absolute simulated time `t` (must be >= now()).
  void at(Time t, Callback fn) { (void)schedule(t, std::move(fn)); }

  // Schedule `fn` `delay` nanoseconds from now. `now() + delay` must not
  // wrap around the 64-bit Time range.
  void after(Time delay, Callback fn) {
    NVGAS_CHECK_MSG(delay <= ~Time{0} - now_, "Time overflow in after()");
    at(now_ + delay, std::move(fn));
  }

  // Cancellable variants. A cancelled event never runs and never enters
  // the trace hash; its sequence number is still consumed.
  [[nodiscard]] TimerId at_cancellable(Time t, Callback fn) {
    return schedule(t, std::move(fn));
  }
  [[nodiscard]] TimerId after_cancellable(Time delay, Callback fn) {
    NVGAS_CHECK_MSG(delay <= ~Time{0} - now_, "Time overflow in after()");
    return schedule(now_ + delay, std::move(fn));
  }

  // O(1); returns true if the event had not yet fired or been cancelled.
  bool cancel(TimerId id);

  [[nodiscard]] bool idle() const { return pending_ == 0; }
  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  // Introspection for tests: events currently parked in the overflow
  // heap (beyond the wheel horizon), and the configured horizon.
  [[nodiscard]] std::size_t overflow_pending() const { return far_.size(); }
  [[nodiscard]] Time horizon() const { return slots_; }

  // Execute the next event; returns false when idle.
  bool step();

  // Run until the event queue drains or `max_events` have executed.
  // Returns the number of events executed. Benchmarks use the event cap
  // as a livelock watchdog.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  // Run until simulated time reaches `deadline` (events at exactly
  // `deadline` still run) or the queue drains.
  std::uint64_t run_until(Time deadline);

#ifdef NVGAS_SIMSAN
  // Death-test hook: invoke a node's callback slot directly, bypassing
  // all scheduling bookkeeping. On a recycled node this hits the poison
  // vtable and aborts with the use-after-recycle diagnostic. Tests only.
  void simsan_invoke_slot(std::uint32_t node) { pool_.at(node).fn(); }
#endif

 private:
  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  struct EventNode {
    Time at = 0;
    std::uint64_t seq = 0;
    std::int32_t next = -1;  // bucket chain when scheduled, else free list
    bool cancelled = false;
    bool live = false;  // scheduled (possibly cancelled) vs recycled
#ifdef NVGAS_SIMSAN
    // Canaries bracket the callback storage; an overwrite from either
    // side (chain corruption, closure overrun) trips the audit.
    std::uint64_t canary_pre = kSimsanCanary;
#endif
    Callback fn;
#ifdef NVGAS_SIMSAN
    std::uint64_t canary_post = kSimsanCanary;
#endif
  };

#ifdef NVGAS_SIMSAN
  static constexpr std::uint64_t kSimsanCanary = 0x51edC0DE5AFEC0DEULL;
  // Canary + lifecycle audit on every pool transition. `seq` doubles as
  // the generation tag: it is unique per schedule() and never reused, so
  // a stale TimerId can never match a recycled-and-reused node.
  void simsan_audit(const EventNode& n, const char* site) const {
    if (n.canary_pre != kSimsanCanary || n.canary_post != kSimsanCanary) {
      util::panic(__FILE__, __LINE__, site);
    }
  }
#endif

  // 16-byte sort key + pool index for far-future events; the closure
  // stays in the pool, so heap sift operations move only PODs.
  struct FarRef {
    Time at;
    std::uint64_t seq;
    std::int32_t node;
  };
  struct FarLater {
    bool operator()(const FarRef& a, const FarRef& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimerId schedule(Time t, Callback fn);
  std::int32_t alloc_node();
  void recycle(std::int32_t idx);

  void push_bucket(std::int32_t idx);
  void remove_bucket_head(std::uint32_t slot);
  void set_bit(std::uint32_t slot);
  void clear_bit(std::uint32_t slot);
  // First occupied slot in [from, end), or -1.
  [[nodiscard]] std::int32_t scan_range(std::uint32_t from,
                                        std::uint32_t end) const;

  // Remove and return the next live event (pruning cancelled nodes); -1
  // when drained. With `bounded`, events past `deadline` are left queued.
  std::int32_t pop_next(bool bounded, Time deadline);
  // Move far-future events that now fall inside the wheel window.
  void decant();
  void execute(std::int32_t idx);

  void note_executed(Time at, std::uint64_t seq) {
    ++executed_;
    // FNV-1a over the (time, seq) pair.
    auto mix = [this](std::uint64_t v) {
      trace_hash_ ^= v;
      trace_hash_ *= 0x100000001b3ULL;
    };
    mix(at);
    mix(seq);
  }

  // Event node pool.
  std::vector<EventNode> pool_;
  std::int32_t free_head_ = -1;

  // Timing wheel: one slot per nanosecond over [window_start_,
  // window_start_ + slots_). Within a bucket, the chain is FIFO — all
  // entries share one timestamp, so insertion order is seq order.
  std::uint32_t slots_ = 0;  // power of two
  std::uint32_t mask_ = 0;
  Time window_start_ = 0;
  std::vector<std::int32_t> bucket_head_;
  std::vector<std::int32_t> bucket_tail_;
  std::vector<std::uint64_t> occ_;      // one bit per slot
  std::vector<std::uint64_t> occ_sum_;  // one bit per occ_ word
  std::size_t wheel_count_ = 0;         // nodes resident in the wheel

  // Far-future overflow (at >= window_start_ + slots_ at insert time).
  std::priority_queue<FarRef, std::vector<FarRef>, FarLater> far_;

  // Tie-break audit state: the last executed (time, seq) pair, used to
  // assert the pinned total order in execute().
  Time last_exec_at_ = 0;
  std::uint64_t last_exec_seq_ = 0;
  bool executed_any_ = false;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;  // live (non-cancelled) scheduled events
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace nvgas::sim
