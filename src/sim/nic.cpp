#include "sim/nic.hpp"

#include <algorithm>

#include "sim/explorer.hpp"
#include "sim/fabric.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"

namespace nvgas::sim {

std::int32_t Nic::park_msg(int src, std::uint64_t bytes, Deliver deliver,
                           std::uint64_t inj, std::uint8_t copies) {
  std::int32_t idx;
  if (inflight_free_ >= 0) {
    idx = inflight_free_;
    inflight_free_ = inflight_[static_cast<std::size_t>(idx)].next_free;
#ifdef NVGAS_SIMSAN
    NVGAS_CHECK_MSG(!inflight_[static_cast<std::size_t>(idx)].parked,
                    "SimSan: free list holds an in-flight message slot");
#endif
  } else {
    inflight_.emplace_back();
    idx = static_cast<std::int32_t>(inflight_.size() - 1);
  }
  NVGAS_SHARD_GUARD("nic in-flight pool", node_, &fabric_->engine());
  PendingMsg& m = inflight_[static_cast<std::size_t>(idx)];
  m.src = src;
  m.bytes = bytes;
  m.copies = copies;
  m.deliver = std::move(deliver);
  m.inj = inj;
#ifdef NVGAS_SIMSAN
  m.parked = true;
#endif
  return idx;
}

void Nic::send(Time depart, int dst, std::uint64_t bytes, Deliver deliver) {
  auto& engine = fabric_->engine();
  const auto& p = fabric_->params();
  NVGAS_CHECK(depart >= engine.now());
  NVGAS_SHARD_GUARD("nic tx port", node_, &engine);

  // tx port serialization.
  tx_avail_ = std::max(depart, tx_avail_) + p.wire_time(bytes);
  Time at_dst_port = tx_avail_ + fabric_->latency(node_, dst);

  // mcheck hook: an armed Explorer may delay the arrival (bounded, FIFO
  // preserving) to explore alternative delivery schedules. This is the
  // ONLY sanctioned injection point — simlint rule D6 flags bypasses.
  std::uint64_t inj = kNoInjection;
  if (Explorer* ex = fabric_->explorer()) {
    at_dst_port = ex->on_injection(node_, dst, at_dst_port, &inj);
  }

  ++tx_messages_;
  tx_bytes_ += bytes;
  auto& c = fabric_->counters();
  ++c.messages_sent;
  c.bytes_sent += bytes;

  fabric_->trace().record(tx_avail_, TraceEvent::kMsgSend, node_, dst, bytes);

  // Fault hook (same sanctioned point, after the Explorer so a dropped
  // frame still consumed its injection index). Loopback frames never
  // touch the wire and are exempt, like on real hardware.
  FaultDecision fd;
  if (FaultInjector* fi = fabric_->faults(); fi != nullptr && dst != node_) {
    fd = fi->on_injection(node_, dst, tx_avail_, bytes);
  }
  if (fd.drop) {
    // The wire ate it: the frame was sent (counted above) but never
    // arrives anywhere. The Deliver closure dies here; end-to-end
    // recovery is the reliability layer's job (net/reliability).
    fabric_->trace().record(tx_avail_, TraceEvent::kMsgDrop, node_, dst, bytes);
    return;
  }

  Nic& dst_nic = fabric_->nic(dst);
  const std::uint8_t copies = fd.duplicate ? 2 : 1;
  if (engine.sharded() && dst != node_) {
    // Cross-shard wire hop: parking and rx bookkeeping belong to the
    // destination's lane, so the whole message rides one post() at the
    // earliest arrival time and the receive side re-schedules the exact
    // per-copy arrivals locally. post() is never later than the wire
    // (boundary <= send time + lookahead <= arrival), so timing is
    // unchanged; the closure carries the Deliver and takes the
    // InlineFunction heap-fallback path.
    const Time a0 = at_dst_port + fd.extra_delay;
    const Time a1 = fd.duplicate ? at_dst_port + fd.dup_extra_delay : a0;
    // simlint:allow(D5: &dst_nic lives in the Fabric, which outlives the engine)
    engine.post(static_cast<std::uint32_t>(dst), std::min(a0, a1),
                [&dst_nic, src = node_, bytes, inj, copies, a0, a1,
                 d = std::move(deliver)]() mutable {
                  dst_nic.receive_remote(src, bytes, std::move(d), inj,
                                         copies, a0, a1);
                });
    return;
  }
  // Classic-mode wire hop: from here on the message belongs to the
  // destination NIC's lane — the exact site the sharded engine routes
  // through post() above, so attribution is mode-invariant.
  NVGAS_SHARD_HOP(&engine, dst);
  const std::int32_t idx =
      dst_nic.park_msg(node_, bytes, std::move(deliver), inj, copies);
  const Time arrive0 = at_dst_port + fd.extra_delay;
  // simlint:allow(D5: &dst_nic lives in the Fabric, which outlives the engine)
  engine.at(arrive0, [&dst_nic, idx, arrive0] { dst_nic.arrive(idx, arrive0); });
  if (fd.duplicate) {
    const Time arrive1 = at_dst_port + fd.dup_extra_delay;
    // The duplicate is a full extra frame at the destination: it pays
    // its own rx-port occupancy and is delivered (and counted) again.
    // simlint:allow(D5: &dst_nic lives in the Fabric, which outlives the engine)
    engine.at(arrive1, [&dst_nic, idx, arrive1] { dst_nic.arrive(idx, arrive1); });
  }
}

void Nic::receive_remote(int src, std::uint64_t bytes, Deliver deliver,
                         std::uint64_t inj, std::uint8_t copies, Time arrive0,
                         Time arrive1) {
  auto& engine = fabric_->engine();
  const std::int32_t idx = park_msg(src, bytes, std::move(deliver), inj, copies);
  engine.at(arrive0, [this, idx, arrive0] { arrive(idx, arrive0); });
  if (copies > 1) {
    engine.at(arrive1, [this, idx, arrive1] { arrive(idx, arrive1); });
  }
}

void Nic::arrive(std::int32_t idx, Time at_port) {
  auto& engine = fabric_->engine();
  const auto& p = fabric_->params();
  NVGAS_SHARD_GUARD("nic rx port", node_, &engine);
  PendingMsg& m = inflight_[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  NVGAS_CHECK_MSG(m.parked,
                  "SimSan: use-after-recycle — rx of a freed message slot");
#endif

  // rx port occupancy.
  rx_avail_ = std::max(at_port, rx_avail_) + p.nic_gap_ns;
  const Time done = rx_avail_;
  fabric_->trace().record(done, TraceEvent::kMsgArrive, node_, m.src, m.bytes);

  ++rx_messages_;
  auto& c = fabric_->counters();
  ++c.messages_delivered;
  c.bytes_delivered += m.bytes;

  engine.at(done, [this, idx, done] { deliver_parked(idx, done); });
}

void Nic::deliver_parked(std::int32_t idx, Time done) {
  NVGAS_SHARD_GUARD("nic in-flight pool", node_, &fabric_->engine());
  PendingMsg& m = inflight_[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  NVGAS_CHECK_MSG(m.parked,
                  "SimSan: use-after-recycle — double delivery of a message");
#endif
  if (m.copies > 1) {
    // A fault-duplicated copy landed first: invoke the closure but keep
    // the slot parked for the remaining copy. The closure is moved out
    // for the call (a nested send may grow inflight_ and relocate the
    // slot) and moved back afterwards — InlineFunction invocation is
    // non-destructive, so it stays callable. Only reachable with faults
    // armed, where every wire closure is a re-invocable POD frame.
    --m.copies;
    const std::uint64_t inj = m.inj;
    Deliver fn = std::move(m.deliver);
    if (Explorer* ex = fabric_->explorer()) ex->on_delivery(node_, inj);
    fn(done);
    inflight_[static_cast<std::size_t>(idx)].deliver = std::move(fn);
    return;
  }
#ifdef NVGAS_SIMSAN
  m.parked = false;
#endif
  Deliver fn = std::move(m.deliver);
  const std::uint64_t inj = m.inj;
#ifdef NVGAS_SIMSAN
  m.deliver.poison();  // a stale delivery would invoke a poisoned closure
#endif
  m.next_free = inflight_free_;
  inflight_free_ = idx;
  if (Explorer* ex = fabric_->explorer()) ex->on_delivery(node_, inj);
  fn(done);
}

Time Nic::occupy_command_processor(Time ready, Time cost) {
  NVGAS_SHARD_GUARD("nic command processor", node_, &fabric_->engine());
  cp_avail_ = std::max(ready, cp_avail_) + cost;
  return cp_avail_;
}

}  // namespace nvgas::sim
