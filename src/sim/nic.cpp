#include "sim/nic.hpp"

#include <algorithm>

#include "sim/fabric.hpp"
#include "sim/trace.hpp"

namespace nvgas::sim {

void Nic::send(Time depart, int dst, std::uint64_t bytes, Deliver deliver) {
  auto& engine = fabric_->engine();
  const auto& p = fabric_->params();
  NVGAS_CHECK(depart >= engine.now());

  // tx port serialization.
  tx_avail_ = std::max(depart, tx_avail_) + p.wire_time(bytes);
  const Time at_dst_port = tx_avail_ + fabric_->latency(node_, dst);

  ++tx_messages_;
  tx_bytes_ += bytes;
  auto& c = fabric_->counters();
  ++c.messages_sent;
  c.bytes_sent += bytes;

  fabric_->trace().record(tx_avail_, TraceEvent::kMsgSend, node_, dst, bytes);

  Nic& dst_nic = fabric_->nic(dst);
  const int src_node = node_;
  engine.at(at_dst_port, [&dst_nic, at_dst_port, src_node, bytes,
                          deliver = std::move(deliver)]() mutable {
    dst_nic.arrive(at_dst_port, src_node, bytes, std::move(deliver));
  });
}

void Nic::arrive(Time at_port, int src, std::uint64_t bytes, Deliver deliver) {
  auto& engine = fabric_->engine();
  const auto& p = fabric_->params();

  // rx port occupancy.
  rx_avail_ = std::max(at_port, rx_avail_) + p.nic_gap_ns;
  const Time done = rx_avail_;
  fabric_->trace().record(done, TraceEvent::kMsgArrive, node_, src, bytes);

  ++rx_messages_;
  auto& c = fabric_->counters();
  ++c.messages_delivered;
  c.bytes_delivered += bytes;

  engine.at(done, [done, deliver = std::move(deliver)] { deliver(done); });
}

Time Nic::occupy_command_processor(Time ready, Time cost) {
  cp_avail_ = std::max(ready, cp_avail_) + cost;
  return cp_avail_;
}

}  // namespace nvgas::sim
