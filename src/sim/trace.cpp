#include "sim/trace.hpp"

#include <cstdio>

namespace nvgas::sim {

std::string Trace::render() const {
  std::string out;
  char line[128];
  for (const auto& r : records_) {
    switch (r.event) {
      case TraceEvent::kMsgSend:
        std::snprintf(line, sizeof line, "%10llu  send   %3d -> %-3d  %llu B\n",
                      static_cast<unsigned long long>(r.t), r.node, r.peer,
                      static_cast<unsigned long long>(r.bytes));
        break;
      case TraceEvent::kMsgArrive:
        std::snprintf(line, sizeof line, "%10llu  arrive %3d <- %-3d  %llu B\n",
                      static_cast<unsigned long long>(r.t), r.node, r.peer,
                      static_cast<unsigned long long>(r.bytes));
        break;
      case TraceEvent::kCpuTask:
        std::snprintf(line, sizeof line, "%10llu  cpu    %3d  (%llu ns)\n",
                      static_cast<unsigned long long>(r.t), r.node,
                      static_cast<unsigned long long>(r.bytes));
        break;
      case TraceEvent::kMsgDrop:
        std::snprintf(line, sizeof line, "%10llu  drop   %3d -> %-3d  %llu B\n",
                      static_cast<unsigned long long>(r.t), r.node, r.peer,
                      static_cast<unsigned long long>(r.bytes));
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace nvgas::sim
