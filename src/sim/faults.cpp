#include "sim/faults.hpp"

#include "sim/fabric.hpp"

namespace nvgas::sim {

bool FaultPlan::active() const {
  for (const FaultRule& r : rules) {
    if (r.drop > 0.0 || r.dup > 0.0 || (r.delay > 0.0 && r.delay_ns > 0)) {
      return true;
    }
  }
  for (const Brownout& b : brownouts) {
    if (b.end > b.begin) return true;
  }
  return !forced_drops.empty();
}

FaultInjector::FaultInjector(const FaultPlan& plan, Fabric& fabric)
    : plan_(plan), fabric_(&fabric) {
  if (fabric.engine().sharded()) {
    // Seed every link stream up front: link() must never rehash the map
    // mid-run under the sharded engine (sends on different lanes would
    // race the insertion). Each stream is thereafter touched only by its
    // source node's lane.
    const int n = fabric.nodes();
    links_.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        (void)link(src, dst);
      }
    }
  }
}

FaultInjector::LinkState& FaultInjector::link(int src, int dst) {
  const std::uint64_t key = link_key(src, dst);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Per-link stream: decisions on one link are independent of traffic
    // on every other link, so adding a flow elsewhere cannot perturb the
    // fault sequence here (and mcheck's schedule perturbations replay).
    it = links_.try_emplace(key).first;
    it->second.rng.reseed(util::SplitMix64(plan_.seed ^ key).next());
  }
  return it->second;
}

const FaultRule* FaultInjector::rule_for(int src, int dst) const {
  for (const FaultRule& r : plan_.rules) {
    if ((r.src == -1 || r.src == src) && (r.dst == -1 || r.dst == dst)) {
      return &r;
    }
  }
  return nullptr;
}

FaultDecision FaultInjector::on_injection(int src, int dst, Time depart,
                                          std::uint64_t bytes) {
  FaultDecision d;
  Counters& counters = fabric_->counters();
  LinkState& ls = link(src, dst);
  const std::uint64_t frame = ls.frames++;

  // Deterministic drops first: they consume no RNG draw, so a forced
  // drop or brownout never shifts the probabilistic stream behind it.
  for (const ForcedDrop& f : plan_.forced_drops) {
    if ((f.src == -1 || f.src == src) && (f.dst == -1 || f.dst == dst) &&
        f.nth == frame) {
      d.drop = true;
    }
  }
  for (const Brownout& b : plan_.brownouts) {
    if ((b.src == -1 || b.src == src) && (b.dst == -1 || b.dst == dst) &&
        depart >= b.begin && depart < b.end) {
      d.drop = true;
    }
  }
  if (d.drop) {
    ++counters.faults_injected_drops;
    counters.faults_dropped_bytes += bytes;
    return d;
  }

  const FaultRule* r = rule_for(src, dst);
  if (r == nullptr) return d;

  // Fixed gate-draw order per frame (drop, dup, delay): each enabled
  // category consumes exactly one draw whether or not it fires, so the
  // stream position after a frame's gates depends only on the rule.
  const bool drop = r->drop > 0.0 && ls.rng.chance(r->drop);
  const bool dup = r->dup > 0.0 && ls.rng.chance(r->dup);
  const bool delay = r->delay > 0.0 && r->delay_ns > 0 && ls.rng.chance(r->delay);
  if (drop) {
    ++counters.faults_injected_drops;
    counters.faults_dropped_bytes += bytes;
    d.drop = true;
    return d;
  }
  if (dup) {
    ++counters.faults_injected_dups;
    counters.faults_dup_bytes += bytes;
    d.duplicate = true;
  }
  if (delay) {
    ++counters.faults_injected_delays;
    d.extra_delay = 1 + ls.rng.below(r->delay_ns);
  }
  if (d.duplicate && r->delay_ns > 0) {
    // The copy takes its own path through the network; give it an
    // independent extra flight so the two copies can reorder.
    d.dup_extra_delay = 1 + ls.rng.below(r->delay_ns);
  }
  return d;
}

}  // namespace nvgas::sim
