// Schedule exploration hook for the mcheck model checker.
//
// The deterministic engine executes exactly ONE delivery order per
// program — the order message-latency arithmetic happens to produce.
// Protocol bugs (stale-translation windows, fence races) hide in the
// orders it never produces. The Explorer re-introduces those orders
// deterministically: it sits on the one message-injection point
// (Nic::send) and, driven by a Schedule, delays selected messages by a
// small quantum so that co-timed ("commutative") deliveries commute.
//
// Two properties make replays sound:
//   * point-to-point FIFO is preserved — a perturbed arrival is clamped
//     to the (src, dst) pair's previous arrival time, matching the
//     per-queue-pair ordering of the RDMA hardware being modelled, so
//     explored schedules are exactly the ones a real network can
//     produce;
//   * a Schedule is a pure function of the injection index (messages
//     are indexed in injection order, which the engine's pinned
//     (time, seq) tie-break makes reproducible), so a schedule string
//     alone replays a counterexample bit-for-bit.
//
// The Explorer also folds every delivery (dst node, injection index)
// into an FNV-1a order hash: two runs with the same hash delivered
// messages in the same interleaving, which mcheck uses both as its
// state-hash pruning and as the count of distinct schedules explored.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace nvgas::sim {

// A delay schedule: injection index -> delay choice. Choice 0 (the
// implicit default for every unlisted index) is "no perturbation";
// choices 1..kChoices select increasing delay quanta (Explorer::quantum).
// The textual form — "idx:choice,idx:choice" sorted by index, or "-"
// when empty — is the replayable counterexample string mcheck prints.
struct Schedule {
  // Sorted by injection index; at most one entry per index.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> delays;

  void set(std::uint64_t index, std::uint8_t choice);
  [[nodiscard]] std::uint8_t choice(std::uint64_t index) const;
  [[nodiscard]] bool empty() const { return delays.empty(); }
  [[nodiscard]] std::size_t size() const { return delays.size(); }

  [[nodiscard]] std::string str() const;
  // Parses the str() form ("-" or "i:c,j:c"). Returns false on malformed
  // input; `out` is untouched on failure.
  static bool parse(std::string_view text, Schedule* out);
};

class Explorer {
 public:
  // Delay choices per perturbed injection (beyond choice 0 = none).
  static constexpr int kChoices = 3;

  // `window_ns` is the commutativity window: two same-destination
  // arrivals closer than this are considered reorderable choice points.
  // The default spans one wire latency plus NIC serialization slack.
  explicit Explorer(Time window_ns = 1500);

  void arm(Schedule schedule) { schedule_ = std::move(schedule); }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }
  [[nodiscard]] Time window() const { return window_; }

  // Hook called by Nic::send for every injected message: assigns the
  // message its injection index and returns the (possibly perturbed)
  // arrival time at the destination rx port, >= base_arrival and never
  // ahead of an earlier message on the same (src, dst) pair.
  Time on_injection(int src, int dst, Time base_arrival,
                    std::uint64_t* index_out);

  // Hook called by Nic::deliver_parked when a message's closure runs:
  // folds (dst, injection index) into the delivery-order hash.
  void on_delivery(int dst, std::uint64_t index);

  [[nodiscard]] std::uint64_t injections() const { return log_.size(); }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t order_hash() const { return order_hash_; }

  // Delay quantum for a choice (0 -> 0 ns). The three nonzero quanta are
  // a 1 ns nudge (flips co-timed ties), one window (reorders across the
  // commutativity window), and four windows (pushes past a protocol
  // phase).
  [[nodiscard]] Time quantum(int choice) const;

  // Injection indices that had at least one other same-destination
  // injection arriving within the commutativity window — the points
  // where delaying this message can change the delivery order. Computed
  // from this run's log; mcheck calls it on the baseline run to obtain
  // the DFS choice points.
  [[nodiscard]] std::vector<std::uint64_t> commutative_points() const;

 private:
  struct Injection {
    int src;
    int dst;
    Time arrival;  // perturbed arrival time at the dst rx port
  };

  [[nodiscard]] static std::uint64_t pair_key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }

  Time window_;
  Schedule schedule_;
  std::vector<Injection> log_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t order_hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  // Per-(src, dst) arrival floor enforcing point-to-point FIFO.
  // simlint:allow(D1: keyed access only, never iterated)
  std::unordered_map<std::uint64_t, Time> pair_floor_;
};

}  // namespace nvgas::sim
