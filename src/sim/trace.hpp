// Optional event trace: a flat record of message and CPU activity.
//
// Disabled by default (zero overhead beyond a branch); tests enable it to
// assert protocol *structure* — e.g. "a one-sided put is exactly four
// wire events and zero CPU tasks at the target" — and developers enable
// it to debug protocol interleavings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nvgas::sim {

enum class TraceEvent : std::uint8_t {
  kMsgSend = 0,   // node -> peer, bytes on the wire
  kMsgArrive,     // at node, from peer
  kCpuTask,       // task ran on node; bytes field holds the charged ns
  kMsgDrop,       // node -> peer frame eaten by fault injection (sim/faults);
                  // only ever recorded when a FaultInjector is armed
};

[[nodiscard]] constexpr const char* to_string(TraceEvent ev) {
  switch (ev) {
    case TraceEvent::kMsgSend: return "send";
    case TraceEvent::kMsgArrive: return "arrive";
    case TraceEvent::kCpuTask: return "cpu";
    case TraceEvent::kMsgDrop: return "drop";
  }
  return "?";
}

struct TraceRecord {
  Time t = 0;
  TraceEvent event = TraceEvent::kMsgSend;
  std::int16_t node = -1;   // acting node
  std::int16_t peer = -1;   // other side (messages only)
  std::uint64_t bytes = 0;  // wire bytes, or charged ns for kCpuTask
};

class Trace {
 public:
  void enable(std::size_t capacity = 1u << 20) {
    enabled_ = true;
    capacity_ = capacity;
    records_.clear();
    records_.reserve(std::min<std::size_t>(capacity, 4096));
  }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Time t, TraceEvent event, int node, int peer, std::uint64_t bytes) {
    if (!enabled_ || records_.size() >= capacity_) return;
    records_.push_back(TraceRecord{t, event, static_cast<std::int16_t>(node),
                                   static_cast<std::int16_t>(peer), bytes});
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }

  [[nodiscard]] std::vector<TraceRecord> of(TraceEvent event) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
      if (r.event == event) out.push_back(r);
    }
    return out;
  }

  // Count of CPU tasks recorded on `node`.
  [[nodiscard]] std::size_t cpu_tasks_on(int node) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.event == TraceEvent::kCpuTask && r.node == node) ++n;
    }
    return n;
  }

  // One line per record, for debugging and golden-ish tests.
  [[nodiscard]] std::string render() const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace nvgas::sim
