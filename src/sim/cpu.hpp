// Per-node CPU model.
//
// A node owns `workers` schedulable hardware threads. Runtime work is
// submitted as tasks; a task executes at the earliest time a worker is
// free and occupies that worker for the cost it charges via TaskCtx.
// Host-side execution of the task body is instantaneous (it is C++ code
// running inside one engine event); only charged cost advances simulated
// time. This separates "what the protocol does" from "what it costs", so
// the cost model is explicit and auditable at each charge site.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/counters.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace nvgas::sim {

class Cpu;

// Execution context of one task segment. `now()` is the effective current
// simulated time inside the segment: the segment's start plus everything
// charged so far — message departures use it so that work preceding a send
// delays the send.
class TaskCtx {
 public:
  TaskCtx(Cpu& cpu, Time start) : cpu_(&cpu), start_(start) {}

  void charge(Time ns) { charged_ += ns; }
  [[nodiscard]] Time start() const { return start_; }
  [[nodiscard]] Time charged() const { return charged_; }
  [[nodiscard]] Time now() const { return start_ + charged_; }
  [[nodiscard]] Cpu& cpu() const { return *cpu_; }

 private:
  Cpu* cpu_;
  Time start_;
  Time charged_ = 0;
};

using Task = std::function<void(TaskCtx&)>;

class Cpu {
 public:
  Cpu(Engine& engine, int node, int workers, Counters& counters,
      Trace* trace = nullptr);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Run `fn` as soon as a worker is free (FIFO among submitted tasks).
  void submit(Task fn);

  // Run `fn` no earlier than absolute time `t`.
  void submit_at(Time t, Task fn);

  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] int workers() const { return static_cast<int>(avail_.size()); }
  [[nodiscard]] Time busy_ns() const { return busy_ns_; }
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  void pump();
  std::size_t earliest_worker() const;

  Engine& engine_;
  int node_;
  Counters& counters_;
  Trace* trace_;
  std::vector<Time> avail_;        // per-worker next-free time
  std::deque<Task> queue_;
  Time wake_at_ = 0;
  bool wake_scheduled_ = false;
  bool pumping_ = false;
  Time busy_ns_ = 0;
  std::uint64_t tasks_run_ = 0;
};

}  // namespace nvgas::sim
