// Per-node CPU model.
//
// A node owns `workers` schedulable hardware threads. Runtime work is
// submitted as tasks; a task executes at the earliest time a worker is
// free and occupies that worker for the cost it charges via TaskCtx.
// Host-side execution of the task body is instantaneous (it is C++ code
// running inside one engine event); only charged cost advances simulated
// time. This separates "what the protocol does" from "what it costs", so
// the cost model is explicit and auditable at each charge site.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/counters.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/inline_function.hpp"

namespace nvgas::sim {

class Cpu;

// Execution context of one task segment. `now()` is the effective current
// simulated time inside the segment: the segment's start plus everything
// charged so far — message departures use it so that work preceding a send
// delays the send.
class TaskCtx {
 public:
  TaskCtx(Cpu& cpu, Time start) : cpu_(&cpu), start_(start) {}

  void charge(Time ns) { charged_ += ns; }
  [[nodiscard]] Time start() const { return start_; }
  [[nodiscard]] Time charged() const { return charged_; }
  [[nodiscard]] Time now() const { return start_ + charged_; }
  [[nodiscard]] Cpu& cpu() const { return *cpu_; }

 private:
  Cpu* cpu_;
  Time start_;
  Time charged_ = 0;
};

// Move-only with 48-byte inline storage: submitting a task does not
// allocate unless the capture exceeds the buffer.
using Task = util::InlineFunction<void(TaskCtx&), 48>;

class Cpu {
 public:
  Cpu(Engine& engine, int node, int workers, Counters& counters,
      Trace* trace = nullptr);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Run `fn` as soon as a worker is free (FIFO among submitted tasks).
  void submit(Task fn);

  // Run `fn` no earlier than absolute time `t`.
  void submit_at(Time t, Task fn);

  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] int workers() const { return static_cast<int>(avail_.size()); }
  [[nodiscard]] Time busy_ns() const { return busy_ns_; }
  [[nodiscard]] std::uint64_t tasks_run() const { return tasks_run_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  void pump();
  std::size_t earliest_worker() const;

  // The engine lane this CPU's events belong to: its node's shard in
  // sharded mode, the single lane otherwise. All Cpu methods must run on
  // this lane (at_shard asserts it); cross-node submissions are the
  // caller's job to route (Engine::post).
  [[nodiscard]] std::uint32_t lane() const {
    return engine_.sharded() ? static_cast<std::uint32_t>(node_) : 0u;
  }

  // Parking pool for submit_at: the task waits here so the engine
  // callback captures only {this, slot} and stays inside the
  // Engine::Callback inline buffer (no heap allocation per deferral).
  struct Delayed {
    Task fn;
    std::int32_t next_free = -1;
#ifdef NVGAS_SIMSAN
    bool parked = false;  // occupancy audit: unpark of a free slot aborts
#endif
  };
  std::int32_t park_delayed(Task fn);
  Task unpark_delayed(std::int32_t idx);

 public:
#ifdef NVGAS_SIMSAN
  // Death-test hook: unpark a slot out of band, so tests can prove the
  // double-unpark / use-after-recycle audit aborts. Tests only.
  void simsan_unpark_slot(std::int32_t idx) { (void)unpark_delayed(idx); }
#endif

 private:

  Engine& engine_;
  int node_;
  Counters& counters_;
  Trace* trace_;
  std::vector<Time> avail_;        // per-worker next-free time
  std::deque<Task> queue_;
  std::vector<Delayed> delayed_;
  std::int32_t delayed_free_ = -1;
  Time wake_at_ = 0;
  bool wake_scheduled_ = false;
  bool pumping_ = false;
  Time busy_ns_ = 0;
  std::uint64_t tasks_run_ = 0;
};

}  // namespace nvgas::sim
