// Hardware model parameters for the simulated cluster.
//
// The network follows a LogGP-style decomposition: per-message CPU
// overheads (o), per-message NIC gaps (g), per-byte serialization (G) and
// wire latency (L). Defaults are shaped after a QDR-InfiniBand-era
// commodity cluster — the class of machine the original evaluation ran
// on. Absolute values are configurable; the benchmark conclusions depend
// only on their ordering (CPU overheads ≫ NIC processing ≫ per-byte).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"
#include "sim/topology.hpp"

namespace nvgas::sim {

struct MachineParams {
  int nodes = 8;
  int workers_per_node = 2;          // schedulable CPU workers per node
  std::size_t mem_bytes_per_node = 64ull << 20;

  // Host threads for the conservative-parallel engine: 0 keeps the
  // classic single-queue engine; >= 1 shards the engine per node
  // (lookahead = wire_latency_ns) and runs lane windows on that many
  // host threads. Requires -DNVGAS_PARALLEL=ON. Trace hashes are
  // identical for every value >= 1 but differ from the classic engine's
  // (per-shard sequence numbers); threads=1 is the serial baseline the
  // parallel runs are diffed against.
  int threads = 0;

  // --- topology ---
  TopologyKind topology = TopologyKind::kFlat;
  int dragonfly_group_size = 4;
  Time per_hop_latency_ns = 150;     // extra latency per switch hop past 1

  // --- network (LogGP-ish) ---
  Time wire_latency_ns = 900;        // L: one-way 1-hop latency
  Time wire_jitter_ns = 0;           // uniform [0, jitter) added per message
                                     // (deterministic, seeded; models switch
                                     // arbitration variance for tail studies)
  std::uint64_t jitter_seed = 0x7177e4;
  Time nic_gap_ns = 40;              // g: per-message port occupancy (tx and rx)
  double byte_time_ns = 0.233;       // G: ~4 GiB/s link
  Time cpu_send_overhead_ns = 120;   // o_send: CPU cost to post a descriptor
  Time cpu_recv_overhead_ns = 250;   // o_recv: CPU cost to take a two-sided rx

  // --- NIC processing (one-sided path, no CPU involvement) ---
  Time nic_dma_ns = 100;             // DMA engine setup per RMA op
  Time nic_tlb_ns = 60;              // NIC translation-table lookup
  Time nic_fwd_ns = 80;              // NIC-level forward of a stale-address op
  Time nic_atomic_ns = 150;          // NIC-executed fetch-add / cswap

  // --- local memory system ---
  double membus_byte_ns = 0.0625;    // ~16 GiB/s local copy bandwidth

  [[nodiscard]] Time wire_time(std::uint64_t bytes) const {
    return nic_gap_ns + bytes_time(bytes, byte_time_ns);
  }
  [[nodiscard]] Time copy_time(std::uint64_t bytes) const {
    return bytes_time(bytes, membus_byte_ns);
  }
};

}  // namespace nvgas::sim
