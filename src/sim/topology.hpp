// Interconnect topology models.
//
// The fabric charges a per-pair one-way latency; topologies differ in how
// many switch hops separate two nodes. Three models cover the machines
// this class of system runs on:
//
//   * kFlat      — single full-crossbar switch: every pair is 1 hop.
//   * kTorus2D   — nodes arranged in a near-square 2-D torus; hops =
//                  Manhattan distance with wraparound.
//   * kDragonfly — two-level groups of `group_size` nodes: 1 hop inside
//                  a group, 3 hops (local-global-local) across groups.
//
// latency(src, dst) = base wire latency + (hops-1) · per_hop extra.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace nvgas::sim {

enum class TopologyKind : std::uint8_t { kFlat = 0, kTorus2D = 1, kDragonfly = 2 };

[[nodiscard]] constexpr const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kFlat: return "flat";
    case TopologyKind::kTorus2D: return "torus2d";
    case TopologyKind::kDragonfly: return "dragonfly";
  }
  return "?";
}

class Topology {
 public:
  Topology(TopologyKind kind, int nodes, int dragonfly_group_size = 4)
      : kind_(kind), nodes_(nodes), group_size_(dragonfly_group_size) {
    NVGAS_CHECK(nodes_ >= 1);
    NVGAS_CHECK(group_size_ >= 1);
    if (kind_ == TopologyKind::kTorus2D) {
      // Near-square factorization: the largest divisor <= sqrt(nodes).
      cols_ = 1;
      for (int d = 1; d * d <= nodes_; ++d) {
        if (nodes_ % d == 0) cols_ = d;
      }
      rows_ = nodes_ / cols_;
    }
  }

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] int nodes() const { return nodes_; }

  // Switch hops between two distinct nodes (>= 1).
  [[nodiscard]] int hops(int src, int dst) const {
    NVGAS_DCHECK(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_);
    if (src == dst) return 0;
    switch (kind_) {
      case TopologyKind::kFlat:
        return 1;
      case TopologyKind::kTorus2D: {
        const int r1 = src / cols_;
        const int c1 = src % cols_;
        const int r2 = dst / cols_;
        const int c2 = dst % cols_;
        const int dr = torus_dist(r1, r2, rows_);
        const int dc = torus_dist(c1, c2, cols_);
        return dr + dc;
      }
      case TopologyKind::kDragonfly:
        return src / group_size_ == dst / group_size_ ? 1 : 3;
    }
    return 1;
  }

  // One-way latency for the pair given the base (1-hop) wire latency and
  // the per-extra-hop increment.
  [[nodiscard]] Time latency(int src, int dst, Time base, Time per_hop) const {
    if (src == dst) return 0;
    const int h = hops(src, dst);
    return base + static_cast<Time>(h - 1) * per_hop;
  }

  // Diameter in hops (worst pair), useful for tests and reporting.
  [[nodiscard]] int diameter() const {
    int worst = 0;
    for (int a = 0; a < nodes_; ++a) {
      for (int b = 0; b < nodes_; ++b) {
        worst = std::max(worst, hops(a, b));
      }
    }
    return worst;
  }

 private:
  static int torus_dist(int a, int b, int extent) {
    const int d = a > b ? a - b : b - a;
    return std::min(d, extent - d);
  }

  TopologyKind kind_;
  int nodes_;
  int group_size_;
  int rows_ = 1;
  int cols_ = 1;
};

}  // namespace nvgas::sim
