// Per-node registered memory segment.
//
// Local virtual addresses (LVAs) are byte offsets into this segment —
// exactly how an RDMA-registered heap behaves. Storage is chunked and
// allocated lazily on first write (reads of untouched memory return
// zeros without materializing pages), so simulating many nodes with
// large registered segments stays cheap on the host. All accesses are
// bounds-checked; the simulated NIC "DMA engine" reads/writes through
// this class, so data genuinely moves and tests can verify payloads
// end-to-end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace nvgas::sim {

using Lva = std::uint64_t;

class Memory {
 public:
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  explicit Memory(std::size_t bytes)
      : size_(bytes), chunks_((bytes + kChunkBytes - 1) / kChunkBytes) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t n = 0;
    for (const auto& c : chunks_) {
      if (c) n += kChunkBytes;
    }
    return n;
  }

  void write(Lva lva, std::span<const std::byte> src) {
    check_range(lva, src.size());
    std::size_t done = 0;
    while (done < src.size()) {
      const std::size_t chunk = (lva + done) / kChunkBytes;
      const std::size_t off = (lva + done) % kChunkBytes;
      const std::size_t n = std::min(src.size() - done, kChunkBytes - off);
      std::memcpy(materialize(chunk) + off, src.data() + done, n);
      done += n;
    }
  }

  void read(Lva lva, std::span<std::byte> dst) const {
    check_range(lva, dst.size());
    std::size_t done = 0;
    while (done < dst.size()) {
      const std::size_t chunk = (lva + done) / kChunkBytes;
      const std::size_t off = (lva + done) % kChunkBytes;
      const std::size_t n = std::min(dst.size() - done, kChunkBytes - off);
      const auto& c = chunks_[chunk];
      if (c) {
        std::memcpy(dst.data() + done, c->data() + off, n);
      } else {
        std::memset(dst.data() + done, 0, n);  // untouched memory reads zero
      }
      done += n;
    }
  }

  [[nodiscard]] std::vector<std::byte> read_vec(Lva lva, std::size_t len) const {
    std::vector<std::byte> out(len);
    read(lva, out);
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T load(Lva lva) const {
    T out;
    read(lva, std::as_writable_bytes(std::span(&out, 1)));
    return out;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void store(Lva lva, const T& value) {
    write(lva, std::as_bytes(std::span(&value, 1)));
  }

  // NIC-executed 64-bit atomics. "Atomic" refers to simulated semantics:
  // the event loop serializes them, mirroring a NIC atomic unit.
  std::uint64_t fetch_add_u64(Lva lva, std::uint64_t operand) {
    const auto old = load<std::uint64_t>(lva);
    store<std::uint64_t>(lva, old + operand);
    return old;
  }

  // Returns the previous value; swaps iff it equals `expected`.
  std::uint64_t compare_swap_u64(Lva lva, std::uint64_t expected,
                                 std::uint64_t desired) {
    const auto old = load<std::uint64_t>(lva);
    if (old == expected) store<std::uint64_t>(lva, desired);
    return old;
  }

 private:
  void check_range(Lva lva, std::size_t len) const {
    NVGAS_CHECK_MSG(lva <= size_ && len <= size_ - lva,
                    "memory access out of segment bounds");
  }

  std::byte* materialize(std::size_t chunk) {
    auto& c = chunks_[chunk];
    if (!c) {
      c = std::make_unique<std::array<std::byte, kChunkBytes>>();
      std::memset(c->data(), 0, kChunkBytes);
    }
    return c->data();
  }

  std::size_t size_;
  mutable std::vector<std::unique_ptr<std::array<std::byte, kChunkBytes>>> chunks_;
};

}  // namespace nvgas::sim
