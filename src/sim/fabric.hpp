// The simulated cluster: engine + per-node {CPU, NIC, memory}.
//
// This is the substitution substrate for the multi-node InfiniBand
// machine the original evaluation used (see DESIGN.md §3).
#pragma once

#include <memory>
#include <vector>

#include "sim/counters.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "sim/nic.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace nvgas::sim {

class Explorer;       // sim/explorer.hpp — mcheck schedule-exploration hook
class FaultInjector;  // sim/faults.hpp — deterministic wire-fault hook

class Fabric {
 public:
  explicit Fabric(const MachineParams& params);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // mcheck schedule exploration: when set, every Nic::send routes its
  // arrival time through the Explorer (which may delay it) and every
  // delivery is folded into the Explorer's order hash. Null in normal
  // runs; the Explorer is owned by the mcheck harness, not the Fabric.
  // The Explorer is single-queue machinery: it requires the classic
  // engine (mcheck never runs sharded; see DESIGN.md §Parallel engine).
  void set_explorer(Explorer* explorer) {
    NVGAS_CHECK_MSG(explorer == nullptr || !engine_.sharded(),
                    "mcheck/Explorer requires the classic engine (threads=0)");
    explorer_ = explorer;
  }
  [[nodiscard]] Explorer* explorer() const { return explorer_; }

  // Wire-fault injection: when set, every non-loopback Nic::send asks
  // the injector whether to drop, duplicate, or extra-delay the frame.
  // Null in normal runs (the World installs one only when
  // Config::faults.active()), so the reliable path stays byte-identical.
  void set_faults(FaultInjector* faults) { faults_ = faults; }
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] const MachineParams& params() const { return params_; }
  [[nodiscard]] int nodes() const { return params_.nodes; }

  // The current execution context's counter block. Classic engine: the
  // single global block (all nodes share it, exactly as before). Sharded
  // engine: one block per shard, selected by the executing lane, so
  // counting never crosses shards; totals come from counters_total().
  [[nodiscard]] Counters& counters() {
    return counters_[engine_.current_shard(0)];
  }
  [[nodiscard]] const Counters& counters() const {
    return counters_[engine_.current_shard(0)];
  }

  // Deterministic quiesce-time aggregate: per-shard blocks summed in
  // shard-id order. Every counter is a sum, so the result is invariant
  // under the host thread count. Classic engine: equals counters().
  [[nodiscard]] Counters counters_total() const {
    Counters total;
    for (const Counters& c : counters_) total.add(c);
    return total;
  }

  [[nodiscard]] Trace& trace() { return trace_; }

  [[nodiscard]] Cpu& cpu(int node) { return *nodes_.at(static_cast<std::size_t>(node)).cpu; }
  [[nodiscard]] Nic& nic(int node) { return *nodes_.at(static_cast<std::size_t>(node)).nic; }
  [[nodiscard]] Memory& mem(int node) { return *nodes_.at(static_cast<std::size_t>(node)).mem; }

  // One-way wire latency between two nodes, per the configured topology,
  // plus deterministic seeded jitter if configured. Loopback (src == dst)
  // skips the wire but still pays NIC port costs, like a real NIC
  // loopback path.
  [[nodiscard]] Time latency(int src, int dst) {
    if (src == dst) return 0;
    Time l = topology_.latency(src, dst, params_.wire_latency_ns,
                               params_.per_hop_latency_ns);
    if (params_.wire_jitter_ns > 0) {
      // Sharded engine: one jitter stream per source node, drawn only
      // from that node's lane, so draws never race and the per-source
      // sequences are thread-count-invariant. Classic engine keeps the
      // single global stream (byte-identical to before).
      util::Rng& rng = jitter_rngs_.empty()
                           ? jitter_rng_
                           : jitter_rngs_[static_cast<std::size_t>(src)];
      l += rng.below(params_.wire_jitter_ns);
    }
    return l;
  }

  [[nodiscard]] const Topology& topology() const { return topology_; }

 private:
  struct Node {
    std::unique_ptr<Cpu> cpu;
    std::unique_ptr<Nic> nic;
    std::unique_ptr<Memory> mem;
  };

  MachineParams params_;
  Explorer* explorer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  Topology topology_;
  Engine engine_;
  // One block per engine shard (exactly one for the classic engine);
  // sized once in the constructor so references handed to Cpus stay
  // stable. See counters()/counters_total().
  std::vector<Counters> counters_;
  Trace trace_;
  util::Rng jitter_rng_;
  std::vector<util::Rng> jitter_rngs_;  // per-source streams, sharded only
  std::vector<Node> nodes_;
};

}  // namespace nvgas::sim
