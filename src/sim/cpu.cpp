#include "sim/cpu.hpp"

#include <algorithm>

namespace nvgas::sim {

Cpu::Cpu(Engine& engine, int node, int workers, Counters& counters,
         Trace* trace)
    : engine_(engine), node_(node), counters_(counters), trace_(trace) {
  NVGAS_CHECK(workers >= 1);
  avail_.assign(static_cast<std::size_t>(workers), 0);
}

std::size_t Cpu::earliest_worker() const {
  return static_cast<std::size_t>(
      std::min_element(avail_.begin(), avail_.end()) - avail_.begin());
}

void Cpu::submit(Task fn) {
  queue_.push_back(std::move(fn));
  if (engine_.sharded() &&
      (!engine_.on_shard_context() || engine_.on_adopted_context())) {
    // Host-context submission (run_spmd setup / quiesced teardown), or a
    // nested submit from another node's adopted context: run the task in
    // this node's lane context so every event it schedules — NIC
    // loopbacks, RTO timers, completion wakeups — lands on the lane that
    // owns this node's state, not the host fallback lane.
    Engine::ShardContext scope(engine_, lane());
    pump();
    return;
  }
  pump();
}

std::int32_t Cpu::park_delayed(Task fn) {
  std::int32_t idx;
  if (delayed_free_ >= 0) {
    idx = delayed_free_;
    delayed_free_ = delayed_[static_cast<std::size_t>(idx)].next_free;
#ifdef NVGAS_SIMSAN
    NVGAS_CHECK_MSG(!delayed_[static_cast<std::size_t>(idx)].parked,
                    "SimSan: free list holds a parked Cpu task slot");
#endif
  } else {
    delayed_.emplace_back();
    idx = static_cast<std::int32_t>(delayed_.size() - 1);
  }
  delayed_[static_cast<std::size_t>(idx)].fn = std::move(fn);
#ifdef NVGAS_SIMSAN
  delayed_[static_cast<std::size_t>(idx)].parked = true;
#endif
  return idx;
}

Task Cpu::unpark_delayed(std::int32_t idx) {
  Delayed& d = delayed_[static_cast<std::size_t>(idx)];
#ifdef NVGAS_SIMSAN
  NVGAS_CHECK_MSG(d.parked,
                  "SimSan: use-after-recycle — unpark of a free Cpu task slot");
  d.parked = false;
#endif
  Task fn = std::move(d.fn);
#ifdef NVGAS_SIMSAN
  d.fn.poison();  // a stale unpark would invoke a poisoned task
#endif
  d.next_free = delayed_free_;
  delayed_free_ = idx;
  return fn;
}

void Cpu::submit_at(Time t, Task fn) {
  if (t <= engine_.now()) {
    submit(std::move(fn));
    return;
  }
  const std::int32_t idx = park_delayed(std::move(fn));
  engine_.at_shard(lane(), t, [this, idx] { submit(unpark_delayed(idx)); });
}

void Cpu::pump() {
  // Tasks may submit further tasks; the outer pump's loop will pick those
  // up, so re-entering here would only deepen the stack.
  if (pumping_) return;
  pumping_ = true;
  struct Unset {
    bool& flag;
    ~Unset() { flag = false; }
  } unset{pumping_};

  while (!queue_.empty()) {
    const std::size_t w = earliest_worker();
    const Time start = std::max(engine_.now(), avail_[w]);
    if (start > engine_.now()) {
      // All workers busy: wake when the earliest frees up.
      if (!wake_scheduled_ || wake_at_ > start) {
        wake_scheduled_ = true;
        wake_at_ = start;
        engine_.at_shard(lane(), start, [this] {
          wake_scheduled_ = false;
          pump();
        });
      }
      return;
    }
    Task fn = std::move(queue_.front());
    queue_.pop_front();
    TaskCtx ctx(*this, start);
    {
#if NVGAS_SHARDSAN
      // Attribution root: tasks are node-local, so everything a task does
      // (and every event chain it schedules) logically belongs to this
      // node's lane — in classic mode too, which is what makes ownership
      // violations detectable on a single-threaded run.
      shardsan::ExecScope ss_scope(&engine_, static_cast<std::uint32_t>(node_),
                                   start);
#endif
      fn(ctx);
    }
    avail_[w] = start + ctx.charged();
    if (trace_ != nullptr) {
      trace_->record(start, TraceEvent::kCpuTask, node_, -1, ctx.charged());
    }
    busy_ns_ += ctx.charged();
    counters_.cpu_busy_ns += ctx.charged();
    ++tasks_run_;
    ++counters_.cpu_tasks;
  }
}

}  // namespace nvgas::sim
