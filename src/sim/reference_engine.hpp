// Frozen copy of the seed event engine: std::function callbacks in a
// binary heap. Kept verbatim (modulo the class name) as the behavioral
// oracle for the production timing-wheel Engine — the determinism
// regression test replays identical schedules through both and asserts
// trace_hash() equality, and bench_engine reports the wheel's events/sec
// as a ratio against this implementation. Do not "improve" this file;
// its value is that it does not change.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace nvgas::sim {

class ReferenceEngine {
 public:
  // simlint:allow(D4: frozen reference oracle, correctness only — never benchmarked)
  using Callback = std::function<void()>;

  ReferenceEngine() = default;
  ReferenceEngine(const ReferenceEngine&) = delete;
  ReferenceEngine& operator=(const ReferenceEngine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  void at(Time t, Callback fn) {
    NVGAS_CHECK_MSG(t >= now_, "scheduling into the past");
    heap_.push(Event{t, next_seq_++, std::move(fn)});
  }

  void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  bool step() {
    if (heap_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    NVGAS_DCHECK(ev.at >= now_);
    now_ = ev.at;
    note_executed(ev);
    ev.fn();
    return true;
  }

  std::uint64_t run(std::uint64_t max_events = ~0ULL) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  std::uint64_t run_until(Time deadline) {
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().at <= deadline) {
      step();
      ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void note_executed(const Event& ev) {
    ++executed_;
    auto mix = [this](std::uint64_t v) {
      trace_hash_ ^= v;
      trace_hash_ *= 0x100000001b3ULL;
    };
    mix(ev.at);
    mix(ev.seq);
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace nvgas::sim
