// ShardSan: a purpose-built shard-ownership sanitizer for the sharded
// (conservative-parallel) engine, in the spirit of SimSan (pool lifetime)
// and TSan (races) but checking the engine's LOGICAL ownership contract:
//
//   Every lane-owned object family — engine lane wheels, NIC in-flight
//   pools and ports, reliability per-link windows/RTO timers, per-node
//   BlockStore free lists, lb heat entries — may only be touched from
//   (a) its owning lane's execution context inside a window,
//   (b) a sanctioned adopted host context (Engine::ShardContext), or
//   (c) the serial at_global barrier / quiescent host context.
//
// Unlike TSan, the checker tracks *logical* lane attribution, propagated
// through event scheduling, so a violation aborts deterministically on a
// single-threaded run of the same program — including classic-engine
// (-DNVGAS_PARALLEL=OFF) builds, where "lane" means the node whose state
// an event chain logically belongs to even though only one wheel exists.
//
// Attribution flows:
//   * Cpu::pump opens an ExecScope for the task's node (the root of all
//     classic-mode attribution; tasks are always node-local);
//   * Engine::schedule_on captures the scheduling context's lane into the
//     event node (sharded mode: the target lane, which IS the owner);
//   * Lane::execute re-opens the captured lane around the callback, so
//     attribution follows arbitrary event chains;
//   * the sanctioned classic-mode cross-lane handoffs (NIC wire hop,
//     reliability payload consume, balancer coordinator notes) switch
//     lanes explicitly with NVGAS_SHARD_HOP — the exact sites that the
//     sharded engine routes through Engine::post;
//   * genuinely cross-lane-by-contract operations (allocation-time home
//     reservation, free_alloc teardown) open NVGAS_SHARD_CROSS sanction
//     scopes, mirroring BlockStore's documented locking rationale.
//
// A second layer, the safe-window auditor, lives in the engine under the
// same flag and machine-checks the conservative-PDES lookahead argument
// itself (DESIGN.md §3b): outbox drains only happen between windows, a
// drained handoff is never clamped beyond its post time plus the
// lookahead, delivery order is exactly the (time, src lane, post order)
// tie-break, and no event executes past its window's deadline.
//
// Zero overhead when OFF: every hook compiles away (macros expand to
// ((void)0)), no struct grows, and ON vs OFF trace hashes are
// byte-identical because the checker never schedules, reorders, or times
// anything — it only observes and aborts.
//
// See docs/STATIC_ANALYSIS.md §ShardSan for the diagnostic format and
// suppression policy.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nvgas::sim::shardsan {

// Lane id meaning "no attribution": host context between runs, raw
// host-scheduled events, or another engine's context. Checks pass.
inline constexpr std::uint32_t kNone = 0xffffffffu;

#if NVGAS_SHARDSAN

// Per-host-thread logical execution context. thread_local by necessity —
// attribution follows the host thread executing events, exactly like the
// engine's own tl_engine/tl_lane.
struct TlCtx {
  const void* domain = nullptr;   // the Engine the attribution belongs to
  std::uint32_t lane = kNone;     // logical lane (node) being executed
  std::uint32_t sanction = 0;     // >0: adopted / barrier / NVGAS_SHARD_CROSS
  Time now = 0;                   // executing event's time (diagnostics)
  Time win_deadline = ~Time{0};   // open window's inclusive deadline
  bool win_open = false;
};

[[nodiscard]] TlCtx& tls();

// The logical lane currently attributed for `domain`, or kNone.
[[nodiscard]] std::uint32_t current_lane(const void* domain);

// The core ownership check: aborts with a full diagnostic (family, owner
// lane, accessing context, sim time, window bounds) unless the current
// context may touch `owner`'s state. `owner == kNone` means the object
// was never bound to a lane (standalone unit-test use) — always passes.
void check(const char* family, std::uint32_t owner, const void* domain,
           const char* file, int line);

// Safe-window auditor failure: aborts with `what` plus the context.
[[noreturn]] void audit_fail(const char* what, const char* file, int line);

// Event-time audit: an executing event must not lie past the open
// window's deadline (the window bound the lookahead proof established).
void audit_event_time(Time at, const char* file, int line);

// RAII: attribute the current host thread to `lane` of `domain`.
// Opened by Lane::execute (captured lane), Cpu::pump (task node),
// Engine::ShardContext (adopted lane) and the sanctioned classic-mode
// handoff sites (NVGAS_SHARD_HOP).
class ExecScope {
 public:
  ExecScope(const void* domain, std::uint32_t lane) : prev_(tls()) {
    TlCtx& c = tls();
    c.domain = domain;
    c.lane = lane;
  }
  ExecScope(const void* domain, std::uint32_t lane, Time now) : prev_(tls()) {
    TlCtx& c = tls();
    c.domain = domain;
    c.lane = lane;
    c.now = now;
  }
  ~ExecScope() {
    TlCtx& c = tls();
    c.domain = prev_.domain;
    c.lane = prev_.lane;
    c.now = prev_.now;
  }
  ExecScope(const ExecScope&) = delete;
  ExecScope& operator=(const ExecScope&) = delete;

 private:
  TlCtx prev_;
};

// RAII: sanction cross-lane access for the scope (adopted contexts, the
// serial barrier, and contract-sanctioned operations). Nests.
class SanctionScope {
 public:
  SanctionScope() { ++tls().sanction; }
  ~SanctionScope() { --tls().sanction; }
  SanctionScope(const SanctionScope&) = delete;
  SanctionScope& operator=(const SanctionScope&) = delete;
};

// RAII: publish the executing window's deadline for the event-time audit.
class WindowScope {
 public:
  explicit WindowScope(Time deadline)
      : prev_deadline_(tls().win_deadline), prev_open_(tls().win_open) {
    TlCtx& c = tls();
    c.win_deadline = deadline;
    c.win_open = true;
  }
  ~WindowScope() {
    TlCtx& c = tls();
    c.win_deadline = prev_deadline_;
    c.win_open = prev_open_;
  }
  WindowScope(const WindowScope&) = delete;
  WindowScope& operator=(const WindowScope&) = delete;

 private:
  Time prev_deadline_;
  bool prev_open_;
};

#endif  // NVGAS_SHARDSAN

}  // namespace nvgas::sim::shardsan

// ---- instrumentation macros (compile away when OFF) -----------------------

#if NVGAS_SHARDSAN

// Guard a touch of a lane-owned object: `family` is a string literal
// naming the object family, `owner` the owning lane (node id), `domain`
// the owning Engine.
#define NVGAS_SHARD_GUARD(family, owner, domain)              \
  ::nvgas::sim::shardsan::check(                              \
      family, static_cast<std::uint32_t>(owner), (domain), __FILE__, __LINE__)

// Guard through the object's bound owner (see NVGAS_SHARD_OWNER_DECL).
#define NVGAS_SHARD_GUARD_MEMBER(family) \
  ::nvgas::sim::shardsan::check(family, nvgas_ss_owner_, nvgas_ss_domain_, \
                                __FILE__, __LINE__)

#define NVGAS_SS_CONCAT2(a, b) a##b
#define NVGAS_SS_CONCAT(a, b) NVGAS_SS_CONCAT2(a, b)

// Sanctioned classic-mode logical handoff: attribute the rest of the
// scope to `lane` — exactly the sites the sharded engine routes via
// Engine::post, so attribution is mode-invariant.
#define NVGAS_SHARD_HOP(domain, lane)                   \
  ::nvgas::sim::shardsan::ExecScope NVGAS_SS_CONCAT(    \
      nvgas_ss_hop_, __LINE__)((domain), static_cast<std::uint32_t>(lane))

// Sanction cross-lane access for the scope; `why` documents the contract
// clause that makes it safe (shows up in greps, not at runtime).
#define NVGAS_SHARD_CROSS(why)                       \
  ::nvgas::sim::shardsan::SanctionScope NVGAS_SS_CONCAT(nvgas_ss_cross_, \
                                                        __LINE__)

// Owner tag for objects that cannot derive their lane from a member
// (BlockStore, HeatMap): declares the owner/domain fields...
#define NVGAS_SHARD_OWNER_DECL                                      \
  std::uint32_t nvgas_ss_owner_ = ::nvgas::sim::shardsan::kNone;    \
  const void* nvgas_ss_domain_ = nullptr

// ...and binds them (no-op to rebind with identical values).
#define NVGAS_SHARD_BIND(obj, lane, domain)                          \
  do {                                                               \
    (obj).nvgas_ss_owner_ = static_cast<std::uint32_t>(lane);        \
    (obj).nvgas_ss_domain_ = (domain);                               \
  } while (false)

#else  // !NVGAS_SHARDSAN

#define NVGAS_SHARD_GUARD(family, owner, domain) ((void)0)
#define NVGAS_SHARD_GUARD_MEMBER(family) ((void)0)
#define NVGAS_SHARD_HOP(domain, lane) ((void)0)
#define NVGAS_SHARD_CROSS(why) ((void)0)
#define NVGAS_SHARD_OWNER_DECL \
  static_assert(true, "ShardSan compiled out")
#define NVGAS_SHARD_BIND(obj, lane, domain) ((void)0)

#endif  // NVGAS_SHARDSAN
