// Simulated network interface.
//
// Each node owns one NIC with three modelled resources:
//   * tx port  — serializes outgoing messages (g + size·G each),
//   * rx port  — serializes incoming messages (g each),
//   * command processor — executes NIC-resident work (DMA setup, TLB
//     lookups, forwards, atomics) WITHOUT involving the node's CPU.
// The command processor is the hardware the paper's contribution leans
// on: one-sided GVA operations ride it end to end.
//
// In-flight messages are parked in a recycled pool on the destination
// NIC; the wire-hop and rx-port engine events capture only {nic, slot},
// so a message in flight costs zero heap allocations at the engine
// layer (the Deliver closure itself is inline up to 48 bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/counters.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/time.hpp"
#include "util/inline_function.hpp"

namespace nvgas::sim {

class Fabric;

class Nic {
 public:
  // `deliver` runs as an engine event at the destination NIC once the
  // message clears the destination rx port; its argument is that time.
  using Deliver = util::InlineFunction<void(Time), 48>;

  Nic(Fabric& fabric, int node) : fabric_(&fabric), node_(node) {}
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  // Inject `bytes` toward `dst`, departing no earlier than `depart`
  // (callers pass TaskCtx::now() so CPU work preceding the send delays it).
  void send(Time depart, int dst, std::uint64_t bytes, Deliver deliver);

  // Reserve the command processor from `ready` for `cost` ns; returns the
  // completion time. Used by NIC-level op handlers.
  Time occupy_command_processor(Time ready, Time cost);

  // Sentinel injection index for messages sent with no Explorer armed.
  static constexpr std::uint64_t kNoInjection = ~std::uint64_t{0};

  [[nodiscard]] int node() const { return node_; }
  [[nodiscard]] std::uint64_t tx_messages() const { return tx_messages_; }
  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_messages() const { return rx_messages_; }

 private:
  friend class Fabric;

  // One in-flight message parked on the destination NIC. Arrival and
  // rx-done times travel through the wire-hop/delivery event closures
  // (not through the slot), so a fault-duplicated frame can be in flight
  // twice against one slot: `copies` counts outstanding deliveries and
  // the slot recycles when the last one lands (always 1 without faults).
  struct PendingMsg {
    std::uint64_t bytes = 0;
    int src = -1;
    std::uint8_t copies = 1;
    Deliver deliver;
    std::int32_t next_free = -1;
    // Explorer injection index (kNoInjection when no explorer is armed).
    std::uint64_t inj = kNoInjection;
#ifdef NVGAS_SIMSAN
    bool parked = false;  // occupancy audit: delivery of a free slot aborts
#endif
  };

  std::int32_t park_msg(int src, std::uint64_t bytes, Deliver deliver,
                        std::uint64_t inj, std::uint8_t copies);
  // Called on the destination NIC when the message hits its rx port.
  void arrive(std::int32_t idx, Time at_port);
  void deliver_parked(std::int32_t idx, Time done);
  // Sharded-engine receive: runs on this NIC's own lane (via a cross-
  // shard post from the sender), parks the message locally and schedules
  // the exact per-copy arrival times. `arrive1` is meaningful only when
  // copies == 2 (fault duplication).
  void receive_remote(int src, std::uint64_t bytes, Deliver deliver,
                      std::uint64_t inj, std::uint8_t copies, Time arrive0,
                      Time arrive1);

  Fabric* fabric_;
  int node_;
  Time tx_avail_ = 0;
  Time rx_avail_ = 0;
  Time cp_avail_ = 0;
  std::uint64_t tx_messages_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_messages_ = 0;
  std::vector<PendingMsg> inflight_;
  std::int32_t inflight_free_ = -1;
};

}  // namespace nvgas::sim
