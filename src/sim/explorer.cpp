#include "sim/explorer.hpp"

#include <algorithm>
#include <charconv>

namespace nvgas::sim {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

void Schedule::set(std::uint64_t index, std::uint8_t choice) {
  auto it = std::lower_bound(
      delays.begin(), delays.end(), index,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it != delays.end() && it->first == index) {
    it->second = choice;
    return;
  }
  delays.insert(it, {index, choice});
}

std::uint8_t Schedule::choice(std::uint64_t index) const {
  auto it = std::lower_bound(
      delays.begin(), delays.end(), index,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it != delays.end() && it->first == index) return it->second;
  return 0;
}

std::string Schedule::str() const {
  if (delays.empty()) return "-";
  std::string out;
  for (const auto& [index, choice] : delays) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(index);
    out.push_back(':');
    out += std::to_string(static_cast<int>(choice));
  }
  return out;
}

bool Schedule::parse(std::string_view text, Schedule* out) {
  Schedule parsed;
  if (text == "-" || text.empty()) {
    *out = std::move(parsed);
    return true;
  }
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view item =
        text.substr(pos, comma == std::string_view::npos ? comma : comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return false;
    std::uint64_t index = 0;
    unsigned choice = 0;
    const auto* ib = item.data();
    const auto ir = std::from_chars(ib, ib + colon, index);
    if (ir.ec != std::errc{} || ir.ptr != ib + colon) return false;
    const auto* cb = item.data() + colon + 1;
    const auto* ce = item.data() + item.size();
    const auto cr = std::from_chars(cb, ce, choice);
    if (cr.ec != std::errc{} || cr.ptr != ce) return false;
    if (choice == 0 || choice > Explorer::kChoices) return false;
    parsed.set(index, static_cast<std::uint8_t>(choice));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  *out = std::move(parsed);
  return true;
}

Explorer::Explorer(Time window_ns) : window_(window_ns) {}

Time Explorer::quantum(int choice) const {
  switch (choice) {
    case 1:
      return 1;
    case 2:
      return window_;
    case 3:
      return 4 * window_;
    default:
      return 0;
  }
}

Time Explorer::on_injection(int src, int dst, Time base_arrival,
                            std::uint64_t* index_out) {
  const std::uint64_t index = log_.size();
  Time when = base_arrival + quantum(schedule_.choice(index));
  Time& floor = pair_floor_[pair_key(src, dst)];
  if (when < floor) when = floor;  // preserve point-to-point FIFO
  floor = when;
  log_.push_back({src, dst, when});
  if (index_out != nullptr) *index_out = index;
  return when;
}

void Explorer::on_delivery(int dst, std::uint64_t index) {
  ++deliveries_;
  order_hash_ = fnv_step(order_hash_, static_cast<std::uint64_t>(dst));
  order_hash_ = fnv_step(order_hash_, index);
}

std::vector<std::uint64_t> Explorer::commutative_points() const {
  // Sort (dst, arrival) with the injection index attached, then mark any
  // injection whose same-destination neighbour lands within the window.
  struct Item {
    int dst;
    Time arrival;
    std::uint64_t index;
  };
  std::vector<Item> items;
  items.reserve(log_.size());
  for (std::uint64_t i = 0; i < log_.size(); ++i) {
    items.push_back({log_[i].dst, log_[i].arrival, i});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.index < b.index;
  });
  std::vector<std::uint64_t> points;
  for (std::size_t i = 0; i + 1 < items.size(); ++i) {
    const Item& a = items[i];
    const Item& b = items[i + 1];
    if (a.dst == b.dst && b.arrival - a.arrival <= window_) {
      points.push_back(a.index);
      points.push_back(b.index);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

}  // namespace nvgas::sim
