// Top-level configuration for an nvgas World.
#pragma once

#include "core/agas_net.hpp"
#include "gas/costs.hpp"
#include "gas/gas_api.hpp"
#include "lb/policy.hpp"
#include "net/config.hpp"
#include "rt/collectives.hpp"
#include "rt/costs.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"

namespace nvgas {

struct Config {
  sim::MachineParams machine;      // hardware model
  net::NetConfig net;              // middleware knobs
  rt::RtCosts rt_costs;            // runtime software costs
  rt::CollAlgo coll_algo = rt::CollAlgo::kFlat;  // collective algorithm
  gas::GasCosts gas_costs;         // address-space software costs
  core::AgasNetConfig agas_net;    // contribution's design knobs
  lb::LbConfig lb;                 // adaptive migration subsystem (src/lb)
  sim::FaultPlan faults;           // wire-fault injection; inert when empty
  gas::GasMode gas_mode = gas::GasMode::kAgasNet;
  std::uint64_t seed = 0x5eed0000;  // workload RNG seed (determinism)

  [[nodiscard]] static Config with_nodes(int nodes,
                                         gas::GasMode mode = gas::GasMode::kAgasNet) {
    Config cfg;
    cfg.machine.nodes = nodes;
    cfg.gas_mode = mode;
    return cfg;
  }
};

}  // namespace nvgas
