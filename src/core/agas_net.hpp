// Network-managed AGAS: the paper's contribution.
//
// The GVA→{owner, lva} mapping lives in NIC-resident translation tables
// (net::NicTlb), and every step of the data path executes on NIC command
// processors:
//
//   * source NIC: TLB lookup; hit → send to owner, miss → send to home
//     (the home rank is arithmetic on the address, so a miss needs no
//     software);
//   * home NIC: pinned authoritative entry; forwards ops for blocks that
//     moved (one extra wire hop, no CPU), queues ops while a block's
//     migration is in flight;
//   * previous-owner NIC: keeps an unpinned forwarding hint after the
//     block leaves, so stale sources get forwarded directly to the new
//     owner;
//   * owner NIC: executes the DMA/atomic and acks the source, piggybacking
//     a TLB update so the source's next op goes direct.
//
// Target CPUs are NEVER on the data path. Migration involves exactly one
// CPU task (backing-store allocation at the destination); the commit is
// an atomic remap of the home NIC's entry.
//
// Ablation knobs (AgasNetConfig) cover the design choices benchmarked in
// R-T3: forwarding vs NACK-to-source, hint forwarding, piggyback updates.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "gas/gas_api.hpp"
#include "net/nic_tlb.hpp"

namespace nvgas::core {

struct AgasNetConfig {
  bool piggyback_updates = true;  // acks update the source NIC TLB
  bool forward_hints = true;      // previous owner forwards directly
  bool nack_on_stale = false;     // NACK-to-source instead of forwarding
  std::size_t tlb_capacity = 65536;
};

class AgasNet final : public gas::GasBase {
 public:
  AgasNet(sim::Fabric& fabric, net::EndpointGroup& endpoints,
          gas::GlobalHeap& heap, gas::GasCosts costs, AgasNetConfig config);

  [[nodiscard]] gas::GasMode mode() const override {
    return gas::GasMode::kAgasNet;
  }
  [[nodiscard]] bool supports_migration() const override { return true; }

  gas::Gva alloc(sim::TaskCtx& task, int node, gas::Dist dist,
                 std::uint32_t nblocks, std::uint32_t block_size) override;

  void memput(sim::TaskCtx& task, int node, gas::Gva dst,
              std::vector<std::byte> data, net::OnDone done) override;
  void memput_notify(sim::TaskCtx& task, int node, gas::Gva dst,
                     std::vector<std::byte> data, net::OnDone done,
                     net::OnDone remote_notify) override;
  void memget(sim::TaskCtx& task, int node, gas::Gva src, std::size_t len,
              net::OnData done) override;
  void fetch_add(sim::TaskCtx& task, int node, gas::Gva addr,
                 std::uint64_t operand, net::OnU64 done) override;
  void resolve(sim::TaskCtx& task, int node, gas::Gva addr,
               gas::OnOwner done) override;
  void migrate(sim::TaskCtx& task, int node, gas::Gva block, int dst,
               net::OnDone done) override;

  [[nodiscard]] std::pair<int, sim::Lva> owner_of(gas::Gva block) const override;

  // mcheck invariant audits (see docs/MODEL_CHECKING.md). Unlike the
  // software AGAS, non-home TLB entries MAY be stale — but only by
  // bounded amounts: an entry's generation can never exceed the home's
  // (+1 while a remap is in flight), current-generation entries must
  // agree with the home on owner/base, and pinned or in-flight state is
  // confined to the home (plus the committed new owner's pinned copy).
  [[nodiscard]] std::string audit_translation() const override;
  [[nodiscard]] std::string audit_quiescent() const override;

  [[nodiscard]] const net::NicTlb& tlb(int node) const {
    return *tlbs_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] const AgasNetConfig& config() const { return config_; }

 protected:
  std::pair<int, sim::Lva> drop_block_state(gas::Gva block_base) override;

 private:
  struct Op {
    enum class Kind : std::uint8_t { kPut, kGet, kFadd };
    Kind kind = Kind::kPut;
    int src = -1;
    std::uint64_t key = 0;
    std::uint32_t offset = 0;
    std::vector<std::byte> data;   // put payload
    std::uint32_t len = 0;         // get length
    std::uint64_t operand = 0;     // fadd operand
    int hops = 0;
    bool used_hint = false;  // a hint forward may be taken only once
    net::OnDone on_done;
    net::OnData on_data;
    net::OnU64 on_u64;
    net::OnDone on_remote;  // put-with-remote-notification (ledger)

    [[nodiscard]] std::uint64_t wire_bytes() const;
  };

  struct Migration {
    int dst = -1;
    int initiator = -1;
    sim::Lva dst_lva = 0;
    net::OnDone done;
  };
  struct PendingMigration {
    int dst;
    int initiator;
    net::OnDone done;
  };

  [[nodiscard]] net::NicTlb& tlb_mut(int node) {
    return *tlbs_.at(static_cast<std::size_t>(node));
  }
  [[nodiscard]] int home_of(gas::Gva block_base) const {
    return block_base.home(fabric_->nodes());
  }
  [[nodiscard]] static gas::Gva base_of_key(std::uint64_t key) {
    return gas::Gva(key);
  }

  // Source-side issue: CPU posts the descriptor, the source NIC looks up
  // its TLB and targets the owner or the home.
  void issue(sim::TaskCtx& task, int node, Op op);

  // NIC-level routing at `at` when the op message arrives (time `t` is
  // post-rx-port).
  void route(sim::Time t, int at, Op op);
  void send_op(sim::Time depart, int from, int to, Op op);

  // Execute at the verified owner.
  void execute(sim::Time t, int owner, const net::TlbEntry& entry, Op op);
  // Install a piggybacked translation update at `node` (skipped at the
  // block's home, whose pinned entry is authoritative).
  void maybe_piggyback(int node, std::uint64_t key, const net::TlbEntry& update);
  // Ack/reply to the source, with optional piggybacked TLB update.
  void reply(sim::Time depart, int owner, const net::TlbEntry& entry, Op op,
             std::vector<std::byte> get_data, std::uint64_t fadd_old);

  // Migration steps (NIC-level at the home except the dst allocation).
  void mig_request(sim::Time t, gas::Gva block_base, int dst, int initiator,
                   net::OnDone done);
  void mig_alloc_ok(sim::Time t, gas::Gva block_base, sim::Lva dst_lva);
  void mig_commit(sim::Time t, gas::Gva block_base);
  void chain_queued_migration(sim::Time t, gas::Gva block_base);
  void notify_initiator(sim::Time depart, int home, int initiator,
                        net::OnDone done);

  // Home-side migration state, partitioned by home node: every access
  // is keyed by a block whose home coordinates it, so under the sharded
  // engine each HomeState is touched only from its home's lane (a
  // single shared map would race on rehash across lanes).
  struct HomeState {
    // simlint:allow(D1: keyed find/erase only, never iterated)
    std::unordered_map<std::uint64_t, Migration> migrations;
    // simlint:allow(D1: vector extracted per key; the map is never iterated)
    std::unordered_map<std::uint64_t, std::vector<Op>> queued_ops;
    // simlint:allow(D1: vector extracted per key; the map is never iterated)
    std::unordered_map<std::uint64_t, std::vector<PendingMigration>> queued_migs;
  };
  [[nodiscard]] HomeState& hstate(std::uint64_t key) {
    return homes_.at(static_cast<std::size_t>(home_of(base_of_key(key))));
  }

  AgasNetConfig config_;
  std::vector<std::unique_ptr<net::NicTlb>> tlbs_;
  std::vector<HomeState> homes_;
};

}  // namespace nvgas::core
