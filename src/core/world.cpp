#include "core/world.hpp"

#include <sstream>

#include "gas/agas_sw.hpp"
#include "gas/pgas.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nvgas {

World::World(const Config& cfg) : cfg_(cfg) {
  NVGAS_CHECK_MSG(cfg_.machine.nodes <= gas::Gva::kMaxNodes,
                  "node count exceeds the GVA creator field");
  fabric_ = std::make_unique<sim::Fabric>(cfg_.machine);
  if (cfg_.faults.active()) {
    // Armed BEFORE any traffic exists. An inactive plan installs nothing:
    // Fabric::faults() stays null, and the whole fault/retransmission
    // machinery is structurally absent from the event stream.
    faults_ = std::make_unique<sim::FaultInjector>(cfg_.faults, *fabric_);
    fabric_->set_faults(faults_.get());
  }
  endpoints_ = std::make_unique<net::EndpointGroup>(*fabric_, cfg_.net);
  runtime_ = std::make_unique<rt::Runtime>(*fabric_, *endpoints_, cfg_.rt_costs);
  coll_ = std::make_unique<rt::Collectives>(*runtime_, cfg_.coll_algo);
  heap_ = std::make_unique<gas::GlobalHeap>(*fabric_);

  switch (cfg_.gas_mode) {
    case GasMode::kPgas:
      gas_ = std::make_unique<gas::Pgas>(*fabric_, *endpoints_, *heap_,
                                         cfg_.gas_costs);
      break;
    case GasMode::kAgasSw:
      gas_ = std::make_unique<gas::AgasSw>(*fabric_, *endpoints_, *heap_,
                                           cfg_.gas_costs);
      break;
    case GasMode::kAgasNet:
      gas_ = std::make_unique<core::AgasNet>(*fabric_, *endpoints_, *heap_,
                                             cfg_.gas_costs, cfg_.agas_net);
      break;
  }

  for (int n = 0; n < fabric_->nodes(); ++n) {
    runtime_->ctx(n).gas = gas_.get();
  }

  if (cfg_.lb.policy != lb::PolicyKind::kNone) {
    // Inert (observes nothing, schedules nothing) when the manager
    // cannot migrate, so e.g. a PGAS run stays byte-identical.
    balancer_ = std::make_unique<lb::Balancer>(*fabric_, *gas_, cfg_.lb);
  }

  // The apply trampoline: a parcel targeted at a GVA carries
  // [u64 gva][u32 action][args...]. The receiving runtime re-resolves the
  // address; if the object has moved since the sender's (possibly stale)
  // translation, the parcel is forwarded — the software analogue of the
  // NIC-level forwarding on the data path, and how message-driven
  // runtimes keep parcels converging on mobile objects.
  const rt::ActionId apply_id = runtime_->actions().add(
      "nvgas.apply",
      [this](rt::Context& c, int src, util::Buffer args) {
        auto r = args.reader();
        const Gva gva(r.get<std::uint64_t>());
        const auto action = r.get<rt::ActionId>();
        util::Buffer rest;
        rest.append_raw(r.rest());
        const int node = c.rank();
        sim::TaskCtx* task = runtime_->current_task(node);
        NVGAS_CHECK(task != nullptr);
        gas_->resolve(
            *task, node, gva,
            [this, node, src, gva, action,
             rest = std::move(rest)](sim::Time t, int owner) mutable {
              if (owner == node) {
                runtime_->invoke_action_at(node, t, action, src, std::move(rest));
                return;
              }
              util::Buffer fwd;
              fwd.put<std::uint64_t>(gva.bits());
              fwd.put<rt::ActionId>(action);
              fwd.append_raw(rest.bytes());
              runtime_->send_parcel_at(node, t, owner, runtime_->apply_action(),
                                       std::move(fwd));
            });
      });
  runtime_->set_apply_action(apply_id);
}

std::uint64_t World::run(std::uint64_t max_events) {
  return fabric_->engine().run(max_events);
}

std::string World::report() const {
  std::ostringstream oss;
  auto* self = const_cast<World*>(this);
  const double elapsed = static_cast<double>(self->fabric().engine().now());

  util::Table per_node("per-node breakdown");
  per_node.columns({"node", "cpu busy", "cpu util", "tasks", "nic tx", "nic rx",
                    "tx bytes", "heap in use"});
  for (int n = 0; n < ranks(); ++n) {
    auto& cpu = self->fabric().cpu(n);
    auto& nic = self->fabric().nic(n);
    const double util =
        elapsed > 0 ? static_cast<double>(cpu.busy_ns()) /
                          (elapsed * cfg_.machine.workers_per_node)
                    : 0.0;
    per_node.cell(static_cast<std::int64_t>(n))
        .cell(util::format_ns(static_cast<double>(cpu.busy_ns())))
        .cell(util * 100.0, 1)
        .cell(cpu.tasks_run())
        .cell(nic.tx_messages())
        .cell(nic.rx_messages())
        .cell(util::format_bytes(nic.tx_bytes()))
        .cell(util::format_bytes(self->heap().store(n).bytes_in_use()))
        .end_row();
  }
  per_node.print(oss);

  util::Table globals("global counters (nonzero)");
  globals.columns({"counter", "value"});
  const sim::Counters totals = self->fabric().counters_total();
  for (const auto& [name, value] : totals.items()) {
    if (value != 0) {
      globals.cell(name).cell(value).end_row();
    }
  }
  globals.print(oss);
  return oss.str();
}

void World::run_spmd(std::function<Fiber(Context&)> fn) {
  for (int r = 0; r < ranks(); ++r) {
    runtime_->spawn(r, fn);
  }
  run();
  NVGAS_CHECK_MSG(runtime_->live_fibers() == 0,
                  "run_spmd: fibers still suspended after drain (deadlock)");
}

}  // namespace nvgas
