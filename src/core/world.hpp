// World: the assembled system (simulated cluster + RMA middleware +
// message-driven runtime + selected address-space manager) and the
// fiber-facing awaitable API for global-address-space operations.
//
// Typical use:
//
//   nvgas::Config cfg = nvgas::Config::with_nodes(16);
//   nvgas::World world(cfg);
//   world.run_spmd([](nvgas::Context& ctx) -> nvgas::Fiber {
//     auto table = nvgas::alloc_cyclic(ctx, /*blocks=*/64, /*bytes=*/4096);
//     co_await nvgas::memput_value<double>(ctx, table, 3.14);
//     double v = co_await nvgas::memget_value<double>(ctx, table);
//     co_await nvgas::migrate(ctx, table, (ctx.rank() + 1) % ctx.ranks());
//   });
#pragma once

#include <cstring>
#include <functional>
#include <memory>

#include "core/config.hpp"
#include "lb/balancer.hpp"
#include "net/endpoint.hpp"
#include "rt/collectives.hpp"
#include "rt/runtime.hpp"
#include "sim/fabric.hpp"

namespace nvgas {

using Context = rt::Context;
using Fiber = rt::Fiber;
using gas::Dist;
using gas::GasMode;
using gas::Gva;

class World {
 public:
  explicit World(const Config& cfg);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] sim::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] sim::Engine& engine() { return fabric_->engine(); }
  [[nodiscard]] sim::Counters& counters() { return fabric_->counters(); }
  // Aggregate across engine shards, deterministic at quiescence (equals
  // counters() on the classic engine).
  [[nodiscard]] sim::Counters counters_total() const {
    return fabric_->counters_total();
  }
  [[nodiscard]] net::EndpointGroup& endpoints() { return *endpoints_; }
  [[nodiscard]] rt::Runtime& runtime() { return *runtime_; }
  [[nodiscard]] rt::Collectives& coll() { return *coll_; }
  [[nodiscard]] gas::GasBase& gas() { return *gas_; }
  [[nodiscard]] gas::GlobalHeap& heap() { return *heap_; }
  // The adaptive migration balancer; null when cfg.lb.policy is `none`.
  // Constructed inert (active() false) on managers that cannot migrate.
  [[nodiscard]] lb::Balancer* balancer() { return balancer_.get(); }
  [[nodiscard]] int ranks() const { return fabric_->nodes(); }
  [[nodiscard]] sim::Time now() const { return fabric_->engine().now(); }

  // Spawn a fiber on one rank (starts when the engine runs).
  void spawn(int rank, std::function<Fiber(Context&)> fn) {
    runtime_->spawn(rank, std::move(fn));
  }

  // Drain the event queue; returns events executed. `max_events` is a
  // livelock watchdog for benchmarks.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  // SPMD helper: spawn `fn` on every rank, drain, and verify that every
  // spawned fiber completed (a leftover suspended fiber means deadlock).
  void run_spmd(std::function<Fiber(Context&)> fn);

  // Per-node utilization/traffic breakdown (CPU busy fraction, NIC
  // tx/rx, memory in use) plus the global counter list — the report
  // examples and benches print under --report.
  [[nodiscard]] std::string report() const;

 private:
  Config cfg_;
  std::unique_ptr<sim::Fabric> fabric_;
  std::unique_ptr<sim::FaultInjector> faults_;  // armed only when cfg.faults.active()
  std::unique_ptr<net::EndpointGroup> endpoints_;
  std::unique_ptr<rt::Runtime> runtime_;
  std::unique_ptr<rt::Collectives> coll_;
  std::unique_ptr<gas::GlobalHeap> heap_;
  std::unique_ptr<gas::GasBase> gas_;
  std::unique_ptr<lb::Balancer> balancer_;
};

// ---------------------------------------------------------------------------
// Fiber-facing GAS API (awaitables).
//
// Each awaitable issues the operation through the current CPU task; if the
// operation completes synchronously (e.g. a local access) the fiber
// continues without suspending.
// ---------------------------------------------------------------------------

namespace detail {

inline sim::TaskCtx& task_of(Context& ctx) {
  sim::TaskCtx* task = ctx.runtime().current_task(ctx.rank());
  NVGAS_CHECK_MSG(task != nullptr, "GAS op outside a fiber segment");
  return *task;
}

inline gas::GasBase& gas_of(Context& ctx) {
  NVGAS_CHECK_MSG(ctx.gas != nullptr, "Context has no GAS installed");
  return *ctx.gas;
}

// Common completion plumbing: handles the completed-synchronously case
// (the callback fires before await_suspend returns).
struct SyncState {
  bool completed = false;
  bool suspended = false;

  // Returns true if the fiber should suspend.
  [[nodiscard]] bool after_issue() {
    if (completed) return false;
    suspended = true;
    return true;
  }

  template <typename Handle>
  void on_complete(Handle h, sim::Time t) {
    if (!suspended) {
      completed = true;
      return;
    }
    auto& p = h.promise();
    p.runtime->resume_fiber_at(p.node, h, t);
  }
};

}  // namespace detail

// --- memput ----------------------------------------------------------------

struct MemputAwaiter {
  Context& ctx;
  Gva dst;
  std::vector<std::byte> data;
  detail::SyncState state;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    detail::gas_of(ctx).memput(detail::task_of(ctx), ctx.rank(), dst,
                               std::move(data),
                               [this, h](sim::Time t) { state.on_complete(h, t); });
    return state.after_issue();
  }
  void await_resume() const {}
};

[[nodiscard]] inline MemputAwaiter memput(Context& ctx, Gva dst,
                                          std::vector<std::byte> data) {
  return MemputAwaiter{ctx, dst, std::move(data), {}};
}

namespace detail {
// memcpy-based construction sidesteps a GCC 12 -Wstringop-overflow false
// positive on span-iterator vector construction at -O2.
inline std::vector<std::byte> to_vec(std::span<const std::byte> data) {
  std::vector<std::byte> out(data.size());
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
  return out;
}
}  // namespace detail

[[nodiscard]] inline MemputAwaiter memput(Context& ctx, Gva dst,
                                          std::span<const std::byte> data) {
  return MemputAwaiter{ctx, dst, detail::to_vec(data), {}};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] MemputAwaiter memput_value(Context& ctx, Gva dst, const T& value) {
  return MemputAwaiter{ctx, dst, detail::to_vec(std::as_bytes(std::span(&value, 1))),
                       {}};
}

// memput with remote notification: besides completing at the sender, the
// put triggers `remote_event` (an LCO registered on the block's OWNER
// node) the instant the data is visible there — Photon's remote
// completion ledger. Producer/consumer without parcels:
//
//   consumer (on owner):  rt::Event arrived;           // registered ref
//                         co_await arrived;            // data is there
//   producer:             co_await memput_signal(ctx, dst, data, ref);
struct MemputSignalAwaiter {
  Context& ctx;
  Gva dst;
  std::vector<std::byte> data;
  rt::LcoRef remote;
  detail::SyncState state;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    auto* rtp = &ctx.runtime();
    detail::gas_of(ctx).memput_notify(
        detail::task_of(ctx), ctx.rank(), dst, std::move(data),
        [this, h](sim::Time t) { state.on_complete(h, t); },
        [rtp, remote = remote](sim::Time t) { rtp->ledger_set(remote, t); });
    return state.after_issue();
  }
  void await_resume() const {}
};

[[nodiscard]] inline MemputSignalAwaiter memput_signal(Context& ctx, Gva dst,
                                                       std::vector<std::byte> data,
                                                       rt::LcoRef remote_event) {
  return MemputSignalAwaiter{ctx, dst, std::move(data), remote_event, {}};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] MemputSignalAwaiter memput_signal_value(Context& ctx, Gva dst,
                                                      const T& value,
                                                      rt::LcoRef remote_event) {
  return MemputSignalAwaiter{ctx, dst,
                             detail::to_vec(std::as_bytes(std::span(&value, 1))),
                             remote_event,
                             {}};
}

// --- memget ----------------------------------------------------------------

struct MemgetAwaiter {
  Context& ctx;
  Gva src;
  std::size_t len;
  detail::SyncState state;
  std::vector<std::byte> result;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    detail::gas_of(ctx).memget(detail::task_of(ctx), ctx.rank(), src, len,
                               [this, h](sim::Time t, std::vector<std::byte> data) {
                                 result = std::move(data);
                                 state.on_complete(h, t);
                               });
    return state.after_issue();
  }
  [[nodiscard]] std::vector<std::byte> await_resume() { return std::move(result); }
};

[[nodiscard]] inline MemgetAwaiter memget(Context& ctx, Gva src, std::size_t len) {
  return MemgetAwaiter{ctx, src, len, {}, {}};
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
struct MemgetValueAwaiter {
  MemgetAwaiter inner;
  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) { return inner.await_suspend(h); }
  [[nodiscard]] T await_resume() {
    auto bytes = inner.await_resume();
    NVGAS_CHECK(bytes.size() == sizeof(T));
    T out;
    std::memcpy(&out, bytes.data(), sizeof(T));
    return out;
  }
};

template <typename T>
[[nodiscard]] MemgetValueAwaiter<T> memget_value(Context& ctx, Gva src) {
  return MemgetValueAwaiter<T>{MemgetAwaiter{ctx, src, sizeof(T), {}, {}}};
}

// --- fetch_add ---------------------------------------------------------------

struct FetchAddAwaiter {
  Context& ctx;
  Gva addr;
  std::uint64_t operand;
  detail::SyncState state;
  std::uint64_t old = 0;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    detail::gas_of(ctx).fetch_add(detail::task_of(ctx), ctx.rank(), addr, operand,
                                  [this, h](sim::Time t, std::uint64_t v) {
                                    old = v;
                                    state.on_complete(h, t);
                                  });
    return state.after_issue();
  }
  [[nodiscard]] std::uint64_t await_resume() const { return old; }
};

[[nodiscard]] inline FetchAddAwaiter fetch_add(Context& ctx, Gva addr,
                                               std::uint64_t operand) {
  return FetchAddAwaiter{ctx, addr, operand, {}};
}

// --- resolve -----------------------------------------------------------------

struct ResolveAwaiter {
  Context& ctx;
  Gva addr;
  detail::SyncState state;
  int owner = -1;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    detail::gas_of(ctx).resolve(detail::task_of(ctx), ctx.rank(), addr,
                                [this, h](sim::Time t, int o) {
                                  owner = o;
                                  state.on_complete(h, t);
                                });
    return state.after_issue();
  }
  [[nodiscard]] int await_resume() const { return owner; }
};

[[nodiscard]] inline ResolveAwaiter resolve(Context& ctx, Gva addr) {
  return ResolveAwaiter{ctx, addr, {}};
}

// --- migrate -----------------------------------------------------------------

struct MigrateAwaiter {
  Context& ctx;
  Gva block;
  int dst;
  detail::SyncState state;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    detail::gas_of(ctx).migrate(detail::task_of(ctx), ctx.rank(), block, dst,
                                [this, h](sim::Time t) { state.on_complete(h, t); });
    return state.after_issue();
  }
  void await_resume() const {}
};

[[nodiscard]] inline MigrateAwaiter migrate(Context& ctx, Gva block, int dst) {
  return MigrateAwaiter{ctx, block, dst, {}};
}

// --- allocation (synchronous metadata; handshake cost charged) ---------------

[[nodiscard]] inline Gva alloc_cyclic(Context& ctx, std::uint32_t nblocks,
                                      std::uint32_t block_size) {
  return detail::gas_of(ctx).alloc(detail::task_of(ctx), ctx.rank(),
                                   Dist::kCyclic, nblocks, block_size);
}

[[nodiscard]] inline Gva alloc_local(Context& ctx, std::uint32_t nblocks,
                                     std::uint32_t block_size) {
  return detail::gas_of(ctx).alloc(detail::task_of(ctx), ctx.rank(),
                                   Dist::kLocal, nblocks, block_size);
}

// Release an allocation (collective semantics: no accesses or migrations
// may be in flight).
inline void free_alloc(Context& ctx, Gva base) {
  detail::gas_of(ctx).free_alloc(detail::task_of(ctx), ctx.rank(), base);
}

// --- spanning transfers ------------------------------------------------------
// memput/memget across block boundaries: split into per-block ops issued
// concurrently; complete on an internal gate. Single-op memput/memget
// reject boundary crossings by design (a block is the distribution and
// migration unit), so bulk I/O goes through these.

struct SpanPutAwaiter {
  Context& ctx;
  Gva dst;
  std::vector<std::byte> data;
  detail::SyncState state;
  std::unique_ptr<rt::AndGate> gate;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    auto& g = detail::gas_of(ctx);
    const std::uint32_t bsize = g.heap().meta_of(dst).block_size;
    // Count the pieces first.
    std::uint64_t pieces = 0;
    for (std::size_t off = 0; off < data.size();) {
      const std::size_t in_block = bsize - dst.advanced(
          static_cast<std::int64_t>(off), bsize).offset();
      off += std::min(in_block, data.size() - off);
      ++pieces;
    }
    if (pieces == 0) return false;  // empty put: nothing to wait for
    gate = std::make_unique<rt::AndGate>(pieces);
    gate->add_waiter(h);  // resume when every piece completes
    std::size_t off = 0;
    while (off < data.size()) {
      const Gva at = dst.advanced(static_cast<std::int64_t>(off), bsize);
      const std::size_t n = std::min<std::size_t>(bsize - at.offset(),
                                                  data.size() - off);
      std::vector<std::byte> piece(data.begin() + static_cast<std::ptrdiff_t>(off),
                                   data.begin() + static_cast<std::ptrdiff_t>(off + n));
      g.memput(detail::task_of(ctx), ctx.rank(), at, std::move(piece),
               [gp = gate.get()](sim::Time t) { gp->arrive(t); });
      off += n;
    }
    return true;
  }
  void await_resume() const {}
};

[[nodiscard]] inline SpanPutAwaiter memput_span(Context& ctx, Gva dst,
                                                std::vector<std::byte> data) {
  return SpanPutAwaiter{ctx, dst, std::move(data), {}, nullptr};
}

struct SpanGetAwaiter {
  Context& ctx;
  Gva src;
  std::size_t len;
  detail::SyncState state;
  std::vector<std::byte> result;
  std::unique_ptr<rt::AndGate> gate;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    auto& g = detail::gas_of(ctx);
    const std::uint32_t bsize = g.heap().meta_of(src).block_size;
    result.assign(len, std::byte{});
    std::uint64_t pieces = 0;
    for (std::size_t off = 0; off < len;) {
      const std::size_t in_block =
          bsize - src.advanced(static_cast<std::int64_t>(off), bsize).offset();
      off += std::min(in_block, len - off);
      ++pieces;
    }
    if (pieces == 0) return false;  // empty get: result stays empty
    gate = std::make_unique<rt::AndGate>(pieces);
    gate->add_waiter(h);
    std::size_t off = 0;
    while (off < len) {
      const Gva at = src.advanced(static_cast<std::int64_t>(off), bsize);
      const std::size_t n = std::min<std::size_t>(bsize - at.offset(), len - off);
      g.memget(detail::task_of(ctx), ctx.rank(), at, n,
               [gp = gate.get(), out = result.data() + off](
                   sim::Time t, std::vector<std::byte> piece) {
                 std::memcpy(out, piece.data(), piece.size());
                 gp->arrive(t);
               });
      off += n;
    }
    return true;
  }
  [[nodiscard]] std::vector<std::byte> await_resume() { return std::move(result); }
};

[[nodiscard]] inline SpanGetAwaiter memget_span(Context& ctx, Gva src,
                                                std::size_t len) {
  return SpanGetAwaiter{ctx, src, len, {}, {}, nullptr};
}

// --- memcpy between global addresses ----------------------------------------

struct MemcpyAwaiter {
  Context& ctx;
  Gva dst;
  Gva src;
  std::size_t len;
  detail::SyncState state;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    detail::gas_of(ctx).memcpy_gva(detail::task_of(ctx), ctx.rank(), dst, src,
                                   len,
                                   [this, h](sim::Time t) { state.on_complete(h, t); });
    return state.after_issue();
  }
  void await_resume() const {}
};

[[nodiscard]] inline MemcpyAwaiter memcpy_gva(Context& ctx, Gva dst, Gva src,
                                              std::size_t len) {
  return MemcpyAwaiter{ctx, dst, src, len, {}};
}

// --- non-blocking variants ----------------------------------------------
// Issue an operation without suspending; completion arrives on an AndGate
// (for windowed pipelining, e.g. GUPS-style update loops).

inline void memput_nb(Context& ctx, Gva dst, std::vector<std::byte> data,
                      rt::AndGate& gate) {
  detail::gas_of(ctx).memput(detail::task_of(ctx), ctx.rank(), dst,
                             std::move(data),
                             [&gate](sim::Time t) { gate.arrive(t); });
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void memput_value_nb(Context& ctx, Gva dst, const T& value, rt::AndGate& gate) {
  memput_nb(ctx, dst, detail::to_vec(std::as_bytes(std::span(&value, 1))), gate);
}

inline void fetch_add_nb(Context& ctx, Gva addr, std::uint64_t operand,
                         rt::AndGate& gate) {
  detail::gas_of(ctx).fetch_add(detail::task_of(ctx), ctx.rank(), addr, operand,
                                [&gate](sim::Time t, std::uint64_t) {
                                  gate.arrive(t);
                                });
}

// memget into a caller-owned destination buffer (must outlive completion).
inline void memget_nb(Context& ctx, Gva src, std::span<std::byte> dst,
                      rt::AndGate& gate) {
  detail::gas_of(ctx).memget(detail::task_of(ctx), ctx.rank(), src, dst.size(),
                             [&gate, dst](sim::Time t, std::vector<std::byte> data) {
                               NVGAS_CHECK(data.size() == dst.size());
                               std::memcpy(dst.data(), data.data(), data.size());
                               gate.arrive(t);
                             });
}

inline void migrate_nb(Context& ctx, Gva block, int dst, rt::AndGate& gate) {
  detail::gas_of(ctx).migrate(detail::task_of(ctx), ctx.rank(), block, dst,
                              [&gate](sim::Time t) { gate.arrive(t); });
}

inline void resolve_nb(Context& ctx, Gva addr, rt::AndGate& gate) {
  detail::gas_of(ctx).resolve(detail::task_of(ctx), ctx.rank(), addr,
                              [&gate](sim::Time t, int) { gate.arrive(t); });
}

// Translation prefetch: warm this rank's translation state (NIC TLB /
// software cache) for `nblocks` consecutive blocks of an allocation, so
// first accesses skip the resolve penalty. Await the returned-gate usage:
//
//   rt::AndGate gate(nblocks);
//   prefetch_nb(ctx, base, nblocks, gate);
//   co_await gate;
inline void prefetch_nb(Context& ctx, Gva base, std::uint32_t nblocks,
                        rt::AndGate& gate) {
  const auto bsize = detail::gas_of(ctx).heap().meta_of(base).block_size;
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    resolve_nb(ctx, base.advanced(static_cast<std::int64_t>(b) * bsize, bsize),
               gate);
  }
}

// Route a parcel to wherever the addressed object currently lives: resolve
// locally, send an apply-trampoline parcel to the believed owner; the
// destination runtime re-resolves and forwards if the object has moved
// (HPX's "apply at gva"). The await completes at local send time.
struct ApplyAwaiter {
  Context& ctx;
  Gva addr;
  rt::ActionId action;
  util::Buffer args;
  detail::SyncState state;

  [[nodiscard]] bool await_ready() const { return false; }
  bool await_suspend(Fiber::Handle h) {
    auto* rtp = &ctx.runtime();
    const int src = ctx.rank();
    detail::gas_of(ctx).resolve(
        detail::task_of(ctx), src, addr,
        [this, h, rtp, src](sim::Time t, int owner) {
          util::Buffer payload;
          payload.put<std::uint64_t>(addr.bits());
          payload.put<rt::ActionId>(action);
          payload.append_raw(args.bytes());
          rtp->send_parcel_at(src, t, owner, rtp->apply_action(),
                              std::move(payload));
          state.on_complete(h, t);
        });
    return state.after_issue();
  }
  void await_resume() const {}
};

[[nodiscard]] inline ApplyAwaiter apply(Context& ctx, Gva addr,
                                        rt::ActionId action, util::Buffer args) {
  return ApplyAwaiter{ctx, addr, action, std::move(args), {}};
}

}  // namespace nvgas
