// mcheck: a bounded model checker over the deterministic simulator.
//
// The engine executes one delivery order per program; mcheck re-executes
// small protocol scenarios under systematically perturbed orders and
// checks the GAS protocol invariants (gas/invariants.hpp) on every one.
// The exploration is delay-bounded (Emmi/Qadeer-style): a Schedule picks
// at most `delay_bound` injections and delays each by one of the
// Explorer's quanta; iterative-deepening DFS enumerates schedules,
// pruning branches whose delivery-order hash was already seen (a delayed
// message that did not actually reorder anything explores nothing new).
//
// Every run is bit-for-bit reproducible from its schedule string alone,
// so a violation report is a replayable counterexample:
//
//   ./mcheck --scenario=move-under-put --mode=agas-sw --replay=17:2,40:1
//
// See docs/MODEL_CHECKING.md for the method and its soundness argument.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/world.hpp"
#include "gas/invariants.hpp"
#include "sim/explorer.hpp"

namespace nvgas::core {

struct McheckOptions {
  gas::GasMode mode = gas::GasMode::kAgasNet;
  int nodes = 8;
  // Maximum number of simultaneously delayed injections per schedule.
  int delay_bound = 2;
  // Exploration budget: schedules executed per scenario (the DFS frontier
  // is cut off once this many runs have been spent).
  std::uint64_t max_schedules = 3000;
  // Explorer commutativity window (ns).
  sim::Time window_ns = 2500;
  // Livelock watchdog: events per run before the run is declared stuck.
  std::uint64_t max_events = 2'000'000;
  // Seeded protocol mutation (self-validation): the software AGAS home
  // skips one sharer's invalidation during migration.
  bool fault_sw_skip_sharer_inv = false;
};

struct McheckResult {
  std::string scenario;
  gas::GasMode mode = gas::GasMode::kAgasNet;
  std::uint64_t choice_points = 0;     // commutative points in the baseline
  std::uint64_t schedules_run = 0;     // worlds executed
  std::uint64_t distinct_orders = 0;   // unique delivery-order hashes seen
  std::uint64_t invariant_checks = 0;  // invariant evaluations, summed
  bool violation = false;
  std::string counterexample;  // sim::Schedule::str() form, replayable
  std::string message;         // first violation description
};

// One model-checking workload: `start` spawns the scenario's fibers into
// a freshly built world (history recording and failure reporting go
// through `obs`) and returns a post-drain verifier for end-state data
// (may be empty). Scenarios must be deterministic given the schedule:
// no wall clock, no unseeded randomness.
struct Scenario {
  std::string name;
  std::string description;
  std::function<std::function<void()>(World&, gas::InvariantObserver&)> start;
  // Optional Config overlay applied before the world is built (e.g. to
  // enable the lb balancer for rebalance scenarios).
  std::function<void(Config&)> configure;
};

// The built-in scenario library: move-under-put, put-put-race,
// stale-cache-storm, fence-chain-signal, rebalance-under-put,
// drop-under-put, retransmit-vs-migrate.
[[nodiscard]] std::vector<Scenario> scenario_library();

// Explores `sc` under `opt` (baseline first, then delay-bounded DFS).
// Stops at the first invariant violation and returns its schedule.
[[nodiscard]] McheckResult run_scenario(const Scenario& sc,
                                        const McheckOptions& opt);

// Executes exactly one schedule (counterexample replay).
[[nodiscard]] McheckResult run_one(const Scenario& sc, const McheckOptions& opt,
                                   const sim::Schedule& schedule);

[[nodiscard]] const char* mode_name(gas::GasMode mode);
[[nodiscard]] bool parse_mode(std::string_view text, gas::GasMode* out);

}  // namespace nvgas::core
