// nvgas — network-managed virtual global address space for message-driven
// runtimes. Umbrella header: include this from applications.
#pragma once

#include "core/agas_net.hpp"   // IWYU pragma: export
#include "core/config.hpp"     // IWYU pragma: export
#include "core/world.hpp"      // IWYU pragma: export
#include "gas/agas_sw.hpp"     // IWYU pragma: export
#include "gas/gva.hpp"         // IWYU pragma: export
#include "gas/pgas.hpp"        // IWYU pragma: export
#include "rt/action.hpp"       // IWYU pragma: export
#include "rt/collectives.hpp"  // IWYU pragma: export
#include "rt/lco.hpp"          // IWYU pragma: export
#include "util/options.hpp"    // IWYU pragma: export
#include "util/rng.hpp"        // IWYU pragma: export
#include "util/zipf.hpp"       // IWYU pragma: export
#include "util/stats.hpp"      // IWYU pragma: export
#include "util/table.hpp"      // IWYU pragma: export
