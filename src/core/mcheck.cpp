#include "core/mcheck.hpp"

#include <memory>
#include <unordered_set>
#include <utility>

#include "util/format.hpp"

namespace nvgas::core {
namespace {

using gas::Gva;
using gas::HistOp;

// --- scenario library -------------------------------------------------------

// Sixteen single-writer words race two migrations of their block.
// Verifies that no acked write is ever lost by the move (the copy and
// the fence / forwarding must hand every landed byte to the new owner).
Scenario move_under_put() {
  Scenario s;
  s.name = "move-under-put";
  s.description = "puts to distinct words race two migrations of the block";
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    world.spawn(0, [&world, block](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      const int n = ctx.ranks();
      // Four writers, four words each, issued as a burst per writer so
      // many same-destination arrivals share the commutativity window.
      for (int writer = 1; writer <= 4; ++writer) {
        const auto first = static_cast<std::uint64_t>(writer - 1) * 4;
        ctx.spawn(writer, [b, first](Context& c) -> Fiber {
          auto gate = std::make_shared<rt::AndGate>(4);
          for (std::uint64_t w = first; w < first + 4; ++w) {
            memput_value_nb<std::uint64_t>(
                c, b.advanced(static_cast<std::int64_t>(w) * 8, 256),
                0x100 + w, *gate);
          }
          co_await *gate;
        });
      }
      if (world.gas().supports_migration()) {
        ctx.spawn(5 % n, [b, n](Context& c) -> Fiber {
          co_await migrate(c, b, 6 % n);
          co_await migrate(c, b, 7 % n);
        });
      }
      co_return;
    });
    return std::function<void()>([&world, &obs, block] {
      const auto [owner, lva] = world.gas().owner_of(*block);
      for (std::uint64_t w = 0; w < 16; ++w) {
        const auto v = world.fabric().mem(owner).load<std::uint64_t>(lva + w * 8);
        if (v != 0x100 + w) {
          obs.fail(util::format(
              "move-under-put: word %llu reads %llx at final owner %d, "
              "expected %llx (an acked write was lost by the move)",
              static_cast<unsigned long long>(w),
              static_cast<unsigned long long>(v), owner,
              static_cast<unsigned long long>(0x100 + w)));
          return;
        }
      }
    });
  };
  return s;
}

// Concurrent put/put/fadd/get traffic on ONE word, recorded as a history
// and checked for sequential consistency (Wing–Gong) at quiescence. A
// migration runs underneath where the mode supports it.
Scenario put_put_race() {
  Scenario s;
  s.name = "put-put-race";
  s.description = "racing puts, a fetch-add and reads on one word, checked "
                  "for sequential consistency";
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    world.spawn(0, [&world, &obs, block](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      const int n = ctx.ranks();
      for (int writer = 1; writer <= 3; ++writer) {
        ctx.spawn(writer, [&world, &obs, b, writer](Context& c) -> Fiber {
          for (int round = 0; round < 2; ++round) {
            HistOp op;
            op.kind = HistOp::Kind::kPut;
            op.proc = writer;
            op.value = static_cast<std::uint64_t>(writer + 8 * round);
            op.invoke = world.now();
            co_await memput_value<std::uint64_t>(c, b, op.value);
            op.complete = world.now();
            obs.record(op);
          }
        });
      }
      for (int reader = 4; reader <= 5; ++reader) {
        ctx.spawn(reader % n, [&world, &obs, b, reader, n](Context& c) -> Fiber {
          for (int i = 0; i < 3; ++i) {
            HistOp op;
            op.kind = HistOp::Kind::kGet;
            op.proc = reader % n;
            op.invoke = world.now();
            op.result = co_await memget_value<std::uint64_t>(c, b);
            op.complete = world.now();
            obs.record(op);
          }
        });
      }
      for (int adder = 6; adder <= 7; ++adder) {
        ctx.spawn(adder % n, [&world, &obs, b, adder, n](Context& c) -> Fiber {
          HistOp op;
          op.kind = HistOp::Kind::kFadd;
          op.proc = adder % n;
          op.value = adder == 6 ? 0x10u : 0x100u;
          op.invoke = world.now();
          op.result = co_await fetch_add(c, b, op.value);
          op.complete = world.now();
          obs.record(op);
        });
      }
      if (world.gas().supports_migration()) {
        ctx.spawn(1, [b, n](Context& c) -> Fiber {
          co_await migrate(c, b, 2 % n);
        });
      }
      co_return;
    });
    return std::function<void()>();  // linearizability runs at quiescence
  };
  return s;
}

// Every rank warms its translation (becoming a sharer / caching a TLB
// entry), then the block migrates while all ranks put through their —
// now stale — translations. Exercises the invalidation fence (sw) and
// forwarding/piggyback (net); the structural audit at commit proves no
// undetectably stale entry survives.
Scenario stale_cache_storm() {
  Scenario s;
  s.name = "stale-cache-storm";
  s.description = "all ranks cache a translation, then put through it while "
                  "the block migrates";
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    world.spawn(0, [&world, block](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      const int n = ctx.ranks();
      auto warmed = std::make_shared<rt::AndGate>(static_cast<std::uint64_t>(n - 1));
      const rt::LcoRef gref = ctx.make_ref(*warmed);
      for (int r = 1; r < n; ++r) {
        ctx.spawn(r, [b, gref, warmed](Context& c) -> Fiber {
          // Warm: registers this rank as a sharer / fills its NIC TLB.
          (void)co_await memget_value<std::uint64_t>(c, b);
          c.set_lco(gref);
          // Put through the (soon stale) translation.
          const auto w = static_cast<std::uint64_t>(c.rank());
          co_await memput_value<std::uint64_t>(
              c, b.advanced(static_cast<std::int64_t>(w) * 8, 256), 0x200 + w);
        });
      }
      co_await *warmed;  // every rank holds a translation before the move
      if (world.gas().supports_migration()) {
        co_await migrate(ctx, b, (b.home(n) + 1) % n);
      }
    });
    return std::function<void()>([&world, &obs, block] {
      const auto [owner, lva] = world.gas().owner_of(*block);
      const int n = world.ranks();
      for (int r = 1; r < n; ++r) {
        const auto w = static_cast<std::uint64_t>(r);
        const auto v = world.fabric().mem(owner).load<std::uint64_t>(lva + w * 8);
        if (v != 0x200 + w) {
          obs.fail(util::format(
              "stale-cache-storm: rank %d's put reads back %llx at final "
              "owner %d, expected %llx (stale translation lost the write)",
              r, static_cast<unsigned long long>(v), owner,
              static_cast<unsigned long long>(0x200 + w)));
          return;
        }
      }
    });
  };
  return s;
}

// Two put-with-remote-notification producers race two concurrently
// requested migrations (the second queues behind the first at the home).
// The observer's signal ledger proves each notification fires exactly
// once; waiting consumers prove it fires at all (else: deadlock).
Scenario fence_chain_signal() {
  Scenario s;
  s.name = "fence-chain-signal";
  s.description = "memput_notify producers race chained migrations; "
                  "notifications must fire exactly once";
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    auto evs = std::make_shared<std::vector<std::unique_ptr<rt::Event>>>();
    for (int i = 0; i < 8; ++i) evs->push_back(std::make_unique<rt::Event>());
    world.spawn(0, [&world, block, evs](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      const int n = ctx.ranks();
      // Four producers, two notifications each, every consumer on a
      // different rank.
      for (int i = 0; i < 4; ++i) {
        const int producer = 1 + i;
        std::vector<rt::LcoRef> refs;
        for (int round = 0; round < 2; ++round) {
          const int slot = i + 4 * round;
          const int consumer = (5 + slot) % n;
          refs.push_back(world.runtime().register_lco(
              consumer, *(*evs)[static_cast<std::size_t>(slot)]));
          ctx.spawn(consumer, [evs, slot](Context&) -> Fiber {
            co_await *(*evs)[static_cast<std::size_t>(slot)];
          });
        }
        ctx.spawn(producer, [b, refs, i](Context& c) -> Fiber {
          co_await memput_signal_value<std::uint64_t>(
              c, b.advanced(static_cast<std::int64_t>(i) * 8, 256),
              0xaa + static_cast<std::uint64_t>(i), refs[0]);
          co_await memput_signal_value<std::uint64_t>(
              c, b.advanced(static_cast<std::int64_t>(i + 8) * 8, 256),
              0xba + static_cast<std::uint64_t>(i), refs[1]);
        });
      }
      // Background puts keep the home busy while the chain runs.
      for (int r = 5; r <= 7; ++r) {
        const auto w = static_cast<std::uint64_t>(r);
        ctx.spawn(r % n, [b, w](Context& c) -> Fiber {
          co_await memput_value<std::uint64_t>(
              c, b.advanced(static_cast<std::int64_t>(w) * 8, 256), 0x300 + w);
        });
      }
      if (world.gas().supports_migration()) {
        // Concurrent requests: the second queues at the home and chains.
        ctx.spawn(3 % n, [b, n](Context& c) -> Fiber {
          co_await migrate(c, b, 3 % n);
        });
        ctx.spawn(4 % n, [b, n](Context& c) -> Fiber {
          co_await migrate(c, b, 4 % n);
        });
      }
      co_return;
    });
    return std::function<void()>([&world, &obs, block, evs] {
      const auto [owner, lva] = world.gas().owner_of(*block);
      for (std::uint64_t i = 0; i < 4; ++i) {
        const auto v =
            world.fabric().mem(owner).load<std::uint64_t>(lva + i * 8);
        const auto v2 =
            world.fabric().mem(owner).load<std::uint64_t>(lva + (i + 8) * 8);
        if (v != 0xaa + i || v2 != 0xba + i) {
          obs.fail(util::format(
              "fence-chain-signal: producer %llu's words read %llx/%llx at "
              "final owner %d, expected %llx/%llx",
              static_cast<unsigned long long>(i),
              static_cast<unsigned long long>(v),
              static_cast<unsigned long long>(v2), owner,
              static_cast<unsigned long long>(0xaa + i),
              static_cast<unsigned long long>(0xba + i)));
          return;
        }
      }
      for (std::uint64_t w = 5; w <= 7; ++w) {
        const auto v =
            world.fabric().mem(owner).load<std::uint64_t>(lva + w * 8);
        if (v != 0x300 + w) {
          obs.fail(util::format(
              "fence-chain-signal: background word %llu reads %llx, "
              "expected %llx",
              static_cast<unsigned long long>(w),
              static_cast<unsigned long long>(v),
              static_cast<unsigned long long>(0x300 + w)));
          return;
        }
      }
      for (const auto& ev : *evs) {
        if (!ev->triggered()) {
          obs.fail("fence-chain-signal: a remote notification never fired");
          return;
        }
      }
    });
  };
  return s;
}

// The lb balancer's epoch fires while puts to the victim block are
// still in flight: an aggressive greedy balancer (tiny epoch, cost gate
// effectively open) chases the writers' heat, so balancer-initiated
// migrations race the application's puts. Verifies no acked write is
// lost, plus the balancer migration ledger and all protocol invariants.
Scenario rebalance_under_put() {
  Scenario s;
  s.name = "rebalance-under-put";
  s.description = "balancer epochs migrate the victim block while puts to "
                  "it are in flight";
  s.configure = [](Config& cfg) {
    cfg.lb.policy = lb::PolicyKind::kGreedy;
    cfg.lb.epoch_ns = 4'000;
    cfg.lb.decay_shift = 1;
    cfg.lb.max_moves_per_epoch = 2;
    cfg.lb.max_inflight = 2;
    cfg.lb.min_heat = lb::kAccessUnit;           // one access is enough
    cfg.lb.benefit_ns_per_access = 1'000'000;    // cost gate wide open
  };
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    world.spawn(0, [block](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      // Three writers, six words each, in two bursts a balancer epoch
      // apart: the first burst builds heat so an epoch migrates the
      // block while the second burst's puts are in flight.
      for (int writer = 1; writer <= 3; ++writer) {
        const auto first = static_cast<std::uint64_t>(writer - 1) * 6;
        ctx.spawn(writer, [b, first](Context& c) -> Fiber {
          for (int round = 0; round < 2; ++round) {
            auto gate = std::make_shared<rt::AndGate>(3);
            const std::uint64_t base =
                first + static_cast<std::uint64_t>(round) * 3;
            for (std::uint64_t w = base; w < base + 3; ++w) {
              memput_value_nb<std::uint64_t>(
                  c, b.advanced(static_cast<std::int64_t>(w) * 8, 256),
                  0x200 + w, *gate);
            }
            co_await *gate;
            if (round == 0) co_await c.sleep(4'000);
          }
        });
      }
      co_return;
    });
    return std::function<void()>([&world, &obs, block] {
      const auto [owner, lva] = world.gas().owner_of(*block);
      for (std::uint64_t w = 0; w < 18; ++w) {
        const auto v =
            world.fabric().mem(owner).load<std::uint64_t>(lva + w * 8);
        if (v != 0x200 + w) {
          obs.fail(util::format(
              "rebalance-under-put: word %llu reads %llx at final owner "
              "%d, expected %llx (a write raced a balancer migration and "
              "was lost)",
              static_cast<unsigned long long>(w),
              static_cast<unsigned long long>(v), owner,
              static_cast<unsigned long long>(0x200 + w)));
          return;
        }
      }
    });
  };
  return s;
}

// Deterministic frame drops (the first and third frame on every link)
// under a burst of puts and racing fetch-adds: the end-to-end
// retransmission layer must deliver every acked op exactly once. A lost
// put leaves a stale word; a duplicated fetch-add over-counts; and the
// conservation ledger must still reconcile drops and retransmits at
// quiescence. Forced drops consume no RNG draw, so every schedule the
// DFS explores replays the identical fault pattern.
Scenario drop_under_put() {
  Scenario s;
  s.name = "drop-under-put";
  s.description = "forced frame drops under racing puts and fetch-adds; "
                  "retransmission must deliver each op exactly once";
  s.configure = [](Config& cfg) {
    cfg.faults.forced_drops.push_back({-1, -1, 0});
    cfg.faults.forced_drops.push_back({-1, -1, 2});
  };
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    world.spawn(0, [block](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      for (int writer = 1; writer <= 3; ++writer) {
        const auto first = static_cast<std::uint64_t>(writer - 1) * 4;
        ctx.spawn(writer, [b, first](Context& c) -> Fiber {
          auto gate = std::make_shared<rt::AndGate>(4);
          for (std::uint64_t w = first; w < first + 4; ++w) {
            memput_value_nb<std::uint64_t>(
                c, b.advanced(static_cast<std::int64_t>(w) * 8, 256),
                0x400 + w, *gate);
          }
          co_await *gate;
        });
      }
      for (int adder = 4; adder <= 5; ++adder) {
        ctx.spawn(adder, [b](Context& c) -> Fiber {
          for (int i = 0; i < 2; ++i) {
            (void)co_await fetch_add(c, b.advanced(15 * 8, 256), 1);
          }
        });
      }
      co_return;
    });
    return std::function<void()>([&world, &obs, block] {
      const auto [owner, lva] = world.gas().owner_of(*block);
      for (std::uint64_t w = 0; w < 12; ++w) {
        const auto v =
            world.fabric().mem(owner).load<std::uint64_t>(lva + w * 8);
        if (v != 0x400 + w) {
          obs.fail(util::format(
              "drop-under-put: word %llu reads %llx at owner %d, expected "
              "%llx (a dropped put was never retransmitted, or acked twice)",
              static_cast<unsigned long long>(w),
              static_cast<unsigned long long>(v), owner,
              static_cast<unsigned long long>(0x400 + w)));
          return;
        }
      }
      const auto total =
          world.fabric().mem(owner).load<std::uint64_t>(lva + 15 * 8);
      if (total != 4) {
        obs.fail(util::format(
            "drop-under-put: fetch-add counter reads %llu, expected 4 "
            "(retransmission duplicated or lost an atomic)",
            static_cast<unsigned long long>(total)));
      }
    });
  };
  return s;
}

// An opening brownout swallows every frame departing in [2, 14) µs on
// every link, so the writers' puts — and, in the agas modes, much of the
// protocol's own control traffic — only land as retransmissions, by
// which time the block has migrated (twice where supported). A
// retransmitted frame arriving at the old owner must be redirected
// exactly like a first transmission; a retransmission accepted twice
// across a generation change would double-apply a put.
Scenario retransmit_vs_migrate() {
  Scenario s;
  s.name = "retransmit-vs-migrate";
  s.description = "a brownout forces puts to land as retransmissions after "
                  "the block migrates; late frames must chase the move";
  s.configure = [](Config& cfg) {
    cfg.faults.brownouts.push_back({-1, -1, 2'000, 14'000});
  };
  s.start = [](World& world, gas::InvariantObserver& obs) {
    auto block = std::make_shared<Gva>();
    world.spawn(0, [&world, block](Context& ctx) -> Fiber {
      *block = alloc_cyclic(ctx, 1, 256);
      const Gva b = *block;
      const int n = ctx.ranks();
      for (int writer = 1; writer <= 4; ++writer) {
        const auto first = static_cast<std::uint64_t>(writer - 1) * 2;
        ctx.spawn(writer, [b, first](Context& c) -> Fiber {
          auto gate = std::make_shared<rt::AndGate>(2);
          for (std::uint64_t w = first; w < first + 2; ++w) {
            memput_value_nb<std::uint64_t>(
                c, b.advanced(static_cast<std::int64_t>(w) * 8, 256),
                0x500 + w, *gate);
          }
          co_await *gate;
        });
      }
      if (world.gas().supports_migration()) {
        ctx.spawn(5 % n, [b, n](Context& c) -> Fiber {
          co_await c.sleep(3'000);  // move while the first wave is browned out
          co_await migrate(c, b, 6 % n);
          co_await migrate(c, b, 7 % n);
        });
      }
      co_return;
    });
    return std::function<void()>([&world, &obs, block] {
      const auto [owner, lva] = world.gas().owner_of(*block);
      for (std::uint64_t w = 0; w < 8; ++w) {
        const auto v =
            world.fabric().mem(owner).load<std::uint64_t>(lva + w * 8);
        if (v != 0x500 + w) {
          obs.fail(util::format(
              "retransmit-vs-migrate: word %llu reads %llx at final owner "
              "%d, expected %llx (a retransmitted put lost the moved block)",
              static_cast<unsigned long long>(w),
              static_cast<unsigned long long>(v), owner,
              static_cast<unsigned long long>(0x500 + w)));
          return;
        }
      }
    });
  };
  return s;
}

// --- single-schedule execution ----------------------------------------------

struct RunOutcome {
  std::uint64_t order_hash = 0;
  std::uint64_t checks = 0;
  std::vector<std::uint64_t> points;  // commutative choice points
  bool ok = true;
  std::string message;
};

RunOutcome run_schedule(const Scenario& sc, const McheckOptions& opt,
                        const sim::Schedule& schedule) {
  Config cfg = Config::with_nodes(opt.nodes, opt.mode);
  cfg.gas_costs.fault_sw_skip_one_sharer_inv = opt.fault_sw_skip_sharer_inv;
  if (sc.configure) sc.configure(cfg);

  // Construction order is destruction-safety: the Explorer outlives the
  // World (NICs hold a raw pointer); the observer is declared after the
  // World so its detaching destructor runs while the manager is alive.
  sim::Explorer explorer(opt.window_ns);
  explorer.arm(schedule);
  World world(cfg);
  world.fabric().set_explorer(&explorer);
  gas::InvariantObserver obs(world.gas());

  auto verify = sc.start(world, obs);
  const std::uint64_t executed = world.run(opt.max_events);

  if (executed >= opt.max_events) {
    obs.fail(util::format("livelock: still busy after %llu events",
                          static_cast<unsigned long long>(executed)));
  } else if (world.runtime().live_fibers() != 0) {
    obs.fail(util::format("deadlock: %zu fiber(s) suspended after drain",
                          world.runtime().live_fibers()));
  } else {
    if (verify) verify();
    (void)obs.check_quiescent(world.counters());
  }

  RunOutcome out;
  out.order_hash = explorer.order_hash();
  out.checks = obs.checks();
  out.points = explorer.commutative_points();
  out.ok = obs.ok();
  out.message = obs.first_violation();
  return out;
}

McheckResult make_result(const Scenario& sc, const McheckOptions& opt) {
  McheckResult res;
  res.scenario = sc.name;
  res.mode = opt.mode;
  return res;
}

}  // namespace

std::vector<Scenario> scenario_library() {
  std::vector<Scenario> lib;
  lib.push_back(move_under_put());
  lib.push_back(put_put_race());
  lib.push_back(stale_cache_storm());
  lib.push_back(fence_chain_signal());
  lib.push_back(rebalance_under_put());
  lib.push_back(drop_under_put());
  lib.push_back(retransmit_vs_migrate());
  return lib;
}

McheckResult run_one(const Scenario& sc, const McheckOptions& opt,
                     const sim::Schedule& schedule) {
  McheckResult res = make_result(sc, opt);
  const RunOutcome out = run_schedule(sc, opt, schedule);
  res.schedules_run = 1;
  res.distinct_orders = 1;
  res.invariant_checks = out.checks;
  res.choice_points = out.points.size();
  if (!out.ok) {
    res.violation = true;
    res.counterexample = schedule.str();
    res.message = out.message;
  }
  return res;
}

McheckResult run_scenario(const Scenario& sc, const McheckOptions& opt) {
  McheckResult res = make_result(sc, opt);

  // Baseline: the unperturbed order. Its commutative points become the
  // DFS alphabet; its order hash seeds the pruning set.
  const RunOutcome base = run_schedule(sc, opt, sim::Schedule{});
  res.schedules_run = 1;
  res.invariant_checks = base.checks;
  res.choice_points = base.points.size();
  // simlint:allow(D1: membership set, never iterated)
  std::unordered_set<std::uint64_t> orders;
  orders.insert(base.order_hash);
  if (!base.ok) {
    res.violation = true;
    res.counterexample = sim::Schedule{}.str();
    res.message = base.message;
    res.distinct_orders = orders.size();
    return res;
  }

  // Iterative-deepening DFS over delay assignments. A schedule at depth d
  // delays d distinct injections; only schedules that produced a NEW
  // delivery order are extended (delaying a message that did not reorder
  // anything cannot open new interleavings), and extensions add only
  // injection indices above the schedule's largest — each delay set is
  // enumerated once.
  std::vector<sim::Schedule> frontier{sim::Schedule{}};
  for (int depth = 1;
       depth <= opt.delay_bound && res.schedules_run < opt.max_schedules;
       ++depth) {
    std::vector<sim::Schedule> next;
    for (const auto& sched : frontier) {
      if (res.schedules_run >= opt.max_schedules) break;
      const std::uint64_t min_index =
          sched.empty() ? 0 : sched.delays.back().first + 1;
      for (const std::uint64_t point : base.points) {
        if (point < min_index) continue;
        if (res.schedules_run >= opt.max_schedules) break;
        for (std::uint8_t choice = 1;
             choice <= static_cast<std::uint8_t>(sim::Explorer::kChoices);
             ++choice) {
          if (res.schedules_run >= opt.max_schedules) break;
          sim::Schedule ext = sched;
          ext.set(point, choice);
          const RunOutcome out = run_schedule(sc, opt, ext);
          ++res.schedules_run;
          res.invariant_checks += out.checks;
          const bool fresh = orders.insert(out.order_hash).second;
          if (!out.ok) {
            res.violation = true;
            res.counterexample = ext.str();
            res.message = out.message;
            res.distinct_orders = orders.size();
            return res;
          }
          if (fresh) next.push_back(std::move(ext));
        }
      }
    }
    frontier = std::move(next);
  }

  res.distinct_orders = orders.size();
  return res;
}

const char* mode_name(gas::GasMode mode) {
  switch (mode) {
    case gas::GasMode::kPgas: return "pgas";
    case gas::GasMode::kAgasSw: return "agas-sw";
    case gas::GasMode::kAgasNet: return "agas-net";
  }
  return "?";
}

bool parse_mode(std::string_view text, gas::GasMode* out) {
  if (text == "pgas") {
    *out = gas::GasMode::kPgas;
  } else if (text == "agas-sw") {
    *out = gas::GasMode::kAgasSw;
  } else if (text == "agas-net") {
    *out = gas::GasMode::kAgasNet;
  } else {
    return false;
  }
  return true;
}

}  // namespace nvgas::core
