#include "core/agas_net.hpp"

#include <utility>

#include "gas/invariants.hpp"
#include "util/format.hpp"

namespace nvgas::core {

namespace {
constexpr std::uint64_t kOpHeaderBytes = 40;
constexpr std::uint64_t kAckBytes = 40;   // completion + piggybacked entry
constexpr std::uint64_t kCtrlBytes = 32;  // migration control messages
constexpr int kMaxHops = 64;              // forwarding-loop watchdog
}  // namespace

void AgasNet::maybe_piggyback(int node, std::uint64_t key,
                              const net::TlbEntry& update) {
  if (!config_.piggyback_updates) return;
  // The home's pinned entry is authoritative — a piggybacked copy must
  // never overwrite it (it would unpin it and clear the in-flight flag).
  if (node == home_of(base_of_key(key))) return;
  if (tlb_mut(node).insert(key, update)) {
    ++fabric_->counters().nic_tlb_updates;
  }
}

std::uint64_t AgasNet::Op::wire_bytes() const {
  switch (kind) {
    case Kind::kPut: return kOpHeaderBytes + data.size();
    case Kind::kGet: return kOpHeaderBytes;
    case Kind::kFadd: return kOpHeaderBytes + 8;
  }
  return kOpHeaderBytes;
}

AgasNet::AgasNet(sim::Fabric& fabric, net::EndpointGroup& endpoints,
                 gas::GlobalHeap& heap, gas::GasCosts costs,
                 AgasNetConfig config)
    : GasBase(fabric, endpoints, heap, costs), config_(config) {
  // Host array of per-node NIC TLB devices; each TLB is capacity-bounded,
  // so per-simulated-node state stays O(tlb_capacity), not O(P).
  // protolint:allow(P4: host array of capacity-bounded per-node TLB devices)
  tlbs_.reserve(static_cast<std::size_t>(fabric.nodes()));
  for (int n = 0; n < fabric.nodes(); ++n) {
    tlbs_.push_back(std::make_unique<net::NicTlb>(config_.tlb_capacity));
  }
  // The home directory is the AGAS authoritative map, one per world;
  // ROADMAP item 2 shards it by owner rather than shrinking it.
  // protolint:allow(P4: world-level AGAS home directory, sharded by owner under ROADMAP item 2)
  homes_.resize(static_cast<std::size_t>(fabric.nodes()));
}

gas::Gva AgasNet::alloc(sim::TaskCtx& task, int node, gas::Dist dist,
                        std::uint32_t nblocks, std::uint32_t block_size) {
  const gas::Gva base = GasBase::alloc(task, node, dist, nblocks, block_size);
  const gas::AllocMeta& m = heap_->meta_of(base);
  auto& engine = fabric_->engine();
  // Adopted (quiesced setup/teardown) contexts install directly like host
  // context — every lane is idle, so cross-lane TLB writes are safe.
  const bool sharded = engine.sharded() && engine.on_shard_context() &&
                       !engine.on_adopted_context();
  for (std::uint32_t b = 0; b < nblocks; ++b) {
    const gas::Gva block = gas::Gva::make(m.dist, m.creator, m.id, b, 0);
    const int home = home_of(block);
    net::TlbEntry e;
    e.owner = home;
    e.base = heap_->initial_lva(block);
    e.generation = 0;
    e.pinned = true;  // home entries are authoritative and never evict
    if (sharded && static_cast<std::uint32_t>(home) != engine.current_shard()) {
      // A remote home's NIC TLB belongs to its own lane; install via
      // post. The pinned entry always lands before any op can reach the
      // home — an op needs a full wire flight, the post only a window
      // boundary (and a GVA is only learnable by message).
      engine.post(static_cast<std::uint32_t>(home), task.now(),
                  [this, block, home, e] {
                    NVGAS_CHECK(tlb_mut(home).insert(block.block_key(), e));
                  });
      continue;
    }
    NVGAS_CHECK(tlb_mut(home).insert(block.block_key(), e));
  }
  return base;
}

// ---------------------------------------------------------------------------
// Data path.
// ---------------------------------------------------------------------------

void AgasNet::issue(sim::TaskCtx& task, int node, Op op) {
  auto& counters = fabric_->counters();
  // CPU posts the descriptor; everything after is NIC work.
  task.charge(ep(node).post_cost());
  auto& nic = fabric_->nic(node);
  const sim::Time looked_up = nic.occupy_command_processor(
      task.now(), fabric_->params().nic_tlb_ns);

  const auto hit = tlb_mut(node).lookup(op.key);
  if (hit.has_value()) {
    ++counters.nic_tlb_hits;
    if (hit->owner == node && !hit->in_flight) {
      // Local fast path: the block is here; a plain memcpy suffices.
      execute(looked_up, node, *hit, std::move(op));
      return;
    }
    send_op(looked_up, node, hit->owner, std::move(op));
    return;
  }
  ++counters.nic_tlb_misses;
  const int home = home_of(base_of_key(op.key));
  if (home == node) {
    // We ARE the home but hold no entry — only possible for a foreign
    // (unallocated) address.
    NVGAS_CHECK_MSG(false, "gva op on unallocated address");
  }
  send_op(looked_up, node, home, std::move(op));
}

void AgasNet::send_op(sim::Time depart, int from, int to, Op op) {
  NVGAS_CHECK_MSG(op.hops < kMaxHops, "gva op forwarding loop");
  ++op.hops;
  const std::uint64_t bytes = op.wire_bytes();
  ep(from).raw_send(depart, to, bytes,
                    [this, to, op = std::move(op)](sim::Time t) mutable {
                      route(t, to, std::move(op));
                    });
}

void AgasNet::route(sim::Time t, int at, Op op) {
  auto& counters = fabric_->counters();
  auto& nic = fabric_->nic(at);
  const sim::Time looked_up =
      nic.occupy_command_processor(t, fabric_->params().nic_tlb_ns);

  net::TlbEntry* e = tlb_mut(at).find(op.key);
  const int home = home_of(base_of_key(op.key));

  if (e != nullptr && e->owner == at && !e->in_flight) {
    execute(looked_up, at, *e, std::move(op));
    return;
  }

  if (at == home) {
    NVGAS_CHECK_MSG(e != nullptr, "home NIC lost its pinned entry");
    if (e->in_flight) {
      // Block is mid-migration: the home queues the op and re-dispatches
      // it at commit (no CPU anywhere).
      hstate(op.key).queued_ops[op.key].push_back(std::move(op));
      return;
    }
    // Authoritative forward.
    ++counters.nic_forwards;
    const sim::Time fwd =
        nic.occupy_command_processor(looked_up, fabric_->params().nic_fwd_ns);
    send_op(fwd, at, e->owner, std::move(op));
    return;
  }

  // Stale or missing entry at a non-home NIC.
  if (config_.nack_on_stale) {
    // NACK back to the source; its NIC drops the entry and retries via
    // the home. (R-T3 ablation: costs a full extra round trip.)
    const int src = op.src;
    const sim::Time nack_t =
        nic.occupy_command_processor(looked_up, fabric_->params().nic_fwd_ns);
    ep(at).raw_send(
        nack_t, src, kCtrlBytes, [this, src, op = std::move(op)](sim::Time t2) mutable {
          auto& src_nic = fabric_->nic(src);
          const sim::Time done = src_nic.occupy_command_processor(
              t2, fabric_->params().nic_tlb_ns);
          const int home2 = home_of(base_of_key(op.key));
          if (src != home2) tlb_mut(src).erase(op.key);  // never the pinned entry
          send_op(done, src, home2, std::move(op));
        });
    return;
  }

  if (e != nullptr && e->owner != at && config_.forward_hints && !op.used_hint) {
    // Previous-owner hint: forward straight to where the block went. Only
    // one hint hop is allowed per op — after that the home (which queues
    // during an in-flight migration) is authoritative — so two NICs with
    // mutually stale hints cannot bounce an op between themselves.
    op.used_hint = true;
    ++counters.nic_forwards;
    const sim::Time fwd =
        nic.occupy_command_processor(looked_up, fabric_->params().nic_fwd_ns);
    send_op(fwd, at, e->owner, std::move(op));
    return;
  }

  // No knowledge here: defer to the home.
  ++counters.nic_forwards;
  const sim::Time fwd =
      nic.occupy_command_processor(looked_up, fabric_->params().nic_fwd_ns);
  send_op(fwd, at, home, std::move(op));
}

void AgasNet::execute(sim::Time t, int owner, const net::TlbEntry& entry,
                      Op op) {
  auto& nic = fabric_->nic(owner);
  const auto& p = fabric_->params();
  const sim::Lva lva = entry.base + op.offset;

  switch (op.kind) {
    case Op::Kind::kPut: {
      const sim::Time done =
          nic.occupy_command_processor(t, p.nic_dma_ns + p.copy_time(op.data.size()));
      fabric_->engine().at(done, [this, owner, lva, entry, done,
                                  op = std::move(op)]() mutable {
        fabric_->mem(owner).write(lva, op.data);
        if (op.on_remote) op.on_remote(done);  // remote completion ledger
        reply(done, owner, entry, std::move(op), {}, 0);
      });
      break;
    }
    case Op::Kind::kGet: {
      const sim::Time done =
          nic.occupy_command_processor(t, p.nic_dma_ns + p.copy_time(op.len));
      fabric_->engine().at(done, [this, owner, lva, entry, done,
                                  op = std::move(op)]() mutable {
        std::vector<std::byte> data = fabric_->mem(owner).read_vec(lva, op.len);
        reply(done, owner, entry, std::move(op), std::move(data), 0);
      });
      break;
    }
    case Op::Kind::kFadd: {
      const sim::Time done = nic.occupy_command_processor(t, p.nic_atomic_ns);
      fabric_->engine().at(done, [this, owner, lva, entry, done,
                                  op = std::move(op)]() mutable {
        const std::uint64_t old =
            fabric_->mem(owner).fetch_add_u64(lva, op.operand);
        reply(done, owner, entry, std::move(op), {}, old);
      });
      break;
    }
  }
}

void AgasNet::reply(sim::Time depart, int owner, const net::TlbEntry& entry,
                    Op op, std::vector<std::byte> get_data,
                    std::uint64_t fadd_old) {
  const int src = op.src;
  if (src == owner) {
    // Local op: complete immediately, no ack message.
    switch (op.kind) {
      case Op::Kind::kPut:
        if (op.on_done) op.on_done(depart);
        break;
      case Op::Kind::kGet:
        if (op.on_data) op.on_data(depart, std::move(get_data));
        break;
      case Op::Kind::kFadd:
        if (op.on_u64) op.on_u64(depart, fadd_old);
        break;
    }
    return;
  }

  const std::uint64_t bytes =
      kAckBytes + (op.kind == Op::Kind::kGet ? get_data.size() : 0);
  net::TlbEntry update = entry;  // piggybacked translation
  update.pinned = false;
  update.in_flight = false;

  ep(owner).raw_send(
      depart, src, bytes,
      [this, src, update, fadd_old, op = std::move(op),
       get_data = std::move(get_data)](sim::Time t) mutable {
        auto& src_nic = fabric_->nic(src);
        const auto& p = fabric_->params();
        sim::Time done = src_nic.occupy_command_processor(t, p.nic_tlb_ns);
        maybe_piggyback(src, op.key, update);
        if (op.kind == Op::Kind::kGet) {
          done = src_nic.occupy_command_processor(
              done, p.nic_dma_ns + p.copy_time(get_data.size()));
        }
        fabric_->engine().at(done, [done, fadd_old, op = std::move(op),
                                    get_data = std::move(get_data)]() mutable {
          switch (op.kind) {
            case Op::Kind::kPut:
              if (op.on_done) op.on_done(done);
              break;
            case Op::Kind::kGet:
              if (op.on_data) op.on_data(done, std::move(get_data));
              break;
            case Op::Kind::kFadd:
              if (op.on_u64) op.on_u64(done, fadd_old);
              break;
          }
        });
      });
}

void AgasNet::memput(sim::TaskCtx& task, int node, gas::Gva dst,
                     std::vector<std::byte> data, net::OnDone done) {
  memput_notify(task, node, dst, std::move(data), std::move(done), nullptr);
}

void AgasNet::memput_notify(sim::TaskCtx& task, int node, gas::Gva dst,
                            std::vector<std::byte> data, net::OnDone done,
                            net::OnDone remote_notify) {
  heap_->check_extent(dst, data.size());
  ++fabric_->counters().gas_memputs;
  note_access(node, dst);
  Op op;
  op.kind = Op::Kind::kPut;
  op.src = node;
  op.key = dst.block_key();
  op.offset = dst.offset();
  op.data = std::move(data);
  op.on_done = std::move(done);
  op.on_remote = instrument_signal(std::move(remote_notify));
  if (observer_ != nullptr) {
    observer_->on_remote_op_begin(node, op.key);
    op.on_done = [obs = observer_, node, key = op.key,
                  inner = std::move(op.on_done)](sim::Time t) {
      obs->on_remote_op_end(node, key);
      if (inner) inner(t);
    };
  }
  issue(task, node, std::move(op));
}

void AgasNet::memget(sim::TaskCtx& task, int node, gas::Gva src,
                     std::size_t len, net::OnData done) {
  heap_->check_extent(src, len);
  ++fabric_->counters().gas_memgets;
  note_access(node, src);
  Op op;
  op.kind = Op::Kind::kGet;
  op.src = node;
  op.key = src.block_key();
  op.offset = src.offset();
  op.len = static_cast<std::uint32_t>(len);
  op.on_data = std::move(done);
  if (observer_ != nullptr) {
    observer_->on_remote_op_begin(node, op.key);
    op.on_data = [obs = observer_, node, key = op.key,
                  inner = std::move(op.on_data)](sim::Time t,
                                                 std::vector<std::byte> d) {
      obs->on_remote_op_end(node, key);
      if (inner) inner(t, std::move(d));
    };
  }
  issue(task, node, std::move(op));
}

void AgasNet::fetch_add(sim::TaskCtx& task, int node, gas::Gva addr,
                        std::uint64_t operand, net::OnU64 done) {
  heap_->check_extent(addr, sizeof(std::uint64_t));
  ++fabric_->counters().gas_atomics;
  note_access(node, addr);
  Op op;
  op.kind = Op::Kind::kFadd;
  op.src = node;
  op.key = addr.block_key();
  op.offset = addr.offset();
  op.operand = operand;
  op.on_u64 = std::move(done);
  if (observer_ != nullptr) {
    observer_->on_remote_op_begin(node, op.key);
    op.on_u64 = [obs = observer_, node, key = op.key,
                 inner = std::move(op.on_u64)](sim::Time t, std::uint64_t v) {
      obs->on_remote_op_end(node, key);
      if (inner) inner(t, v);
    };
  }
  issue(task, node, std::move(op));
}

void AgasNet::resolve(sim::TaskCtx& task, int node, gas::Gva addr,
                      gas::OnOwner done) {
  // The CPU consults the local NIC TLB; on a miss the home NIC answers
  // (one round trip, no CPU at the home).
  note_access(node, addr);
  task.charge(fabric_->params().nic_tlb_ns);
  const std::uint64_t key = addr.block_key();
  if (const auto hit = tlb_mut(node).lookup(key)) {
    ++fabric_->counters().nic_tlb_hits;
    done(task.now(), hit->owner);
    return;
  }
  ++fabric_->counters().nic_tlb_misses;
  const int home = home_of(addr.block_base());
  task.charge(ep(node).post_cost());
  ep(node).raw_send(
      task.now(), home, kCtrlBytes,
      [this, key, node, home, done = std::move(done)](sim::Time t) mutable {
        auto& hnic = fabric_->nic(home);
        const sim::Time looked =
            hnic.occupy_command_processor(t, fabric_->params().nic_tlb_ns);
        net::TlbEntry* e = tlb_mut(home).find(key);
        NVGAS_CHECK_MSG(e != nullptr, "resolve of unallocated address");
        const net::TlbEntry entry = *e;
        ep(home).raw_send(looked, node, kAckBytes,
                  [this, key, node, entry, done = std::move(done)](sim::Time t2) mutable {
                    auto& snic = fabric_->nic(node);
                    const sim::Time done_t = snic.occupy_command_processor(
                        t2, fabric_->params().nic_tlb_ns);
                    net::TlbEntry update = entry;
                    update.pinned = false;
                    update.in_flight = false;
                    maybe_piggyback(node, key, update);
                    fabric_->engine().at(done_t, [done_t, owner = entry.owner,
                                                  done = std::move(done)] {
                      done(done_t, owner);
                    });
                  });
      });
}

// ---------------------------------------------------------------------------
// Migration: NIC-managed, one CPU task total (dst allocation).
// ---------------------------------------------------------------------------

void AgasNet::migrate(sim::TaskCtx& task, int node, gas::Gva block, int dst,
                      net::OnDone done) {
  NVGAS_CHECK(dst >= 0 && dst < ranks());
  const gas::Gva base = block.block_base();
  const int home = home_of(base);
  task.charge(ep(node).post_cost());
  ep(node).raw_send(task.now(), home, kCtrlBytes,
                    [this, base, dst, node,
                     done = std::move(done)](sim::Time t) mutable {
                      mig_request(t, base, dst, node, std::move(done));
                    });
}

void AgasNet::mig_request(sim::Time t, gas::Gva block_base, int dst,
                          int initiator, net::OnDone done) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of(block_base);
  auto& hnic = fabric_->nic(home);
  const sim::Time looked =
      hnic.occupy_command_processor(t, fabric_->params().nic_tlb_ns);

  net::TlbEntry* e = tlb_mut(home).find(key);
  NVGAS_CHECK_MSG(e != nullptr, "migrate of unallocated address");
  if (e->in_flight) {
    hstate(key).queued_migs[key].push_back({dst, initiator, std::move(done)});
    return;
  }
  if (e->owner == dst) {
    notify_initiator(looked, home, initiator, std::move(done));
    chain_queued_migration(looked, block_base);  // keep draining the queue
    return;
  }

  e->in_flight = true;
  if (observer_ != nullptr) observer_->on_migration_start(key);
  hstate(key).migrations[key] = Migration{dst, initiator, 0, std::move(done)};

  // The single CPU involvement: the destination allocates backing store
  // (registered memory management is software's job even here).
  const std::uint32_t bsize = heap_->meta_of(block_base).block_size;
  ep(home).raw_send(looked, dst, kCtrlBytes, [this, block_base, dst, home,
                                              bsize](sim::Time t2) {
    fabric_->cpu(dst).submit_at(t2, [this, block_base, dst, home,
                                     bsize](sim::TaskCtx& task) {
      task.charge(fabric_->params().cpu_recv_overhead_ns + costs_.alloc_block_ns);
      const sim::Lva lva = heap_->store(dst).allocate(bsize);
      task.charge(ep(dst).post_cost());
      ep(dst).raw_send(task.now(), home, kCtrlBytes,
                       [this, block_base, lva](sim::Time t3) {
                         mig_alloc_ok(t3, block_base, lva);
                       });
    });
  });
}

void AgasNet::mig_alloc_ok(sim::Time t, gas::Gva block_base, sim::Lva dst_lva) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of(block_base);
  Migration& mig = hstate(key).migrations.at(key);
  mig.dst_lva = dst_lva;

  net::TlbEntry* e = tlb_mut(home).find(key);
  NVGAS_CHECK(e != nullptr && e->in_flight);
  const int owner = e->owner;
  const sim::Lva old_lva = e->base;
  const std::uint32_t next_gen = e->generation + 1;
  const std::uint32_t bsize = heap_->meta_of(block_base).block_size;
  const int dst = mig.dst;

  // XFER command to the current owner's NIC: DMA-read the block and ship
  // it to the destination NIC, which installs it and reports back.
  auto& hnic = fabric_->nic(home);
  const sim::Time cmd =
      hnic.occupy_command_processor(t, fabric_->params().nic_fwd_ns);
  ep(home).raw_send(cmd, owner, kCtrlBytes,
                    [this, block_base, key, owner, dst, old_lva,
                     dst_lva, bsize, next_gen, home](sim::Time t2) {
    // The old owner stops executing ops for this block the moment the
    // XFER arrives: any op already serialized through the command
    // processor lands in memory before the DMA read below, and any op
    // arriving afterwards sees the hint and forwards — so no acked write
    // can be lost by the copy.
    if (owner != home) {
      net::TlbEntry hint;
      hint.owner = dst;
      hint.base = dst_lva;
      hint.generation = next_gen;
      hint.pinned = false;
      tlb_mut(owner).erase(key);
      (void)tlb_mut(owner).insert(key, hint);
    }

    auto& onic = fabric_->nic(owner);
    const auto& p = fabric_->params();
    const sim::Time read_done =
        onic.occupy_command_processor(t2, p.nic_dma_ns + p.copy_time(bsize));
    fabric_->engine().at(read_done, [this, block_base, key, owner, dst, old_lva,
                                     dst_lva, bsize, next_gen, home,
                                     read_done] {
      std::vector<std::byte> data = fabric_->mem(owner).read_vec(old_lva, bsize);
      (void)next_gen;
      heap_->store(owner).release(old_lva, bsize);

      ep(owner).raw_send(
          read_done, dst, kOpHeaderBytes + bsize,
          [this, block_base, key, dst, dst_lva, bsize, next_gen, home,
           data = std::move(data)](sim::Time t3) mutable {
            auto& dnic = fabric_->nic(dst);
            const auto& pp = fabric_->params();
            const sim::Time write_done = dnic.occupy_command_processor(
                t3, pp.nic_dma_ns + pp.copy_time(bsize));
            fabric_->engine().at(write_done, [this, block_base, key, dst,
                                              dst_lva, next_gen, home,
                                              write_done,
                                              data = std::move(data)]() mutable {
              fabric_->mem(dst).write(dst_lva, data);
              if (dst != home) {
                net::TlbEntry owned;
                owned.owner = dst;
                owned.base = dst_lva;
                owned.generation = next_gen;
                owned.pinned = true;
                tlb_mut(dst).erase(key);
                NVGAS_CHECK(tlb_mut(dst).insert(key, owned));
              }
              ep(dst).raw_send(write_done, home, kCtrlBytes,
                               [this, block_base](sim::Time t4) {
                                 mig_commit(t4, block_base);
                               });
            });
          });
    });
  });
}

void AgasNet::mig_commit(sim::Time t, gas::Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of(block_base);
  auto& hnic = fabric_->nic(home);
  const sim::Time committed =
      hnic.occupy_command_processor(t, fabric_->params().nic_tlb_ns);

  HomeState& hs = hstate(key);
  Migration mig = std::move(hs.migrations.at(key));
  hs.migrations.erase(key);

  // Atomic remap of the authoritative entry.
  net::TlbEntry* e = tlb_mut(home).find(key);
  NVGAS_CHECK(e != nullptr && e->in_flight);
  e->owner = mig.dst;
  e->base = mig.dst_lva;
  ++e->generation;
  e->in_flight = false;
  if (observer_ != nullptr) {
    observer_->on_migration_commit(key, e->owner, e->generation);
  }

  auto& counters = fabric_->counters();
  ++counters.migrations;
  counters.migration_bytes += heap_->meta_of(block_base).block_size;

  // Re-dispatch ops that queued during the move (forward to new owner).
  const auto qit = hs.queued_ops.find(key);
  if (qit != hs.queued_ops.end()) {
    auto ops = std::move(qit->second);
    hs.queued_ops.erase(qit);
    sim::Time depart = committed;
    for (auto& op : ops) {
      depart = hnic.occupy_command_processor(depart, fabric_->params().nic_fwd_ns);
      ++counters.nic_forwards;
      send_op(depart, home, mig.dst, std::move(op));
    }
  }

  notify_initiator(committed, home, mig.initiator, std::move(mig.done));
  chain_queued_migration(committed, block_base);
}

void AgasNet::chain_queued_migration(sim::Time t, gas::Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  HomeState& hs = hstate(key);
  const auto mit = hs.queued_migs.find(key);
  if (mit == hs.queued_migs.end() || mit->second.empty()) return;
  PendingMigration next = std::move(mit->second.front());
  mit->second.erase(mit->second.begin());
  if (mit->second.empty()) hs.queued_migs.erase(mit);
  mig_request(t, block_base, next.dst, next.initiator, std::move(next.done));
}

void AgasNet::notify_initiator(sim::Time depart, int home, int initiator,
                               net::OnDone done) {
  if (!done) return;
  ep(home).raw_send(depart, initiator, kCtrlBytes,
                    [done = std::move(done)](sim::Time t) { done(t); });
}

std::pair<int, sim::Lva> AgasNet::drop_block_state(gas::Gva block_base) {
  const std::uint64_t key = block_base.block_key();
  const int home = home_of(block_base);
  net::TlbEntry* e = tlb_mut(home).find(key);
  NVGAS_CHECK(e != nullptr);
  NVGAS_CHECK_MSG(!e->in_flight, "free_alloc while a block is migrating");
  NVGAS_CHECK_MSG(hstate(key).queued_ops.count(key) == 0,
                  "free_alloc with queued ops");
  NVGAS_CHECK_MSG(hstate(key).queued_migs.count(key) == 0,
                  "free_alloc with queued migrations");
  const std::pair<int, sim::Lva> place{e->owner, e->base};
  // Collective free: every NIC drops its entry (pinned or cached).
  for (auto& tlb : tlbs_) tlb->erase(key);
  return place;
}

std::string AgasNet::audit_translation() const {
  const int n_nodes = fabric_->nodes();
  for (int n = 0; n < n_nodes; ++n) {
    for (const auto& [key, e] : tlb(n).entries()) {
      const auto k = static_cast<unsigned long long>(key);
      const int home = base_of_key(key).home(n_nodes);
      const net::TlbEntry* auth = tlb(home).peek(key);
      if (auth == nullptr) {
        return util::format(
            "node %d holds a TLB entry for block %llx with no home entry at "
            "node %d",
            n, k, home);
      }
      if (n == home) {
        if (!e.pinned) {
          return util::format("home entry for block %llx at node %d is not "
                              "pinned",
                              k, home);
        }
        continue;
      }
      if (e.in_flight) {
        return util::format(
            "in-flight flag for block %llx leaked to non-home node %d", k, n);
      }
      // While a remap is in flight the destination (pinned) and previous
      // owner (hint) may already carry generation+1; otherwise nothing may
      // run ahead of the home.
      const std::uint32_t allowed =
          auth->generation + (auth->in_flight ? 1u : 0u);
      if (e.generation > allowed) {
        return util::format(
            "node %d holds generation %u of block %llx beyond the "
            "authoritative generation %u (in_flight=%d)",
            n, e.generation, k, auth->generation,
            static_cast<int>(auth->in_flight));
      }
      if (!auth->in_flight && e.generation == auth->generation &&
          (e.owner != auth->owner || e.base != auth->base)) {
        return util::format(
            "current-generation entry for block %llx at node %d says "
            "{owner=%d base=%llx} but the home says {owner=%d base=%llx}",
            k, n, e.owner, static_cast<unsigned long long>(e.base),
            auth->owner, static_cast<unsigned long long>(auth->base));
      }
      if (e.pinned && e.owner != n) {
        return util::format(
            "pinned entry for block %llx at node %d, which is neither its "
            "home (%d) nor its owner (%d)",
            k, n, home, e.owner);
      }
    }
  }
  return {};
}

std::string AgasNet::audit_quiescent() const {
  std::size_t migs = 0, qops = 0, qmigs = 0;
  for (const HomeState& hs : homes_) {
    migs += hs.migrations.size();
    qops += hs.queued_ops.size();
    qmigs += hs.queued_migs.size();
  }
  if (migs != 0) {
    return util::format("%zu migration(s) never committed", migs);
  }
  if (qops != 0) {
    return util::format("%zu block(s) still hold ops queued behind a "
                        "migration",
                        qops);
  }
  if (qmigs != 0) {
    return util::format("%zu block(s) still hold queued migrations", qmigs);
  }
  const int n_nodes = fabric_->nodes();
  for (int n = 0; n < n_nodes; ++n) {
    for (const auto& [key, e] : tlb(n).entries()) {
      if (e.in_flight) {
        return util::format(
            "block %llx still marked in-flight at node %d with no migration "
            "outstanding",
            static_cast<unsigned long long>(key), n);
      }
    }
  }
  return {};
}

std::pair<int, sim::Lva> AgasNet::owner_of(gas::Gva block) const {
  const gas::Gva base = block.block_base();
  const int home = base.home(fabric_->nodes());
  const net::TlbEntry* e = const_cast<AgasNet*>(this)
                               ->tlb_mut(home)
                               .find(base.block_key());
  NVGAS_CHECK(e != nullptr);
  return {e->owner, e->base};
}

}  // namespace nvgas::core
