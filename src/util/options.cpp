#include "util/options.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace nvgas::util {

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

bool Options::has(const std::string& key) const { return flags_.count(key) != 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t Options::get_uint(const std::string& key, std::uint64_t def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return std::strtoull(it->second.c_str(), nullptr, 0);
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::uint64_t> Options::get_uint_list(
    const std::string& key, std::vector<std::uint64_t> def) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  std::vector<std::uint64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(), nullptr, 0));
    pos = comma + 1;
  }
  NVGAS_CHECK_MSG(!out.empty(), "empty list option");
  return out;
}

}  // namespace nvgas::util
