// printf-style formatting into a std::string, for diagnostics that end
// up in violation reports and tables rather than on a hot path.
#pragma once

#include <string>

namespace nvgas::util {

[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace nvgas::util
