// Streaming and batch summary statistics for benchmark reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nvgas::util {

// Welford online mean/variance; O(1) memory, numerically stable.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch sample container with exact percentiles (sorts on demand).
class Samples {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }
  void clear() { values_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Nearest-rank percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Human-readable helpers for tables.
std::string format_ns(double ns);        // "1.234 us", "987 ns", ...
std::string format_bytes(std::uint64_t bytes);  // "4 KiB", "1 MiB", ...
std::string format_rate(double per_sec);        // "1.23 M/s"

}  // namespace nvgas::util
