#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nvgas::util {

int LogHistogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  return 64 - std::countl_zero(value) - 1;
}

std::uint64_t LogHistogram::bucket_floor(int bucket) {
  return bucket == 0 ? 0 : (1ULL << bucket);
}

void LogHistogram::add(std::uint64_t value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  ++count_;
  sum_ += value;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::reset() { *this = LogHistogram{}; }

double LogHistogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

double LogHistogram::percentile(double p) const {
  NVGAS_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double lo = static_cast<double>(bucket_floor(i));
      const double hi = static_cast<double>(bucket_floor(i)) * 2.0;
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_);
}

std::string LogHistogram::render(int width) const {
  std::string out;
  if (count_ == 0) return "(empty)\n";
  std::uint64_t peak = 0;
  for (auto b : buckets_) peak = std::max(peak, b);
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const int bar =
        std::max(1, static_cast<int>(static_cast<double>(n) * width / static_cast<double>(peak)));
    char line[160];
    std::snprintf(line, sizeof line, "%12s..%-12s | %-*s %llu\n",
                  format_ns(static_cast<double>(bucket_floor(i))).c_str(),
                  format_ns(static_cast<double>(bucket_floor(i)) * 2.0).c_str(), width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(n));
    out += line;
  }
  return out;
}

}  // namespace nvgas::util
