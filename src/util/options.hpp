// Tiny CLI option parser for bench/example binaries.
//
// Accepts "--key=value" and "--flag" arguments; everything else is a
// positional. Typed getters with defaults keep call sites one line.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nvgas::util {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key, std::uint64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  // Comma-separated list of unsigned integers ("--sizes=8,64,4096").
  [[nodiscard]] std::vector<std::uint64_t> get_uint_list(
      const std::string& key, std::vector<std::uint64_t> def) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const { return positionals_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace nvgas::util
