// Always-on runtime checks for invariants that must hold in release builds.
//
// The simulator is deterministic, so a failed check is always reproducible;
// we prefer loud immediate aborts with context over undefined behaviour.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nvgas::util {

[[noreturn]] inline void panic(const char* file, int line, const char* what) {
  std::fprintf(stderr, "nvgas: panic at %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace nvgas::util

// NVGAS_CHECK is active in all build types: it guards protocol invariants
// (lost completions, double frees, heap corruption) whose violation would
// silently corrupt simulation results.
#define NVGAS_CHECK(cond)                                          \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::nvgas::util::panic(__FILE__, __LINE__, "check failed: " #cond); \
    }                                                              \
  } while (false)

#define NVGAS_CHECK_MSG(cond, msg)                                 \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::nvgas::util::panic(__FILE__, __LINE__, msg);               \
    }                                                              \
  } while (false)

// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define NVGAS_DCHECK(cond) ((void)0)
#else
#define NVGAS_DCHECK(cond) NVGAS_CHECK(cond)
#endif

#define NVGAS_UNREACHABLE() \
  ::nvgas::util::panic(__FILE__, __LINE__, "unreachable code reached")
