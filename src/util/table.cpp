#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace nvgas::util {

Table& Table::columns(std::vector<std::string> names) {
  NVGAS_CHECK(header_.empty());
  header_ = std::move(names);
  return *this;
}

Table& Table::cell(std::string value) {
  pending_.push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

Table& Table::end_row() {
  NVGAS_CHECK_MSG(pending_.size() == header_.size(),
                  "row has wrong number of cells");
  rows_.push_back(std::move(pending_));
  pending_.clear();
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto hline = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

std::string Table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

namespace {
void csv_field(std::ostream& os, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto row_out = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      csv_field(os, row[c]);
    }
    os << '\n';
  };
  row_out(header_);
  for (const auto& row : rows_) row_out(row);
}

std::string Table::csv() const {
  std::ostringstream oss;
  print_csv(oss);
  return oss.str();
}

}  // namespace nvgas::util
