// Deterministic pseudo-random number generation.
//
// The whole simulator must be reproducible from a single seed, so all
// randomness flows through explicitly-seeded generators (never
// std::random_device). Xoroshiro128++ is small, fast and has good
// statistical quality for workload generation; SplitMix64 expands seeds.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace nvgas::util {

// SplitMix64: used to derive well-mixed state from arbitrary seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoroshiro128++ (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    s0_ = sm.next();
    s1_ = sm.next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // avoid the all-zero state
  }

  std::uint64_t next() {
    const std::uint64_t s0 = s0_;
    std::uint64_t s1 = s1_;
    const std::uint64_t result = rotl(s0 + s1, 17) + s0;
    s1 ^= s0;
    s0_ = rotl(s0, 49) ^ s1 ^ (s1 << 21);
    s1_ = rotl(s1, 28);
    return result;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  // Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    NVGAS_DCHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    NVGAS_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  // Double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
};

// ZipfGenerator moved to util/zipf.hpp (shared by the bench drivers and
// the kvstore client generator).

}  // namespace nvgas::util
