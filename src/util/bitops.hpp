// Small bit-manipulation helpers shared by the address codec and
// allocators.
#pragma once

#include <bit>
#include <cstdint>

namespace nvgas::util {

// Smallest power of two >= x (x must be >= 1).
constexpr std::uint64_t ceil_pow2(std::uint64_t x) {
  return std::bit_ceil(x);
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// floor(log2(x)); x must be nonzero.
constexpr unsigned floor_log2(std::uint64_t x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

// ceil(log2(x)); x must be nonzero. ceil_log2(1) == 0.
constexpr unsigned ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0u : floor_log2(x - 1) + 1;
}

// Mask with the low `bits` bits set; bits may be 0..64.
constexpr std::uint64_t low_mask(unsigned bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

constexpr std::uint64_t round_up(std::uint64_t x, std::uint64_t align) {
  return (x + align - 1) / align * align;
}

constexpr std::uint64_t div_ceil(std::uint64_t x, std::uint64_t y) {
  return (x + y - 1) / y;
}

}  // namespace nvgas::util
