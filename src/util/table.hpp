// ASCII table writer used by the benchmark harness to print paper-style
// tables/series with aligned columns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nvgas::util {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);

  // Row builder: call cell() once per column, then end_row().
  Table& cell(std::string value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  Table& end_row();

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  // Machine-readable form: header row + data rows, comma-separated with
  // minimal quoting (fields containing commas/quotes get quoted).
  void print_csv(std::ostream& os) const;
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace nvgas::util
