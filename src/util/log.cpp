#include "util/log.hpp"

#include <cstdio>

namespace nvgas::util {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vwrite(level, fmt, args);
  va_end(args);
}

void Logger::vwrite(LogLevel level, const char* fmt, std::va_list args) {
  std::fprintf(stderr, "[nvgas %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace nvgas::util
