#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace nvgas::util {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  NVGAS_CHECK(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  NVGAS_CHECK(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Samples::percentile(double p) const {
  NVGAS_CHECK(!values_.empty());
  NVGAS_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ULL * 1024) {
    std::snprintf(buf, sizeof buf, "%llu KiB", static_cast<unsigned long long>(bytes / 1024));
  } else if (bytes < 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%llu MiB",
                  static_cast<unsigned long long>(bytes / (1024ULL * 1024)));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string format_rate(double per_sec) {
  char buf[64];
  if (per_sec < 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f /s", per_sec);
  } else if (per_sec < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f K/s", per_sec / 1e3);
  } else if (per_sec < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f M/s", per_sec / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f G/s", per_sec / 1e9);
  }
  return buf;
}

}  // namespace nvgas::util
