#include "util/format.hpp"

#include <cstdarg>
#include <cstdio>

namespace nvgas::util {

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list probe;
  va_copy(probe, args);
  const int len = std::vsnprintf(nullptr, 0, fmt, probe);
  va_end(probe);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<std::size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace nvgas::util
