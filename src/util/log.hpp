// Minimal leveled logger.
//
// The simulator is single-threaded, so no locking is needed on the hot
// path; the level check is a single branch. Benchmarks run with the logger
// at kWarn so that tracing never perturbs reported numbers.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace nvgas::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // printf-style; prefix carries the level tag.
  void write(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
  void vwrite(LogLevel level, const char* fmt, std::va_list args);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

}  // namespace nvgas::util

#define NVGAS_LOG(level, ...)                                              \
  do {                                                                     \
    auto& nvgas_logger_ = ::nvgas::util::Logger::instance();               \
    if (nvgas_logger_.enabled(level)) nvgas_logger_.write(level, __VA_ARGS__); \
  } while (false)

#define NVGAS_TRACE(...) NVGAS_LOG(::nvgas::util::LogLevel::kTrace, __VA_ARGS__)
#define NVGAS_DEBUG(...) NVGAS_LOG(::nvgas::util::LogLevel::kDebug, __VA_ARGS__)
#define NVGAS_INFO(...) NVGAS_LOG(::nvgas::util::LogLevel::kInfo, __VA_ARGS__)
#define NVGAS_WARN(...) NVGAS_LOG(::nvgas::util::LogLevel::kWarn, __VA_ARGS__)
#define NVGAS_ERROR(...) NVGAS_LOG(::nvgas::util::LogLevel::kError, __VA_ARGS__)
