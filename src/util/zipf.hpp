// Zipf-distributed sampling for skewed (hot-spot) workload generation.
//
// Factored out of rng.hpp so workload generators (bench drivers, the
// kvstore client generator) can share one deterministic sampler: the
// CDF is precomputed once, sampling is a binary search, and the drawn
// sequence depends only on the Rng stream — never on host state.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nvgas::util {

// Zipf-distributed integers in [0, n) with exponent s. Precomputes the
// CDF once; sampling is a binary search. Memory is O(n), fine for the
// ≤2^20 key ranges we use. s == 0 degenerates to the uniform
// distribution, which tests use as a closed-form cross-check.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double s) : cdf_(n) {
    NVGAS_CHECK(n > 0);
    double accum = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
      accum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = accum;
    }
    const double total = accum;
    for (auto& v : cdf_) v /= total;
  }

  std::uint64_t sample(Rng& rng) const {
    const double u = rng.uniform();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // P(sample == k), from the normalized CDF. Exact in the same floating
  // arithmetic the sampler uses, so tests can assert against it.
  [[nodiscard]] double pmf(std::uint64_t k) const {
    NVGAS_CHECK(k < cdf_.size());
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

  [[nodiscard]] std::uint64_t domain() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace nvgas::util
