// Move-only callable wrapper with small-buffer optimization.
//
// `InlineFunction<R(Args...), N>` stores any callable whose size is <= N
// bytes (and whose move constructor is noexcept) directly in the object —
// no heap allocation — and falls back to `new` for larger captures. The
// simulator schedules millions of events per second, each carrying one
// closure; with std::function every capture beyond the ~16-byte libstdc++
// SBO costs a malloc/free pair per event. A 48-byte inline buffer covers
// every hot-path closure in sim/ (see Engine::Callback, sim::Task,
// Nic::Deliver).
//
// Differences from std::function, all deliberate:
//   * move-only (no copy; callables need not be copyable),
//   * no target()/target_type() RTTI,
//   * invoking an empty InlineFunction is a checked fatal error, not
//     std::bad_function_call.
//
// Under -DNVGAS_SIMSAN (see docs/STATIC_ANALYSIS.md) the wrapper also
// supports poison(): pool owners poison a recycled slot's callback so a
// use-after-recycle invocation dies with a diagnostic abort instead of
// silently running a stale or reused closure. A poisoned object may be
// reassigned (that is the slot being legitimately reused) and may be
// relocated (pool vectors grow), but never invoked.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace nvgas::util {

inline constexpr std::size_t kInlineFunctionDefaultCapacity = 48;

template <typename Signature,
          std::size_t Capacity = kInlineFunctionDefaultCapacity>
class InlineFunction;  // undefined; specialized below

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVt<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    NVGAS_DCHECK(vt_ != nullptr);
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

  // True when the stored callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept {
    return vt_ != nullptr && vt_->inline_storage;
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

#ifdef NVGAS_SIMSAN
  // Mark this slot as recycled: destroy any held callable, fill the
  // buffer with a poison pattern, and install a vtable whose invoke is a
  // fatal diagnostic. Reassignment and relocation stay legal (pool slots
  // are reused and pool vectors grow); only invocation aborts.
  void poison() noexcept {
    reset();
    for (auto& b : buf_) b = kPoisonByte;
    vt_ = &kPoisonVt;
  }

  [[nodiscard]] bool is_poisoned() const noexcept { return vt_ == &kPoisonVt; }

  static constexpr unsigned char kPoisonByte = 0xDD;
#endif

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    void (*relocate)(void* src, void* dst) noexcept;  // move to dst, kill src
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr VTable kInlineVt = {
      [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        D* from = static_cast<D*>(src);
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); },
      true,
  };

#ifdef NVGAS_SIMSAN
  // Poison vtable: invocation is a use-after-recycle; destruction and
  // relocation are the slot legitimately being reused or the pool
  // growing, so they stay silent (relocation transfers the poisoned
  // state via the vt_ pointer alone — the buffer holds no live object).
  static constexpr VTable kPoisonVt = {
      [](void*, Args&&...) -> R {
        ::nvgas::util::panic(__FILE__, __LINE__,
                             "SimSan: use-after-recycle — invoked a poisoned "
                             "(recycled) callback slot");
      },
      [](void*, void*) noexcept {},
      [](void*) noexcept {},
      true,
  };
#endif

  template <typename D>
  static constexpr VTable kHeapVt = {
      [](void* s, Args&&... args) -> R {
        return (**static_cast<D**>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); },
      false,
  };

  void move_from(InlineFunction& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(other.buf_, buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace nvgas::util
