// Log2-bucketed histogram for latency distributions.
//
// Buckets are [2^k, 2^(k+1)) nanoseconds; memory is fixed (64 buckets) so
// a histogram can live inside per-node counters without allocation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace nvgas::util {

class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t value);
  void merge(const LogHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t total() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return count_ ? max_ : 0; }

  // Approximate percentile: linear interpolation within the bucket.
  [[nodiscard]] double percentile(double p) const;

  // Multi-line ASCII rendering ("2us..4us | #### 123").
  [[nodiscard]] std::string render(int width = 40) const;

  [[nodiscard]] std::uint64_t bucket_count(int bucket) const { return buckets_[bucket]; }
  static int bucket_of(std::uint64_t value);
  static std::uint64_t bucket_floor(int bucket);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace nvgas::util
