// Byte buffer with bounds-checked serialization, used for parcel payloads
// and wire messages. Values are stored little-endian-as-memcpy (the
// simulator never crosses real machine boundaries, so host order is fine;
// the codec still goes through memcpy to stay alignment-safe and
// strict-aliasing-clean).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace nvgas::util {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t reserve) { data_.reserve(reserve); }
  explicit Buffer(std::span<const std::byte> bytes)
      : data_(bytes.begin(), bytes.end()) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] const std::byte* data() const { return data_.data(); }
  [[nodiscard]] std::span<const std::byte> bytes() const { return data_; }
  void clear() { data_.clear(); }

  // --- writing -----------------------------------------------------------

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    // Legal byte view, not type punning: casting an object pointer to
    // std::byte* for memcpy is explicitly allowed ([basic.types.general]);
    // the value is never reinterpreted in place.
    grow_copy(reinterpret_cast<const std::byte*>(&value), sizeof(T));
  }

  void put_bytes(std::span<const std::byte> bytes) {
    put<std::uint32_t>(static_cast<std::uint32_t>(bytes.size()));
    grow_copy(bytes.data(), bytes.size());
  }

  void put_string(const std::string& s) {
    put_bytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint32_t>(static_cast<std::uint32_t>(v.size()));
    // Legal byte view of the element array (trivially copyable T); the
    // bytes are only read through memcpy, never aliased as another type.
    grow_copy(reinterpret_cast<const std::byte*>(v.data()), v.size() * sizeof(T));
  }

  void append_raw(std::span<const std::byte> bytes) {
    grow_copy(bytes.data(), bytes.size());
  }

  // --- reading (cursor-based) --------------------------------------------

  class Reader {
   public:
    explicit Reader(const Buffer& buf) : buf_(&buf) {}
    explicit Reader(std::span<const std::byte> bytes) : view_(bytes) {}

    template <typename T>
      requires std::is_trivially_copyable_v<T>
    T get() {
      T out;
      const auto src = view();
      NVGAS_CHECK_MSG(pos_ + sizeof(T) <= src.size(), "buffer underrun");
      std::memcpy(&out, src.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return out;
    }

    std::vector<std::byte> get_bytes() {
      const auto n = get<std::uint32_t>();
      const auto src = view();
      NVGAS_CHECK_MSG(pos_ + n <= src.size(), "buffer underrun");
      std::vector<std::byte> out(src.begin() + static_cast<std::ptrdiff_t>(pos_),
                                 src.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
      pos_ += n;
      return out;
    }

    std::string get_string() {
      const auto raw = get_bytes();
      // Legal byte view: char may alias any object representation
      // ([basic.lval]); the string constructor copies immediately.
      return {reinterpret_cast<const char*>(raw.data()), raw.size()};
    }

    template <typename T>
      requires std::is_trivially_copyable_v<T>
    std::vector<T> get_vector() {
      const auto n = get<std::uint32_t>();
      const auto src = view();
      NVGAS_CHECK_MSG(pos_ + static_cast<std::size_t>(n) * sizeof(T) <= src.size(),
                      "buffer underrun");
      std::vector<T> out(n);
      std::memcpy(out.data(), src.data() + pos_, static_cast<std::size_t>(n) * sizeof(T));
      pos_ += static_cast<std::size_t>(n) * sizeof(T);
      return out;
    }

    [[nodiscard]] std::size_t remaining() const { return view().size() - pos_; }
    [[nodiscard]] bool exhausted() const { return remaining() == 0; }

    // View of the not-yet-consumed bytes (valid while the source lives).
    [[nodiscard]] std::span<const std::byte> rest() const {
      return view().subspan(pos_);
    }

    // Advance the cursor without decoding.
    void skip(std::size_t n) {
      NVGAS_CHECK_MSG(pos_ + n <= view().size(), "buffer underrun");
      pos_ += n;
    }

   private:
    [[nodiscard]] std::span<const std::byte> view() const {
      return buf_ != nullptr ? buf_->bytes() : view_;
    }
    const Buffer* buf_ = nullptr;
    std::span<const std::byte> view_;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] Reader reader() const { return Reader(*this); }

 private:
  // resize+memcpy (rather than iterator-range insert) keeps GCC 12's
  // -Wstringop-overflow false positive out of every includer at -O2.
  void grow_copy(const std::byte* src, std::size_t n) {
    const std::size_t old = data_.size();
    data_.resize(old + n);
    if (n != 0) std::memcpy(data_.data() + old, src, n);
  }

  std::vector<std::byte> data_;
};

}  // namespace nvgas::util
