// Quickstart: the nvgas API in one file.
//
//   build/examples/quickstart [--nodes=8] [--mode=pgas|agas-sw|agas-net]
//
// Walks through the core capabilities: allocating a cyclic global array,
// one-sided put/get on global addresses, remote atomics, migrating a
// block without changing its address, and routing a parcel to wherever
// an object currently lives.
#include <cstdio>

#include "core/nvgas.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  nvgas::Config cfg = nvgas::Config::with_nodes(
      static_cast<int>(opt.get_int("nodes", 8)),
      parse_mode(opt.get("mode", "agas-net")));

  nvgas::World world(cfg);
  std::printf("nvgas quickstart: %d nodes, %s address space\n\n", world.ranks(),
              nvgas::gas::to_string(cfg.gas_mode));

  // An action we will route to a mobile object later.
  const auto greet = world.runtime().actions().add(
      "quickstart.greet", [](nvgas::Context& c, int src, nvgas::util::Buffer) {
        std::printf("  [t=%8llu ns] greet action runs on rank %d (sent by %d)\n",
                    static_cast<unsigned long long>(c.now()), c.rank(), src);
      });

  world.spawn(0, [&](nvgas::Context& ctx) -> nvgas::Fiber {
    // 1. Allocate a global array: 8 blocks of 4 KiB, homes round-robin.
    const nvgas::Gva table = nvgas::alloc_cyclic(ctx, 8, 4096);
    std::printf("allocated 8x4KiB cyclic blocks; block 0 homed on rank %d\n",
                table.home(ctx.ranks()));

    // 2. One-sided writes to every block — no CPU runs on the targets.
    for (int b = 0; b < 8; ++b) {
      co_await nvgas::memput_value<double>(ctx, table.advanced(b * 4096, 4096),
                                           b * 1.5);
    }
    std::printf("wrote one double per block (one-sided)\n");

    // 3. Read one back.
    const double v =
        co_await nvgas::memget_value<double>(ctx, table.advanced(3 * 4096, 4096));
    std::printf("read block 3: %.1f (expected 4.5)\n", v);

    // 4. Remote atomics: a global counter.
    const nvgas::Gva counter = nvgas::alloc_cyclic(ctx, 1, 64);
    for (int i = 0; i < 5; ++i) {
      (void)co_await nvgas::fetch_add(ctx, counter, 10);
    }
    const auto total = co_await nvgas::memget_value<std::uint64_t>(ctx, counter);
    std::printf("fetch_add x5(+10): counter = %llu\n",
                static_cast<unsigned long long>(total));

    // 5. Migration (AGAS modes only): the address stays valid.
    if (world.gas().supports_migration()) {
      const int before = co_await nvgas::resolve(ctx, table);
      co_await nvgas::migrate(ctx, table, (before + 2) % ctx.ranks());
      const int after = co_await nvgas::resolve(ctx, table);
      const double still =
          co_await nvgas::memget_value<double>(ctx, table);
      std::printf("migrated block 0: rank %d -> rank %d; same GVA reads %.1f\n",
                  before, after, still);

      // 6. Parcels follow objects.
      co_await nvgas::apply(ctx, table, greet, {});
    } else {
      std::printf("(PGAS mode: migration not supported — skipping)\n");
    }

    // 7. Copy between global addresses and bulk I/O across blocks.
    co_await nvgas::memcpy_gva(ctx, table.advanced(2 * 4096, 4096), table, 8);
    std::vector<std::byte> bulk(3 * 4096);
    for (std::size_t i = 0; i < bulk.size(); ++i) {
      bulk[i] = static_cast<std::byte>(i & 0xff);
    }
    co_await nvgas::memput_span(ctx, table.advanced(4 * 4096, 4096), bulk);
    const auto bulk_back =
        co_await nvgas::memget_span(ctx, table.advanced(4 * 4096, 4096), bulk.size());
    std::printf("bulk span round trip over 3 blocks: %s\n",
                bulk_back == bulk ? "ok" : "MISMATCH");

    // 8. Release everything (collective free: storage returns at the
    // blocks' current owners).
    nvgas::free_alloc(ctx, counter);
    nvgas::free_alloc(ctx, table);
    std::printf("allocations released\n");
  });
  world.run();

  std::printf("\nsimulated time: %s, messages: %llu, bytes: %llu\n",
              nvgas::util::format_ns(static_cast<double>(world.now())).c_str(),
              static_cast<unsigned long long>(world.counters().messages_sent),
              static_cast<unsigned long long>(world.counters().bytes_sent));
  return 0;
}
