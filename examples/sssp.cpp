// Asynchronous single-source shortest paths — chaotic relaxation with
// distributed termination detection. SSSP on message-driven runtimes is
// the flagship workload of the literature around this system (distributed
// control, no global synchronization): relaxations propagate as parcels
// the moment a shorter distance is discovered, in any order, and the
// computation is over exactly when the quiescence detector says no relax
// message is left anywhere.
//
//   build/examples/sssp [--nodes=8] [--mode=agas-net] [--vertices=4096]
//                       [--degree=6] [--seed=11]
//
// Distances live in GAS blocks (one u64 per vertex, groups of 256);
// relax parcels are coalesced per destination group per handler turn.
// Verified against host-side Dijkstra.
#include <cstdio>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/nvgas.hpp"
#include "rt/termination.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

constexpr std::uint32_t kGroup = 256;

struct WGraph {
  std::uint32_t vertices;
  // adjacency: (neighbour, weight)
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;

  static WGraph random(std::uint32_t n, std::uint32_t degree, std::uint64_t seed) {
    WGraph g{n, {}};
    g.adj.resize(n);
    nvgas::util::Rng rng(seed);
    for (std::uint32_t v = 0; v < n; ++v) {
      g.adj[v].emplace_back((v + 1) % n,
                            1 + static_cast<std::uint32_t>(rng.below(10)));
      for (std::uint32_t d = 1; d < degree; ++d) {
        g.adj[v].emplace_back(static_cast<std::uint32_t>(rng.below(n)),
                              1 + static_cast<std::uint32_t>(rng.below(10)));
      }
    }
    return g;
  }

  [[nodiscard]] std::vector<std::uint64_t> dijkstra(std::uint32_t root) const {
    std::vector<std::uint64_t> dist(vertices, ~0ull);
    using Item = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[root] = 0;
    pq.emplace(0, root);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != dist[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        if (d + w < dist[v]) {
          dist[v] = d + w;
          pq.emplace(dist[v], v);
        }
      }
    }
    return dist;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const auto vertices = static_cast<std::uint32_t>(opt.get_uint("vertices", 4096));
  const auto degree = static_cast<std::uint32_t>(opt.get_uint("degree", 6));
  const std::uint64_t seed = opt.get_uint("seed", 11);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  cfg.machine.mem_bytes_per_node = 32u << 20;
  nvgas::World world(cfg);

  const WGraph graph = WGraph::random(vertices, degree, seed);
  const auto groups = static_cast<std::uint32_t>((vertices + kGroup - 1) / kGroup);
  std::printf("sssp: %u vertices (deg %u), %d nodes, %s — chaotic relaxation\n",
              vertices, degree, nodes, nvgas::gas::to_string(cfg.gas_mode));

  nvgas::Gva dist_base;
  nvgas::rt::QuiescenceDetector qd(world.runtime(), 25'000);
  std::uint64_t relaxations = 0;
  std::uint64_t improvements = 0;

  auto group_gva = [&](std::uint32_t g) {
    return dist_base.advanced(static_cast<std::int64_t>(g) * kGroup * 8,
                              kGroup * 8);
  };
  auto dist_slot = [&](std::uint32_t v) {
    const auto [owner, lva] = world.gas().owner_of(group_gva(v / kGroup));
    return std::pair<int, nvgas::sim::Lva>(owner, lva + (v % kGroup) * 8);
  };

  // Chaotic relax handler. Payload: [count][(vertex, candidate) pairs].
  // Improvements immediately fan out further relax parcels, coalesced per
  // destination group for this handler turn.
  nvgas::rt::ActionId relax{};
  relax = world.runtime().actions().add(
      "sssp.relax", [&](nvgas::Context& c, int, nvgas::util::Buffer args) {
        qd.note_processed(c.rank());
        auto r = args.reader();
        const auto count = r.get<std::uint32_t>();
        std::unordered_map<std::uint32_t,
                           std::vector<std::pair<std::uint32_t, std::uint64_t>>>
            out;
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto v = r.get<std::uint32_t>();
          const auto cand = r.get<std::uint64_t>();
          const auto [owner, lva] = dist_slot(v);
          NVGAS_CHECK(owner == c.rank());
          auto& mem = world.fabric().mem(owner);
          c.charge(25);
          ++relaxations;
          if (cand < mem.load<std::uint64_t>(lva)) {
            mem.store<std::uint64_t>(lva, cand);
            ++improvements;
            for (const auto& [w, weight] : graph.adj[v]) {
              out[w / kGroup].emplace_back(w, cand + weight);
            }
          }
        }
        for (auto& [g, items] : out) {
          nvgas::util::Buffer payload;
          payload.put<std::uint32_t>(static_cast<std::uint32_t>(items.size()));
          for (const auto& [w, cand] : items) {
            payload.put<std::uint32_t>(w);
            payload.put<std::uint64_t>(cand);
          }
          qd.note_sent(c.rank());
          // Fire-and-forget: resolve via the trampoline at the receiver.
          nvgas::util::Buffer tramp;
          tramp.put<std::uint64_t>(group_gva(g).bits());
          tramp.put<nvgas::rt::ActionId>(relax);
          tramp.append_raw(payload.bytes());
          c.send(world.gas().owner_of(group_gva(g)).first,
                 world.runtime().apply_action(), std::move(tramp));
        }
      });

  world.run_spmd([&](nvgas::Context& ctx) -> nvgas::Fiber {
    if (ctx.rank() == 0) dist_base = nvgas::alloc_cyclic(ctx, groups, kGroup * 8);
    co_await world.coll().barrier(ctx);
    for (std::uint32_t g = 0; g < groups; ++g) {
      if (world.gas().owner_of(group_gva(g)).first != ctx.rank()) continue;
      std::vector<std::uint64_t> inf(kGroup, ~0ull);
      co_await nvgas::memput(ctx, group_gva(g), std::as_bytes(std::span(inf)));
    }
    co_await world.coll().barrier(ctx);

    if (ctx.rank() == 0) {
      // Seed: relax(root, 0).
      nvgas::util::Buffer payload;
      payload.put<std::uint32_t>(1);
      payload.put<std::uint32_t>(0);
      payload.put<std::uint64_t>(0);
      qd.note_sent(0);
      co_await nvgas::apply(ctx, group_gva(0), relax, std::move(payload));
    }
    co_await qd.wait(ctx);
  });

  // Verify.
  const auto reference = graph.dijkstra(0);
  std::uint64_t mismatches = 0;
  for (std::uint32_t v = 0; v < vertices; ++v) {
    const auto [owner, lva] = dist_slot(v);
    if (world.fabric().mem(owner).load<std::uint64_t>(lva) != reference[v]) {
      ++mismatches;
    }
  }

  std::printf("\nrelaxations         : %llu (%llu improvements)\n",
              static_cast<unsigned long long>(relaxations),
              static_cast<unsigned long long>(improvements));
  std::printf("detector rounds     : %llu\n",
              static_cast<unsigned long long>(qd.rounds()));
  std::printf("simulated time      : %s\n",
              nvgas::util::format_ns(static_cast<double>(world.now())).c_str());
  std::printf("verification        : %s (%llu mismatches)\n",
              mismatches == 0 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
