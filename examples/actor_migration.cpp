// Mobile actors under a skewed workload — the load-balancing scenario
// that motivates an *active* global address space (R-F6's workload).
//
//   build/examples/actor_migration [--nodes=8] [--mode=agas-net]
//                                  [--actors=64] [--tasks=2000]
//                                  [--zipf=1.2] [--rebalance=true]
//
// Actors are global blocks holding state; work items are parcels routed
// to each actor's current owner with apply(). All actors are *born on
// rank 0* (the common real-world pattern: data is loaded where it
// arrives), so the task stream initially hammers one rank. With
// `--rebalance`, a balancer fiber migrates busy actors to idle ranks —
// impossible under PGAS, cheap under network-managed AGAS. Compare
// makespans:
//
//   actor_migration --mode=agas-net --rebalance=false
//   actor_migration --mode=agas-net --rebalance=true
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/nvgas.hpp"
#include "util/zipf.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

constexpr std::uint32_t kActorStateBytes = 1024;
constexpr nvgas::sim::Time kTaskComputeNs = 20'000;  // 20 us of work per task

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const std::uint32_t actors = static_cast<std::uint32_t>(opt.get_uint("actors", 64));
  const std::uint64_t tasks = opt.get_uint("tasks", 2000);
  const double zipf_s = opt.get_double("zipf", 0.9);
  const bool rebalance = opt.get_bool("rebalance", true);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  nvgas::World world(cfg);
  const bool can_migrate = world.gas().supports_migration();

  std::printf("actors: %u actors, %llu tasks (zipf %.2f), %d nodes, %s, rebalance=%s\n",
              actors, static_cast<unsigned long long>(tasks), zipf_s, nodes,
              nvgas::gas::to_string(cfg.gas_mode),
              rebalance && can_migrate ? "on" : "off");

  // Per-actor counters: lifetime totals (for reporting) and a sliding
  // window (what the balancer acts on).
  std::vector<std::uint64_t> actor_tasks(actors, 0);
  std::vector<std::uint64_t> window_tasks(actors, 0);
  std::uint64_t completed = 0;
  nvgas::rt::AndGate all_done(tasks);

  // The actor behaviour: charge compute, bump the actor's visit count in
  // its state block (word 0), and report completion.
  nvgas::Gva actor_base;
  const auto work = nvgas::rt::register_action<std::uint32_t, nvgas::rt::LcoRef>(
      world.runtime().actions(), "actor.work",
      [&](nvgas::Context& c, int, std::uint32_t actor, nvgas::rt::LcoRef cont) {
        c.charge(kTaskComputeNs);
        ++actor_tasks[actor];
        ++window_tasks[actor];
        ++completed;
        all_done.arrive(c.now());
        c.set_lco(cont);  // closed loop: tell the generator
      });

  world.spawn(0, [&](nvgas::Context& ctx) -> nvgas::Fiber {
    // kLocal: every actor starts on rank 0 — the imbalance migration must
    // repair. (PGAS is stuck with this placement forever.)
    actor_base = nvgas::alloc_local(ctx, actors, kActorStateBytes);

    // Task generator: every rank submits its share of the Zipf stream.
    const std::uint64_t per_rank = tasks / static_cast<std::uint64_t>(ctx.ranks());
    const std::uint64_t remainder = tasks - per_rank * static_cast<std::uint64_t>(ctx.ranks());
    for (int r = 0; r < ctx.ranks(); ++r) {
      const std::uint64_t mine = per_rank + (r < static_cast<int>(remainder) ? 1 : 0);
      ctx.spawn(r, [&, r, mine](nvgas::Context& c) -> nvgas::Fiber {
        nvgas::util::Rng rng(42 + static_cast<std::uint64_t>(r));
        nvgas::util::ZipfGenerator zipf(actors, zipf_s);
        // Closed loop: one task in flight per generator. Submission (and
        // therefore routing) adapts to the service rate, so placement
        // repairs show up directly as throughput.
        for (std::uint64_t i = 0; i < mine; ++i) {
          const auto actor = static_cast<std::uint32_t>(zipf.sample(rng));
          const nvgas::Gva addr = actor_base.advanced(
              static_cast<std::int64_t>(actor) * kActorStateBytes,
              kActorStateBytes);
          nvgas::rt::Event task_done;
          const nvgas::rt::LcoRef ref = c.make_ref(task_done);
          co_await nvgas::apply(c, addr, work, nvgas::rt::pack_args(actor, ref));
          co_await task_done;
          c.release_ref(ref);
        }
      });
    }

    // The balancer: periodically move the hottest actors off the busiest
    // rank onto the least busy one.
    if (rebalance && can_migrate) {
      // The balancer lives on the last rank — the initial hot rank (0)
      // has no CPU to spare.
      ctx.spawn(ctx.ranks() - 1, [&](nvgas::Context& c) -> nvgas::Fiber {
        while (completed < tasks) {
          co_await c.sleep(100'000);  // every 100 us
          // Per-rank load over the last window, given current placement.
          std::vector<std::uint64_t> load(static_cast<std::size_t>(c.ranks()), 0);
          std::vector<int> owner(actors);
          for (std::uint32_t a = 0; a < actors; ++a) {
            const nvgas::Gva addr = actor_base.advanced(
                static_cast<std::int64_t>(a) * kActorStateBytes, kActorStateBytes);
            owner[a] = world.gas().owner_of(addr).first;
            load[static_cast<std::size_t>(owner[a])] += window_tasks[a];
          }
          // Move hot actors from the busiest rank to the idlest until the
          // estimated transfer would overshoot (classic greedy repair).
          for (int moves = 0; moves < 3; ++moves) {
            const auto busiest = static_cast<int>(
                std::max_element(load.begin(), load.end()) - load.begin());
            const auto idlest = static_cast<int>(
                std::min_element(load.begin(), load.end()) - load.begin());
            const auto hi = load[static_cast<std::size_t>(busiest)];
            const auto lo = load[static_cast<std::size_t>(idlest)];
            if (busiest == idlest || hi < lo + lo / 2 + 2) break;
            std::uint32_t hottest = actors;
            std::uint64_t hottest_count = 0;
            for (std::uint32_t a = 0; a < actors; ++a) {
              // Only move actors whose load fits in the gap (don't just
              // bounce the single hottest actor back and forth).
              if (owner[a] == busiest && window_tasks[a] >= hottest_count &&
                  window_tasks[a] <= (hi - lo) ) {
                hottest = a;
                hottest_count = window_tasks[a];
              }
            }
            if (hottest == actors || hottest_count == 0) break;
            const nvgas::Gva addr = actor_base.advanced(
                static_cast<std::int64_t>(hottest) * kActorStateBytes,
                kActorStateBytes);
            co_await nvgas::migrate(c, addr, idlest);
            owner[hottest] = idlest;
            load[static_cast<std::size_t>(busiest)] -= hottest_count;
            load[static_cast<std::size_t>(idlest)] += hottest_count;
          }
          for (auto& w : window_tasks) w = 0;  // fresh window
        }
      });
    }
    co_await all_done;
  });
  world.run();

  // Report makespan and the final placement balance.
  std::vector<std::uint64_t> final_load(static_cast<std::size_t>(nodes), 0);
  for (std::uint32_t a = 0; a < actors; ++a) {
    const nvgas::Gva addr = actor_base.advanced(
        static_cast<std::int64_t>(a) * kActorStateBytes, kActorStateBytes);
    final_load[static_cast<std::size_t>(world.gas().owner_of(addr).first)] +=
        actor_tasks[a];
  }
  const auto peak = *std::max_element(final_load.begin(), final_load.end());
  const double mean = static_cast<double>(tasks) / nodes;

  std::printf("\nmakespan            : %s (simulated)\n",
              nvgas::util::format_ns(static_cast<double>(world.now())).c_str());
  std::printf("migrations          : %llu\n",
              static_cast<unsigned long long>(world.counters().migrations));
  std::printf("peak rank load      : %llu tasks (perfect balance would be %.0f)\n",
              static_cast<unsigned long long>(peak), mean);
  std::printf("imbalance factor    : %.2fx\n", static_cast<double>(peak) / mean);
  if (opt.get_bool("report", false)) {
    std::printf("\n%s", world.report().c_str());
  }
  return 0;
}
