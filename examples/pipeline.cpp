// Streaming pipeline across ranks — producer/consumer signalling with
// put-with-remote-notification (Photon's remote completion ledger)
// versus explicit notification parcels.
//
//   build/examples/pipeline [--nodes=8] [--mode=agas-net] [--chunks=64]
//                           [--chunk-bytes=8192] [--signal=true]
//
// Rank i transforms each chunk and pushes it to rank i+1's double
// buffer. With --signal, the consumer learns of arriving data straight
// from the NIC ledger (zero extra messages, zero producer-side CPU);
// without it, the producer follows every put with a notification parcel
// that costs a CPU task at the consumer. Flow control (slot reuse) runs
// on LCOs in both variants.
//
// Note a real effect the simulator surfaces: at some chunk sizes the
// *earlier* wakeup can be mildly counterproductive — the consumer's pull
// (memget) then contends with the producer's next push on the same NIC
// ports. Sweep --chunk-bytes to see the interplay.
#include <cstdio>
#include <vector>

#include "core/nvgas.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const std::uint32_t chunks = static_cast<std::uint32_t>(opt.get_uint("chunks", 64));
  const std::uint32_t chunk_bytes =
      static_cast<std::uint32_t>(opt.get_uint("chunk-bytes", 32768));
  const bool use_signal = opt.get_bool("signal", true);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  cfg.machine.mem_bytes_per_node = 64u << 20;
  nvgas::World world(cfg);

  std::printf("pipeline: %d stages, %u chunks x %s, %s, signalling=%s\n", nodes,
              chunks, nvgas::util::format_bytes(chunk_bytes).c_str(),
              nvgas::gas::to_string(cfg.gas_mode),
              use_signal ? "nic-ledger" : "parcels");

  constexpr int kSlots = 2;  // double buffering per stage

  // Per-(stage, chunk) signalling state, pre-registered before any
  // traffic so the pipeline runs without global synchronization:
  //   arrival[stage][k] — chunk k landed in stage's slot (k % kSlots);
  //   credit[stage][k]  — stage consumed chunk k (its slot is reusable).
  struct StageState {
    std::vector<std::unique_ptr<nvgas::rt::Event>> arrival;
    std::vector<std::unique_ptr<nvgas::rt::Event>> credit;
    std::vector<nvgas::rt::LcoRef> arrival_ref;
    std::vector<nvgas::rt::LcoRef> credit_ref;
  };
  std::vector<StageState> stages(static_cast<std::size_t>(nodes));

  nvgas::Gva buffers;
  std::uint64_t checksum_in = 0;
  std::uint64_t checksum_out = 0;

  const auto notify = world.runtime().actions().add(
      "pipe.notify", [&](nvgas::Context& c, int, nvgas::util::Buffer args) {
        auto r = args.reader();
        const auto chunk = r.get<std::uint32_t>();
        stages[static_cast<std::size_t>(c.rank())].arrival[chunk]->set(c.now());
      });

  world.run_spmd([&](nvgas::Context& ctx) -> nvgas::Fiber {
    const int rank = ctx.rank();
    auto& st = stages[static_cast<std::size_t>(rank)];

    if (rank == 0) {
      buffers = nvgas::alloc_cyclic(
          ctx, static_cast<std::uint32_t>(nodes * kSlots), chunk_bytes);
    }
    // Pre-register this stage's per-chunk events.
    st.arrival.resize(chunks);
    st.credit.resize(chunks);
    st.arrival_ref.resize(chunks);
    st.credit_ref.resize(chunks);
    for (std::uint32_t k = 0; k < chunks; ++k) {
      st.arrival[k] = std::make_unique<nvgas::rt::Event>();
      st.credit[k] = std::make_unique<nvgas::rt::Event>();
      st.arrival_ref[k] = ctx.make_ref(*st.arrival[k]);
      st.credit_ref[k] = ctx.make_ref(*st.credit[k]);
    }
    co_await world.coll().barrier(ctx);  // one setup barrier only

    auto slot_gva = [&](int stage, std::uint32_t k) {
      return buffers.advanced(
          static_cast<std::int64_t>(stage * kSlots +
                                    static_cast<int>(k % kSlots)) *
              chunk_bytes,
          chunk_bytes);
    };

    const std::uint32_t words = chunk_bytes / 8;
    auto process = [&](std::vector<std::uint64_t>& data) {
      ctx.charge(words * 2);  // per-word transform cost
      for (auto& w : data) w = w * 1099511628211ULL + 11;
    };

    for (std::uint32_t k = 0; k < chunks; ++k) {
      std::vector<std::uint64_t> data(words);
      if (rank == 0) {
        nvgas::util::Rng rng(k + 1);
        for (auto& w : data) w = rng.next();
        for (auto w : data) checksum_in ^= w;
      } else {
        co_await *st.arrival[k];  // chunk k is in my slot
        const auto raw =
            co_await nvgas::memget(ctx, slot_gva(rank, k), chunk_bytes);
        std::memcpy(data.data(), raw.data(), chunk_bytes);
        ctx.set_lco(st.credit_ref[k]);  // my slot's PREVIOUS user may refill
      }

      process(data);

      if (rank == nodes - 1) {
        for (auto w : data) checksum_out ^= w;
      } else {
        // Flow control: wait until downstream consumed the chunk that
        // used this slot last (k - kSlots).
        if (k >= kSlots) {
          co_await *stages[static_cast<std::size_t>(rank + 1)]
                        .credit[k - kSlots];
        }
        const auto dst = slot_gva(rank + 1, k);
        auto bytes = std::as_bytes(std::span(data));
        if (use_signal) {
          co_await nvgas::memput_signal(
              ctx, dst, {bytes.begin(), bytes.end()},
              stages[static_cast<std::size_t>(rank + 1)].arrival_ref[k]);
        } else {
          co_await nvgas::memput(ctx, dst, bytes);
          ctx.send(rank + 1, notify, nvgas::rt::pack_args(k));
        }
      }
    }
  });

  std::printf("\nchunks through      : %u (%s end to end)\n", chunks,
              nvgas::util::format_bytes(static_cast<std::uint64_t>(chunks) *
                                        chunk_bytes)
                  .c_str());
  std::printf("simulated time      : %s\n",
              nvgas::util::format_ns(static_cast<double>(world.now())).c_str());
  std::printf("parcels             : %llu\n",
              static_cast<unsigned long long>(world.counters().parcels_sent));
  std::printf("pipeline intact     : %s\n",
              checksum_out != 0 && checksum_in != 0 ? "yes" : "NO DATA");
  return 0;
}
