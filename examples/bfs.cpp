// Distributed breadth-first search over a global-address-space graph —
// the irregular, parcel-heavy workload family (AM++/PBGL lineage) that
// message-driven runtimes target.
//
//   build/examples/bfs [--nodes=8] [--mode=agas-net] [--vertices=8192]
//                      [--degree=8] [--coalesce=true] [--seed=3]
//
// Vertices are grouped into GAS blocks (256 vertices per block, homes
// cyclic); depth labels live in global memory. Each BFS level, every rank
// relaxes the frontier vertices it owns and sends relax parcels to the
// owner blocks of remote neighbours — either one parcel per edge
// (--coalesce=false) or one per (level, destination block) with the
// vertex list batched (--coalesce=true, the AM++ message-coalescing
// optimization). Level completion uses per-sender acknowledgement gates;
// global termination uses an allreduce of newly-discovered counts.
//
// The result is verified against a host-side sequential BFS.
#include <cstdio>
#include <queue>
#include <vector>

#include "core/nvgas.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

constexpr std::uint32_t kGroup = 256;  // vertices per GAS block

struct Graph {
  std::uint32_t vertices = 0;
  std::vector<std::vector<std::uint32_t>> adj;

  static Graph random(std::uint32_t n, std::uint32_t degree, std::uint64_t seed) {
    Graph g;
    g.vertices = n;
    g.adj.resize(n);
    nvgas::util::Rng rng(seed);
    for (std::uint32_t v = 0; v < n; ++v) {
      g.adj[v].push_back((v + 1) % n);  // ring keeps everything reachable
      for (std::uint32_t d = 1; d < degree; ++d) {
        g.adj[v].push_back(static_cast<std::uint32_t>(rng.below(n)));
      }
    }
    return g;
  }

  [[nodiscard]] std::vector<std::uint32_t> sequential_bfs(std::uint32_t root) const {
    std::vector<std::uint32_t> depth(vertices, ~0u);
    std::queue<std::uint32_t> q;
    depth[root] = 0;
    q.push(root);
    while (!q.empty()) {
      const auto u = q.front();
      q.pop();
      for (const auto v : adj[u]) {
        if (depth[v] == ~0u) {
          depth[v] = depth[u] + 1;
          q.push(v);
        }
      }
    }
    return depth;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const std::uint32_t vertices =
      static_cast<std::uint32_t>(opt.get_uint("vertices", 8192));
  const std::uint32_t degree = static_cast<std::uint32_t>(opt.get_uint("degree", 8));
  const bool coalesce = opt.get_bool("coalesce", true);
  const std::uint64_t seed = opt.get_uint("seed", 3);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  cfg.machine.mem_bytes_per_node = 32u << 20;
  nvgas::World world(cfg);

  const Graph graph = Graph::random(vertices, degree, seed);
  const auto groups = static_cast<std::uint32_t>((vertices + kGroup - 1) / kGroup);
  std::printf("bfs: %u vertices (deg %u), %u groups, %d nodes, %s, coalesce=%s\n",
              vertices, degree, groups, nodes, nvgas::gas::to_string(cfg.gas_mode),
              coalesce ? "on" : "off");

  // Distributed state.
  nvgas::Gva depth_base;
  std::vector<std::vector<std::uint32_t>> next_frontier(
      static_cast<std::size_t>(nodes));
  std::uint64_t edges_relaxed = 0;
  int levels = 0;

  auto group_of = [&](std::uint32_t v) { return v / kGroup; };
  auto group_gva = [&](std::uint32_t g) {
    return depth_base.advanced(static_cast<std::int64_t>(g) * kGroup * 8,
                               kGroup * 8);
  };
  auto owner_rank_of_group = [&](std::uint32_t g) {
    return world.gas().owner_of(group_gva(g)).first;
  };
  auto depth_slot = [&](std::uint32_t v) {
    const auto [owner, lva] = world.gas().owner_of(group_gva(group_of(v)));
    return std::pair<int, nvgas::sim::Lva>(owner, lva + (v % kGroup) * 8);
  };

  // Relax handler: runs at the owner of the destination group. Payload:
  // [ack LcoRef][u32 level+1][u32 count][vertex ids...].
  const auto relax = world.runtime().actions().add(
      "bfs.relax", [&](nvgas::Context& c, int, nvgas::util::Buffer args) {
        auto r = args.reader();
        const auto ack = r.get<nvgas::rt::LcoRef>();
        const auto d = r.get<std::uint32_t>();
        const auto count = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto v = r.get<std::uint32_t>();
          const auto [owner, lva] = depth_slot(v);
          NVGAS_CHECK_MSG(owner == c.rank(), "relax parcel at wrong owner");
          auto& mem = world.fabric().mem(owner);
          c.charge(20);  // per-vertex relax work
          ++edges_relaxed;
          if (mem.load<std::uint64_t>(lva) == ~0ull) {
            mem.store<std::uint64_t>(lva, d);
            next_frontier[static_cast<std::size_t>(c.rank())].push_back(v);
          }
        }
        c.set_lco(ack);
      });

  world.run_spmd([&](nvgas::Context& ctx) -> nvgas::Fiber {
    if (ctx.rank() == 0) {
      depth_base = nvgas::alloc_cyclic(ctx, groups, kGroup * 8);
    }
    co_await world.coll().barrier(ctx);

    // Initialize owned groups to "unvisited".
    for (std::uint32_t g = 0; g < groups; ++g) {
      if (owner_rank_of_group(g) != ctx.rank()) continue;
      std::vector<std::uint64_t> unvisited(kGroup, ~0ull);
      co_await nvgas::memput(ctx, group_gva(g),
                             std::as_bytes(std::span(unvisited)));
    }
    co_await world.coll().barrier(ctx);

    // Seed the root.
    std::vector<std::uint32_t> frontier;
    if (owner_rank_of_group(group_of(0)) == ctx.rank()) {
      const auto [owner, lva] = depth_slot(0);
      world.fabric().mem(owner).store<std::uint64_t>(lva, 0);
      frontier.push_back(0);
    }

    for (std::uint32_t level = 0;; ++level) {
      // Bucket my frontier's out-edges by destination group.
      std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> buckets;
      for (const auto u : frontier) {
        ctx.charge(30);  // frontier scan work
        for (const auto v : graph.adj[u]) {
          buckets[group_of(v)].push_back(v);
        }
      }

      // Send relax parcels; the ack gate counts parcel completions.
      std::uint64_t to_send = 0;
      for (const auto& [g, verts] : buckets) {
        to_send += coalesce ? 1 : verts.size();
      }
      nvgas::rt::AndGate acks(std::max<std::uint64_t>(1, to_send));
      if (to_send == 0) acks.arrive(ctx.now());
      const nvgas::rt::LcoRef aref = ctx.make_ref(acks);

      for (const auto& [g, verts] : buckets) {
        if (coalesce) {
          nvgas::util::Buffer payload;
          payload.put<nvgas::rt::LcoRef>(aref);
          payload.put<std::uint32_t>(level + 1);
          payload.put<std::uint32_t>(static_cast<std::uint32_t>(verts.size()));
          for (const auto v : verts) payload.put<std::uint32_t>(v);
          co_await nvgas::apply(ctx, group_gva(g), relax, std::move(payload));
        } else {
          for (const auto v : verts) {
            nvgas::util::Buffer payload;
            payload.put<nvgas::rt::LcoRef>(aref);
            payload.put<std::uint32_t>(level + 1);
            payload.put<std::uint32_t>(1);
            payload.put<std::uint32_t>(v);
            co_await nvgas::apply(ctx, group_gva(g), relax, std::move(payload));
          }
        }
      }
      co_await acks;
      ctx.release_ref(aref);
      co_await world.coll().barrier(ctx);

      // Collect the vertices discovered at my rank this level.
      frontier = std::move(next_frontier[static_cast<std::size_t>(ctx.rank())]);
      next_frontier[static_cast<std::size_t>(ctx.rank())].clear();
      const double discovered = co_await world.coll().allreduce_sum(
          ctx, static_cast<double>(frontier.size()));
      if (ctx.rank() == 0) levels = static_cast<int>(level) + 1;
      if (discovered == 0.0) break;
    }
  });

  // Verify against the sequential reference.
  const auto reference = graph.sequential_bfs(0);
  std::uint64_t mismatches = 0;
  for (std::uint32_t v = 0; v < vertices; ++v) {
    const auto [owner, lva] = depth_slot(v);
    const auto d = world.fabric().mem(owner).load<std::uint64_t>(lva);
    const auto expect =
        reference[v] == ~0u ? ~0ull : static_cast<std::uint64_t>(reference[v]);
    if (d != expect) ++mismatches;
  }

  std::printf("\nlevels              : %d\n", levels);
  std::printf("edges relaxed       : %llu\n",
              static_cast<unsigned long long>(edges_relaxed));
  std::printf("parcels             : %llu (rendezvous %llu)\n",
              static_cast<unsigned long long>(world.counters().parcels_sent),
              static_cast<unsigned long long>(world.counters().parcels_rendezvous));
  std::printf("simulated time      : %s\n",
              nvgas::util::format_ns(static_cast<double>(world.now())).c_str());
  std::printf("verification        : %s (%llu mismatches)\n",
              mismatches == 0 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(mismatches));
  return mismatches == 0 ? 0 : 1;
}
