// 2-D heat diffusion (Jacobi) on a row-distributed global grid — the
// ghost-exchange workload class the stencil experiment (R-F5) uses.
//
//   build/examples/heat2d [--nodes=8] [--mode=agas-net] [--n=128]
//                         [--iters=20] [--hot=4.0]
//
// The N×N grid is stored one row per global block, rows distributed
// cyclically. Each iteration every rank updates its rows after pulling
// the two neighbouring (possibly remote) rows with one-sided memgets.
// Verifies that total heat is conserved under the all-reflecting update.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/nvgas.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const std::uint32_t n = static_cast<std::uint32_t>(opt.get_uint("n", 128));
  const int iters = static_cast<int>(opt.get_int("iters", 20));
  const double hot = opt.get_double("hot", 4.0);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  cfg.machine.mem_bytes_per_node = 64u << 20;
  nvgas::World world(cfg);

  const std::uint32_t row_bytes = n * sizeof(double);
  std::printf("heat2d: %ux%u grid, %d nodes, %s, %d iterations\n", n, n, nodes,
              nvgas::gas::to_string(cfg.gas_mode), iters);

  double heat_before = 0.0;
  double heat_after = 0.0;
  std::vector<nvgas::sim::Time> iteration_times;

  nvgas::Gva grid[2];  // double-buffered; set by rank 0 before the barrier
  world.run_spmd([&](nvgas::Context& ctx) -> nvgas::Fiber {
    if (ctx.rank() == 0) {
      grid[0] = nvgas::alloc_cyclic(ctx, n, row_bytes);
      grid[1] = nvgas::alloc_cyclic(ctx, n, row_bytes);
    }
    co_await world.coll().barrier(ctx);

    auto row_addr = [&](int buf, std::uint32_t r) {
      return grid[buf].advanced(static_cast<std::int64_t>(r) * row_bytes,
                                row_bytes);
    };
    auto my_row = [&](std::uint32_t r) {
      return row_addr(0, r).home(ctx.ranks()) == ctx.rank();
    };

    // Initialize: a hot square in the middle, zero elsewhere.
    for (std::uint32_t r = 0; r < n; ++r) {
      if (!my_row(r)) continue;
      std::vector<double> row(n, 0.0);
      if (r >= n / 4 && r < 3 * n / 4) {
        for (std::uint32_t c2 = n / 4; c2 < 3 * n / 4; ++c2) row[c2] = hot;
      }
      auto bytes = std::as_bytes(std::span(row));
      co_await nvgas::memput(ctx, row_addr(0, r), bytes);
      co_await nvgas::memput(ctx, row_addr(1, r), bytes);
    }
    co_await world.coll().barrier(ctx);

    // Total heat before (rank 0 sums every row).
    if (ctx.rank() == 0) {
      for (std::uint32_t r = 0; r < n; ++r) {
        const auto raw = co_await nvgas::memget(ctx, row_addr(0, r), row_bytes);
        const auto* vals = reinterpret_cast<const double*>(raw.data());
        for (std::uint32_t c2 = 0; c2 < n; ++c2) heat_before += vals[c2];
      }
    }
    co_await world.coll().barrier(ctx);

    for (int it = 0; it < iters; ++it) {
      const int cur = it & 1;
      const int nxt = cur ^ 1;
      const auto iter_start = ctx.now();

      for (std::uint32_t r = 0; r < n; ++r) {
        if (!my_row(r)) continue;
        // Pull this row and its neighbours (reflecting boundaries).
        const std::uint32_t up = r == 0 ? 0 : r - 1;
        const std::uint32_t dn = r == n - 1 ? n - 1 : r + 1;
        const auto mid_raw = co_await nvgas::memget(ctx, row_addr(cur, r), row_bytes);
        const auto up_raw = co_await nvgas::memget(ctx, row_addr(cur, up), row_bytes);
        const auto dn_raw = co_await nvgas::memget(ctx, row_addr(cur, dn), row_bytes);
        const auto* mid = reinterpret_cast<const double*>(mid_raw.data());
        const auto* rup = reinterpret_cast<const double*>(up_raw.data());
        const auto* rdn = reinterpret_cast<const double*>(dn_raw.data());

        std::vector<double> out(n);
        for (std::uint32_t c2 = 0; c2 < n; ++c2) {
          const double left = mid[c2 == 0 ? 0 : c2 - 1];
          const double right = mid[c2 == n - 1 ? n - 1 : c2 + 1];
          // Conservative reflecting-boundary diffusion.
          out[c2] = mid[c2] + 0.2 * (left + right + rup[c2] + rdn[c2] - 4 * mid[c2]);
        }
        ctx.charge(n * 4);  // ~4 ns per cell of compute
        co_await nvgas::memput(ctx, row_addr(nxt, r),
                               std::as_bytes(std::span(out)));
      }
      co_await world.coll().barrier(ctx);
      if (ctx.rank() == 0) iteration_times.push_back(ctx.now() - iter_start);
    }

    if (ctx.rank() == 0) {
      const int last = iters & 1;
      for (std::uint32_t r = 0; r < n; ++r) {
        const auto raw = co_await nvgas::memget(ctx, row_addr(last, r), row_bytes);
        const auto* vals = reinterpret_cast<const double*>(raw.data());
        for (std::uint32_t c2 = 0; c2 < n; ++c2) heat_after += vals[c2];
      }
    }
  });

  double per_iter = 0.0;
  for (auto t : iteration_times) per_iter += static_cast<double>(t);
  per_iter /= static_cast<double>(iteration_times.empty() ? 1 : iteration_times.size());

  std::printf("\nheat before/after  : %.3f / %.3f (conservation error %.2e)\n",
              heat_before, heat_after,
              std::abs(heat_after - heat_before) / heat_before);
  std::printf("time per iteration : %s (simulated)\n",
              nvgas::util::format_ns(per_iter).c_str());
  std::printf("total messages     : %llu\n",
              static_cast<unsigned long long>(world.counters().messages_sent));
  return std::abs(heat_after - heat_before) / heat_before < 1e-9 ? 0 : 1;
}
