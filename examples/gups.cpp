// GUPS-style random access over the global address space.
//
//   build/examples/gups [--nodes=16] [--mode=agas-net] [--updates=20000]
//                       [--table-mib=4] [--window=16] [--seed=7]
//
// Every rank performs read-modify-write updates (remote fetch-add) on
// random words of a big cyclic table, keeping `window` operations in
// flight. Reports simulated GUPS and the translation-machinery counters,
// which is where the three address-space managers differ.
#include <cstdio>

#include "core/nvgas.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 16));
  const std::uint64_t updates_per_rank = opt.get_uint("updates", 20000) /
                                         static_cast<std::uint64_t>(nodes);
  const std::uint64_t table_mib = opt.get_uint("table-mib", 4);
  const std::uint64_t window = opt.get_uint("window", 16);
  const std::uint64_t seed = opt.get_uint("seed", 7);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  cfg.machine.mem_bytes_per_node = (table_mib + 8) << 20;
  nvgas::World world(cfg);

  constexpr std::uint32_t kBlockSize = 4096;
  const std::uint32_t nblocks =
      static_cast<std::uint32_t>(table_mib << 20) / kBlockSize;
  const std::uint64_t words = static_cast<std::uint64_t>(nblocks) * kBlockSize / 8;

  std::printf("GUPS: %d nodes, %s, table %llu MiB (%u blocks), %llu updates/rank, window %llu\n",
              nodes, nvgas::gas::to_string(cfg.gas_mode),
              static_cast<unsigned long long>(table_mib), nblocks,
              static_cast<unsigned long long>(updates_per_rank),
              static_cast<unsigned long long>(window));

  nvgas::Gva shared_table;  // set by rank 0 before the first barrier
  world.run_spmd([&](nvgas::Context& ctx) -> nvgas::Fiber {
    if (ctx.rank() == 0) {
      shared_table = nvgas::alloc_cyclic(ctx, nblocks, kBlockSize);
    }
    co_await world.coll().barrier(ctx);

    nvgas::util::Rng rng(seed * 1315423911ULL +
                         static_cast<std::uint64_t>(ctx.rank()));
    // Keep `window` fetch-adds in flight using an AndGate per batch.
    std::uint64_t remaining = updates_per_rank;
    while (remaining > 0) {
      const std::uint64_t batch = std::min(window, remaining);
      remaining -= batch;
      nvgas::rt::AndGate gate(batch);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const std::uint64_t w = rng.below(words);
        const nvgas::Gva addr =
            shared_table.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize);
        nvgas::fetch_add_nb(ctx, addr, 1, gate);
      }
      co_await gate;
    }
    co_await world.coll().barrier(ctx);
  });

  const double secs = static_cast<double>(world.now()) / 1e9;
  const double total_updates =
      static_cast<double>(updates_per_rank) * nodes;
  std::printf("\nsimulated time     : %.3f ms\n", secs * 1e3);
  std::printf("update rate        : %s\n",
              nvgas::util::format_rate(total_updates / secs).c_str());
  const auto& c = world.counters();
  std::printf("messages           : %llu\n",
              static_cast<unsigned long long>(c.messages_sent));
  std::printf("nic tlb hit/miss   : %llu / %llu (forwards %llu)\n",
              static_cast<unsigned long long>(c.nic_tlb_hits),
              static_cast<unsigned long long>(c.nic_tlb_misses),
              static_cast<unsigned long long>(c.nic_forwards));
  std::printf("sw cache hit/miss  : %llu / %llu (directory lookups %llu)\n",
              static_cast<unsigned long long>(c.sw_cache_hits),
              static_cast<unsigned long long>(c.sw_cache_misses),
              static_cast<unsigned long long>(c.directory_lookups));
  if (opt.get_bool("report", false)) {
    std::printf("\n%s", world.report().c_str());
  }
  return 0;
}
