// A distributed key-value store over the global address space, with
// optional locality ("affinity") migration — the data-centric-placement
// use case an active GAS exists for.
//
//   build/examples/kvstore [--nodes=8] [--mode=agas-net] [--buckets=64]
//                          [--ops=4000] [--affinity=true] [--skew=0.8]
//
// The table is an array of bucket blocks; keys hash to buckets; inserts
// claim a slot with a remote fetch-add and write the pair with a
// one-sided put; lookups read the bucket and scan locally. Each rank's
// key stream is skewed toward its "own" key range, but buckets start
// round-robin — the wrong placement. With --affinity, every rank
// periodically migrates its hottest bucket to itself, converting remote
// round trips into local memory accesses. PGAS cannot do this.
#include <cstdio>

#include "core/nvgas.hpp"

namespace {

nvgas::GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return nvgas::GasMode::kPgas;
  if (s == "agas-sw") return nvgas::GasMode::kAgasSw;
  return nvgas::GasMode::kAgasNet;
}

constexpr std::uint32_t kSlotsPerBucket = 120;
constexpr std::uint32_t kBucketBytes = 8 + kSlotsPerBucket * 16;

std::uint64_t hash_key(std::uint64_t key) {
  nvgas::util::SplitMix64 h(key);
  return h.next();
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const std::uint32_t buckets = static_cast<std::uint32_t>(opt.get_uint("buckets", 256));
  const std::uint64_t total_ops = opt.get_uint("ops", 6000);
  const bool affinity = opt.get_bool("affinity", true);
  const double skew = opt.get_double("skew", 0.9);

  nvgas::Config cfg =
      nvgas::Config::with_nodes(nodes, parse_mode(opt.get("mode", "agas-net")));
  nvgas::World world(cfg);
  const bool can_migrate = world.gas().supports_migration();

  std::printf("kvstore: %u buckets x %u slots, %d nodes, %s, affinity=%s, skew=%.2f\n",
              buckets, kSlotsPerBucket, nodes, nvgas::gas::to_string(cfg.gas_mode),
              affinity && can_migrate ? "on" : "off", skew);

  nvgas::Gva table;
  std::uint64_t lookups_hit = 0;
  std::uint64_t lookups_total = 0;
  std::uint64_t overflows = 0;
  // Per-rank per-bucket access counts (host-side stats for the balancer).
  std::vector<std::vector<std::uint64_t>> touch(
      static_cast<std::size_t>(nodes), std::vector<std::uint64_t>(buckets, 0));

  auto bucket_addr = [&](std::uint32_t b) {
    return table.advanced(static_cast<std::int64_t>(b) * kBucketBytes, kBucketBytes);
  };

  world.run_spmd([&](nvgas::Context& ctx) -> nvgas::Fiber {
    if (ctx.rank() == 0) table = nvgas::alloc_cyclic(ctx, buckets, kBucketBytes);
    co_await world.coll().barrier(ctx);

    const std::uint64_t ops =
        total_ops / static_cast<std::uint64_t>(ctx.ranks());
    nvgas::util::Rng rng(808 + static_cast<std::uint64_t>(ctx.rank()));
    constexpr std::uint64_t kHotKeys = 8;  // per-rank working set

    for (std::uint64_t i = 0; i < ops; ++i) {
      // Skewed key choice: with probability `skew` use a key from this
      // rank's own hot set; otherwise a random foreign key.
      std::uint64_t key;
      if (rng.uniform() < skew) {
        key = (static_cast<std::uint64_t>(ctx.rank()) << 32) |
              (1 + rng.below(kHotKeys));
      } else {
        const auto peer = rng.below(static_cast<std::uint64_t>(ctx.ranks()));
        key = (peer << 32) | (1 + rng.below(kHotKeys));
      }
      const auto b = static_cast<std::uint32_t>(hash_key(key) % buckets);
      ++touch[static_cast<std::size_t>(ctx.rank())][b];
      const nvgas::Gva bucket = bucket_addr(b);

      if (rng.chance(0.5)) {
        // Insert: claim a slot, write {key, value}.
        const auto slot = co_await nvgas::fetch_add(ctx, bucket, 1);
        if (slot >= kSlotsPerBucket) {
          ++overflows;
          continue;
        }
        struct Pair {
          std::uint64_t key;
          std::uint64_t value;
        } pair{key, key * 3 + 1};
        co_await nvgas::memput_value<Pair>(
            ctx, bucket.advanced(8 + static_cast<std::int64_t>(slot) * 16,
                                 kBucketBytes),
            pair);
      } else {
        // Lookup: read the bucket header + slots, scan locally.
        const auto raw = co_await nvgas::memget(ctx, bucket, kBucketBytes);
        auto r = nvgas::util::Buffer::Reader(
            std::span<const std::byte>(raw.data(), raw.size()));
        const auto count =
            std::min<std::uint64_t>(r.get<std::uint64_t>(), kSlotsPerBucket);
        ctx.charge(count * 2);  // scan cost
        bool found = false;
        std::uint64_t expect = 0;
        for (std::uint64_t s = 0; s < count; ++s) {
          const auto k = r.get<std::uint64_t>();
          const auto v = r.get<std::uint64_t>();
          if (k == key) {
            found = true;
            expect = v;
          }
        }
        ++lookups_total;
        if (found) {
          ++lookups_hit;
          NVGAS_CHECK_MSG(expect == key * 3 + 1, "kvstore value corruption");
        }
      }

      // Affinity repair: every 32 ops, pull my hottest remote bucket home.
      if (affinity && can_migrate && (i & 31) == 31) {
        auto& mine = touch[static_cast<std::size_t>(ctx.rank())];
        std::uint32_t hot = buckets;
        std::uint64_t hot_count = 0;
        for (std::uint32_t bb = 0; bb < buckets; ++bb) {
          if (mine[bb] > hot_count &&
              world.gas().owner_of(bucket_addr(bb)).first != ctx.rank()) {
            hot = bb;
            hot_count = mine[bb];
          }
        }
        if (hot != buckets) {
          co_await nvgas::migrate(ctx, bucket_addr(hot), ctx.rank());
        }
      }
    }
  });

  // How local did the table end up?
  std::uint64_t local_weight = 0;
  std::uint64_t total_weight = 0;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const int owner = world.gas().owner_of(bucket_addr(b)).first;
    for (int r = 0; r < nodes; ++r) {
      total_weight += touch[static_cast<std::size_t>(r)][b];
      if (r == owner) local_weight += touch[static_cast<std::size_t>(r)][b];
    }
  }

  const double secs = static_cast<double>(world.now()) / 1e9;
  std::printf("\nsimulated time      : %.3f ms\n", secs * 1e3);
  std::printf("op rate             : %s\n",
              nvgas::util::format_rate(static_cast<double>(total_ops) / secs).c_str());
  std::printf("lookup hit rate     : %.1f%% (%llu/%llu)\n",
              lookups_total ? 100.0 * static_cast<double>(lookups_hit) /
                                  static_cast<double>(lookups_total)
                            : 0.0,
              static_cast<unsigned long long>(lookups_hit),
              static_cast<unsigned long long>(lookups_total));
  std::printf("bucket overflows    : %llu\n",
              static_cast<unsigned long long>(overflows));
  std::printf("access locality     : %.1f%% of touches owner-local\n",
              100.0 * static_cast<double>(local_weight) /
                  static_cast<double>(std::max<std::uint64_t>(1, total_weight)));
  std::printf("migrations          : %llu\n",
              static_cast<unsigned long long>(world.counters().migrations));
  return 0;
}
