// R-T2 — parcel transport: ping-pong latency and flood throughput vs
// payload size, across the eager/rendezvous boundary.
#include "common.hpp"

namespace nvgas::bench {
namespace {

// Half round-trip latency of an action ping-pong with `payload` bytes.
double pingpong_half_rtt(std::size_t payload, std::size_t eager_threshold) {
  Config cfg = Config::with_nodes(2, GasMode::kPgas);
  cfg.net.eager_threshold = eager_threshold;
  World world(cfg);

  constexpr int kRounds = 20;
  rt::Event done;
  sim::Time finished = 0;
  rt::ActionId pong_id{};
  int rounds = 0;

  auto make_payload = [payload] {
    util::Buffer b;
    b.append_raw(std::vector<std::byte>(payload));
    return b;
  };

  const auto ping_id = world.runtime().actions().add(
      "bench.ping", [&](Context& c, int src, util::Buffer) {
        c.send(src, pong_id, make_payload());
      });
  pong_id = world.runtime().actions().add(
      "bench.pong", [&](Context& c, int, util::Buffer) {
        if (++rounds < kRounds) {
          c.send(1, ping_id, make_payload());
        } else {
          finished = c.now();
          done.set(c.now());
        }
      });

  sim::Time start = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    start = ctx.now();
    ctx.send(1, ping_id, make_payload());
    co_await done;
  });
  world.run();
  // kRounds round trips → 2*kRounds one-way parcels.
  return static_cast<double>(finished - start) / (2.0 * kRounds);
}

// Sustained one-way parcel rate: rank 0 floods rank 1.
double flood_rate(std::size_t payload, std::size_t eager_threshold,
                  std::uint64_t* rendezvous_count) {
  Config cfg = Config::with_nodes(2, GasMode::kPgas);
  cfg.net.eager_threshold = eager_threshold;
  World world(cfg);

  constexpr int kParcels = 200;
  int handled = 0;
  sim::Time last = 0;
  const auto sink = world.runtime().actions().add(
      "bench.sink", [&](Context& c, int, util::Buffer) {
        ++handled;
        last = c.now();
      });

  sim::Time start = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    start = ctx.now();
    for (int i = 0; i < kParcels; ++i) {
      util::Buffer b;
      b.append_raw(std::vector<std::byte>(payload));
      ctx.send(1, sink, std::move(b));
    }
    co_return;
  });
  world.run();
  NVGAS_CHECK(handled == kParcels);
  *rendezvous_count = world.counters().parcels_rendezvous;
  return kParcels / (static_cast<double>(last - start) / 1e9);
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto payloads =
      opt.get_uint_list("payloads", {0, 64, 512, 2048, 4096, 8192, 65536});
  const std::size_t threshold = opt.get_uint("eager-threshold", 4096);

  print_header("R-T2", "parcel transport: latency and rate vs payload");

  nvgas::util::Table t("parcel ping-pong / flood");
  t.columns({"payload", "protocol", "1-way latency", "flood rate"});
  for (const auto p : payloads) {
    std::uint64_t rendezvous = 0;
    const double rate = flood_rate(p, threshold, &rendezvous);
    const double lat = pingpong_half_rtt(p, threshold);
    t.cell(nvgas::util::format_bytes(p))
        .cell(rendezvous > 0 ? "rendezvous" : "eager")
        .cell(nvgas::util::format_ns(lat))
        .cell(nvgas::util::format_rate(rate))
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: a latency and rate step at the eager threshold\n"
      "(%s): rendezvous pays an extra control round trip per parcel.\n",
      nvgas::util::format_bytes(threshold).c_str());
  return 0;
}
