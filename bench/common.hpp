// Shared helpers for the experiment harness binaries.
//
// Every binary regenerates one table/figure of the reconstructed
// evaluation (see DESIGN.md §6): it sweeps its parameters, runs one
// simulated World per configuration, and prints the rows/series the
// corresponding table or figure would show.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/nvgas.hpp"
#include "util/options.hpp"

namespace nvgas::bench {

inline const char* mode_name(GasMode mode) { return gas::to_string(mode); }

inline GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return GasMode::kPgas;
  if (s == "agas-sw") return GasMode::kAgasSw;
  if (s == "agas-net") return GasMode::kAgasNet;
  NVGAS_CHECK_MSG(false, "unknown --mode (pgas|agas-sw|agas-net)");
  return GasMode::kPgas;
}

inline std::vector<GasMode> all_modes() {
  return {GasMode::kPgas, GasMode::kAgasSw, GasMode::kAgasNet};
}

// Shared --sweep-* axis parsing. Sweep harnesses accept the same flag
// vocabulary (`--sweep-modes=pgas,agas-net|all`, `--sweep-nodes=16,64`,
// `--sweep-threads=1,2,4`); each binary supplies its own defaults and
// reads the axes it sweeps.
struct SweepSpec {
  std::vector<GasMode> modes;
  std::vector<std::uint64_t> nodes;
  std::vector<std::uint64_t> threads;
};

struct SweepDefaults {
  std::string modes = "all";
  std::vector<std::uint64_t> nodes;
  std::vector<std::uint64_t> threads;
};

inline std::vector<GasMode> parse_mode_list(const std::string& s) {
  if (s == "all") return all_modes();
  std::vector<GasMode> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(parse_mode(s.substr(pos, end - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  NVGAS_CHECK_MSG(!out.empty(), "empty --sweep-modes list");
  return out;
}

inline SweepSpec parse_sweep(const util::Options& opt,
                             const SweepDefaults& def) {
  SweepSpec s;
  s.modes = parse_mode_list(opt.get("sweep-modes", def.modes));
  s.nodes = opt.get_uint_list("sweep-nodes", def.nodes);
  s.threads = opt.get_uint_list("sweep-threads", def.threads);
  return s;
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("================================================================\n");
}

// Run a single-rank driver fiber to completion and return the World's
// final simulated time.
template <typename Fn>
sim::Time run_driver(World& world, Fn&& fn) {
  world.spawn(0, std::forward<Fn>(fn));
  world.run();
  return world.now();
}

}  // namespace nvgas::bench
