// Shared helpers for the experiment harness binaries.
//
// Every binary regenerates one table/figure of the reconstructed
// evaluation (see DESIGN.md §6): it sweeps its parameters, runs one
// simulated World per configuration, and prints the rows/series the
// corresponding table or figure would show.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/nvgas.hpp"

namespace nvgas::bench {

inline const char* mode_name(GasMode mode) { return gas::to_string(mode); }

inline GasMode parse_mode(const std::string& s) {
  if (s == "pgas") return GasMode::kPgas;
  if (s == "agas-sw") return GasMode::kAgasSw;
  if (s == "agas-net") return GasMode::kAgasNet;
  NVGAS_CHECK_MSG(false, "unknown --mode (pgas|agas-sw|agas-net)");
  return GasMode::kPgas;
}

inline std::vector<GasMode> all_modes() {
  return {GasMode::kPgas, GasMode::kAgasSw, GasMode::kAgasNet};
}

inline void print_header(const char* experiment, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("================================================================\n");
}

// Run a single-rank driver fiber to completion and return the World's
// final simulated time.
template <typename Fn>
sim::Time run_driver(World& world, Fn&& fn) {
  world.spawn(0, std::forward<Fn>(fn));
  world.run();
  return world.now();
}

}  // namespace nvgas::bench
