// R-F6 — load-imbalance repair: skewed actor workload makespan.
//
// All actors are born on rank 0 (placement skew); a closed-loop task
// stream drives them through apply(). Five configurations:
//   pgas            — placement frozen forever (the AGAS motivation),
//   agas-sw  static — mobility available but unused,
//   agas-sw  rebal  — balancer migrates actors (directory + invalidation
//                     cost on every move),
//   agas-net static,
//   agas-net rebal  — NIC-managed migration.
#include <algorithm>

#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint32_t kActorState = 1024;
constexpr sim::Time kTaskComputeNs = 20'000;

struct LbResult {
  double makespan_ms = 0;
  std::uint64_t migrations = 0;
  double imbalance = 0;
};

LbResult run_lb(GasMode mode, bool rebalance, std::uint32_t actors,
                std::uint64_t tasks, int nodes) {
  Config cfg = Config::with_nodes(nodes, mode);
  World world(cfg);
  const bool can_migrate = world.gas().supports_migration();

  std::vector<std::uint64_t> actor_tasks(actors, 0);
  std::vector<std::uint64_t> window_tasks(actors, 0);
  std::uint64_t completed = 0;
  rt::AndGate all_done(tasks);

  Gva actor_base;
  const auto work = rt::register_action<std::uint32_t, rt::LcoRef>(
      world.runtime().actions(), "lb.work",
      [&](Context& c, int, std::uint32_t actor, rt::LcoRef cont) {
        c.charge(kTaskComputeNs);
        ++actor_tasks[actor];
        ++window_tasks[actor];
        ++completed;
        all_done.arrive(c.now());
        c.set_lco(cont);
      });

  world.spawn(0, [&](Context& ctx) -> Fiber {
    actor_base = alloc_local(ctx, actors, kActorState);

    const std::uint64_t per_rank = tasks / static_cast<std::uint64_t>(ctx.ranks());
    const std::uint64_t rem = tasks - per_rank * static_cast<std::uint64_t>(ctx.ranks());
    for (int r = 0; r < ctx.ranks(); ++r) {
      const std::uint64_t mine = per_rank + (r < static_cast<int>(rem) ? 1 : 0);
      ctx.spawn(r, [&, r, mine](Context& c) -> Fiber {
        util::Rng rng(42 + static_cast<std::uint64_t>(r));
        util::ZipfGenerator zipf(actors, 0.9);
        for (std::uint64_t i = 0; i < mine; ++i) {
          const auto actor = static_cast<std::uint32_t>(zipf.sample(rng));
          const Gva addr = actor_base.advanced(
              static_cast<std::int64_t>(actor) * kActorState, kActorState);
          rt::Event task_done;
          const rt::LcoRef ref = c.make_ref(task_done);
          co_await apply(c, addr, work, rt::pack_args(actor, ref));
          co_await task_done;
          c.release_ref(ref);
        }
      });
    }

    if (rebalance && can_migrate) {
      ctx.spawn(ctx.ranks() - 1, [&](Context& c) -> Fiber {
        while (completed < tasks) {
          co_await c.sleep(100'000);
          std::vector<std::uint64_t> load(static_cast<std::size_t>(c.ranks()), 0);
          std::vector<int> owner(actors);
          for (std::uint32_t a = 0; a < actors; ++a) {
            const Gva addr = actor_base.advanced(
                static_cast<std::int64_t>(a) * kActorState, kActorState);
            owner[a] = world.gas().owner_of(addr).first;
            load[static_cast<std::size_t>(owner[a])] += window_tasks[a];
          }
          for (int moves = 0; moves < 3; ++moves) {
            const auto busiest = static_cast<int>(
                std::max_element(load.begin(), load.end()) - load.begin());
            const auto idlest = static_cast<int>(
                std::min_element(load.begin(), load.end()) - load.begin());
            const auto hi = load[static_cast<std::size_t>(busiest)];
            const auto lo = load[static_cast<std::size_t>(idlest)];
            if (busiest == idlest || hi < lo + lo / 2 + 2) break;
            std::uint32_t pick = actors;
            std::uint64_t pick_count = 0;
            for (std::uint32_t a = 0; a < actors; ++a) {
              if (owner[a] == busiest && window_tasks[a] >= pick_count &&
                  window_tasks[a] <= hi - lo) {
                pick = a;
                pick_count = window_tasks[a];
              }
            }
            if (pick == actors || pick_count == 0) break;
            const Gva addr = actor_base.advanced(
                static_cast<std::int64_t>(pick) * kActorState, kActorState);
            co_await migrate(c, addr, idlest);
            owner[pick] = idlest;
            load[static_cast<std::size_t>(busiest)] -= pick_count;
            load[static_cast<std::size_t>(idlest)] += pick_count;
          }
          for (auto& w : window_tasks) w = 0;
        }
      });
    }
    co_await all_done;
  });
  world.run();

  std::vector<std::uint64_t> final_load(static_cast<std::size_t>(nodes), 0);
  for (std::uint32_t a = 0; a < actors; ++a) {
    const Gva addr =
        actor_base.advanced(static_cast<std::int64_t>(a) * kActorState, kActorState);
    final_load[static_cast<std::size_t>(world.gas().owner_of(addr).first)] +=
        actor_tasks[a];
  }
  LbResult out;
  out.makespan_ms = static_cast<double>(world.now()) / 1e6;
  out.migrations = world.counters().migrations;
  out.imbalance = static_cast<double>(
                      *std::max_element(final_load.begin(), final_load.end())) /
                  (static_cast<double>(tasks) / nodes);
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto actors = static_cast<std::uint32_t>(opt.get_uint("actors", 48));
  const std::uint64_t tasks = opt.get_uint("tasks", 1200);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));

  print_header("R-F6", "skewed actor workload: makespan with/without mobility");

  nvgas::util::Table t("actor workload makespan");
  t.columns({"config", "makespan (ms)", "migrations", "task imbalance"});
  struct Cfg {
    const char* name;
    nvgas::GasMode mode;
    bool rebalance;
  };
  const Cfg cfgs[] = {
      {"pgas (immobile)", nvgas::GasMode::kPgas, false},
      {"agas-sw  static", nvgas::GasMode::kAgasSw, false},
      {"agas-sw  rebalance", nvgas::GasMode::kAgasSw, true},
      {"agas-net static", nvgas::GasMode::kAgasNet, false},
      {"agas-net rebalance", nvgas::GasMode::kAgasNet, true},
  };
  for (const auto& c : cfgs) {
    const LbResult r = run_lb(c.mode, c.rebalance, actors, tasks, nodes);
    t.cell(c.name)
        .cell(r.makespan_ms, 2)
        .cell(r.migrations)
        .cell(r.imbalance, 2)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: immobile configs pay the full placement skew;\n"
      "rebalancing repairs it; agas-net rebalances at least as well as\n"
      "agas-sw (its migrations are cheaper and invalidation-free).\n");
  return 0;
}
