// R-F6 — load-imbalance repair: skewed actor workload makespan.
//
// All actors are born on rank 0 (placement skew); a closed-loop task
// stream drives them through apply(). The sweep crosses address-space
// mode with the adaptive migration subsystem's policy axis (src/lb/):
//   pgas     × {none, hysteresis} — placement frozen forever; the
//              balancer constructs inert, so both rows must be
//              byte-identical (trace hash printed to prove it),
//   agas-sw  × {none, greedy, hysteresis, diffusive},
//   agas-net × {none, greedy, hysteresis, diffusive}.
// Heat accrues from the resolve() calls the apply trampoline makes, so
// the balancer sees exactly the task traffic each actor receives.
//
// Results land in BENCH_loadbalance.json (cwd) for cross-PR tracking.
#include <algorithm>
#include <cstdio>

#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint32_t kActorState = 1024;
constexpr sim::Time kTaskComputeNs = 20'000;

struct LbResult {
  double makespan_ms = 0;
  std::uint64_t migrations = 0;   // balancer-issued moves
  std::uint64_t rejected = 0;     // plan entries killed by the cost gate
  double imbalance = 0;           // max node task share / fair share
  std::uint64_t trace_hash = 0;
};

LbResult run_lb(GasMode mode, lb::PolicyKind policy, std::uint32_t actors,
                std::uint64_t tasks, int nodes) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.lb.policy = policy;
  cfg.lb.epoch_ns = 100'000;
  cfg.lb.decay_shift = 1;
  cfg.lb.max_moves_per_epoch = 3;
  cfg.lb.max_inflight = 3;
  cfg.lb.min_heat = 2 * lb::kAccessUnit;
  // Every access an actor absorbs costs kTaskComputeNs of CPU at its
  // owner, so that is the per-access benefit of moving it off an
  // overloaded node.
  cfg.lb.benefit_ns_per_access = kTaskComputeNs;
  World world(cfg);

  std::vector<std::uint64_t> actor_tasks(actors, 0);
  std::uint64_t completed = 0;
  sim::Time done_ns = 0;
  rt::AndGate all_done(tasks);

  Gva actor_base;
  const auto work = rt::register_action<std::uint32_t, rt::LcoRef>(
      world.runtime().actions(), "lb.work",
      [&](Context& c, int, std::uint32_t actor, rt::LcoRef cont) {
        c.charge(kTaskComputeNs);
        ++actor_tasks[actor];
        ++completed;
        all_done.arrive(c.now());
        c.set_lco(cont);
      });

  world.spawn(0, [&](Context& ctx) -> Fiber {
    actor_base = alloc_local(ctx, actors, kActorState);

    const std::uint64_t per_rank = tasks / static_cast<std::uint64_t>(ctx.ranks());
    const std::uint64_t rem = tasks - per_rank * static_cast<std::uint64_t>(ctx.ranks());
    for (int r = 0; r < ctx.ranks(); ++r) {
      const std::uint64_t mine = per_rank + (r < static_cast<int>(rem) ? 1 : 0);
      ctx.spawn(r, [&, r, mine](Context& c) -> Fiber {
        util::Rng rng(42 + static_cast<std::uint64_t>(r));
        util::ZipfGenerator zipf(actors, 0.9);
        for (std::uint64_t i = 0; i < mine; ++i) {
          const auto actor = static_cast<std::uint32_t>(zipf.sample(rng));
          const Gva addr = actor_base.advanced(
              static_cast<std::int64_t>(actor) * kActorState, kActorState);
          rt::Event task_done;
          const rt::LcoRef ref = c.make_ref(task_done);
          co_await apply(c, addr, work, rt::pack_args(actor, ref));
          co_await task_done;
          c.release_ref(ref);
        }
      });
    }
    co_await all_done;
    done_ns = ctx.now();
  });
  world.run();

  std::vector<std::uint64_t> final_load(static_cast<std::size_t>(nodes), 0);
  for (std::uint32_t a = 0; a < actors; ++a) {
    const Gva addr =
        actor_base.advanced(static_cast<std::int64_t>(a) * kActorState, kActorState);
    final_load[static_cast<std::size_t>(world.gas().owner_of(addr).first)] +=
        actor_tasks[a];
  }
  LbResult out;
  out.makespan_ms = static_cast<double>(done_ns) / 1e6;
  out.migrations = world.counters().lb_migrations;
  out.rejected = world.counters().lb_rejected_cost;
  out.imbalance = static_cast<double>(
                      *std::max_element(final_load.begin(), final_load.end())) /
                  (static_cast<double>(tasks) / nodes);
  out.trace_hash = world.engine().trace_hash();
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto actors = static_cast<std::uint32_t>(opt.get_uint("actors", 48));
  const std::uint64_t tasks = opt.get_uint("tasks", 1200);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const std::string out_path = opt.get("out", "BENCH_loadbalance.json");

  print_header("R-F6", "skewed actor workload: makespan across lb policies");

  struct Cfg {
    const char* name;
    nvgas::GasMode mode;
    nvgas::lb::PolicyKind policy;
  };
  using PK = nvgas::lb::PolicyKind;
  const Cfg cfgs[] = {
      {"pgas     none", nvgas::GasMode::kPgas, PK::kNone},
      {"pgas     hysteresis", nvgas::GasMode::kPgas, PK::kHysteresis},
      {"agas-sw  none", nvgas::GasMode::kAgasSw, PK::kNone},
      {"agas-sw  greedy", nvgas::GasMode::kAgasSw, PK::kGreedy},
      {"agas-sw  hysteresis", nvgas::GasMode::kAgasSw, PK::kHysteresis},
      {"agas-sw  diffusive", nvgas::GasMode::kAgasSw, PK::kDiffusive},
      {"agas-net none", nvgas::GasMode::kAgasNet, PK::kNone},
      {"agas-net greedy", nvgas::GasMode::kAgasNet, PK::kGreedy},
      {"agas-net hysteresis", nvgas::GasMode::kAgasNet, PK::kHysteresis},
      {"agas-net diffusive", nvgas::GasMode::kAgasNet, PK::kDiffusive},
  };

  nvgas::util::Table t("actor workload makespan");
  t.columns({"config", "makespan (ms)", "lb moves", "cost-rejected",
             "task imbalance"});
  std::vector<LbResult> results;
  for (const auto& c : cfgs) {
    const LbResult r = run_lb(c.mode, c.policy, actors, tasks, nodes);
    results.push_back(r);
    t.cell(c.name)
        .cell(r.makespan_ms, 2)
        .cell(r.migrations)
        .cell(r.rejected)
        .cell(r.imbalance, 2)
        .end_row();
  }
  t.print(std::cout);

  const bool pgas_inert = results[0].trace_hash == results[1].trace_hash;
  std::printf("\npgas inert check: none vs hysteresis trace hash %s "
              "(0x%016llx vs 0x%016llx)\n",
              pgas_inert ? "IDENTICAL" : "DIVERGED",
              static_cast<unsigned long long>(results[0].trace_hash),
              static_cast<unsigned long long>(results[1].trace_hash));
  std::printf(
      "Expected shape: immobile configs pay the full placement skew;\n"
      "every active policy repairs it; hysteresis matches greedy's\n"
      "makespan with strictly fewer migrations (threshold + cooldown);\n"
      "diffusive converges with neighbor-only information.\n");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"loadbalance\",\n"
               "  \"actors\": %u,\n  \"tasks\": %llu,\n  \"nodes\": %d,\n"
               "  \"configs\": [\n",
               actors, static_cast<unsigned long long>(tasks), nodes);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LbResult& r = results[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"policy\": \"%s\", "
                 "\"makespan_ms\": %.3f, \"lb_migrations\": %llu, "
                 "\"cost_rejected\": %llu, \"imbalance\": %.3f, "
                 "\"trace_hash\": \"0x%016llx\"}%s\n",
                 mode_name(cfgs[i].mode), nvgas::lb::to_string(cfgs[i].policy),
                 r.makespan_ms, static_cast<unsigned long long>(r.migrations),
                 static_cast<unsigned long long>(r.rejected), r.imbalance,
                 static_cast<unsigned long long>(r.trace_hash),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pgas_inert\": %s\n}\n",
               pgas_inert ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return pgas_inert ? 0 : 1;
}
