// R-T1 — translation-path cost breakdown.
//
// Measures the end-to-end latency of an 8-byte memget on each
// translation path and isolates the path cost by subtracting the raw
// one-sided RMA floor (measured with a direct endpoint get). The rows the
// paper's table reports: arithmetic PGAS, software cache hit, software
// cache miss (directory round trip on the home CPU), NIC TLB hit, and
// NIC forward after a migration.
#include "common.hpp"

namespace nvgas::bench {
namespace {

struct Probe {
  double total_ns = 0;      // end-to-end memget latency
  std::uint64_t messages = 0;
  std::uint64_t cpu_tasks_home = 0;  // CPU tasks the HOME rank ran
};

// Median-of-k single-op memget latency under a prepared state.
Probe measure(GasMode mode, bool stale_after_migration) {
  Config cfg = Config::with_nodes(4, mode);
  World world(cfg);
  util::Samples samples;
  std::uint64_t msgs = 0;
  std::uint64_t home_tasks = 0;
  int home_rank = -1;

  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, 4, 4096);
    // Pick the block homed on rank 1 (issuer is rank 0 → always remote).
    Gva addr = base;
    while (addr.home(ctx.ranks()) != 1) addr = addr.advanced(4096, 4096);
    home_rank = 1;
    co_await memput_value<std::uint64_t>(ctx, addr, 42);  // data + warm

    if (stale_after_migration) {
      // Make rank 0's translation stale: move the block to rank 2 via a
      // fiber on rank 3 (so rank 0's cache/TLB is not repaired).
      rt::Event moved;
      const rt::LcoRef mref = ctx.make_ref(moved);
      ctx.spawn(3, [addr, mref](Context& c) -> Fiber {
        co_await migrate(c, addr, 2);
        c.set_lco(mref);
      });
      co_await moved;
    }

    for (int i = 0; i < 9; ++i) {
      const auto msgs_before = world.counters().messages_sent;
      const auto tasks_before = world.fabric().cpu(1).tasks_run();
      const sim::Time t0 = ctx.now();
      (void)co_await memget_value<std::uint64_t>(ctx, addr);
      samples.add(static_cast<double>(ctx.now() - t0));
      msgs = world.counters().messages_sent - msgs_before;
      home_tasks = world.fabric().cpu(1).tasks_run() - tasks_before;
      if (stale_after_migration && mode == GasMode::kAgasSw) {
        // Re-stale the cache for the next iteration is impossible without
        // another migration; measure once and stop.
        break;
      }
      if (stale_after_migration && mode == GasMode::kAgasNet) break;
    }
    (void)home_rank;
  });
  world.run();

  Probe p;
  p.total_ns = samples.median();
  p.messages = msgs;
  p.cpu_tasks_home = home_tasks;
  return p;
}

Probe measure_warm(GasMode mode) { return measure(mode, false); }

Probe measure_cold(GasMode mode) {
  // Cold translation state at the issuer: measure the very first access
  // (no warmup). We emulate by accessing a *different* never-touched
  // block.
  Config cfg = Config::with_nodes(4, mode);
  World world(cfg);
  util::Samples samples;
  std::uint64_t msgs = 0;
  std::uint64_t home_tasks = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, 64, 4096);
    // Collect the blocks homed on rank 1, never touched before.
    std::vector<Gva> victims;
    for (int b = 0; b < 64; ++b) {
      const Gva a = base.advanced(b * 4096, 4096);
      if (a.home(ctx.ranks()) == 1) victims.push_back(a);
    }
    for (std::size_t i = 0; i < 9 && i < victims.size(); ++i) {
      const auto msgs_before = world.counters().messages_sent;
      const auto tasks_before = world.fabric().cpu(1).tasks_run();
      const sim::Time t0 = ctx.now();
      (void)co_await memget_value<std::uint64_t>(ctx, victims[i]);
      samples.add(static_cast<double>(ctx.now() - t0));
      msgs = world.counters().messages_sent - msgs_before;
      home_tasks = world.fabric().cpu(1).tasks_run() - tasks_before;
    }
  });
  world.run();
  Probe p;
  p.total_ns = samples.median();
  p.messages = msgs;
  p.cpu_tasks_home = home_tasks;
  return p;
}

}  // namespace
}  // namespace nvgas::bench

int main() {
  using namespace nvgas::bench;
  print_header("R-T1", "translation-path cost breakdown (8 B memget, 4 nodes)");

  const Probe pgas = measure_warm(nvgas::GasMode::kPgas);
  const Probe sw_hit = measure_warm(nvgas::GasMode::kAgasSw);
  const Probe sw_miss = measure_cold(nvgas::GasMode::kAgasSw);
  const Probe net_hit = measure_warm(nvgas::GasMode::kAgasNet);
  const Probe net_cold = measure_cold(nvgas::GasMode::kAgasNet);
  const Probe sw_stale = measure(nvgas::GasMode::kAgasSw, true);
  const Probe net_stale = measure(nvgas::GasMode::kAgasNet, true);

  nvgas::util::Table t("per-path memget latency");
  t.columns({"path", "latency", "vs PGAS", "wire msgs", "home CPU tasks"});
  auto row = [&](const char* name, const Probe& p) {
    t.cell(name)
        .cell(nvgas::util::format_ns(p.total_ns))
        .cell(p.total_ns >= pgas.total_ns
                  ? "+" + nvgas::util::format_ns(p.total_ns - pgas.total_ns)
                  : "-")
        .cell(p.messages)
        .cell(p.cpu_tasks_home)
        .end_row();
  };
  row("pgas (arithmetic)", pgas);
  row("agas-sw  cache hit", sw_hit);
  row("agas-sw  cache miss (dir RTT)", sw_miss);
  row("agas-sw  stale (inv+miss)", sw_stale);
  row("agas-net TLB hit", net_hit);
  row("agas-net TLB miss (home-owned)", net_cold);
  row("agas-net stale (NIC forward)", net_stale);
  t.print(std::cout);

  std::printf(
      "\nExpected shape: sw-hit ≈ pgas + ~cache cost; sw-miss adds a full\n"
      "directory round trip THROUGH THE HOME CPU; net-hit ≈ pgas + TLB;\n"
      "net-miss/stale add wire hops but zero CPU tasks anywhere.\n");
  return 0;
}
