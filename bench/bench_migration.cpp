// R-F4 — migration cost vs block size, and the post-migration
// first-access penalty.
//
// Two series per mobile manager:
//   (a) end-to-end migration latency as the block grows (linear in size
//       for both; AGAS-SW adds sharer invalidation round trips),
//   (b) the first access from a rank holding a stale translation after
//       the move (SW: invalidation already cleared the cache → miss +
//       directory RTT; NET: one NIC forward hop).
#include "common.hpp"

namespace nvgas::bench {
namespace {

struct MigProbe {
  double migrate_ns = 0;
  double stale_access_ns = 0;
  double warm_access_ns = 0;
};

MigProbe probe(GasMode mode, std::uint32_t block_size, int sharers) {
  Config cfg = Config::with_nodes(8, mode);
  cfg.machine.mem_bytes_per_node = 64u << 20;
  World world(cfg);
  MigProbe out;

  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva block = alloc_cyclic(ctx, 1, block_size);
    co_await memput_value<std::uint64_t>(ctx, block, 7);

    // Prime `sharers` ranks with warm translations (they become the
    // invalidation targets for AGAS-SW).
    if (sharers > 0) {
      rt::AndGate warm(static_cast<std::uint64_t>(sharers));
      const rt::LcoRef wref = ctx.make_ref(warm);
      for (int s = 0; s < sharers; ++s) {
        ctx.spawn(2 + s, [block, wref](Context& c) -> Fiber {
          (void)co_await memget_value<std::uint64_t>(c, block);
          c.set_lco(wref);
        });
      }
      co_await warm;
    }

    // Warm access baseline from rank 2.
    rt::Future<std::uint64_t> warm_lat;
    const rt::LcoRef wl = ctx.make_ref(warm_lat);
    ctx.spawn(2, [block, wl](Context& c) -> Fiber {
      const sim::Time t0 = c.now();
      (void)co_await memget_value<std::uint64_t>(c, block);
      util::Buffer b;
      b.put<std::uint64_t>(c.now() - t0);
      c.set_lco(wl, std::move(b));
    });
    out.warm_access_ns = static_cast<double>(co_await warm_lat);

    // Timed migration home → rank 5.
    const sim::Time m0 = ctx.now();
    co_await migrate(ctx, block, 5);
    out.migrate_ns = static_cast<double>(ctx.now() - m0);

    // First access from rank 2, whose translation is now stale (NET) or
    // invalidated (SW).
    rt::Future<std::uint64_t> stale_lat;
    const rt::LcoRef sl = ctx.make_ref(stale_lat);
    ctx.spawn(2, [block, sl](Context& c) -> Fiber {
      const sim::Time t0 = c.now();
      (void)co_await memget_value<std::uint64_t>(c, block);
      util::Buffer b;
      b.put<std::uint64_t>(c.now() - t0);
      c.set_lco(sl, std::move(b));
    });
    out.stale_access_ns = static_cast<double>(co_await stale_lat);
  });
  world.run();
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto sizes =
      opt.get_uint_list("sizes", {4096, 16384, 65536, 262144, 1048576 / 2});
  const int sharers = static_cast<int>(opt.get_int("sharers", 4));

  print_header("R-F4", "migration latency vs block size + stale-access penalty");

  nvgas::util::Table t("block migration");
  t.columns({"block", "sw migrate", "net migrate", "sw stale acc", "net stale acc",
             "warm acc"});
  for (const auto size : sizes) {
    const auto s32 = static_cast<std::uint32_t>(size);
    const MigProbe sw = probe(nvgas::GasMode::kAgasSw, s32, sharers);
    const MigProbe net = probe(nvgas::GasMode::kAgasNet, s32, sharers);
    t.cell(nvgas::util::format_bytes(size))
        .cell(nvgas::util::format_ns(sw.migrate_ns))
        .cell(nvgas::util::format_ns(net.migrate_ns))
        .cell(nvgas::util::format_ns(sw.stale_access_ns))
        .cell(nvgas::util::format_ns(net.stale_access_ns))
        .cell(nvgas::util::format_ns(net.warm_access_ns))
        .end_row();
  }
  t.print(std::cout);

  // Sharer sweep at fixed size: SW migration cost grows with the sharer
  // count (invalidation round trips); NET is sharer-oblivious.
  nvgas::util::Table t2("migration latency vs sharer count (64 KiB block)");
  t2.columns({"sharers", "agas-sw", "agas-net"});
  for (int s : {0, 1, 2, 4, 6}) {
    const MigProbe sw = probe(nvgas::GasMode::kAgasSw, 65536, s);
    const MigProbe net = probe(nvgas::GasMode::kAgasNet, 65536, s);
    t2.cell(static_cast<std::int64_t>(s))
        .cell(nvgas::util::format_ns(sw.migrate_ns))
        .cell(nvgas::util::format_ns(net.migrate_ns))
        .end_row();
  }
  t2.print(std::cout);

  std::printf(
      "\nExpected shape: both migrate in O(size); SW adds sharer-count-\n"
      "proportional invalidation cost; post-move stale access: SW pays a\n"
      "directory round trip, NET pays one forwarded hop (≈ warm + 1 wire).\n");
  return 0;
}
