// S-7 (supplementary) — service continuity during migration churn: a
// random-access workload's throughput time-series while blocks migrate
// underneath it. The paper's operational claim is that NIC-managed
// migration perturbs running traffic far less than the software
// protocol (whose invalidation storms and directory queuing stall
// concurrent accesses).
#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr sim::Time kWindowNs = 100'000;            // 100 us buckets
constexpr sim::Time kRunNs = 2'000'000;             // 2 ms total
constexpr sim::Time kChurnStartNs = 600'000;        // churn in [0.6, 1.4] ms
constexpr sim::Time kChurnEndNs = 1'400'000;
constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kBlockSize = 4096;

std::vector<double> run_timeline(GasMode mode, bool with_churn) {
  Config cfg = Config::with_nodes(8, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  if (with_churn) {
    // An lb::Balancer tuned to storm: zero-threshold greedy on a 3 µs
    // epoch keeps chasing the stochastic heat gaps of a uniform random
    // workload, so blocks migrate continuously while the window is
    // enabled — the rebalancing-storm shape the old hand-rolled churn
    // fibers produced, now driven through the real subsystem.
    cfg.lb.policy = lb::PolicyKind::kGreedy;
    cfg.lb.epoch_ns = 3'000;
    cfg.lb.decay_shift = 1;
    cfg.lb.max_moves_per_epoch = 4;
    cfg.lb.max_inflight = 4;
    cfg.lb.min_heat = 0;
    cfg.lb.benefit_ns_per_access = 1'000'000;  // disarm the cost gate
  }
  World world(cfg);
  if (world.balancer() != nullptr) world.balancer()->set_enabled(false);

  std::vector<std::uint64_t> window_ops(kRunNs / kWindowNs + 2, 0);
  const std::uint64_t words =
      static_cast<std::uint64_t>(kBlocks) * kBlockSize / 8;

  Gva table;
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) table = alloc_cyclic(ctx, kBlocks, kBlockSize);
    co_await world.coll().barrier(ctx);

    if (with_churn && ctx.rank() == 7 && world.balancer() != nullptr &&
        world.balancer()->active()) {
      ctx.spawn(7, [&](Context& c) -> Fiber {
        co_await c.sleep(kChurnStartNs);
        world.balancer()->set_enabled(true);
        co_await c.sleep(kChurnEndNs - kChurnStartNs);
        world.balancer()->set_enabled(false);
      });
    }

    util::Rng rng(1000 + static_cast<std::uint64_t>(ctx.rank()));
    while (ctx.now() < kRunNs) {
      rt::AndGate gate(8);
      for (int i = 0; i < 8; ++i) {
        const auto w = static_cast<std::int64_t>(rng.below(words));
        detail::gas_of(ctx).fetch_add(
            detail::task_of(ctx), ctx.rank(),
            table.advanced(w * 8, kBlockSize), 1,
            [&window_ops, &gate](sim::Time t, std::uint64_t) {
              const auto win = t / kWindowNs;
              if (win < window_ops.size()) ++window_ops[win];
              gate.arrive(t);
            });
      }
      co_await gate;
    }
  });

  std::vector<double> rates;
  for (std::size_t w = 0; w < kRunNs / kWindowNs; ++w) {
    rates.push_back(static_cast<double>(window_ops[w]) /
                    (static_cast<double>(kWindowNs) / 1e9) / 1e6);  // M ops/s
  }
  if (with_churn) {
    std::printf("%s churn: %llu balancer migrations, %llu bounced\n",
                mode_name(mode),
                static_cast<unsigned long long>(world.counters().lb_migrations),
                static_cast<unsigned long long>(world.counters().lb_bounced));
  }
  return rates;
}

}  // namespace
}  // namespace nvgas::bench

int main() {
  using namespace nvgas::bench;
  print_header("S-7", "throughput time-series under migration churn");

  const auto pgas = run_timeline(nvgas::GasMode::kPgas, false);
  const auto sw = run_timeline(nvgas::GasMode::kAgasSw, true);
  const auto net = run_timeline(nvgas::GasMode::kAgasNet, true);

  nvgas::util::Table t("update rate per 100us window (M ops/s)");
  t.columns({"t (us)", "phase", "pgas (no churn)", "agas-sw", "agas-net",
             "net/sw"});
  for (std::size_t w = 0; w < pgas.size(); ++w) {
    const auto t_us = static_cast<std::uint64_t>(w) * 100;
    const bool churning = t_us * 1000 >= kChurnStartNs && t_us * 1000 < kChurnEndNs;
    t.cell(t_us)
        .cell(churning ? "CHURN" : "-")
        .cell(pgas[w], 2)
        .cell(sw[w], 2)
        .cell(net[w], 2)
        .cell(sw[w] > 0 ? net[w] / sw[w] : 0.0, 2)
        .end_row();
  }
  t.print(std::cout);

  // Summarize the churn-phase degradation.
  auto phase_mean = [&](const std::vector<double>& v, bool in_churn) {
    double sum = 0;
    int n = 0;
    for (std::size_t w = 0; w < v.size(); ++w) {
      const auto ns = static_cast<nvgas::sim::Time>(w) * nvgas::bench::kWindowNs;
      const bool churning = ns >= nvgas::bench::kChurnStartNs && ns < nvgas::bench::kChurnEndNs;
      if (churning == in_churn && ns >= 200'000) {  // skip warmup
        sum += v[w];
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double sw_quiet = phase_mean(sw, false);
  const double sw_churn = phase_mean(sw, true);
  const double net_quiet = phase_mean(net, false);
  const double net_churn = phase_mean(net, true);
  std::printf(
      "\nchurn-phase retention: agas-sw %.1f%%, agas-net %.1f%%\n",
      100.0 * sw_churn / sw_quiet, 100.0 * net_churn / net_quiet);
  std::printf(
      "Expected shape: both dip during churn; agas-net retains a larger\n"
      "fraction of its quiet-phase throughput (no invalidation storms, no\n"
      "directory queuing — just occasional forwarded hops).\n");
  return 0;
}
