// S-7 (supplementary) — service continuity during migration churn: a
// random-access workload's throughput time-series while blocks migrate
// underneath it. The paper's operational claim is that NIC-managed
// migration perturbs running traffic far less than the software
// protocol (whose invalidation storms and directory queuing stall
// concurrent accesses).
#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr sim::Time kWindowNs = 100'000;            // 100 us buckets
constexpr sim::Time kRunNs = 2'000'000;             // 2 ms total
constexpr sim::Time kChurnStartNs = 600'000;        // churn in [0.6, 1.4] ms
constexpr sim::Time kChurnEndNs = 1'400'000;
constexpr std::uint32_t kBlocks = 64;
constexpr std::uint32_t kBlockSize = 4096;

std::vector<double> run_timeline(GasMode mode, bool with_churn) {
  Config cfg = Config::with_nodes(8, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  World world(cfg);

  std::vector<std::uint64_t> window_ops(kRunNs / kWindowNs + 2, 0);
  const std::uint64_t words =
      static_cast<std::uint64_t>(kBlocks) * kBlockSize / 8;

  Gva table;
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) table = alloc_cyclic(ctx, kBlocks, kBlockSize);
    co_await world.coll().barrier(ctx);

    if (with_churn && ctx.rank() == 7 && world.gas().supports_migration()) {
      // Four concurrent churn fibers, one migration each every ~3 us: a
      // rebalancing storm over a small (64-block) table, so running
      // traffic constantly collides with moving blocks.
      for (int cf = 0; cf < 4; ++cf) {
        ctx.spawn(7, [&, cf](Context& c) -> Fiber {
          util::Rng rng(31 + static_cast<std::uint64_t>(cf));
          co_await c.sleep(kChurnStartNs);
          while (c.now() < kChurnEndNs) {
            const auto b = static_cast<std::int64_t>(rng.below(kBlocks));
            co_await migrate(c, table.advanced(b * kBlockSize, kBlockSize),
                             static_cast<int>(rng.below(8)));
            co_await c.sleep(3'000);
          }
        });
      }
    }

    util::Rng rng(1000 + static_cast<std::uint64_t>(ctx.rank()));
    while (ctx.now() < kRunNs) {
      rt::AndGate gate(8);
      for (int i = 0; i < 8; ++i) {
        const auto w = static_cast<std::int64_t>(rng.below(words));
        detail::gas_of(ctx).fetch_add(
            detail::task_of(ctx), ctx.rank(),
            table.advanced(w * 8, kBlockSize), 1,
            [&window_ops, &gate](sim::Time t, std::uint64_t) {
              const auto win = t / kWindowNs;
              if (win < window_ops.size()) ++window_ops[win];
              gate.arrive(t);
            });
      }
      co_await gate;
    }
  });

  std::vector<double> rates;
  for (std::size_t w = 0; w < kRunNs / kWindowNs; ++w) {
    rates.push_back(static_cast<double>(window_ops[w]) /
                    (static_cast<double>(kWindowNs) / 1e9) / 1e6);  // M ops/s
  }
  return rates;
}

}  // namespace
}  // namespace nvgas::bench

int main() {
  using namespace nvgas::bench;
  print_header("S-7", "throughput time-series under migration churn");

  const auto pgas = run_timeline(nvgas::GasMode::kPgas, false);
  const auto sw = run_timeline(nvgas::GasMode::kAgasSw, true);
  const auto net = run_timeline(nvgas::GasMode::kAgasNet, true);

  nvgas::util::Table t("update rate per 100us window (M ops/s)");
  t.columns({"t (us)", "phase", "pgas (no churn)", "agas-sw", "agas-net",
             "net/sw"});
  for (std::size_t w = 0; w < pgas.size(); ++w) {
    const auto t_us = static_cast<std::uint64_t>(w) * 100;
    const bool churning = t_us * 1000 >= kChurnStartNs && t_us * 1000 < kChurnEndNs;
    t.cell(t_us)
        .cell(churning ? "CHURN" : "-")
        .cell(pgas[w], 2)
        .cell(sw[w], 2)
        .cell(net[w], 2)
        .cell(sw[w] > 0 ? net[w] / sw[w] : 0.0, 2)
        .end_row();
  }
  t.print(std::cout);

  // Summarize the churn-phase degradation.
  auto phase_mean = [&](const std::vector<double>& v, bool in_churn) {
    double sum = 0;
    int n = 0;
    for (std::size_t w = 0; w < v.size(); ++w) {
      const auto ns = static_cast<nvgas::sim::Time>(w) * nvgas::bench::kWindowNs;
      const bool churning = ns >= nvgas::bench::kChurnStartNs && ns < nvgas::bench::kChurnEndNs;
      if (churning == in_churn && ns >= 200'000) {  // skip warmup
        sum += v[w];
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  const double sw_quiet = phase_mean(sw, false);
  const double sw_churn = phase_mean(sw, true);
  const double net_quiet = phase_mean(net, false);
  const double net_churn = phase_mean(net, true);
  std::printf(
      "\nchurn-phase retention: agas-sw %.1f%%, agas-net %.1f%%\n",
      100.0 * sw_churn / sw_quiet, 100.0 * net_churn / net_quiet);
  std::printf(
      "Expected shape: both dip during churn; agas-net retains a larger\n"
      "fraction of its quiet-phase throughput (no invalidation storms, no\n"
      "directory queuing — just occasional forwarded hops).\n");
  return 0;
}
