// R-F5 — stencil proxy application (heat2d ghost exchange), weak scaling.
//
// Row-distributed Jacobi iteration: each rank updates its rows after
// pulling neighbour rows with one-sided memgets (the ghost exchange).
// Weak scaling: rows-per-rank fixed, nodes sweep. The figure's series:
// time per iteration per manager.
#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint32_t kCols = 256;
constexpr std::uint32_t kRowBytes = kCols * sizeof(double);
constexpr std::uint32_t kRowsPerRank = 8;
constexpr int kIters = 4;

double per_iteration_ns(GasMode mode, int nodes) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.machine.mem_bytes_per_node = 64u << 20;
  World world(cfg);
  const auto n_rows = static_cast<std::uint32_t>(kRowsPerRank * nodes);

  Gva grid[2];
  util::Samples iter_times;
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) {
      grid[0] = alloc_cyclic(ctx, n_rows, kRowBytes);
      grid[1] = alloc_cyclic(ctx, n_rows, kRowBytes);
    }
    co_await world.coll().barrier(ctx);

    auto row_addr = [&](int buf, std::uint32_t r) {
      return grid[buf].advanced(static_cast<std::int64_t>(r) * kRowBytes, kRowBytes);
    };
    auto mine = [&](std::uint32_t r) {
      return row_addr(0, r).home(ctx.ranks()) == ctx.rank();
    };

    // Initialize owned rows.
    std::vector<double> init(kCols, 1.0);
    for (std::uint32_t r = 0; r < n_rows; ++r) {
      if (!mine(r)) continue;
      co_await memput(ctx, row_addr(0, r), std::as_bytes(std::span(init)));
    }
    co_await world.coll().barrier(ctx);

    for (int it = 0; it < kIters; ++it) {
      const int cur = it & 1;
      const int nxt = cur ^ 1;
      const sim::Time t0 = ctx.now();
      for (std::uint32_t r = 0; r < n_rows; ++r) {
        if (!mine(r)) continue;
        const std::uint32_t up = r == 0 ? 0 : r - 1;
        const std::uint32_t dn = r == n_rows - 1 ? n_rows - 1 : r + 1;
        const auto mid = co_await memget(ctx, row_addr(cur, r), kRowBytes);
        const auto rup = co_await memget(ctx, row_addr(cur, up), kRowBytes);
        const auto rdn = co_await memget(ctx, row_addr(cur, dn), kRowBytes);
        const auto* m = reinterpret_cast<const double*>(mid.data());
        const auto* u = reinterpret_cast<const double*>(rup.data());
        const auto* d = reinterpret_cast<const double*>(rdn.data());
        std::vector<double> out(kCols);
        for (std::uint32_t c2 = 0; c2 < kCols; ++c2) {
          const double l = m[c2 == 0 ? 0 : c2 - 1];
          const double rr = m[c2 == kCols - 1 ? kCols - 1 : c2 + 1];
          out[c2] = m[c2] + 0.2 * (l + rr + u[c2] + d[c2] - 4 * m[c2]);
        }
        ctx.charge(kCols * 4);
        co_await memput(ctx, row_addr(nxt, r), std::as_bytes(std::span(out)));
      }
      co_await world.coll().barrier(ctx);
      if (ctx.rank() == 0) iter_times.add(static_cast<double>(ctx.now() - t0));
    }
  });
  return iter_times.median();
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto node_counts = opt.get_uint_list("nodes", {2, 4, 8, 16});

  print_header("R-F5", "stencil (heat2d) time per iteration, weak scaling");

  nvgas::util::Table t("time per Jacobi iteration");
  t.columns({"nodes", "grid", "pgas", "agas-sw", "agas-net", "net/pgas"});
  for (const auto n : node_counts) {
    const int nodes = static_cast<int>(n);
    const double p = per_iteration_ns(nvgas::GasMode::kPgas, nodes);
    const double s = per_iteration_ns(nvgas::GasMode::kAgasSw, nodes);
    const double net = per_iteration_ns(nvgas::GasMode::kAgasNet, nodes);
    char grid[32];
    std::snprintf(grid, sizeof grid, "%ux%u", kRowsPerRank * nodes, kCols);
    t.cell(n)
        .cell(grid)
        .cell(nvgas::util::format_ns(p))
        .cell(nvgas::util::format_ns(s))
        .cell(nvgas::util::format_ns(net))
        .cell(net / p, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: regular communication = warm caches for everyone;\n"
      "net/pgas ≈ 1 throughout — AGAS mobility costs nothing when unused.\n");
  return 0;
}
