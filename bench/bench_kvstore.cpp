// R-S9 (supplementary) — kvstore SLO under skewed open-loop load.
//
// The apps/kvstore subsystem serves a Zipf-skewed, diurnally-modulated
// open-loop client stream (millions of simulated clients aggregated per
// edge node) on top of the GAS under test. The sweep crosses address-
// space mode x lb policy x fault plan x key skew; at mid-run the client
// hot set rotates by half the keyspace (the churn driver), and the
// harness reports served-latency quantiles (p50/p99/p999), within-SLO
// goodput, and SLO retention — the churn-window goodput relative to the
// quiet baseline, extending the S-7 throughput-retention methodology to
// "requests served within the SLO target".
//
// The binary is also a correctness gate, exiting nonzero if:
//   - any cell answers fewer requests than were issued, or any GET
//     returns a torn value (whole-value atomicity across migration);
//   - with -DNVGAS_PARALLEL=ON, the sharded engine's trace hash at any
//     swept thread count diverges from the threads=1 baseline for the
//     same workload (serial-vs-parallel divergence).
//
// Results land in BENCH_kvstore.json (cwd) for cross-PR tracking.
//
// Usage: bench_kvstore [--quick] [--out=BENCH_kvstore.json]
//                      [--sweep-modes=all] [--sweep-threads=1,4]
//                      [--nodes=8] [--rate=1e6 ops/s/node]
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "kvstore/harness.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace nvgas::bench {
namespace {

using apps::kv::KvRunConfig;
using apps::kv::KvRunResult;

const char* policy_name(lb::PolicyKind p) {
  return p == lb::PolicyKind::kNone ? "none" : "hysteresis";
}

KvRunConfig base_config(int nodes, double rate, bool quick) {
  KvRunConfig rc;
  rc.nodes = nodes;
  rc.kv.buckets = 64;
  rc.client.keyspace = 1 << 12;
  rc.client.rate_per_node = rate;
  rc.client.t_start = 50'000;
  rc.client.duration = quick ? 400'000 : 1'500'000;
  rc.client.t_shift = rc.client.t_start + rc.client.duration / 2;
  rc.churn_duration = quick ? 150'000 : 500'000;
  // A flash crowd rides on the diurnal peak in the churn phase.
  rc.client.flash_begin = rc.client.t_shift;
  rc.client.flash_end = rc.client.t_shift + rc.churn_duration / 2;
  rc.client.flash_mult = 1.5;
  return rc;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const bool quick = opt.has("quick");
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const double rate = opt.get_double("rate", quick ? 4.0e5 : 6.0e5);
  const std::string out_path = opt.get("out", "BENCH_kvstore.json");
  const SweepSpec sweep =
      parse_sweep(opt, {.modes = "all", .nodes = {}, .threads = {1, 4}});

  print_header("R-S9",
               "kvstore SLO under Zipf load, hot-set churn and faults");

  const double skews[] = {0.5, 1.1};
  const nvgas::lb::PolicyKind policies[] = {nvgas::lb::PolicyKind::kNone,
                                            nvgas::lb::PolicyKind::kHysteresis};

  nvgas::util::Table t(
      "open-loop Zipf clients; SLO = GETs served within 150 us");
  t.columns({"mode", "lb", "wire", "zipf s", "issued", "p50 get", "p99 get",
             "p999 get", "goodput (Mop/s)", "retention", "moves", "torn"});

  struct Row {
    nvgas::GasMode mode;
    nvgas::lb::PolicyKind policy;
    bool lossy;
    double skew;
    KvRunResult r;
  };
  std::vector<Row> rows;
  bool gate_ok = true;
  std::string gate_msg;

  for (const nvgas::GasMode mode : sweep.modes) {
    for (const auto policy : policies) {
      for (const bool lossy : {false, true}) {
        for (const double skew : skews) {
          KvRunConfig rc = base_config(nodes, rate, quick);
          rc.mode = mode;
          rc.policy = policy;
          rc.lossy = lossy;
          rc.client.zipf_s = skew;
          const KvRunResult r = nvgas::apps::kv::run_kv(rc);
          rows.push_back({mode, policy, lossy, skew, r});
          t.cell(mode_name(mode))
              .cell(policy_name(policy))
              .cell(lossy ? "lossy" : "clean")
              .cell(skew, 1)
              .cell(r.issued)
              .cell(nvgas::util::format_ns(static_cast<double>(r.slo.get.p50)))
              .cell(nvgas::util::format_ns(static_cast<double>(r.slo.get.p99)))
              .cell(nvgas::util::format_ns(static_cast<double>(r.slo.get.p999)))
              .cell(r.slo.goodput_ops_per_sec / 1e6, 3)
              .cell(r.slo.slo_retention, 3)
              .cell(r.lb_migrations)
              .cell(r.torn)
              .end_row();
          if (r.completed != r.issued) {
            gate_ok = false;
            gate_msg = nvgas::util::format(
                "%s/%s/%s: %llu of %llu requests answered",
                mode_name(mode), policy_name(policy),
                lossy ? "lossy" : "clean",
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.issued));
          }
          if (r.torn != 0) {
            gate_ok = false;
            gate_msg = nvgas::util::format(
                "%s/%s: %llu torn GET responses", mode_name(mode),
                policy_name(policy), static_cast<unsigned long long>(r.torn));
          }
        }
      }
    }
  }
  t.print(std::cout);

  // Serial-vs-parallel divergence gate: the identical workload on the
  // sharded engine must trace-hash the same at every swept thread count.
  bool hash_ok = true;
  if (nvgas::sim::Engine::kParallelEnabled && sweep.threads.size() > 1) {
    for (const nvgas::GasMode mode : sweep.modes) {
      KvRunConfig rc = base_config(nodes, quick ? 2.0e5 : 4.0e5, true);
      rc.mode = mode;
      rc.policy = nvgas::lb::PolicyKind::kHysteresis;
      rc.threads = static_cast<int>(sweep.threads[0]);
      const KvRunResult base = nvgas::apps::kv::run_kv(rc);
      for (std::size_t i = 1; i < sweep.threads.size(); ++i) {
        rc.threads = static_cast<int>(sweep.threads[i]);
        const KvRunResult r = nvgas::apps::kv::run_kv(rc);
        const bool same = r.trace_hash == base.trace_hash;
        hash_ok = hash_ok && same;
        if (!same) {
          std::fprintf(stderr,
                       "bench_kvstore: %s threads=%d hash 0x%016llx != "
                       "threads=%d 0x%016llx\n",
                       mode_name(mode), static_cast<int>(sweep.threads[i]),
                       static_cast<unsigned long long>(r.trace_hash),
                       static_cast<int>(sweep.threads[0]),
                       static_cast<unsigned long long>(base.trace_hash));
        }
      }
    }
    std::printf("parallel hash gate: %s (threads %llu vs %llu per mode)\n",
                hash_ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(sweep.threads[0]),
                static_cast<unsigned long long>(sweep.threads.back()));
  }

  std::printf(
      "\nExpected shape: higher skew concentrates heat and blows up the\n"
      "tail; at s=1.1 migration cost decides whether balancing pays, so\n"
      "hysteresis beats `none` on within-SLO goodput under agas-net\n"
      "(network-managed moves are cheap) but loses under agas-sw (each\n"
      "move stalls traffic on a software invalidation fence). At low\n"
      "skew the hot-set rotation dents attainment slightly (retention\n"
      "<= 1); at high skew the quiet phase is already tail-bound on the\n"
      "hot node, so rotation plus rebalancing can lift it above 1. The\n"
      "lossy wire pays with tail latency, never lost or torn responses.\n");
  std::printf("completion/atomicity gate: %s%s%s\n", gate_ok ? "ok" : "FAILED",
              gate_ok ? "" : " — ", gate_ok ? "" : gate_msg.c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"kvstore\",\n  \"nodes\": %d,\n"
               "  \"rate_per_node\": %.0f,\n  \"slo_target_ns\": 150000,\n"
               "  \"cells\": [\n",
               nodes, rate);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"lb\": \"%s\", \"wire\": \"%s\", "
        "\"zipf_s\": %.1f, \"issued\": %llu, \"completed\": %llu, "
        "\"get_p50_ns\": %llu, \"get_p99_ns\": %llu, \"get_p999_ns\": %llu, "
        "\"put_p99_ns\": %llu, \"goodput_ops_per_sec\": %.0f, "
        "\"slo_retention\": %.4f, \"migrations\": %llu, \"torn\": %llu, "
        "\"expirations\": %llu}%s\n",
        mode_name(row.mode), policy_name(row.policy),
        row.lossy ? "lossy" : "clean", row.skew,
        static_cast<unsigned long long>(row.r.issued),
        static_cast<unsigned long long>(row.r.completed),
        static_cast<unsigned long long>(row.r.slo.get.p50),
        static_cast<unsigned long long>(row.r.slo.get.p99),
        static_cast<unsigned long long>(row.r.slo.get.p999),
        static_cast<unsigned long long>(row.r.slo.put.p99),
        row.r.slo.goodput_ops_per_sec, row.r.slo.slo_retention,
        static_cast<unsigned long long>(row.r.lb_migrations),
        static_cast<unsigned long long>(row.r.torn),
        static_cast<unsigned long long>(row.r.server.expirations),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"completion_gate\": %s,\n  \"hash_gate\": %s\n}\n",
               gate_ok ? "true" : "false", hash_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return gate_ok && hash_ok ? 0 : 1;
}
