// S-1 (supplementary) — collective algorithm comparison: flat
// (root-counted) vs binomial tree, barrier and allreduce latency vs node
// count. Not a table from the original evaluation; supports the runtime
// substrate's fidelity (the crossover where root serialization overtakes
// tree depth).
#include "common.hpp"

namespace nvgas::bench {
namespace {

double collective_latency(rt::CollAlgo algo, int nodes, bool reduce) {
  Config cfg = Config::with_nodes(nodes, GasMode::kPgas);
  cfg.machine.mem_bytes_per_node = 1 << 20;
  cfg.coll_algo = algo;
  World world(cfg);
  constexpr int kReps = 6;
  util::Samples samples;
  world.run_spmd([&](Context& ctx) -> Fiber {
    for (int i = 0; i < kReps; ++i) {
      const sim::Time t0 = ctx.now();
      if (reduce) {
        (void)co_await world.coll().allreduce_sum(ctx, 1.0);
      } else {
        co_await world.coll().barrier(ctx);
      }
      if (ctx.rank() == 0) samples.add(static_cast<double>(ctx.now() - t0));
    }
  });
  return samples.median();
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto node_counts = opt.get_uint_list("nodes", {4, 16, 64, 128, 256});

  print_header("S-1", "collective algorithms: flat vs binomial tree");

  nvgas::util::Table t("latency per collective");
  t.columns({"nodes", "barrier flat", "barrier tree", "allreduce flat",
             "allreduce tree", "tree/flat (barrier)"});
  for (const auto n : node_counts) {
    const int nodes = static_cast<int>(n);
    const double bf = collective_latency(nvgas::rt::CollAlgo::kFlat, nodes, false);
    const double bt = collective_latency(nvgas::rt::CollAlgo::kTree, nodes, false);
    const double rf = collective_latency(nvgas::rt::CollAlgo::kFlat, nodes, true);
    const double rt2 = collective_latency(nvgas::rt::CollAlgo::kTree, nodes, true);
    t.cell(n)
        .cell(nvgas::util::format_ns(bf))
        .cell(nvgas::util::format_ns(bt))
        .cell(nvgas::util::format_ns(rf))
        .cell(nvgas::util::format_ns(rt2))
        .cell(bt / bf, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: flat wins at small scale (lower depth); the tree\n"
      "wins past the point where the root's serialized fan-in dominates.\n");
  return 0;
}
