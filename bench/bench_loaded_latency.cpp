// S-5 (supplementary) — loaded latency: per-op latency vs offered load
// (window depth), the classic network-evaluation curve. As the window
// grows, throughput rises until a resource saturates; past that point
// latency climbs with queueing. The managers differ in WHICH resource
// saturates first: PGAS/AGAS-NET queue on NIC ports and command
// processors; AGAS-SW's misses queue on the home CPUs as well.
#include "common.hpp"

namespace nvgas::bench {
namespace {

struct LoadPoint {
  double avg_latency_ns = 0;
  double rate = 0;  // ops/s
};

LoadPoint measure(GasMode mode, std::uint64_t window, std::size_t sw_cache) {
  Config cfg = Config::with_nodes(4, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  cfg.gas_costs.sw_cache_capacity = sw_cache;
  World world(cfg);

  constexpr std::uint32_t kBlocks = 512;
  constexpr std::uint32_t kBlockSize = 4096;
  constexpr std::uint64_t kOps = 2000;
  const std::uint64_t words = static_cast<std::uint64_t>(kBlocks) * kBlockSize / 8;

  util::OnlineStats latency;
  sim::Time elapsed = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, kBlocks, kBlockSize);
    util::Rng rng(606);
    const sim::Time t0 = ctx.now();
    std::uint64_t remaining = kOps;
    while (remaining > 0) {
      const std::uint64_t batch = std::min(window, remaining);
      remaining -= batch;
      rt::AndGate gate(batch);
      const sim::Time issue_t = ctx.now();
      for (std::uint64_t i = 0; i < batch; ++i) {
        const auto w = static_cast<std::int64_t>(rng.below(words));
        detail::gas_of(ctx).fetch_add(
            detail::task_of(ctx), ctx.rank(),
            base.advanced(w * 8, kBlockSize), 1,
            [&gate, &latency, issue_t](sim::Time t, std::uint64_t) {
              latency.add(static_cast<double>(t - issue_t));
              gate.arrive(t);
            });
      }
      co_await gate;
    }
    elapsed = ctx.now() - t0;
  });
  world.run();

  LoadPoint out;
  out.avg_latency_ns = latency.mean();
  out.rate = static_cast<double>(kOps) / (static_cast<double>(elapsed) / 1e9);
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto windows = opt.get_uint_list("windows", {1, 2, 4, 8, 16, 32, 64});
  const std::size_t sw_cache = opt.get_uint("sw-cache", 256);

  print_header("S-5", "loaded latency: per-op latency & rate vs window depth");

  nvgas::util::Table t("remote fetch-add under load (4 nodes)");
  t.columns({"window", "pgas lat", "pgas rate", "agas-sw lat", "agas-sw rate",
             "agas-net lat", "agas-net rate"});
  for (const auto w : windows) {
    const LoadPoint p = measure(nvgas::GasMode::kPgas, w, sw_cache);
    const LoadPoint s = measure(nvgas::GasMode::kAgasSw, w, sw_cache);
    const LoadPoint n = measure(nvgas::GasMode::kAgasNet, w, sw_cache);
    t.cell(w)
        .cell(nvgas::util::format_ns(p.avg_latency_ns))
        .cell(nvgas::util::format_rate(p.rate))
        .cell(nvgas::util::format_ns(s.avg_latency_ns))
        .cell(nvgas::util::format_rate(s.rate))
        .cell(nvgas::util::format_ns(n.avg_latency_ns))
        .cell(nvgas::util::format_rate(n.rate))
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: rate grows with window until a port saturates, then\n"
      "latency climbs ~linearly with depth; agas-sw saturates earliest (its\n"
      "misses consume home CPU on top of the wire).\n");
  return 0;
}
