// R-F1 — memget latency vs transfer size, three address-space managers.
//
// Two-node ping: rank 0 reads `size` bytes from a block homed on rank 1,
// translation state warm. The figure's series: latency(size) per manager;
// AGAS-NET must track PGAS within a near-constant offset, and all three
// converge at large sizes where the wire dominates.
#include "common.hpp"

namespace nvgas::bench {
namespace {

double memget_latency(GasMode mode, std::uint32_t size) {
  Config cfg = Config::with_nodes(2, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  World world(cfg);
  util::Samples samples;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const std::uint32_t bsize = std::max<std::uint32_t>(size, 64);
    const Gva base = alloc_cyclic(ctx, 2, bsize);
    Gva addr = base;
    if (addr.home(ctx.ranks()) != 1) addr = addr.advanced(bsize, bsize);
    // Warm data + translation.
    std::vector<std::byte> payload(size, std::byte{0x3c});
    co_await memput(ctx, addr, payload);
    for (int i = 0; i < 7; ++i) {
      const sim::Time t0 = ctx.now();
      const auto data = co_await memget(ctx, addr, size);
      samples.add(static_cast<double>(ctx.now() - t0));
      NVGAS_CHECK(data.size() == size);
    }
  });
  world.run();
  return samples.median();
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto sizes = opt.get_uint_list(
      "sizes", {8, 64, 512, 4096, 32768, 262144, 1048576 / 2});

  print_header("R-F1", "memget latency vs size (2 nodes, warm translation)");

  nvgas::util::Table t("memget latency");
  t.columns({"size", "pgas", "agas-sw", "agas-net", "sw/pgas", "net/pgas"});
  for (const auto size : sizes) {
    const double p = memget_latency(nvgas::GasMode::kPgas,
                                    static_cast<std::uint32_t>(size));
    const double s = memget_latency(nvgas::GasMode::kAgasSw,
                                    static_cast<std::uint32_t>(size));
    const double n = memget_latency(nvgas::GasMode::kAgasNet,
                                    static_cast<std::uint32_t>(size));
    t.cell(nvgas::util::format_bytes(size))
        .cell(nvgas::util::format_ns(p))
        .cell(nvgas::util::format_ns(s))
        .cell(nvgas::util::format_ns(n))
        .cell(s / p, 3)
        .cell(n / p, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: net/pgas ≈ 1 + small constant shrinking with size;\n"
      "sw/pgas similar when warm; all ratios → 1 as the wire dominates.\n");
  return 0;
}
