// Micro-benchmarks (google-benchmark) of the host-side data structures on
// the simulator's hot paths: address codec, NIC TLB, translation cache,
// parcel codec, event engine, RNG. These measure real wall-clock cost of
// the implementation itself (not simulated time).
#include <benchmark/benchmark.h>

#include "gas/block_store.hpp"
#include "gas/gva.hpp"
#include "gas/tcache.hpp"
#include "net/nic_tlb.hpp"
#include "sim/engine.hpp"
#include "sim/memory.hpp"
#include "sim/topology.hpp"
#include "util/buffer.hpp"
#include "util/histogram.hpp"
#include "util/zipf.hpp"
#include "util/rng.hpp"

namespace {

using namespace nvgas;

void BM_GvaEncodeDecode(benchmark::State& state) {
  std::uint32_t b = 0;
  for (auto _ : state) {
    const auto g = gas::Gva::make(gas::Dist::kCyclic, 3, 17, b++ & 0xfffff, 128);
    benchmark::DoNotOptimize(g.home(64));
    benchmark::DoNotOptimize(g.block_key());
  }
}
BENCHMARK(BM_GvaEncodeDecode);

void BM_GvaAdvance(benchmark::State& state) {
  gas::Gva g = gas::Gva::make(gas::Dist::kCyclic, 1, 2, 0, 0);
  for (auto _ : state) {
    g = g.advanced(24, 4096);
    benchmark::DoNotOptimize(g);
    if (g.block() > 1000000) g = gas::Gva::make(gas::Dist::kCyclic, 1, 2, 0, 0);
  }
}
BENCHMARK(BM_GvaAdvance);

void BM_NicTlbLookupHit(benchmark::State& state) {
  net::NicTlb tlb(static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    net::TlbEntry e;
    e.owner = static_cast<int>(i % 7);
    tlb.insert(static_cast<std::uint64_t>(i) << 20, e);
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tlb.lookup((k++ % static_cast<std::uint64_t>(state.range(0))) << 20));
  }
}
BENCHMARK(BM_NicTlbLookupHit)->Arg(64)->Arg(4096)->Arg(65536);

void BM_NicTlbInsertEvict(benchmark::State& state) {
  net::NicTlb tlb(1024);
  std::uint64_t k = 0;
  net::TlbEntry e;
  e.owner = 1;
  for (auto _ : state) {
    tlb.insert((k++) << 20, e);
  }
}
BENCHMARK(BM_NicTlbInsertEvict);

void BM_TranslationCacheLookup(benchmark::State& state) {
  gas::TranslationCache cache(4096);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    cache.insert(i << 20, gas::CacheEntry{static_cast<int>(i % 5), i * 64, 0});
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup((k++ % 4096) << 20));
  }
}
BENCHMARK(BM_TranslationCacheLookup);

void BM_BufferPackUnpack(benchmark::State& state) {
  for (auto _ : state) {
    util::Buffer b;
    b.put<std::uint32_t>(7);
    b.put<std::uint64_t>(0xdeadbeef);
    b.put<double>(2.5);
    auto r = b.reader();
    benchmark::DoNotOptimize(r.get<std::uint32_t>());
    benchmark::DoNotOptimize(r.get<std::uint64_t>());
    benchmark::DoNotOptimize(r.get<double>());
  }
}
BENCHMARK(BM_BufferPackUnpack);

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 64; ++i) {
      e.at(static_cast<sim::Time>(i * 13 % 29), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.trace_hash());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_HistogramAdd(benchmark::State& state) {
  util::LogHistogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.add(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;
    v >>= 40;
    ++v;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramAdd);

void BM_RngBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000003));
  }
}
BENCHMARK(BM_RngBelow);

void BM_ZipfSample(benchmark::State& state) {
  util::Rng rng(1);
  util::ZipfGenerator zipf(static_cast<std::uint64_t>(state.range(0)), 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(64)->Arg(65536);

void BM_BlockStoreAllocateRelease(benchmark::State& state) {
  gas::BlockStore store(64u << 20);
  for (auto _ : state) {
    const auto lva = store.allocate(4096);
    benchmark::DoNotOptimize(lva);
    store.release(lva, 4096);
  }
}
BENCHMARK(BM_BlockStoreAllocateRelease);

void BM_MemoryChunkedWrite(benchmark::State& state) {
  sim::Memory mem(64u << 20);
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  sim::Lva at = 0;
  for (auto _ : state) {
    mem.write(at, data);
    at = (at + data.size()) % (48u << 20);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemoryChunkedWrite)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_TopologyHops(benchmark::State& state) {
  sim::Topology torus(sim::TopologyKind::kTorus2D, 256);
  int a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(torus.hops(a & 255, (a * 37) & 255));
    ++a;
  }
}
BENCHMARK(BM_TopologyHops);

}  // namespace

BENCHMARK_MAIN();
