// R-F3 — random-access (GUPS-style) throughput vs node count.
//
// Every rank performs windowed fetch-adds on random words of a cyclic
// table that grows with the node count (weak scaling). The figure's
// series: updates/second per manager as nodes grow. The structural
// prediction: AGAS-SW's directory traffic hits home CPUs and falls
// behind; AGAS-NET stays near PGAS at every scale.
// With --threads=1,2,4,8 it instead sweeps the conservative-parallel
// engine: the same workload per node count at each host thread count,
// reporting host events/sec, speedup vs the threads=1 serial baseline
// and whether the trace hash matched serial. The result lands as a
// "gups_threads_scaling" section spliced into BENCH_engine.json.
#include <chrono>
#include <thread>

#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint32_t kBlockSize = 4096;
constexpr std::uint64_t kWindow = 16;

struct GupsResult {
  double updates_per_sec = 0;  // simulated-time update rate
  double eps = 0;              // host wall-clock engine events/sec
  std::uint64_t hash = 0;      // engine trace hash (determinism flag)
};

GupsResult gups(GasMode mode, int nodes, std::uint64_t updates_per_rank,
                std::size_t sw_cache_capacity, int threads = 0) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  cfg.machine.threads = threads;
  cfg.gas_costs.sw_cache_capacity = sw_cache_capacity;
  World world(cfg);

  // Weak scaling: 64 blocks per rank.
  const auto nblocks = static_cast<std::uint32_t>(64 * nodes);
  const std::uint64_t words =
      static_cast<std::uint64_t>(nblocks) * kBlockSize / 8;

  Gva table;
  const auto t0 = std::chrono::steady_clock::now();
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) table = alloc_cyclic(ctx, nblocks, kBlockSize);
    co_await world.coll().barrier(ctx);
    util::Rng rng(1234567 + static_cast<std::uint64_t>(ctx.rank()));
    std::uint64_t remaining = updates_per_rank;
    while (remaining > 0) {
      const std::uint64_t batch = std::min(kWindow, remaining);
      remaining -= batch;
      rt::AndGate gate(batch);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const std::uint64_t w = rng.below(words);
        fetch_add_nb(ctx, table.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize),
                     1, gate);
      }
      co_await gate;
    }
    co_await world.coll().barrier(ctx);
  });

  const double host_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double secs = static_cast<double>(world.now()) / 1e9;
  return {static_cast<double>(updates_per_rank) * nodes / secs,
          static_cast<double>(world.engine().events_executed()) / host_secs,
          world.engine().trace_hash()};
}

// Splice a "gups_threads_scaling" section into an existing
// BENCH_engine.json (or write a standalone object when absent), so both
// engine-level and full-stack scaling rows live in one tracked file.
void write_threads_json(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* in = std::fopen(path.c_str(), "r")) {
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, in)) > 0) {
      existing.append(buf, got);
    }
    std::fclose(in);
  }
  std::string out;
  const auto old_section = existing.find("  \"gups_threads_scaling\":");
  const auto close = existing.rfind('}');
  if (old_section != std::string::npos) {
    // Replace the previous section (it is always last in the object).
    out = existing.substr(0, old_section) + section + "\n}\n";
  } else if (close != std::string::npos) {
    std::string head = existing.substr(0, close);
    while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
      head.pop_back();
    }
    out = head + ",\n" + section + "\n}\n";
  } else {
    out = "{\n" + section + "\n}\n";
  }
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
  }
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const std::uint64_t updates = opt.get_uint("updates", 2000);
  // A deliberately bounded software cache: the table working set exceeds
  // it at scale, exactly the regime where directories melt.
  const std::size_t sw_cache = opt.get_uint("sw-cache", 1024);

  if (opt.has("threads")) {
    // Host-thread scaling sweep on the conservative-parallel engine.
    if (!nvgas::sim::Engine::kParallelEnabled) {
      std::printf("bench_gups: built with NVGAS_PARALLEL=OFF; "
                  "--threads sweep unavailable\n");
      return 0;
    }
    const auto threads = opt.get_uint_list("threads", {1, 2, 4, 8});
    const auto node_counts = opt.get_uint_list("nodes", {8, 32});
    const nvgas::GasMode mode = parse_mode(opt.get("mode", "agas-net"));
    const std::string json = opt.get("json", "BENCH_engine.json");
    const unsigned host_cores = std::thread::hardware_concurrency();

    print_header("R-F3/threads", "GUPS host-thread scaling (sharded engine)");
    nvgas::util::Table t("host events/sec vs threads");
    t.columns({"nodes", "threads", "events/s", "vs-serial", "hash"});
    std::string rows;
    char line[256];
    bool first = true;
    bool all_ok = true;
    for (const auto n : node_counts) {
      const int nodes = static_cast<int>(n);
      const GupsResult serial = gups(mode, nodes, updates, sw_cache, 1);
      for (const auto th : threads) {
        const int tc = static_cast<int>(th);
        const GupsResult r =
            tc == 1 ? serial : gups(mode, nodes, updates, sw_cache, tc);
        const bool hash_ok = r.hash == serial.hash;
        t.cell(n)
            .cell(th)
            .cell(nvgas::util::format_rate(r.eps))
            .cell(r.eps / serial.eps, 3)
            .cell(hash_ok ? "ok" : "DIFF")
            .end_row();
        std::snprintf(line, sizeof line,
                      "%s    {\"nodes\": %d, \"threads\": %d, "
                      "\"events_per_sec\": %.0f, \"speedup_vs_serial\": %.3f, "
                      "\"hash_match\": %s}",
                      first ? "" : ",\n", nodes, tc, r.eps, r.eps / serial.eps,
                      hash_ok ? "true" : "false");
        rows += line;
        first = false;
        all_ok = all_ok && hash_ok;
      }
    }
    t.print(std::cout);
    char head[160];
    std::snprintf(head, sizeof head,
                  "  \"gups_threads_scaling\": {\"mode\": \"%s\", "
                  "\"host_cores\": %u, \"rows\": [\n",
                  mode_name(mode), host_cores);
    write_threads_json(json, std::string(head) + rows + "\n  ]}");
    if (!all_ok) {
      std::fprintf(stderr,
                   "bench_gups: sharded trace hash diverged from the "
                   "threads=1 baseline\n");
      return 1;
    }
    return 0;
  }

  const auto node_counts = opt.get_uint_list("nodes", {2, 4, 8, 16, 32});
  print_header("R-F3", "random-access throughput vs nodes (weak scaling)");

  nvgas::util::Table t("GUPS-style update rate");
  t.columns({"nodes", "pgas", "agas-sw", "agas-net", "net/pgas", "net/sw"});
  for (const auto n : node_counts) {
    const int nodes = static_cast<int>(n);
    const double p =
        gups(nvgas::GasMode::kPgas, nodes, updates, sw_cache).updates_per_sec;
    const double s =
        gups(nvgas::GasMode::kAgasSw, nodes, updates, sw_cache).updates_per_sec;
    const double net =
        gups(nvgas::GasMode::kAgasNet, nodes, updates, sw_cache).updates_per_sec;
    t.cell(n)
        .cell(nvgas::util::format_rate(p))
        .cell(nvgas::util::format_rate(s))
        .cell(nvgas::util::format_rate(net))
        .cell(net / p, 3)
        .cell(net / s, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: net/pgas stays ≈ 1 at every node count; net/sw\n"
      "grows with scale as software cache misses route through home CPUs.\n");
  return 0;
}
