// R-F3 — random-access (GUPS-style) throughput vs node count.
//
// Every rank performs windowed fetch-adds on random words of a cyclic
// table that grows with the node count (weak scaling). The figure's
// series: updates/second per manager as nodes grow. The structural
// prediction: AGAS-SW's directory traffic hits home CPUs and falls
// behind; AGAS-NET stays near PGAS at every scale.
#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint32_t kBlockSize = 4096;
constexpr std::uint64_t kWindow = 16;

double gups(GasMode mode, int nodes, std::uint64_t updates_per_rank,
            std::size_t sw_cache_capacity) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  cfg.gas_costs.sw_cache_capacity = sw_cache_capacity;
  World world(cfg);

  // Weak scaling: 64 blocks per rank.
  const auto nblocks = static_cast<std::uint32_t>(64 * nodes);
  const std::uint64_t words =
      static_cast<std::uint64_t>(nblocks) * kBlockSize / 8;

  Gva table;
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) table = alloc_cyclic(ctx, nblocks, kBlockSize);
    co_await world.coll().barrier(ctx);
    util::Rng rng(1234567 + static_cast<std::uint64_t>(ctx.rank()));
    std::uint64_t remaining = updates_per_rank;
    while (remaining > 0) {
      const std::uint64_t batch = std::min(kWindow, remaining);
      remaining -= batch;
      rt::AndGate gate(batch);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const std::uint64_t w = rng.below(words);
        fetch_add_nb(ctx, table.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize),
                     1, gate);
      }
      co_await gate;
    }
    co_await world.coll().barrier(ctx);
  });

  const double secs = static_cast<double>(world.now()) / 1e9;
  return static_cast<double>(updates_per_rank) * nodes / secs;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto node_counts = opt.get_uint_list("nodes", {2, 4, 8, 16, 32});
  const std::uint64_t updates = opt.get_uint("updates", 2000);
  // A deliberately bounded software cache: the table working set exceeds
  // it at scale, exactly the regime where directories melt.
  const std::size_t sw_cache = opt.get_uint("sw-cache", 1024);

  print_header("R-F3", "random-access throughput vs nodes (weak scaling)");

  nvgas::util::Table t("GUPS-style update rate");
  t.columns({"nodes", "pgas", "agas-sw", "agas-net", "net/pgas", "net/sw"});
  for (const auto n : node_counts) {
    const int nodes = static_cast<int>(n);
    const double p = gups(nvgas::GasMode::kPgas, nodes, updates, sw_cache);
    const double s = gups(nvgas::GasMode::kAgasSw, nodes, updates, sw_cache);
    const double net = gups(nvgas::GasMode::kAgasNet, nodes, updates, sw_cache);
    t.cell(n)
        .cell(nvgas::util::format_rate(p))
        .cell(nvgas::util::format_rate(s))
        .cell(nvgas::util::format_rate(net))
        .cell(net / p, 3)
        .cell(net / s, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: net/pgas stays ≈ 1 at every node count; net/sw\n"
      "grows with scale as software cache misses route through home CPUs.\n");
  return 0;
}
