// S-3 (supplementary) — irregular application: distributed BFS traversal
// time across the address-space managers, with and without parcel
// coalescing (the AM++-style message batching the surrounding literature
// leans on for this workload class).
#include <queue>
#include <unordered_map>

#include "common.hpp"
#include "rt/coalescer.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint32_t kGroup = 256;

struct Graph {
  std::uint32_t vertices;
  std::vector<std::vector<std::uint32_t>> adj;
};

Graph make_graph(std::uint32_t n, std::uint32_t degree, std::uint64_t seed) {
  Graph g{n, {}};
  g.adj.resize(n);
  util::Rng rng(seed);
  for (std::uint32_t v = 0; v < n; ++v) {
    g.adj[v].push_back((v + 1) % n);
    for (std::uint32_t d = 1; d < degree; ++d) {
      g.adj[v].push_back(static_cast<std::uint32_t>(rng.below(n)));
    }
  }
  return g;
}

struct BfsResult {
  sim::Time time = 0;
  std::uint64_t parcels = 0;
  bool ok = false;
};

enum class SendMode { kAppCoalesced, kRuntimeCoalesced, kPerEdge };

BfsResult run_bfs(GasMode mode, const Graph& graph, int nodes, SendMode send_mode) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.machine.mem_bytes_per_node = 32u << 20;
  World world(cfg);
  const auto groups =
      static_cast<std::uint32_t>((graph.vertices + kGroup - 1) / kGroup);

  Gva depth_base;
  std::vector<std::vector<std::uint32_t>> next_frontier(
      static_cast<std::size_t>(nodes));
  rt::Coalescer coalescer(world.runtime());

  auto group_gva = [&](std::uint32_t g) {
    return depth_base.advanced(static_cast<std::int64_t>(g) * kGroup * 8,
                               kGroup * 8);
  };
  auto depth_slot = [&](std::uint32_t v) {
    const auto [owner, lva] = world.gas().owner_of(group_gva(v / kGroup));
    return std::pair<int, sim::Lva>(owner, lva + (v % kGroup) * 8);
  };

  const auto relax = world.runtime().actions().add(
      "bfs.relax", [&, send_mode](Context& c, int, util::Buffer args) {
        auto r = args.reader();
        const auto ack = r.get<rt::LcoRef>();
        const auto d = r.get<std::uint32_t>();
        const auto count = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto v = r.get<std::uint32_t>();
          const auto [owner, lva] = depth_slot(v);
          auto& mem = world.fabric().mem(owner);
          c.charge(20);
          if (mem.load<std::uint64_t>(lva) == ~0ull) {
            mem.store<std::uint64_t>(lva, d);
            next_frontier[static_cast<std::size_t>(c.rank())].push_back(v);
          }
        }
        if (send_mode == SendMode::kRuntimeCoalesced && ack.node != c.rank()) {
          // Batch the acknowledgement traffic too — the coalescer handles
          // ANY action, including the runtime's built-in lco-set.
          util::Buffer id;
          id.put<std::uint64_t>(ack.id);
          coalescer.send(c, ack.node, world.runtime().lco_set_action(),
                         std::move(id));
        } else {
          c.set_lco(ack);
        }
      });

  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) depth_base = alloc_cyclic(ctx, groups, kGroup * 8);
    co_await world.coll().barrier(ctx);
    for (std::uint32_t g = 0; g < groups; ++g) {
      if (world.gas().owner_of(group_gva(g)).first != ctx.rank()) continue;
      std::vector<std::uint64_t> unvisited(kGroup, ~0ull);
      co_await memput(ctx, group_gva(g), std::as_bytes(std::span(unvisited)));
    }
    co_await world.coll().barrier(ctx);

    std::vector<std::uint32_t> frontier;
    if (world.gas().owner_of(group_gva(0)).first == ctx.rank()) {
      const auto [owner, lva] = depth_slot(0);
      world.fabric().mem(owner).store<std::uint64_t>(lva, 0);
      frontier.push_back(0);
    }

    for (std::uint32_t level = 0;; ++level) {
      std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> buckets;
      for (const auto u : frontier) {
        ctx.charge(30);
        for (const auto v : graph.adj[u]) buckets[v / kGroup].push_back(v);
      }
      std::uint64_t to_send = 0;
      for (const auto& [g, verts] : buckets) {
        to_send += send_mode == SendMode::kAppCoalesced ? 1 : verts.size();
      }
      rt::AndGate acks(std::max<std::uint64_t>(1, to_send));
      if (to_send == 0) acks.arrive(ctx.now());
      const rt::LcoRef aref = ctx.make_ref(acks);
      for (const auto& [g, verts] : buckets) {
        if (send_mode == SendMode::kAppCoalesced) {
          util::Buffer payload;
          payload.put<rt::LcoRef>(aref);
          payload.put<std::uint32_t>(level + 1);
          payload.put<std::uint32_t>(static_cast<std::uint32_t>(verts.size()));
          for (const auto v : verts) payload.put<std::uint32_t>(v);
          co_await apply(ctx, group_gva(g), relax, std::move(payload));
        } else {
          for (const auto v : verts) {
            util::Buffer payload;
            payload.put<rt::LcoRef>(aref);
            payload.put<std::uint32_t>(level + 1);
            payload.put<std::uint32_t>(1);
            payload.put<std::uint32_t>(v);
            if (send_mode == SendMode::kRuntimeCoalesced) {
              // Generic runtime batching: wrap in the apply trampoline and
              // let the coalescer pack per-destination parcels.
              util::Buffer tramp;
              tramp.put<std::uint64_t>(group_gva(g).bits());
              tramp.put<rt::ActionId>(relax);
              tramp.append_raw(payload.bytes());
              coalescer.send(ctx, world.gas().owner_of(group_gva(g)).first,
                             world.runtime().apply_action(), std::move(tramp));
            } else {
              co_await apply(ctx, group_gva(g), relax, std::move(payload));
            }
          }
        }
      }
      if (send_mode == SendMode::kRuntimeCoalesced) coalescer.flush_all(ctx);
      co_await acks;
      ctx.release_ref(aref);
      co_await world.coll().barrier(ctx);
      frontier = std::move(next_frontier[static_cast<std::size_t>(ctx.rank())]);
      next_frontier[static_cast<std::size_t>(ctx.rank())].clear();
      const double discovered = co_await world.coll().allreduce_sum(
          ctx, static_cast<double>(frontier.size()));
      if (discovered == 0.0) break;
    }
  });

  // Spot-verify.
  bool ok = true;
  {
    std::vector<std::uint32_t> ref(graph.vertices, ~0u);
    std::queue<std::uint32_t> q;
    ref[0] = 0;
    q.push(0);
    while (!q.empty()) {
      const auto u = q.front();
      q.pop();
      for (const auto v : graph.adj[u]) {
        if (ref[v] == ~0u) {
          ref[v] = ref[u] + 1;
          q.push(v);
        }
      }
    }
    for (std::uint32_t v = 0; v < graph.vertices; v += 97) {
      const auto [owner, lva] = depth_slot(v);
      if (world.fabric().mem(owner).load<std::uint64_t>(lva) != ref[v]) ok = false;
    }
  }

  BfsResult out;
  out.time = world.now();
  out.parcels = world.counters().parcels_sent;
  out.ok = ok;
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 8));
  const auto vertices = static_cast<std::uint32_t>(opt.get_uint("vertices", 8192));
  const auto degree = static_cast<std::uint32_t>(opt.get_uint("degree", 8));

  print_header("S-3", "distributed BFS: managers x parcel coalescing");
  const Graph graph = make_graph(vertices, degree, 3);

  nvgas::util::Table t("BFS traversal time");
  t.columns({"config", "time", "parcels", "verified"});
  const std::pair<SendMode, const char*> send_modes[] = {
      {SendMode::kAppCoalesced, " app-coalesced"},
      {SendMode::kRuntimeCoalesced, " rt-coalesced"},
      {SendMode::kPerEdge, " per-edge"},
  };
  for (const auto& [sm, suffix] : send_modes) {
    for (const auto mode :
         {nvgas::GasMode::kPgas, nvgas::GasMode::kAgasSw, nvgas::GasMode::kAgasNet}) {
      const BfsResult r = run_bfs(mode, graph, nodes, sm);
      std::string name = std::string(mode_name(mode)) + suffix;
      t.cell(name)
          .cell(nvgas::util::format_ns(static_cast<double>(r.time)))
          .cell(r.parcels)
          .cell(r.ok ? "PASS" : "FAIL")
          .end_row();
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: batching dominates. The generic runtime coalescer\n"
      "recovers the whole wire win (parcel counts match hand-batching) but\n"
      "keeps paying per-message dispatch CPU; hand-batching amortizes that\n"
      "too, which is the residual gap. Manager differences are secondary\n"
      "for this two-sided-heavy workload — agas-net must not trail pgas by\n"
      "more than its translation tax.\n");
  return 0;
}
