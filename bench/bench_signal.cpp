// S-4 (supplementary) — producer/consumer notification: NIC remote-
// completion ledger (put-with-notification) vs explicit notification
// parcels, across chunk sizes. A 2-stage pipeline isolates the
// notification path; the full multi-stage version is examples/pipeline.
#include "common.hpp"

namespace nvgas::bench {
namespace {

struct SignalResult {
  sim::Time total = 0;
  std::uint64_t parcels = 0;
  std::uint64_t target_cpu_tasks = 0;
};

SignalResult run_stream(bool use_signal, std::uint32_t chunk_bytes,
                        std::uint32_t chunks) {
  Config cfg = Config::with_nodes(2, GasMode::kAgasNet);
  cfg.machine.mem_bytes_per_node = 64u << 20;
  World world(cfg);

  constexpr int kSlots = 4;
  std::vector<std::unique_ptr<rt::Event>> arrival(chunks);
  std::vector<std::unique_ptr<rt::Event>> credit(chunks);
  std::vector<rt::LcoRef> arrival_ref(chunks);
  std::vector<rt::LcoRef> credit_ref(chunks);

  const auto notify = world.runtime().actions().add(
      "sig.notify", [&](Context& c, int, util::Buffer args) {
        auto r = args.reader();
        arrival[r.get<std::uint32_t>()]->set(c.now());
      });

  Gva buffers;
  const auto consumer_tasks_before = world.fabric().cpu(1).tasks_run();
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) {
      buffers = alloc_cyclic(ctx, 2 * kSlots, chunk_bytes);
    }
    if (ctx.rank() == 1) {
      for (std::uint32_t k = 0; k < chunks; ++k) {
        arrival[k] = std::make_unique<rt::Event>();
        arrival_ref[k] = ctx.make_ref(*arrival[k]);
      }
    } else {
      for (std::uint32_t k = 0; k < chunks; ++k) {
        credit[k] = std::make_unique<rt::Event>();
        credit_ref[k] = ctx.make_ref(*credit[k]);
      }
    }
    co_await world.coll().barrier(ctx);

    auto slot_gva = [&](std::uint32_t k) {
      // Consumer-side slots: blocks homed on rank 1 (odd block indices of
      // a 2-node cyclic layout).
      return buffers.advanced(
          static_cast<std::int64_t>((k % kSlots) * 2 + 1) * chunk_bytes,
          chunk_bytes);
    };

    if (ctx.rank() == 0) {
      std::vector<std::byte> payload(chunk_bytes, std::byte{0x21});
      for (std::uint32_t k = 0; k < chunks; ++k) {
        if (k >= kSlots) co_await *credit[k - kSlots];
        if (use_signal) {
          co_await memput_signal(ctx, slot_gva(k), payload, arrival_ref[k]);
        } else {
          co_await memput(ctx, slot_gva(k), payload);
          ctx.send(1, notify, rt::pack_args(k));
        }
      }
    } else {
      for (std::uint32_t k = 0; k < chunks; ++k) {
        co_await *arrival[k];
        // Consume: local read + small processing.
        const auto raw = co_await memget(ctx, slot_gva(k), chunk_bytes);
        ctx.charge(raw.size() / 16);
        ctx.set_lco(credit_ref[k]);
      }
    }
  });

  SignalResult out;
  out.total = world.now();
  out.parcels = world.counters().parcels_sent;
  out.target_cpu_tasks = world.fabric().cpu(1).tasks_run() - consumer_tasks_before;
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto chunks = static_cast<std::uint32_t>(opt.get_uint("chunks", 64));
  const auto sizes = opt.get_uint_list("sizes", {1024, 8192, 65536, 262144});

  print_header("S-4", "producer/consumer notification: NIC ledger vs parcels");

  nvgas::util::Table t("2-stage stream, 64 chunks");
  t.columns({"chunk", "ledger", "parcels", "ledger speedup", "notify parcels",
             "consumer CPU tasks (ledger/parcel)"});
  for (const auto size : sizes) {
    const auto s32 = static_cast<std::uint32_t>(size);
    const SignalResult led = run_stream(true, s32, chunks);
    const SignalResult par = run_stream(false, s32, chunks);
    char cpu[48];
    std::snprintf(cpu, sizeof cpu, "%llu / %llu",
                  static_cast<unsigned long long>(led.target_cpu_tasks),
                  static_cast<unsigned long long>(par.target_cpu_tasks));
    t.cell(nvgas::util::format_bytes(size))
        .cell(nvgas::util::format_ns(static_cast<double>(led.total)))
        .cell(nvgas::util::format_ns(static_cast<double>(par.total)))
        .cell(static_cast<double>(par.total) / static_cast<double>(led.total), 3)
        .cell(par.parcels - led.parcels)
        .cell(std::string(cpu))
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the ledger saves one wire crossing plus a consumer\n"
      "CPU task per chunk — biggest relative win at small chunks, washed\n"
      "out by transfer time at large ones.\n");
  return 0;
}
