// R-F2 — memput streaming bandwidth vs transfer size.
//
// Rank 0 streams `count` puts of `size` bytes to a block set homed on
// rank 1 with a 32-deep window. The figure's series: achieved MiB/s per
// manager plus the raw RMA ceiling (direct endpoint puts, no GAS).
#include "common.hpp"

namespace nvgas::bench {
namespace {

constexpr int kWindow = 32;
constexpr int kTransfers = 128;

double gas_bandwidth(GasMode mode, std::uint32_t size) {
  Config cfg = Config::with_nodes(2, mode);
  cfg.machine.mem_bytes_per_node = 128u << 20;
  World world(cfg);
  sim::Time elapsed = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const std::uint32_t bsize = std::max<std::uint32_t>(size, 64);
    // Enough distinct blocks that each put targets a warm remote block.
    const std::uint32_t nblocks = 16;
    const Gva base = alloc_cyclic(ctx, nblocks, bsize);
    std::vector<Gva> remote;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      const Gva a = base.advanced(static_cast<std::int64_t>(b) * bsize, bsize);
      if (a.home(ctx.ranks()) == 1) remote.push_back(a);
    }
    // Warm translations.
    for (const Gva a : remote) co_await memput_value<std::uint8_t>(ctx, a, 1);

    std::vector<std::byte> payload(size, std::byte{0x77});
    const sim::Time t0 = ctx.now();
    int issued = 0;
    while (issued < kTransfers) {
      const int batch = std::min(kWindow, kTransfers - issued);
      rt::AndGate gate(static_cast<std::uint64_t>(batch));
      for (int i = 0; i < batch; ++i) {
        memput_nb(ctx, remote[static_cast<std::size_t>(issued + i) % remote.size()],
                  payload, gate);
      }
      issued += batch;
      co_await gate;
    }
    elapsed = ctx.now() - t0;
  });
  world.run();
  const double bytes = static_cast<double>(size) * kTransfers;
  return bytes / (static_cast<double>(elapsed) / 1e9) / (1024.0 * 1024.0);
}

// Raw RMA ceiling: direct endpoint puts, no address-space manager.
double raw_bandwidth(std::uint32_t size) {
  Config cfg = Config::with_nodes(2, GasMode::kPgas);
  cfg.machine.mem_bytes_per_node = 128u << 20;
  World world(cfg);
  sim::Time elapsed = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    auto& ep = world.endpoints().at(0);
    std::vector<std::byte> payload(size, std::byte{0x11});
    rt::AndGate gate(kTransfers);
    const sim::Time t0 = ctx.now();
    // The tx port serializes the stream regardless of windowing.
    for (int i = 0; i < kTransfers; ++i) {
      ep.put(ctx.now(), 1, static_cast<sim::Lva>(size) * i, payload,
             [&gate](sim::Time t) { gate.arrive(t); });
    }
    co_await gate;
    elapsed = ctx.now() - t0;
  });
  world.run();
  const double bytes = static_cast<double>(size) * kTransfers;
  return bytes / (static_cast<double>(elapsed) / 1e9) / (1024.0 * 1024.0);
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto sizes =
      opt.get_uint_list("sizes", {256, 1024, 4096, 16384, 65536, 262144});

  print_header("R-F2", "memput bandwidth vs size (window 32, 2 nodes)");

  nvgas::util::Table t("memput bandwidth (MiB/s)");
  t.columns({"size", "raw RMA", "pgas", "agas-sw", "agas-net", "net/raw"});
  for (const auto size : sizes) {
    const auto s32 = static_cast<std::uint32_t>(size);
    const double raw = raw_bandwidth(s32);
    const double p = gas_bandwidth(nvgas::GasMode::kPgas, s32);
    const double s = gas_bandwidth(nvgas::GasMode::kAgasSw, s32);
    const double n = gas_bandwidth(nvgas::GasMode::kAgasNet, s32);
    t.cell(nvgas::util::format_bytes(size))
        .cell(raw, 1)
        .cell(p, 1)
        .cell(s, 1)
        .cell(n, 1)
        .cell(n / raw, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: all managers converge to the raw ceiling at large\n"
      "sizes; per-op translation overheads only matter for small puts.\n");
  return 0;
}
