// S-6 (supplementary) — tail latency under wire jitter: p50/p95/p99 of an
// 8-byte memget per manager, with seeded uniform switch-arbitration
// jitter on every wire crossing. Multi-message paths (software AGAS
// misses, NIC forwards) accumulate more jitter draws, so their tails
// spread more than their medians — the effect this experiment isolates.
#include "common.hpp"
#include "util/histogram.hpp"

namespace nvgas::bench {
namespace {

struct TailResult {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

TailResult measure(GasMode mode, sim::Time jitter, bool force_miss,
                   std::size_t sw_cache) {
  Config cfg = Config::with_nodes(4, mode);
  cfg.machine.wire_jitter_ns = jitter;
  cfg.machine.mem_bytes_per_node = 16u << 20;
  cfg.gas_costs.sw_cache_capacity = sw_cache;
  World world(cfg);

  constexpr int kSamples = 600;
  util::Samples samples;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    // Enough distinct remote blocks that force_miss mode never re-hits.
    const std::uint32_t nblocks = force_miss ? 2048 : 8;
    const Gva base = alloc_cyclic(ctx, nblocks, 64);
    std::vector<Gva> remote;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      const Gva a = base.advanced(static_cast<std::int64_t>(b) * 64, 64);
      if (a.home(ctx.ranks()) != 0) remote.push_back(a);
    }
    if (!force_miss) {
      for (const Gva a : remote) {
        (void)co_await memget_value<std::uint64_t>(ctx, a);  // warm
      }
    }
    for (int i = 0; i < kSamples; ++i) {
      const Gva a = remote[static_cast<std::size_t>(i) % remote.size()];
      const sim::Time t0 = ctx.now();
      (void)co_await memget_value<std::uint64_t>(ctx, a);
      samples.add(static_cast<double>(ctx.now() - t0));
    }
  });
  world.run();

  TailResult out;
  out.p50 = samples.percentile(50);
  out.p95 = samples.percentile(95);
  out.p99 = samples.percentile(99);
  out.max = samples.max();
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const nvgas::sim::Time jitter = opt.get_uint("jitter", 400);

  print_header("S-6", "tail latency under wire jitter (8 B memget)");

  nvgas::util::Table t("latency percentiles, ±U(0,400ns)/hop jitter");
  t.columns({"path", "p50", "p95", "p99", "max", "p99/p50"});
  struct Row {
    const char* name;
    nvgas::GasMode mode;
    bool force_miss;
    std::size_t cache;
  };
  const Row rows[] = {
      {"pgas", nvgas::GasMode::kPgas, false, 4096},
      {"agas-sw warm", nvgas::GasMode::kAgasSw, false, 4096},
      {"agas-sw miss", nvgas::GasMode::kAgasSw, true, 4},
      {"agas-net warm", nvgas::GasMode::kAgasNet, false, 4096},
  };
  for (const auto& r : rows) {
    const TailResult res = measure(r.mode, jitter, r.force_miss, r.cache);
    t.cell(r.name)
        .cell(nvgas::util::format_ns(res.p50))
        .cell(nvgas::util::format_ns(res.p95))
        .cell(nvgas::util::format_ns(res.p99))
        .cell(nvgas::util::format_ns(res.max))
        .cell(res.p99 / res.p50, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: warm paths draw 2 jitter samples per op; the\n"
      "software-AGAS miss path draws 4 (+CPU queueing), so its absolute\n"
      "p99-p50 spread widens on top of a median that more than doubles.\n");
  return 0;
}
