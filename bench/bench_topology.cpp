// S-2 (supplementary) — topology sensitivity of the three address-space
// managers: the GUPS-style workload on a flat crossbar vs a 2-D torus vs
// a dragonfly. Multi-hop forwarding (the network-managed design's
// stale-op mechanism) gets more expensive as topologies add hops; this
// quantifies how much of the agas-net advantage survives.
#include "common.hpp"

namespace nvgas::bench {
namespace {

double gups_rate(GasMode mode, sim::TopologyKind topo, int nodes,
                 bool with_migration_churn) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.machine.mem_bytes_per_node = 8u << 20;
  cfg.machine.topology = topo;
  cfg.gas_costs.sw_cache_capacity = 1024;
  World world(cfg);

  constexpr std::uint32_t kBlockSize = 4096;
  const auto nblocks = static_cast<std::uint32_t>(32 * nodes);
  const std::uint64_t words =
      static_cast<std::uint64_t>(nblocks) * kBlockSize / 8;
  const std::uint64_t updates_per_rank = 1000;

  Gva table;
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) {
      table = alloc_cyclic(ctx, nblocks, kBlockSize);
    }
    co_await world.coll().barrier(ctx);

    if (with_migration_churn && ctx.rank() == 0 &&
        world.gas().supports_migration()) {
      // Shuffle a quarter of the blocks off their homes so stale-op
      // forwarding is actually exercised.
      for (std::uint32_t b = 0; b < nblocks; b += 4) {
        const Gva blk =
            table.advanced(static_cast<std::int64_t>(b) * kBlockSize, kBlockSize);
        co_await migrate(ctx, blk, (blk.home(ctx.ranks()) + 2) % ctx.ranks());
      }
    }
    co_await world.coll().barrier(ctx);

    util::Rng rng(31337 + static_cast<std::uint64_t>(ctx.rank()));
    std::uint64_t remaining = updates_per_rank;
    while (remaining > 0) {
      const std::uint64_t batch = std::min<std::uint64_t>(16, remaining);
      remaining -= batch;
      rt::AndGate gate(batch);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const std::uint64_t w = rng.below(words);
        fetch_add_nb(ctx, table.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize),
                     1, gate);
      }
      co_await gate;
    }
    co_await world.coll().barrier(ctx);
  });
  return static_cast<double>(updates_per_rank) * nodes /
         (static_cast<double>(world.now()) / 1e9);
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const int nodes = static_cast<int>(opt.get_int("nodes", 16));

  print_header("S-2", "topology sensitivity (random access, 16 nodes)");

  using nvgas::sim::TopologyKind;
  nvgas::util::Table t("update rate by topology (quarter of blocks migrated)");
  t.columns({"topology", "pgas", "agas-sw", "agas-net", "net/pgas"});
  for (auto topo : {TopologyKind::kFlat, TopologyKind::kTorus2D,
                    TopologyKind::kDragonfly}) {
    const double p = gups_rate(nvgas::GasMode::kPgas, topo, nodes, false);
    const double s = gups_rate(nvgas::GasMode::kAgasSw, topo, nodes, true);
    const double n = gups_rate(nvgas::GasMode::kAgasNet, topo, nodes, true);
    t.cell(nvgas::sim::to_string(topo))
        .cell(nvgas::util::format_rate(p))
        .cell(nvgas::util::format_rate(s))
        .cell(nvgas::util::format_rate(n))
        .cell(n / p, 3)
        .end_row();
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: every manager slows on multi-hop topologies; the\n"
      "agas-net advantage persists because its extra hops (forwards) are\n"
      "also NIC-level, while agas-sw keeps paying CPU round trips.\n");
  return 0;
}
