// R-S8 (supplementary) — goodput and latency under an unreliable fabric.
//
// Sweeps the wire drop probability across address-space modes with the
// end-to-end retransmission layer (src/net/reliability.*) recovering
// every lost frame. Each cell runs the same closed-loop put stream; the
// reported goodput counts only application payload bytes (headers,
// retransmissions and acks are overhead), and the p99 put latency shows
// the retransmission-timeout tail growing with the loss rate.
//
// The binary is also a regression gate: it exits nonzero unless, for
// every mode, goodput degrades monotonically as the drop rate rises
// (tolerance for timing artifacts) and has not collapsed below
// kCollapseFloor of the clean-fabric goodput at 10% drop — i.e. the
// retransmission layer keeps paying for losses with latency, never with
// livelock or meltdown.
//
// Results land in BENCH_faults.json (cwd) for cross-PR tracking.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace nvgas::bench {
namespace {

constexpr std::uint64_t kPutBytes = 1024;
// Adjacent sweep points may trade a few timing artifacts; a genuine
// regression (retransmit storm, ack livelock) loses far more than 2%.
constexpr double kMonotonicSlack = 1.02;
constexpr double kCollapseFloor = 0.20;

struct FaultBenchResult {
  double goodput_mbps = 0;   // payload bytes only, per simulated second
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t drops = 0;
  std::uint64_t retransmits = 0;
};

FaultBenchResult run_cell(GasMode mode, double drop, double dup, double delay,
                          sim::Time delay_ns, std::uint64_t ops, int nodes) {
  Config cfg = Config::with_nodes(nodes, mode);
  cfg.machine.mem_bytes_per_node = 16u << 20;
  if (drop > 0 || dup > 0 || (delay > 0 && delay_ns > 0)) {
    sim::FaultRule r;
    r.drop = drop;
    r.dup = dup;
    r.delay = delay;
    r.delay_ns = delay_ns;
    cfg.faults.rules.push_back(r);
  }
  World world(cfg);

  util::Samples latency;
  world.run_spmd([&](Context& ctx) -> Fiber {
    const Gva table = alloc_cyclic(ctx, static_cast<std::uint32_t>(ctx.ranks()),
                                   kPutBytes);
    const std::vector<std::byte> payload(kPutBytes, std::byte{0x5a});
    const int dst = (ctx.rank() + 1) % ctx.ranks();
    const Gva target = table.advanced(
        static_cast<std::int64_t>(dst) * static_cast<std::int64_t>(kPutBytes),
        static_cast<std::uint32_t>(kPutBytes));
    for (std::uint64_t i = 0; i < ops; ++i) {
      const sim::Time t0 = ctx.now();
      co_await memput_span(ctx, target, payload);
      latency.add(static_cast<double>(ctx.now() - t0));
    }
    co_await world.coll().barrier(ctx);
  });
  world.run();

  FaultBenchResult out;
  const double payload_bytes =
      static_cast<double>(world.ranks()) * static_cast<double>(ops) *
      static_cast<double>(kPutBytes);
  out.goodput_mbps = payload_bytes / static_cast<double>(world.now()) * 1e3;
  out.p50_ns = latency.percentile(50);
  out.p99_ns = latency.percentile(99);
  out.drops = world.counters().faults_injected_drops;
  out.retransmits = world.counters().net_retransmits;
  return out;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const bool quick = opt.has("quick");
  const std::uint64_t ops = opt.get_uint("ops", quick ? 150 : 600);
  const int nodes = static_cast<int>(opt.get_int("nodes", 4));
  const double dup = opt.get_double("fault-dup", 0.0);
  const double delay = opt.get_double("fault-delay", 0.0);
  const auto delay_ns =
      static_cast<nvgas::sim::Time>(opt.get_uint("fault-delay-ns", 0));
  const std::string out_path = opt.get("out", "BENCH_faults.json");

  print_header("R-S8", "goodput and put latency vs wire drop probability");

  const double drops[] = {0.0, 0.001, 0.01, 0.05, 0.1};
  nvgas::util::Table t("closed-loop 1 KiB put stream, retransmission on");
  t.columns({"mode", "drop", "goodput (MB/s)", "p50 put", "p99 put",
             "drops", "retransmits"});
  struct Row {
    nvgas::GasMode mode;
    double drop;
    FaultBenchResult r;
  };
  std::vector<Row> rows;
  bool gate_ok = true;
  std::string gate_msg;
  for (const nvgas::GasMode mode : all_modes()) {
    double clean = 0;
    double prev = 0;
    for (const double d : drops) {
      const FaultBenchResult r =
          run_cell(mode, d, dup, delay, delay_ns, ops, nodes);
      rows.push_back({mode, d, r});
      t.cell(mode_name(mode))
          .cell(d, 3)
          .cell(r.goodput_mbps, 2)
          .cell(nvgas::util::format_ns(r.p50_ns))
          .cell(nvgas::util::format_ns(r.p99_ns))
          .cell(r.drops)
          .cell(r.retransmits)
          .end_row();
      if (d == 0.0) {
        clean = r.goodput_mbps;
      } else if (r.goodput_mbps > prev * kMonotonicSlack) {
        gate_ok = false;
        gate_msg = nvgas::util::format(
            "%s: goodput rose from %.2f to %.2f MB/s between adjacent drop "
            "rates (expected monotonic degradation)",
            mode_name(mode), prev, r.goodput_mbps);
      }
      if (d == 0.1 && r.goodput_mbps < clean * kCollapseFloor) {
        gate_ok = false;
        gate_msg = nvgas::util::format(
            "%s: goodput collapsed to %.2f MB/s at 10%% drop (clean fabric "
            "%.2f MB/s; floor %.0f%%)",
            mode_name(mode), r.goodput_mbps, clean, kCollapseFloor * 100);
      }
      prev = r.goodput_mbps;
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: goodput falls and the p99 tail grows with the\n"
      "drop rate (each lost frame waits out at least one retransmission\n"
      "timeout); no mode livelocks or collapses, because recovery is\n"
      "per-frame with bounded exponential backoff.\n");
  std::printf("degradation gate: %s%s%s\n", gate_ok ? "ok" : "FAILED",
              gate_ok ? "" : " — ", gate_ok ? "" : gate_msg.c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"faults\",\n  \"ops_per_rank\": %llu,\n"
               "  \"nodes\": %d,\n  \"put_bytes\": %llu,\n  \"cells\": [\n",
               static_cast<unsigned long long>(ops), nodes,
               static_cast<unsigned long long>(kPutBytes));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"drop\": %.3f, "
                 "\"goodput_mbps\": %.3f, \"p50_ns\": %.0f, \"p99_ns\": %.0f, "
                 "\"drops\": %llu, \"retransmits\": %llu}%s\n",
                 mode_name(row.mode), row.drop, row.r.goodput_mbps,
                 row.r.p50_ns, row.r.p99_ns,
                 static_cast<unsigned long long>(row.r.drops),
                 static_cast<unsigned long long>(row.r.retransmits),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"degradation_gate\": %s\n}\n",
               gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return gate_ok ? 0 : 1;
}
