// R-T3 — ablations of the network-managed design choices, plus the
// software-cache capacity sensitivity DESIGN.md §8 calls out.
//
//   A. stale-op policy: forward-at-owner (hints) vs forward-via-home vs
//      NACK-to-source, with and without piggybacked TLB updates.
//   B. software cache capacity sweep under a fixed random-access load.
//   C. NIC TLB capacity sweep under the same load.
//   D. eager/rendezvous threshold sweep at a fixed parcel size.
#include "common.hpp"

namespace nvgas::bench {
namespace {

// --- A: stale-access policies ------------------------------------------

struct StaleProbe {
  double first_stale_ns = 0;
  double steady_ns = 0;  // after repair (or not, without piggyback)
  std::uint64_t messages_first = 0;
};

StaleProbe stale_policy(bool hints, bool nack, bool piggyback) {
  Config cfg = Config::with_nodes(8, GasMode::kAgasNet);
  cfg.agas_net.forward_hints = hints;
  cfg.agas_net.nack_on_stale = nack;
  cfg.agas_net.piggyback_updates = piggyback;
  World world(cfg);
  StaleProbe out;

  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva block = alloc_cyclic(ctx, 1, 4096);
    co_await memput_value<std::uint64_t>(ctx, block, 9);

    // Move the block off its home first, so that the stale source's
    // translation will point at a NON-home previous owner — the only
    // place where the hint/NACK policies differ from the home's
    // authoritative forward.
    const int first_stop = (block.home(ctx.ranks()) + 5) % ctx.ranks();
    co_await migrate(ctx, block, first_stop);

    rt::Event warmed;
    rt::Event moved;
    rt::Future<std::uint64_t> first;
    rt::Future<std::uint64_t> steady;
    const rt::LcoRef wref = ctx.make_ref(warmed);
    const rt::LcoRef fref = ctx.make_ref(first);
    const rt::LcoRef sref = ctx.make_ref(steady);
    ctx.spawn(2, [&, block, wref, fref, sref](Context& c) -> Fiber {
      (void)co_await memget_value<std::uint64_t>(c, block);  // warm (if piggyback)
      c.set_lco(wref);
      co_await moved;
      const auto msgs0 = world.counters().messages_sent;
      sim::Time t0 = c.now();
      (void)co_await memget_value<std::uint64_t>(c, block);
      util::Buffer b1;
      b1.put<std::uint64_t>(c.now() - t0);
      b1.put<std::uint64_t>(world.counters().messages_sent - msgs0);
      c.set_lco(fref, std::move(b1));
      // Steady state: next access.
      t0 = c.now();
      (void)co_await memget_value<std::uint64_t>(c, block);
      util::Buffer b2;
      b2.put<std::uint64_t>(c.now() - t0);
      c.set_lco(sref, std::move(b2));
    });
    co_await warmed;
    const int second_stop = (first_stop + 2) % ctx.ranks();
    co_await migrate(ctx, block, second_stop);
    moved.set(ctx.now());
    const auto fv = co_await first;
    out.first_stale_ns = static_cast<double>(fv);
    out.steady_ns = static_cast<double>(co_await steady);
  });
  // The Future packed two u64s; decode messages from the raw future is
  // awkward — re-derive from counters instead (single stale access in
  // the run window dominates nic_forwards).
  world.run();
  out.messages_first = world.counters().nic_forwards;
  return out;
}

// --- B/C: translation-state capacity sweeps -----------------------------

double random_access_time(GasMode mode, std::size_t sw_cache,
                          std::size_t tlb_capacity) {
  Config cfg = Config::with_nodes(8, mode);
  cfg.machine.mem_bytes_per_node = 32u << 20;
  cfg.gas_costs.sw_cache_capacity = sw_cache;
  cfg.agas_net.tlb_capacity = tlb_capacity;
  World world(cfg);

  constexpr std::uint32_t kBlocks = 1024;  // working set: 1024 translations
  constexpr std::uint32_t kBlockSize = 4096;
  constexpr std::uint64_t kOps = 3000;

  sim::Time elapsed = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, kBlocks, kBlockSize);
    // Shuffle every block off its home: without mobility, a translation
    // miss routes to the home — which IS the owner — and costs nothing,
    // hiding the capacity effect entirely.
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      const Gva blk = base.advanced(static_cast<std::int64_t>(b) * kBlockSize,
                                    kBlockSize);
      co_await migrate(ctx, blk, (blk.home(ctx.ranks()) + 3) % ctx.ranks());
    }
    util::Rng rng(99);
    const sim::Time t0 = ctx.now();
    std::uint64_t remaining = kOps;
    while (remaining > 0) {
      const std::uint64_t batch = std::min<std::uint64_t>(16, remaining);
      remaining -= batch;
      rt::AndGate gate(batch);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const auto b = static_cast<std::int64_t>(rng.below(kBlocks));
        fetch_add_nb(ctx, base.advanced(b * kBlockSize, kBlockSize), 1, gate);
      }
      co_await gate;
    }
    elapsed = ctx.now() - t0;
  });
  world.run();
  return static_cast<double>(elapsed) / kOps;
}

// --- E: CPU workers per node ----------------------------------------------
// The software AGAS's directory work competes with application handlers
// for CPU workers; the network-managed design doesn't care. Random-access
// throughput vs workers-per-node quantifies the difference.
double worker_sweep_rate(GasMode mode, int workers) {
  Config cfg = Config::with_nodes(8, mode);
  cfg.machine.workers_per_node = workers;
  cfg.machine.mem_bytes_per_node = 16u << 20;
  cfg.gas_costs.sw_cache_capacity = 256;  // force directory traffic
  World world(cfg);
  constexpr std::uint32_t kBlocks = 512;
  constexpr std::uint32_t kBlockSize = 4096;
  const std::uint64_t words = static_cast<std::uint64_t>(kBlocks) * kBlockSize / 8;
  constexpr std::uint64_t kUpdatesPerRank = 800;

  Gva table;
  world.run_spmd([&](Context& ctx) -> Fiber {
    if (ctx.rank() == 0) table = alloc_cyclic(ctx, kBlocks, kBlockSize);
    co_await world.coll().barrier(ctx);
    util::Rng rng(4242 + static_cast<std::uint64_t>(ctx.rank()));
    std::uint64_t remaining = kUpdatesPerRank;
    while (remaining > 0) {
      const std::uint64_t batch = std::min<std::uint64_t>(16, remaining);
      remaining -= batch;
      rt::AndGate gate(batch);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const auto w = static_cast<std::int64_t>(rng.below(words));
        fetch_add_nb(ctx, table.advanced(w * 8, kBlockSize), 1, gate);
        // Competing application compute on the same workers.
        ctx.charge(500);
      }
      co_await gate;
    }
    co_await world.coll().barrier(ctx);
  });
  return static_cast<double>(kUpdatesPerRank) * 8 /
         (static_cast<double>(world.now()) / 1e9);
}

// --- D: eager threshold -------------------------------------------------

double parcel_flood_ns(std::size_t payload, std::size_t threshold) {
  Config cfg = Config::with_nodes(2, GasMode::kPgas);
  cfg.net.eager_threshold = threshold;
  World world(cfg);
  constexpr int kParcels = 100;
  int handled = 0;
  sim::Time last = 0;
  const auto sink = world.runtime().actions().add(
      "abl.sink", [&](Context& c, int, util::Buffer) {
        ++handled;
        last = c.now();
      });
  sim::Time start = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    start = ctx.now();
    for (int i = 0; i < kParcels; ++i) {
      util::Buffer b;
      b.append_raw(std::vector<std::byte>(payload));
      ctx.send(1, sink, std::move(b));
    }
    co_return;
  });
  world.run();
  NVGAS_CHECK(handled == kParcels);
  return static_cast<double>(last - start) / kParcels;
}

}  // namespace
}  // namespace nvgas::bench

int main() {
  using namespace nvgas::bench;
  print_header("R-T3", "design-choice ablations");

  {
    nvgas::util::Table t("A. stale-op policy (first access after migration)");
    t.columns({"policy", "first stale access", "steady state", "NIC forwards"});
    struct P {
      const char* name;
      bool hints, nack, piggyback;
    };
    const P policies[] = {
        {"forward hints + piggyback (default)", true, false, true},
        {"forward via home + piggyback", false, false, true},
        {"forward hints, no piggyback", true, false, false},
        {"NACK to source", false, true, true},
    };
    for (const auto& p : policies) {
      const StaleProbe r = stale_policy(p.hints, p.nack, p.piggyback);
      t.cell(p.name)
          .cell(nvgas::util::format_ns(r.first_stale_ns))
          .cell(nvgas::util::format_ns(r.steady_ns))
          .cell(r.messages_first)
          .end_row();
    }
    t.print(std::cout);
    std::printf(
        "Expected: NACK costs an extra round trip on first access; without\n"
        "piggyback the steady state keeps paying the forward.\n\n");
  }

  {
    nvgas::util::Table t("B. software cache capacity (1024-block working set)");
    t.columns({"sw cache entries", "ns per op"});
    for (std::size_t cap : {64, 256, 512, 1024, 2048, 8192}) {
      t.cell(static_cast<std::uint64_t>(cap))
          .cell(random_access_time(nvgas::GasMode::kAgasSw, cap, 65536), 1)
          .end_row();
    }
    t.print(std::cout);
  }

  {
    nvgas::util::Table t("C. NIC TLB capacity (same working set)");
    t.columns({"tlb entries", "ns per op"});
    for (std::size_t cap : {64, 256, 512, 1024, 2048, 8192}) {
      t.cell(static_cast<std::uint64_t>(cap))
          .cell(random_access_time(nvgas::GasMode::kAgasNet, 4096, cap), 1)
          .end_row();
    }
    t.print(std::cout);
    std::printf(
        "Expected: both degrade below the 1024-entry working set, but the\n"
        "software miss (home-CPU round trip) is costlier than the NIC miss\n"
        "(forward at the home NIC).\n\n");
  }

  {
    nvgas::util::Table t("E. CPU workers per node (random access + compute)");
    t.columns({"workers", "agas-sw", "agas-net", "net/sw"});
    for (int w : {1, 2, 4}) {
      const double s = worker_sweep_rate(nvgas::GasMode::kAgasSw, w);
      const double n = worker_sweep_rate(nvgas::GasMode::kAgasNet, w);
      t.cell(static_cast<std::int64_t>(w))
          .cell(nvgas::util::format_rate(s))
          .cell(nvgas::util::format_rate(n))
          .cell(n / s, 3)
          .end_row();
    }
    t.print(std::cout);
    std::printf(
        "Expected: extra workers help the software AGAS most (its directory\n"
        "tasks stop competing with handlers); the NIC-managed path is\n"
        "CPU-oblivious, so its advantage is largest at 1 worker.\n\n");
  }

  {
    nvgas::util::Table t("D. eager/rendezvous threshold (4 KiB parcels)");
    t.columns({"threshold", "protocol", "ns per parcel"});
    for (std::size_t thr : {512, 1024, 2048, 4096, 8192, 16384}) {
      t.cell(nvgas::util::format_bytes(thr))
          .cell(thr >= 4096 + 4 ? "eager" : "rendezvous")
          .cell(parcel_flood_ns(4096, thr), 1)
          .end_row();
    }
    t.print(std::cout);
  }
  return 0;
}
