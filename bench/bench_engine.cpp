// Wall-clock throughput of the discrete-event engine itself.
//
// Every simulated experiment is bounded by how many engine events the
// host can execute per second, so this harness tracks that number across
// PRs. It drives identical workloads through the production timing-wheel
// Engine and the frozen seed implementation (sim::ReferenceEngine,
// binary heap + std::function) and reports events/sec plus the ratio:
//
//   * sched_mix    — self-rescheduling timers with a 70/25/5 mix of
//                    short (<1 µs), medium (<16 µs) and far (>64 µs,
//                    past the wheel horizon) delays;
//   * sched_cancel — timeout pattern: every op arms a timer and cancels
//                    it before it fires (the reference engine lacks
//                    cancel, so it tombstones, the pre-wheel idiom);
//   * gups_mix     — GUPS-shaped event chains: NIC gap / wire / DMA
//                    constants with thousands of chains in flight.
//
// With -DNVGAS_PARALLEL=ON it additionally sweeps the conservative-
// parallel sharded engine: a cross-lane message-chain workload over
// --sweep-nodes lanes at --sweep-threads host threads, reporting
// events/sec, speedup vs the threads=1 serial baseline and vs the
// classic engine, and whether the trace hash matched serial (it must).
// The host core count is recorded alongside so a 1-core CI box's flat
// scaling numbers are not mistaken for a regression.
//
// Results land in BENCH_engine.json (cwd) for cross-PR tracking.
//
// Usage: bench_engine [events_per_workload] [out.json]
//                     [--sweep-nodes=16,64] [--sweep-threads=1,2,4,8]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "sim/engine.hpp"
#include "sim/reference_engine.hpp"
#include "util/options.hpp"

namespace nvgas::bench {
namespace {

using sim::Time;

constexpr std::uint64_t kLcgMul = 6364136223846793005ULL;
constexpr std::uint64_t kLcgAdd = 1442695040888963407ULL;

template <typename EngineT>
concept HasCancel = requires(EngineT& e, typename EngineT::TimerId id) {
  { e.cancel(id) };
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- sched_mix ------------------------------------------------------------

template <typename EngineT>
struct MixTimer {
  EngineT* eng;
  std::uint64_t* left;  // events still to schedule
  std::uint64_t state;  // per-timer LCG

  void operator()() {
    if (*left == 0) return;
    --*left;
    state = state * kLcgMul + kLcgAdd;
    const std::uint64_t r = state >> 33;
    Time d;
    const std::uint64_t pct = r % 100;
    if (pct < 70) {
      d = r % 1024;  // short: within a few slots
    } else if (pct < 95) {
      d = 1024 + r % (16 * 1024);  // medium: mid-wheel
    } else {
      d = 65536 + r % (448 * 1024);  // far: overflow heap territory
    }
    eng->after(d, *this);
  }
};

template <typename EngineT>
double sched_mix_eps(std::uint64_t events) {
  EngineT eng;
  std::uint64_t left = events;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 4096; ++i) {
    MixTimer<EngineT> timer{&eng, &left,
                            0x9e3779b97f4a7c15ULL * (std::uint64_t)(i + 1)};
    eng.at(static_cast<Time>(i % 64), timer);
  }
  eng.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(eng.events_executed()) / dt;
}

// --- sched_cancel ---------------------------------------------------------
//
// Each op: arm a "timeout" 2 µs out, then cancel it 1 µs later from the
// completion event (the common NIC-timeout shape: almost every timeout
// is cancelled). The wheel engine uses real cancel; the reference engine
// tombstones a flag and still pays to pop the dead event. Throughput is
// logical ops (arm+cancel pairs) per second.

template <typename EngineT>
struct CancelDriver {
  EngineT* eng;
  std::uint64_t* ops_left;
  std::vector<char>* tombstones;       // reference-engine path
  std::vector<typename sim::Engine::TimerId>* tokens;  // wheel path
  std::uint32_t slot;

  void operator()() {
    if (*ops_left == 0) return;
    --*ops_left;
    if constexpr (HasCancel<EngineT>) {
      (*tokens)[slot] =
          eng->after_cancellable(2048, [] { /* timeout: normally dead */ });
      eng->after(1024, Canceller{eng, tokens, slot});
    } else {
      (*tombstones)[slot] = 0;
      char* flag = &(*tombstones)[slot];
      eng->after(2048, [flag] {
        if (*flag == 0) { /* timeout: normally dead */
        }
      });
      eng->after(1024, [flag] { *flag = 1; });
    }
    eng->after(512, *this);
  }

  struct Canceller {
    EngineT* eng;
    std::vector<typename sim::Engine::TimerId>* tokens;
    std::uint32_t slot;
    void operator()() { (void)eng->cancel((*tokens)[slot]); }
  };
};

template <typename EngineT>
double sched_cancel_ops(std::uint64_t ops) {
  EngineT eng;
  constexpr std::uint32_t kDrivers = 2048;
  std::uint64_t left = ops;
  std::vector<char> tombstones(kDrivers, 0);
  std::vector<sim::Engine::TimerId> tokens(kDrivers);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < kDrivers; ++i) {
    eng.at(static_cast<Time>(i % 128),
           CancelDriver<EngineT>{&eng, &left, &tombstones, &tokens, i});
  }
  eng.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(ops) / dt;
}

// --- gups_mix -------------------------------------------------------------

template <typename EngineT>
struct GupsChain {
  EngineT* eng;
  std::uint64_t* left;
  std::uint8_t stage;

  void operator()() {
    switch (stage) {
      case 0:  // NIC gap charged, go on the wire
        eng->after(40, GupsChain{eng, left, 1});
        break;
      case 1:  // wire hop
        eng->after(500, GupsChain{eng, left, 2});
        break;
      case 2:  // remote DMA
        eng->after(200, GupsChain{eng, left, 3});
        break;
      default:  // completion: issue the next update
        if (*left == 0) return;
        --*left;
        eng->after(100, GupsChain{eng, left, 0});
        break;
    }
  }
};

template <typename EngineT>
double gups_mix_eps(std::uint64_t events) {
  EngineT eng;
  std::uint64_t left = events / 4;  // four events per chain iteration
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 8192; ++i) {
    eng.at(static_cast<Time>(i % 256), GupsChain<EngineT>{&eng, &left, 0});
  }
  eng.run();
  const double dt = seconds_since(t0);
  return static_cast<double>(eng.events_executed()) / dt;
}

struct Row {
  const char* name;
  double wheel;
  double heap;
};

// --- threads_scaling ------------------------------------------------------
//
// GUPS-shaped chains that actually cross lanes: gap on the origin lane,
// wire hop to a partner lane via post(), remote DMA there, wire hop
// back, completion. On an unsharded engine post() degrades to a plain
// at(), so the identical workload doubles as the classic baseline.

struct LaneChain {
  sim::Engine* eng;
  std::vector<std::uint64_t>* left;  // per-origin-lane remaining updates
  std::uint32_t origin;
  std::uint64_t state;
  std::uint8_t stage;

  void operator()() {
    const std::uint32_t lanes =
        eng->sharded() ? eng->shards() : 1;
    switch (stage) {
      case 0: {  // NIC gap, then go on the wire to a partner lane
        state = state * kLcgMul + kLcgAdd;
        const auto r = static_cast<std::uint32_t>(state >> 33);
        const std::uint32_t dst =
            lanes > 1 ? (origin + 1 + r % (lanes - 1)) % lanes : 0;
        eng->post(dst, eng->now() + 540,
                  LaneChain{eng, left, origin, state, 1});
        break;
      }
      case 1:  // remote DMA
        eng->after(200, LaneChain{eng, left, origin, state, 2});
        break;
      case 2:  // completion hops back to the origin lane
        eng->post(origin, eng->now() + 500,
                  LaneChain{eng, left, origin, state, 3});
        break;
      default: {  // next update (runs on the origin lane)
        std::uint64_t& rem = (*left)[origin];
        if (rem == 0) return;
        --rem;
        eng->after(100, LaneChain{eng, left, origin, state, 0});
        break;
      }
    }
  }
};

struct SweepResult {
  double eps = 0;
  std::uint64_t hash = 0;
};

// Run the cross-lane chain workload; threads == 0 uses the classic
// single-queue engine (the no-sharding baseline), threads >= 1 the
// sharded engine at that host thread count.
SweepResult lane_chain_run(std::uint32_t nodes, int threads,
                           std::uint64_t events) {
  sim::Engine eng;
  if (threads > 0) eng.configure_shards(nodes, /*lookahead=*/500, threads);
  constexpr std::uint32_t kChainsPerLane = 64;
  // ~6 events per update iteration across the chain stages.
  const std::uint64_t per_lane =
      events / (6ULL * nodes * kChainsPerLane) + 1;
  std::vector<std::uint64_t> left(nodes, per_lane * kChainsPerLane);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t lane = 0; lane < nodes; ++lane) {
    for (std::uint32_t c = 0; c < kChainsPerLane; ++c) {
      const std::uint64_t seed0 =
          0x9e3779b97f4a7c15ULL * (lane * kChainsPerLane + c + 1);
      if (threads > 0) {
        eng.at_shard(lane, c % 256, LaneChain{&eng, &left, lane, seed0, 0});
      } else {
        eng.at(static_cast<Time>(c % 256), LaneChain{&eng, &left, lane, seed0, 0});
      }
    }
  }
  eng.run();
  const double dt = seconds_since(t0);
  return {static_cast<double>(eng.events_executed()) / dt, eng.trace_hash()};
}

struct ScaleRow {
  std::uint32_t nodes;
  int threads;
  double eps;
  double vs_serial;   // vs threads=1 sharded, same node count
  double vs_classic;  // vs the unsharded classic engine, same node count
  bool hash_match;    // trace hash byte-identical to threads=1
};

std::vector<ScaleRow> threads_scaling(const std::vector<std::uint64_t>& nodes,
                                      const std::vector<std::uint64_t>& threads,
                                      std::uint64_t events) {
  std::vector<ScaleRow> rows;
  for (const std::uint64_t n64 : nodes) {
    const auto n = static_cast<std::uint32_t>(n64);
    const SweepResult classic = lane_chain_run(n, 0, events);
    const SweepResult serial = lane_chain_run(n, 1, events);
    for (const std::uint64_t t64 : threads) {
      const int t = static_cast<int>(t64);
      const SweepResult r = t == 1 ? serial : lane_chain_run(n, t, events);
      rows.push_back({n, t, r.eps, r.eps / serial.eps, r.eps / classic.eps,
                      r.hash == serial.hash});
    }
  }
  return rows;
}

}  // namespace
}  // namespace nvgas::bench

int main(int argc, char** argv) {
  using namespace nvgas::bench;
  const nvgas::util::Options opt(argc, argv);
  const auto& pos = opt.positionals();
  const std::uint64_t events =
      !pos.empty() ? std::strtoull(pos[0].c_str(), nullptr, 10) : 2'000'000ULL;
  const std::string out = pos.size() > 1 ? pos[1] : "BENCH_engine.json";
  const SweepSpec sweep =
      parse_sweep(opt, {.modes = "all",
                        .nodes = {16, 64},
                        .threads = {1, 2, 4, 8}});
  const auto& sweep_nodes = sweep.nodes;
  const auto& sweep_threads = sweep.threads;
  if (events == 0) {
    std::fprintf(stderr,
                 "usage: %s [events_per_workload > 0] [out.json]\n"
                 "       [--sweep-nodes=16,64] [--sweep-threads=1,2,4,8]\n"
                 "       (got \"%s\")\n",
                 argv[0], !pos.empty() ? pos[0].c_str() : "");
    return 2;
  }

  std::printf("bench_engine: %llu events per workload\n",
              static_cast<unsigned long long>(events));

  Row rows[] = {
      {"sched_mix", sched_mix_eps<nvgas::sim::Engine>(events),
       sched_mix_eps<nvgas::sim::ReferenceEngine>(events)},
      {"sched_cancel", sched_cancel_ops<nvgas::sim::Engine>(events / 3),
       sched_cancel_ops<nvgas::sim::ReferenceEngine>(events / 3)},
      {"gups_mix", gups_mix_eps<nvgas::sim::Engine>(events),
       gups_mix_eps<nvgas::sim::ReferenceEngine>(events)},
  };

  std::printf("%-14s %14s %14s %9s\n", "workload", "wheel ev/s", "heap ev/s",
              "speedup");
  for (const Row& r : rows) {
    std::printf("%-14s %14.0f %14.0f %8.2fx\n", r.name, r.wheel, r.heap,
                r.wheel / r.heap);
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::vector<ScaleRow> scale;
  if (nvgas::sim::Engine::kParallelEnabled) {
    // Smaller per-cell budget: the sweep runs |nodes| x (|threads|+2)
    // cells (each node count adds a classic and a serial baseline).
    scale = threads_scaling(sweep_nodes, sweep_threads, events / 4);
    std::printf("\nthreads_scaling (cross-lane chains, %u host core%s)\n",
                host_cores, host_cores == 1 ? "" : "s");
    std::printf("%6s %8s %14s %10s %11s %6s\n", "nodes", "threads", "ev/s",
                "vs-serial", "vs-classic", "hash");
    for (const ScaleRow& r : scale) {
      std::printf("%6u %8d %14.0f %9.2fx %10.2fx %6s\n", r.nodes, r.threads,
                  r.eps, r.vs_serial, r.vs_classic,
                  r.hash_match ? "ok" : "DIFF");
    }
  } else {
    std::printf("\nthreads_scaling skipped: built with NVGAS_PARALLEL=OFF\n");
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine\",\n  \"events_per_workload\": %llu,\n",
               static_cast<unsigned long long>(events));
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"workloads\": {\n");
  const std::size_t n = sizeof(rows) / sizeof(rows[0]);
  for (std::size_t i = 0; i < n; ++i) {
    std::fprintf(f,
                 "    \"%s\": {\"wheel_events_per_sec\": %.0f, "
                 "\"heap_events_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 rows[i].name, rows[i].wheel, rows[i].heap,
                 rows[i].wheel / rows[i].heap, i + 1 < n ? "," : "");
  }
  std::fprintf(f, "  },\n  \"threads_scaling\": [\n");
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const ScaleRow& r = scale[i];
    std::fprintf(f,
                 "    {\"nodes\": %u, \"threads\": %d, "
                 "\"events_per_sec\": %.0f, \"speedup_vs_serial\": %.3f, "
                 "\"speedup_vs_classic\": %.3f, \"hash_match\": %s}%s\n",
                 r.nodes, r.threads, r.eps, r.vs_serial, r.vs_classic,
                 r.hash_match ? "true" : "false",
                 i + 1 < scale.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  for (const ScaleRow& r : scale) {
    if (!r.hash_match) {
      std::fprintf(stderr,
                   "bench_engine: sharded trace hash diverged from the "
                   "threads=1 baseline (nodes=%u threads=%d)\n",
                   r.nodes, r.threads);
      return 1;
    }
  }
  return 0;
}
