# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--nodes=4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gups "/root/repo/build/examples/gups" "--nodes=4" "--updates=2000" "--table-mib=1")
set_tests_properties(example_gups PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat2d "/root/repo/build/examples/heat2d" "--nodes=4" "--n=32" "--iters=5")
set_tests_properties(example_heat2d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_actor_migration "/root/repo/build/examples/actor_migration" "--nodes=4" "--actors=16" "--tasks=300")
set_tests_properties(example_actor_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kvstore "/root/repo/build/examples/kvstore" "--nodes=4" "--buckets=64" "--ops=1500")
set_tests_properties(example_kvstore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bfs "/root/repo/build/examples/bfs" "--nodes=4" "--vertices=2048" "--degree=6")
set_tests_properties(example_bfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sssp "/root/repo/build/examples/sssp" "--nodes=4" "--vertices=1024" "--degree=5")
set_tests_properties(example_sssp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline" "--nodes=4" "--chunks=16" "--chunk-bytes=4096")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
