file(REMOVE_RECURSE
  "CMakeFiles/actor_migration.dir/actor_migration.cpp.o"
  "CMakeFiles/actor_migration.dir/actor_migration.cpp.o.d"
  "actor_migration"
  "actor_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actor_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
