# Empty dependencies file for actor_migration.
# This may be replaced when dependencies are built.
