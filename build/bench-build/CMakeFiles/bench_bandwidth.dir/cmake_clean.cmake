file(REMOVE_RECURSE
  "../bench/bench_bandwidth"
  "../bench/bench_bandwidth.pdb"
  "CMakeFiles/bench_bandwidth.dir/bench_bandwidth.cpp.o"
  "CMakeFiles/bench_bandwidth.dir/bench_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
