file(REMOVE_RECURSE
  "../bench/bench_bfs"
  "../bench/bench_bfs.pdb"
  "CMakeFiles/bench_bfs.dir/bench_bfs.cpp.o"
  "CMakeFiles/bench_bfs.dir/bench_bfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
