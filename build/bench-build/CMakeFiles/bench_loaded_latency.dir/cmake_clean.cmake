file(REMOVE_RECURSE
  "../bench/bench_loaded_latency"
  "../bench/bench_loaded_latency.pdb"
  "CMakeFiles/bench_loaded_latency.dir/bench_loaded_latency.cpp.o"
  "CMakeFiles/bench_loaded_latency.dir/bench_loaded_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loaded_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
