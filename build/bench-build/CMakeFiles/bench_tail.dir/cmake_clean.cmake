file(REMOVE_RECURSE
  "../bench/bench_tail"
  "../bench/bench_tail.pdb"
  "CMakeFiles/bench_tail.dir/bench_tail.cpp.o"
  "CMakeFiles/bench_tail.dir/bench_tail.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
