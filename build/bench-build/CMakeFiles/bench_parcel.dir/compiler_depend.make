# Empty compiler generated dependencies file for bench_parcel.
# This may be replaced when dependencies are built.
