file(REMOVE_RECURSE
  "../bench/bench_parcel"
  "../bench/bench_parcel.pdb"
  "CMakeFiles/bench_parcel.dir/bench_parcel.cpp.o"
  "CMakeFiles/bench_parcel.dir/bench_parcel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parcel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
