file(REMOVE_RECURSE
  "../bench/bench_topology"
  "../bench/bench_topology.pdb"
  "CMakeFiles/bench_topology.dir/bench_topology.cpp.o"
  "CMakeFiles/bench_topology.dir/bench_topology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
