file(REMOVE_RECURSE
  "../bench/bench_gups"
  "../bench/bench_gups.pdb"
  "CMakeFiles/bench_gups.dir/bench_gups.cpp.o"
  "CMakeFiles/bench_gups.dir/bench_gups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
