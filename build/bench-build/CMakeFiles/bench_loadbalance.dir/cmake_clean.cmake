file(REMOVE_RECURSE
  "../bench/bench_loadbalance"
  "../bench/bench_loadbalance.pdb"
  "CMakeFiles/bench_loadbalance.dir/bench_loadbalance.cpp.o"
  "CMakeFiles/bench_loadbalance.dir/bench_loadbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
