file(REMOVE_RECURSE
  "../bench/bench_signal"
  "../bench/bench_signal.pdb"
  "CMakeFiles/bench_signal.dir/bench_signal.cpp.o"
  "CMakeFiles/bench_signal.dir/bench_signal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
