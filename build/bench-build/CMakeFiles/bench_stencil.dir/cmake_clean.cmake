file(REMOVE_RECURSE
  "../bench/bench_stencil"
  "../bench/bench_stencil.pdb"
  "CMakeFiles/bench_stencil.dir/bench_stencil.cpp.o"
  "CMakeFiles/bench_stencil.dir/bench_stencil.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
