file(REMOVE_RECURSE
  "CMakeFiles/nvgas_rt.dir/coalescer.cpp.o"
  "CMakeFiles/nvgas_rt.dir/coalescer.cpp.o.d"
  "CMakeFiles/nvgas_rt.dir/collectives.cpp.o"
  "CMakeFiles/nvgas_rt.dir/collectives.cpp.o.d"
  "CMakeFiles/nvgas_rt.dir/runtime.cpp.o"
  "CMakeFiles/nvgas_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/nvgas_rt.dir/termination.cpp.o"
  "CMakeFiles/nvgas_rt.dir/termination.cpp.o.d"
  "libnvgas_rt.a"
  "libnvgas_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvgas_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
