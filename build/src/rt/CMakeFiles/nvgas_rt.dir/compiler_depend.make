# Empty compiler generated dependencies file for nvgas_rt.
# This may be replaced when dependencies are built.
