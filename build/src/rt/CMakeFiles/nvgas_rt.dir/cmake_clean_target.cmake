file(REMOVE_RECURSE
  "libnvgas_rt.a"
)
