# Empty compiler generated dependencies file for nvgas_gas.
# This may be replaced when dependencies are built.
