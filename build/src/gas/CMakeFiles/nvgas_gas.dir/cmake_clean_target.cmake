file(REMOVE_RECURSE
  "libnvgas_gas.a"
)
