
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gas/agas_sw.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/agas_sw.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/agas_sw.cpp.o.d"
  "/root/repo/src/gas/block_store.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/block_store.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/block_store.cpp.o.d"
  "/root/repo/src/gas/gas_api.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/gas_api.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/gas_api.cpp.o.d"
  "/root/repo/src/gas/gheap.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/gheap.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/gheap.cpp.o.d"
  "/root/repo/src/gas/gva.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/gva.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/gva.cpp.o.d"
  "/root/repo/src/gas/pgas.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/pgas.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/pgas.cpp.o.d"
  "/root/repo/src/gas/tcache.cpp" "src/gas/CMakeFiles/nvgas_gas.dir/tcache.cpp.o" "gcc" "src/gas/CMakeFiles/nvgas_gas.dir/tcache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nvgas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvgas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nvgas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
