file(REMOVE_RECURSE
  "CMakeFiles/nvgas_gas.dir/agas_sw.cpp.o"
  "CMakeFiles/nvgas_gas.dir/agas_sw.cpp.o.d"
  "CMakeFiles/nvgas_gas.dir/block_store.cpp.o"
  "CMakeFiles/nvgas_gas.dir/block_store.cpp.o.d"
  "CMakeFiles/nvgas_gas.dir/gas_api.cpp.o"
  "CMakeFiles/nvgas_gas.dir/gas_api.cpp.o.d"
  "CMakeFiles/nvgas_gas.dir/gheap.cpp.o"
  "CMakeFiles/nvgas_gas.dir/gheap.cpp.o.d"
  "CMakeFiles/nvgas_gas.dir/gva.cpp.o"
  "CMakeFiles/nvgas_gas.dir/gva.cpp.o.d"
  "CMakeFiles/nvgas_gas.dir/pgas.cpp.o"
  "CMakeFiles/nvgas_gas.dir/pgas.cpp.o.d"
  "CMakeFiles/nvgas_gas.dir/tcache.cpp.o"
  "CMakeFiles/nvgas_gas.dir/tcache.cpp.o.d"
  "libnvgas_gas.a"
  "libnvgas_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvgas_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
