# Empty dependencies file for nvgas_net.
# This may be replaced when dependencies are built.
