file(REMOVE_RECURSE
  "CMakeFiles/nvgas_net.dir/endpoint.cpp.o"
  "CMakeFiles/nvgas_net.dir/endpoint.cpp.o.d"
  "CMakeFiles/nvgas_net.dir/nic_tlb.cpp.o"
  "CMakeFiles/nvgas_net.dir/nic_tlb.cpp.o.d"
  "libnvgas_net.a"
  "libnvgas_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvgas_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
