file(REMOVE_RECURSE
  "libnvgas_net.a"
)
