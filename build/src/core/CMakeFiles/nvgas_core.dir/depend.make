# Empty dependencies file for nvgas_core.
# This may be replaced when dependencies are built.
