file(REMOVE_RECURSE
  "libnvgas_core.a"
)
