file(REMOVE_RECURSE
  "CMakeFiles/nvgas_core.dir/agas_net.cpp.o"
  "CMakeFiles/nvgas_core.dir/agas_net.cpp.o.d"
  "CMakeFiles/nvgas_core.dir/world.cpp.o"
  "CMakeFiles/nvgas_core.dir/world.cpp.o.d"
  "libnvgas_core.a"
  "libnvgas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvgas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
