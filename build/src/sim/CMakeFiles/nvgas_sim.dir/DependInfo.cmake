
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/nvgas_sim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/nvgas_sim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/nvgas_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/nvgas_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/sim/CMakeFiles/nvgas_sim.dir/fabric.cpp.o" "gcc" "src/sim/CMakeFiles/nvgas_sim.dir/fabric.cpp.o.d"
  "/root/repo/src/sim/nic.cpp" "src/sim/CMakeFiles/nvgas_sim.dir/nic.cpp.o" "gcc" "src/sim/CMakeFiles/nvgas_sim.dir/nic.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/nvgas_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/nvgas_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvgas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
