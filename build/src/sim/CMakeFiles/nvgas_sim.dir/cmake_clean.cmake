file(REMOVE_RECURSE
  "CMakeFiles/nvgas_sim.dir/cpu.cpp.o"
  "CMakeFiles/nvgas_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/nvgas_sim.dir/engine.cpp.o"
  "CMakeFiles/nvgas_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nvgas_sim.dir/fabric.cpp.o"
  "CMakeFiles/nvgas_sim.dir/fabric.cpp.o.d"
  "CMakeFiles/nvgas_sim.dir/nic.cpp.o"
  "CMakeFiles/nvgas_sim.dir/nic.cpp.o.d"
  "CMakeFiles/nvgas_sim.dir/trace.cpp.o"
  "CMakeFiles/nvgas_sim.dir/trace.cpp.o.d"
  "libnvgas_sim.a"
  "libnvgas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvgas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
