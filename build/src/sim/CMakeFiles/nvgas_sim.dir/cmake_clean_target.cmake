file(REMOVE_RECURSE
  "libnvgas_sim.a"
)
