# Empty compiler generated dependencies file for nvgas_sim.
# This may be replaced when dependencies are built.
