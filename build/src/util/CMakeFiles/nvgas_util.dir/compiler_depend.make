# Empty compiler generated dependencies file for nvgas_util.
# This may be replaced when dependencies are built.
