file(REMOVE_RECURSE
  "CMakeFiles/nvgas_util.dir/histogram.cpp.o"
  "CMakeFiles/nvgas_util.dir/histogram.cpp.o.d"
  "CMakeFiles/nvgas_util.dir/log.cpp.o"
  "CMakeFiles/nvgas_util.dir/log.cpp.o.d"
  "CMakeFiles/nvgas_util.dir/options.cpp.o"
  "CMakeFiles/nvgas_util.dir/options.cpp.o.d"
  "CMakeFiles/nvgas_util.dir/stats.cpp.o"
  "CMakeFiles/nvgas_util.dir/stats.cpp.o.d"
  "CMakeFiles/nvgas_util.dir/table.cpp.o"
  "CMakeFiles/nvgas_util.dir/table.cpp.o.d"
  "libnvgas_util.a"
  "libnvgas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvgas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
