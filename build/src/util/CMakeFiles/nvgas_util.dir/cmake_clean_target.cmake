file(REMOVE_RECURSE
  "libnvgas_util.a"
)
