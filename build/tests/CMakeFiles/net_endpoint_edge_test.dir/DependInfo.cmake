
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_endpoint_edge_test.cpp" "tests/CMakeFiles/net_endpoint_edge_test.dir/net_endpoint_edge_test.cpp.o" "gcc" "tests/CMakeFiles/net_endpoint_edge_test.dir/net_endpoint_edge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nvgas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gas/CMakeFiles/nvgas_gas.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/nvgas_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nvgas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvgas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nvgas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
