file(REMOVE_RECURSE
  "CMakeFiles/net_endpoint_edge_test.dir/net_endpoint_edge_test.cpp.o"
  "CMakeFiles/net_endpoint_edge_test.dir/net_endpoint_edge_test.cpp.o.d"
  "net_endpoint_edge_test"
  "net_endpoint_edge_test.pdb"
  "net_endpoint_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_endpoint_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
