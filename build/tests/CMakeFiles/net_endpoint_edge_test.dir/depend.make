# Empty dependencies file for net_endpoint_edge_test.
# This may be replaced when dependencies are built.
