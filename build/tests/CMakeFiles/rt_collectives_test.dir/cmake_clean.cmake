file(REMOVE_RECURSE
  "CMakeFiles/rt_collectives_test.dir/rt_collectives_test.cpp.o"
  "CMakeFiles/rt_collectives_test.dir/rt_collectives_test.cpp.o.d"
  "rt_collectives_test"
  "rt_collectives_test.pdb"
  "rt_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
