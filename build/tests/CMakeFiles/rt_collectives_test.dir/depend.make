# Empty dependencies file for rt_collectives_test.
# This may be replaced when dependencies are built.
