file(REMOVE_RECURSE
  "CMakeFiles/rt_termination_test.dir/rt_termination_test.cpp.o"
  "CMakeFiles/rt_termination_test.dir/rt_termination_test.cpp.o.d"
  "rt_termination_test"
  "rt_termination_test.pdb"
  "rt_termination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_termination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
