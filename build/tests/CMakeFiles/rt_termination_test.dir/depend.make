# Empty dependencies file for rt_termination_test.
# This may be replaced when dependencies are built.
