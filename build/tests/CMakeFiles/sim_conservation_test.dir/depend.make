# Empty dependencies file for sim_conservation_test.
# This may be replaced when dependencies are built.
