file(REMOVE_RECURSE
  "CMakeFiles/rt_action_test.dir/rt_action_test.cpp.o"
  "CMakeFiles/rt_action_test.dir/rt_action_test.cpp.o.d"
  "rt_action_test"
  "rt_action_test.pdb"
  "rt_action_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
