# Empty dependencies file for rt_action_test.
# This may be replaced when dependencies are built.
