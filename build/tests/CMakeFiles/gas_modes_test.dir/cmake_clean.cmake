file(REMOVE_RECURSE
  "CMakeFiles/gas_modes_test.dir/gas_modes_test.cpp.o"
  "CMakeFiles/gas_modes_test.dir/gas_modes_test.cpp.o.d"
  "gas_modes_test"
  "gas_modes_test.pdb"
  "gas_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
