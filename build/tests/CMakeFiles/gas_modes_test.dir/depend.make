# Empty dependencies file for gas_modes_test.
# This may be replaced when dependencies are built.
