file(REMOVE_RECURSE
  "CMakeFiles/sim_nic_test.dir/sim_nic_test.cpp.o"
  "CMakeFiles/sim_nic_test.dir/sim_nic_test.cpp.o.d"
  "sim_nic_test"
  "sim_nic_test.pdb"
  "sim_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
