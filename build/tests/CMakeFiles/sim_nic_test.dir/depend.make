# Empty dependencies file for sim_nic_test.
# This may be replaced when dependencies are built.
