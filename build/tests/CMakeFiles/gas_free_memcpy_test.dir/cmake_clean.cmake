file(REMOVE_RECURSE
  "CMakeFiles/gas_free_memcpy_test.dir/gas_free_memcpy_test.cpp.o"
  "CMakeFiles/gas_free_memcpy_test.dir/gas_free_memcpy_test.cpp.o.d"
  "gas_free_memcpy_test"
  "gas_free_memcpy_test.pdb"
  "gas_free_memcpy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_free_memcpy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
