# Empty compiler generated dependencies file for gas_free_memcpy_test.
# This may be replaced when dependencies are built.
