file(REMOVE_RECURSE
  "CMakeFiles/gas_migration_test.dir/gas_migration_test.cpp.o"
  "CMakeFiles/gas_migration_test.dir/gas_migration_test.cpp.o.d"
  "gas_migration_test"
  "gas_migration_test.pdb"
  "gas_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
