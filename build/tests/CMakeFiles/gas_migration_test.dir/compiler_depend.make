# Empty compiler generated dependencies file for gas_migration_test.
# This may be replaced when dependencies are built.
