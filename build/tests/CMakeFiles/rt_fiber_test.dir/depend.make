# Empty dependencies file for rt_fiber_test.
# This may be replaced when dependencies are built.
