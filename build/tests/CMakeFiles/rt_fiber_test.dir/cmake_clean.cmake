file(REMOVE_RECURSE
  "CMakeFiles/rt_fiber_test.dir/rt_fiber_test.cpp.o"
  "CMakeFiles/rt_fiber_test.dir/rt_fiber_test.cpp.o.d"
  "rt_fiber_test"
  "rt_fiber_test.pdb"
  "rt_fiber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_fiber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
