# Empty dependencies file for rt_lco_edge_test.
# This may be replaced when dependencies are built.
