file(REMOVE_RECURSE
  "CMakeFiles/rt_lco_edge_test.dir/rt_lco_edge_test.cpp.o"
  "CMakeFiles/rt_lco_edge_test.dir/rt_lco_edge_test.cpp.o.d"
  "rt_lco_edge_test"
  "rt_lco_edge_test.pdb"
  "rt_lco_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_lco_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
