file(REMOVE_RECURSE
  "CMakeFiles/gas_differential_test.dir/gas_differential_test.cpp.o"
  "CMakeFiles/gas_differential_test.dir/gas_differential_test.cpp.o.d"
  "gas_differential_test"
  "gas_differential_test.pdb"
  "gas_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
