# Empty dependencies file for gas_differential_test.
# This may be replaced when dependencies are built.
