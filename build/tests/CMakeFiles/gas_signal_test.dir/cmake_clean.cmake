file(REMOVE_RECURSE
  "CMakeFiles/gas_signal_test.dir/gas_signal_test.cpp.o"
  "CMakeFiles/gas_signal_test.dir/gas_signal_test.cpp.o.d"
  "gas_signal_test"
  "gas_signal_test.pdb"
  "gas_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
