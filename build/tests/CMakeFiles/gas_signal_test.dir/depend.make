# Empty dependencies file for gas_signal_test.
# This may be replaced when dependencies are built.
