file(REMOVE_RECURSE
  "CMakeFiles/gas_fuzz_test.dir/gas_fuzz_test.cpp.o"
  "CMakeFiles/gas_fuzz_test.dir/gas_fuzz_test.cpp.o.d"
  "gas_fuzz_test"
  "gas_fuzz_test.pdb"
  "gas_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
