# Empty dependencies file for gas_fuzz_test.
# This may be replaced when dependencies are built.
