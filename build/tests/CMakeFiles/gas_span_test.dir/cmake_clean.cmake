file(REMOVE_RECURSE
  "CMakeFiles/gas_span_test.dir/gas_span_test.cpp.o"
  "CMakeFiles/gas_span_test.dir/gas_span_test.cpp.o.d"
  "gas_span_test"
  "gas_span_test.pdb"
  "gas_span_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
