# Empty dependencies file for gas_span_test.
# This may be replaced when dependencies are built.
