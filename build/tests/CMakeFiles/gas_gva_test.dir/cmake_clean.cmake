file(REMOVE_RECURSE
  "CMakeFiles/gas_gva_test.dir/gas_gva_test.cpp.o"
  "CMakeFiles/gas_gva_test.dir/gas_gva_test.cpp.o.d"
  "gas_gva_test"
  "gas_gva_test.pdb"
  "gas_gva_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_gva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
