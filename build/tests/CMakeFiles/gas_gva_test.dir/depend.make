# Empty dependencies file for gas_gva_test.
# This may be replaced when dependencies are built.
