# Empty compiler generated dependencies file for rt_coalescer_test.
# This may be replaced when dependencies are built.
