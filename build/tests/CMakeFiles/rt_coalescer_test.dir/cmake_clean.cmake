file(REMOVE_RECURSE
  "CMakeFiles/rt_coalescer_test.dir/rt_coalescer_test.cpp.o"
  "CMakeFiles/rt_coalescer_test.dir/rt_coalescer_test.cpp.o.d"
  "rt_coalescer_test"
  "rt_coalescer_test.pdb"
  "rt_coalescer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_coalescer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
