# Empty compiler generated dependencies file for gas_heap_test.
# This may be replaced when dependencies are built.
