file(REMOVE_RECURSE
  "CMakeFiles/gas_heap_test.dir/gas_heap_test.cpp.o"
  "CMakeFiles/gas_heap_test.dir/gas_heap_test.cpp.o.d"
  "gas_heap_test"
  "gas_heap_test.pdb"
  "gas_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
