# Empty compiler generated dependencies file for net_endpoint_test.
# This may be replaced when dependencies are built.
