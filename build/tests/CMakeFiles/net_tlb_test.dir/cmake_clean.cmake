file(REMOVE_RECURSE
  "CMakeFiles/net_tlb_test.dir/net_tlb_test.cpp.o"
  "CMakeFiles/net_tlb_test.dir/net_tlb_test.cpp.o.d"
  "net_tlb_test"
  "net_tlb_test.pdb"
  "net_tlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
