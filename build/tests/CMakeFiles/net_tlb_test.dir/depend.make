# Empty dependencies file for net_tlb_test.
# This may be replaced when dependencies are built.
