file(REMOVE_RECURSE
  "CMakeFiles/gas_whitebox_test.dir/gas_whitebox_test.cpp.o"
  "CMakeFiles/gas_whitebox_test.dir/gas_whitebox_test.cpp.o.d"
  "gas_whitebox_test"
  "gas_whitebox_test.pdb"
  "gas_whitebox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_whitebox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
