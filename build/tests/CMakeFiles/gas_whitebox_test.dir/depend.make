# Empty dependencies file for gas_whitebox_test.
# This may be replaced when dependencies are built.
