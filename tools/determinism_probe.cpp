// Determinism double-run gate.
//
// Prints the FNV-1a trace hashes of (a) a seeded timing-wheel engine
// stress schedule and (b) full World integration scenarios in every
// address-space mode. CI runs the binary TWICE in separate processes and
// fails if the outputs differ: cross-process comparison is what catches
// address-order nondeterminism (ASLR moves the heap between runs, so a
// pointer-keyed ordering or unordered-container iteration shows up as a
// hash flip even when a single-process rerun looks stable).
//
//   determinism_probe [--seed=N]        print one line per scenario hash
//   determinism_probe --self-check      run every scenario twice in-process
//                                       and exit 1 on any hash mismatch
//   determinism_probe --parallel        run every World scenario on the
//                                       sharded engine at 2/4/8 host
//                                       threads and exit 1 if any trace
//                                       hash differs from the threads=1
//                                       serial baseline (ctest
//                                       `determinism_parallel`; requires
//                                       -DNVGAS_PARALLEL=ON)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/nvgas.hpp"
#include "kvstore/harness.hpp"
#include "util/rng.hpp"

namespace {

using nvgas::sim::Time;

// Scenario A: the sim_engine_wheel workload shape — randomized delays
// around the wheel horizon, nested rescheduling, cancellations.
std::uint64_t engine_wheel_hash(std::uint64_t seed) {
  nvgas::sim::Engine e;
  nvgas::util::Rng rng(seed);
  std::vector<nvgas::sim::Engine::TimerId> timers;
  for (int i = 0; i < 2000; ++i) {
    const Time t = rng.next() % (4 * nvgas::sim::Engine::kDefaultHorizonNs);
    if (rng.next() % 4 == 0) {
      timers.push_back(e.at_cancellable(t, [] {}));
    } else {
      e.at(t, [&e, &rng] {
        if (rng.next() % 8 == 0) {
          e.after(rng.next() % 512, [] {});
        }
      });
    }
  }
  for (std::size_t i = 0; i < timers.size(); i += 2) {
    (void)e.cancel(timers[i]);
  }
  e.run();
  return e.trace_hash();
}

// Scenario A': the sharded engine without any World on top — eight lanes
// exchanging randomized cross-lane hops through post(). Exercises the
// safe-window advance, mailbox drain order and per-lane hash folding in
// isolation, so an engine-level determinism bug shows up here even when
// the full-stack scenarios mask it.
constexpr std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Hopper {
  nvgas::sim::Engine* e;
  std::uint32_t lanes;
  // All chain state travels by value inside the closures: lanes share
  // nothing, so the trace is a pure function of (seed, schedule).
  void hop(std::uint32_t lane, std::uint64_t rng, Time t, int depth) {
    if (depth == 0) return;
    const std::uint64_t r = splitmix(rng);
    // Hop to a lane other than our own, so every link stays exercised.
    const std::uint32_t dst =
        (lane + 1 + static_cast<std::uint32_t>(r % (lanes - 1))) % lanes;
    const Time nt = t + 1 + ((r >> 32) % 2048);
    if (r % 5 == 0) e->after(r % 128, [] {});  // same-lane filler event
    e->post(dst, nt,
            [this, dst, r, nt, depth] { hop(dst, r, nt, depth - 1); });
  }
};

std::uint64_t engine_shards_hash(std::uint64_t seed, int threads) {
  nvgas::sim::Engine e;
  constexpr std::uint32_t kLanes = 8;
  e.configure_shards(kLanes, /*lookahead=*/500, threads < 1 ? 1 : threads);
  Hopper h{&e, kLanes};
  for (std::uint32_t k = 0; k < kLanes; ++k) {
    const std::uint64_t r0 = seed ^ (0x9e3779b97f4a7c15ULL * (k + 1));
    e.at_shard(k, k + 1, [&h, k, r0] { h.hop(k, r0, k + 1, 64); });
  }
  e.run();
  return e.trace_hash();
}

// Scenario B: a full World integration pass — allocation, one-sided
// puts/gets, atomics, migration, spanning I/O — on one GAS mode.
// `threads` > 0 runs the identical program on the conservative-parallel
// sharded engine; 0 keeps the classic single-queue engine.
std::uint64_t world_hash(nvgas::GasMode mode, std::uint64_t seed,
                         const nvgas::sim::FaultPlan& faults = {},
                         int threads = 0) {
  nvgas::Config cfg = nvgas::Config::with_nodes(8, mode);
  cfg.seed = seed;
  cfg.machine.threads = threads;
  cfg.faults = faults;  // empty plan: injector never built, trace untouched
  nvgas::World world(cfg);
  world.run_spmd([&world](nvgas::Context& ctx) -> nvgas::Fiber {
    const nvgas::Gva table = nvgas::alloc_cyclic(ctx, 8, 4096);
    for (int b = 0; b < 8; ++b) {
      co_await nvgas::memput_value<double>(
          ctx, table.advanced(b * 4096, 4096), ctx.rank() + b * 1.5);
    }
    const nvgas::Gva counter = nvgas::alloc_cyclic(ctx, 1, 64);
    for (int i = 0; i < 4; ++i) {
      (void)co_await nvgas::fetch_add(ctx, counter, 7);
    }
    (void)co_await nvgas::memget_value<double>(
        ctx, table.advanced(((ctx.rank() + 3) % 8) * 4096, 4096));
    co_await world.coll().barrier(ctx);
    if (world.gas().supports_migration() && ctx.rank() == 0) {
      co_await nvgas::migrate(ctx, table, (table.home(ctx.ranks()) + 2) % ctx.ranks());
      (void)co_await nvgas::memget_value<double>(ctx, table);
    }
    std::vector<std::byte> bulk(2 * 4096);
    for (std::size_t i = 0; i < bulk.size(); ++i) {
      bulk[i] = static_cast<std::byte>((i + static_cast<std::size_t>(ctx.rank())) & 0xff);
    }
    co_await nvgas::memput_span(ctx, table.advanced(5 * 4096, 4096), bulk);
    (void)co_await nvgas::memget_span(ctx, table.advanced(5 * 4096, 4096), bulk.size());
    co_await world.coll().barrier(ctx);
    nvgas::free_alloc(ctx, counter);
    nvgas::free_alloc(ctx, table);
  });
  return world.engine().trace_hash();
}

// Scenario C: a World with the adaptive migration subsystem enabled —
// a skewed access pattern heats blocks homed on rank 0 until the
// balancer migrates them mid-run. Balancer epochs, policy decisions and
// the migrations they issue all land in the trace hash, so any
// nondeterminism in heat bookkeeping or plan ordering flips the hash.
std::uint64_t world_lb_hash(nvgas::GasMode mode, nvgas::lb::PolicyKind policy,
                            std::uint64_t seed, int threads = 0) {
  nvgas::Config cfg = nvgas::Config::with_nodes(8, mode);
  cfg.seed = seed;
  cfg.machine.threads = threads;
  cfg.lb.policy = policy;
  cfg.lb.epoch_ns = 20'000;
  cfg.lb.decay_shift = 1;
  cfg.lb.max_moves_per_epoch = 4;
  cfg.lb.max_inflight = 2;
  cfg.lb.min_heat = nvgas::lb::kAccessUnit;
  cfg.lb.benefit_ns_per_access = 50'000;
  nvgas::World world(cfg);
  world.run_spmd([&world](nvgas::Context& ctx) -> nvgas::Fiber {
    const nvgas::Gva table = nvgas::alloc_cyclic(ctx, 8, 512);
    // Every rank hammers the two blocks after its own, so each block's
    // heat is dominated by non-owners and the balancer has work to do.
    for (int round = 0; round < 6; ++round) {
      for (int k = 1; k <= 2; ++k) {
        const nvgas::Gva target =
            table.advanced(((ctx.rank() + k) % 8) * 512, 512);
        (void)co_await nvgas::fetch_add(ctx, target, 1);
        co_await nvgas::memput_value<std::uint64_t>(
            ctx, target.advanced(8, 512),
            static_cast<std::uint64_t>(ctx.rank() * 100 + round));
      }
      co_await ctx.sleep(5'000);
    }
    co_await world.coll().barrier(ctx);
    // Quiesce the balancer before tearing down the allocation: freeing a
    // block with a migration in flight is a protocol violation.
    if (ctx.rank() == 0 && world.balancer() != nullptr) {
      while (world.balancer()->inflight() > 0) co_await ctx.sleep(1'000);
      world.balancer()->set_enabled(false);
    }
    co_await world.coll().barrier(ctx);
    nvgas::free_alloc(ctx, table);
  });
  return world.engine().trace_hash();
}

// Scenario D: the same integration pass over a deliberately unreliable
// fabric. Fault gate draws, drop/dup decisions, retransmission timers
// and recovery traffic all land in the trace hash, so nondeterminism in
// the injector's per-link streams or the reliability layer's timer
// bookkeeping flips the hash even when payloads still arrive intact.
nvgas::sim::FaultPlan probe_drop_plan() {
  nvgas::sim::FaultPlan p;
  nvgas::sim::FaultRule r;
  r.drop = 0.05;
  p.rules.push_back(r);
  p.brownouts.push_back({-1, -1, 30'000, 45'000});
  return p;
}

nvgas::sim::FaultPlan probe_dupdelay_plan() {
  nvgas::sim::FaultPlan p;
  nvgas::sim::FaultRule r;
  r.dup = 0.05;
  r.delay = 0.25;
  r.delay_ns = 3'000;
  p.rules.push_back(r);
  return p;
}

struct Scenario {
  const char* name;
  // `threads` == 0 runs the classic engine; > 0 the sharded one.
  std::uint64_t (*run)(std::uint64_t seed, int threads);
  // Participates in --parallel (i.e. the scenario honors `threads`).
  bool parallel;
};

std::uint64_t wheel(std::uint64_t s, int) { return engine_wheel_hash(s); }
std::uint64_t world_pgas(std::uint64_t s, int t) {
  return world_hash(nvgas::GasMode::kPgas, s, {}, t);
}
std::uint64_t world_sw(std::uint64_t s, int t) {
  return world_hash(nvgas::GasMode::kAgasSw, s, {}, t);
}
std::uint64_t world_net(std::uint64_t s, int t) {
  return world_hash(nvgas::GasMode::kAgasNet, s, {}, t);
}

template <nvgas::GasMode Mode, nvgas::lb::PolicyKind Policy>
std::uint64_t world_lb(std::uint64_t s, int t) {
  return world_lb_hash(Mode, Policy, s, t);
}

template <nvgas::GasMode Mode>
std::uint64_t world_faults_drop(std::uint64_t s, int t) {
  return world_hash(Mode, s, probe_drop_plan(), t);
}

template <nvgas::GasMode Mode>
std::uint64_t world_faults_dupdelay(std::uint64_t s, int t) {
  return world_hash(Mode, s, probe_dupdelay_plan(), t);
}

// Scenario E: the kvstore application end-to-end — Zipf-skewed open-loop
// client traffic, per-bucket locking, TTL timers, hot-set rotation with
// the hysteresis balancer responding. The densest timer/parcel workload
// in the tree, so it is the best canary for lane-ordering bugs.
template <nvgas::GasMode Mode>
std::uint64_t kv_hash(std::uint64_t seed, int threads) {
  nvgas::apps::kv::KvRunConfig rc;
  rc.mode = Mode;
  rc.nodes = 8;
  rc.threads = threads;
  rc.policy = nvgas::lb::PolicyKind::kHysteresis;
  rc.kv.buckets = 32;
  rc.client.keyspace = 256;
  rc.client.rate_per_node = 2.0e5;
  rc.client.t_start = 30'000;
  rc.client.duration = 250'000;
  rc.client.t_shift = 160'000;
  rc.client.seed = seed;
  return nvgas::apps::kv::run_kv(rc).trace_hash;
}

constexpr Scenario kScenarios[] = {
    {"engine_wheel", wheel, false},
    {"engine_shards", engine_shards_hash, true},
    {"world_pgas", world_pgas, true},
    {"world_agas_sw", world_sw, true},
    {"world_agas_net", world_net, true},
    {"lb_pgas_greedy",
     world_lb<nvgas::GasMode::kPgas, nvgas::lb::PolicyKind::kGreedy>, true},
    {"lb_pgas_hyst",
     world_lb<nvgas::GasMode::kPgas, nvgas::lb::PolicyKind::kHysteresis>, true},
    {"lb_agas_sw_greedy",
     world_lb<nvgas::GasMode::kAgasSw, nvgas::lb::PolicyKind::kGreedy>, true},
    {"lb_agas_sw_hyst",
     world_lb<nvgas::GasMode::kAgasSw, nvgas::lb::PolicyKind::kHysteresis>,
     true},
    {"lb_agas_net_greedy",
     world_lb<nvgas::GasMode::kAgasNet, nvgas::lb::PolicyKind::kGreedy>, true},
    {"lb_agas_net_hyst",
     world_lb<nvgas::GasMode::kAgasNet, nvgas::lb::PolicyKind::kHysteresis>,
     true},
    {"faults_pgas_drop", world_faults_drop<nvgas::GasMode::kPgas>, true},
    {"faults_agas_sw_drop", world_faults_drop<nvgas::GasMode::kAgasSw>, true},
    {"faults_agas_net_drop", world_faults_drop<nvgas::GasMode::kAgasNet>, true},
    {"faults_pgas_dupdelay", world_faults_dupdelay<nvgas::GasMode::kPgas>,
     true},
    {"faults_agas_sw_dupdelay", world_faults_dupdelay<nvgas::GasMode::kAgasSw>,
     true},
    {"faults_agas_net_dupdelay",
     world_faults_dupdelay<nvgas::GasMode::kAgasNet>, true},
    {"kvstore_pgas", kv_hash<nvgas::GasMode::kPgas>, true},
    {"kvstore_agas_sw", kv_hash<nvgas::GasMode::kAgasSw>, true},
    {"kvstore_agas_net", kv_hash<nvgas::GasMode::kAgasNet>, true},
};

// --parallel: every World scenario at 2/4/8 host threads must reproduce
// the threads=1 serial-sharded baseline hash byte-for-byte. (threads=1
// vs the classic engine intentionally differ: sharding gives each lane
// its own sequence space; the invariant is thread-count independence.)
int run_parallel(std::uint64_t seed) {
  if (!nvgas::sim::Engine::kParallelEnabled) {
    std::printf("determinism_probe: built with NVGAS_PARALLEL=OFF; "
                "parallel scenarios skipped\n");
    return 0;
  }
  int failures = 0;
  for (const Scenario& s : kScenarios) {
    if (!s.parallel) continue;
    const std::uint64_t base = s.run(seed, 1);
    bool ok = true;
    for (const int t : {2, 4, 8}) {
      const std::uint64_t h = s.run(seed, t);
      if (h != base) {
        ok = false;
        std::fprintf(stderr,
                     "determinism_probe: %s threads=%d hash 0x%016llx != "
                     "serial 0x%016llx\n",
                     s.name, t, static_cast<unsigned long long>(h),
                     static_cast<unsigned long long>(base));
        ++failures;
      }
    }
    std::printf("%-24s %s (0x%016llx @ 1/2/4/8 threads)\n", s.name,
                ok ? "ok" : "MISMATCH", static_cast<unsigned long long>(base));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 0x5eed));
  bool self_check = false;
  bool parallel = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
    if (std::strcmp(argv[i], "--parallel") == 0) parallel = true;
  }
  if (parallel) return run_parallel(seed);

  int failures = 0;
  for (const Scenario& s : kScenarios) {
    // The sharded-engine scenario needs the parallel build even at one
    // thread; every other scenario runs the classic engine here.
    if (s.run == engine_shards_hash && !nvgas::sim::Engine::kParallelEnabled) {
      continue;
    }
    const int threads = s.run == engine_shards_hash ? 1 : 0;
    const std::uint64_t h1 = s.run(seed, threads);
    if (self_check) {
      const std::uint64_t h2 = s.run(seed, threads);
      const bool ok = h1 == h2;
      std::printf("%-16s %s (0x%016llx%s)\n", s.name, ok ? "ok" : "MISMATCH",
                  static_cast<unsigned long long>(h1),
                  ok ? "" : " vs rerun");
      if (!ok) {
        std::fprintf(stderr,
                     "determinism_probe: %s rerun hash 0x%016llx != 0x%016llx\n",
                     s.name, static_cast<unsigned long long>(h2),
                     static_cast<unsigned long long>(h1));
        ++failures;
      }
    } else {
      std::printf("%s_hash=0x%016llx\n", s.name,
                  static_cast<unsigned long long>(h1));
    }
  }
  return failures == 0 ? 0 : 1;
}
