// Determinism double-run gate.
//
// Prints the FNV-1a trace hashes of (a) a seeded timing-wheel engine
// stress schedule and (b) full World integration scenarios in every
// address-space mode. CI runs the binary TWICE in separate processes and
// fails if the outputs differ: cross-process comparison is what catches
// address-order nondeterminism (ASLR moves the heap between runs, so a
// pointer-keyed ordering or unordered-container iteration shows up as a
// hash flip even when a single-process rerun looks stable).
//
//   determinism_probe [--seed=N]        print one line per scenario hash
//   determinism_probe --self-check      run every scenario twice in-process
//                                       and exit 1 on any hash mismatch
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/nvgas.hpp"
#include "util/rng.hpp"

namespace {

using nvgas::sim::Time;

// Scenario A: the sim_engine_wheel workload shape — randomized delays
// around the wheel horizon, nested rescheduling, cancellations.
std::uint64_t engine_wheel_hash(std::uint64_t seed) {
  nvgas::sim::Engine e;
  nvgas::util::Rng rng(seed);
  std::vector<nvgas::sim::Engine::TimerId> timers;
  for (int i = 0; i < 2000; ++i) {
    const Time t = rng.next() % (4 * nvgas::sim::Engine::kDefaultHorizonNs);
    if (rng.next() % 4 == 0) {
      timers.push_back(e.at_cancellable(t, [] {}));
    } else {
      e.at(t, [&e, &rng] {
        if (rng.next() % 8 == 0) {
          e.after(rng.next() % 512, [] {});
        }
      });
    }
  }
  for (std::size_t i = 0; i < timers.size(); i += 2) {
    (void)e.cancel(timers[i]);
  }
  e.run();
  return e.trace_hash();
}

// Scenario B: a full World integration pass — allocation, one-sided
// puts/gets, atomics, migration, spanning I/O — on one GAS mode.
std::uint64_t world_hash(nvgas::GasMode mode, std::uint64_t seed,
                         const nvgas::sim::FaultPlan& faults = {}) {
  nvgas::Config cfg = nvgas::Config::with_nodes(8, mode);
  cfg.seed = seed;
  cfg.faults = faults;  // empty plan: injector never built, trace untouched
  nvgas::World world(cfg);
  world.run_spmd([&world](nvgas::Context& ctx) -> nvgas::Fiber {
    const nvgas::Gva table = nvgas::alloc_cyclic(ctx, 8, 4096);
    for (int b = 0; b < 8; ++b) {
      co_await nvgas::memput_value<double>(
          ctx, table.advanced(b * 4096, 4096), ctx.rank() + b * 1.5);
    }
    const nvgas::Gva counter = nvgas::alloc_cyclic(ctx, 1, 64);
    for (int i = 0; i < 4; ++i) {
      (void)co_await nvgas::fetch_add(ctx, counter, 7);
    }
    (void)co_await nvgas::memget_value<double>(
        ctx, table.advanced(((ctx.rank() + 3) % 8) * 4096, 4096));
    co_await world.coll().barrier(ctx);
    if (world.gas().supports_migration() && ctx.rank() == 0) {
      co_await nvgas::migrate(ctx, table, (table.home(ctx.ranks()) + 2) % ctx.ranks());
      (void)co_await nvgas::memget_value<double>(ctx, table);
    }
    std::vector<std::byte> bulk(2 * 4096);
    for (std::size_t i = 0; i < bulk.size(); ++i) {
      bulk[i] = static_cast<std::byte>((i + static_cast<std::size_t>(ctx.rank())) & 0xff);
    }
    co_await nvgas::memput_span(ctx, table.advanced(5 * 4096, 4096), bulk);
    (void)co_await nvgas::memget_span(ctx, table.advanced(5 * 4096, 4096), bulk.size());
    co_await world.coll().barrier(ctx);
    nvgas::free_alloc(ctx, counter);
    nvgas::free_alloc(ctx, table);
  });
  return world.engine().trace_hash();
}

// Scenario C: a World with the adaptive migration subsystem enabled —
// a skewed access pattern heats blocks homed on rank 0 until the
// balancer migrates them mid-run. Balancer epochs, policy decisions and
// the migrations they issue all land in the trace hash, so any
// nondeterminism in heat bookkeeping or plan ordering flips the hash.
std::uint64_t world_lb_hash(nvgas::GasMode mode, nvgas::lb::PolicyKind policy,
                            std::uint64_t seed) {
  nvgas::Config cfg = nvgas::Config::with_nodes(8, mode);
  cfg.seed = seed;
  cfg.lb.policy = policy;
  cfg.lb.epoch_ns = 20'000;
  cfg.lb.decay_shift = 1;
  cfg.lb.max_moves_per_epoch = 4;
  cfg.lb.max_inflight = 2;
  cfg.lb.min_heat = nvgas::lb::kAccessUnit;
  cfg.lb.benefit_ns_per_access = 50'000;
  nvgas::World world(cfg);
  world.run_spmd([&world](nvgas::Context& ctx) -> nvgas::Fiber {
    const nvgas::Gva table = nvgas::alloc_cyclic(ctx, 8, 512);
    // Every rank hammers the two blocks after its own, so each block's
    // heat is dominated by non-owners and the balancer has work to do.
    for (int round = 0; round < 6; ++round) {
      for (int k = 1; k <= 2; ++k) {
        const nvgas::Gva target =
            table.advanced(((ctx.rank() + k) % 8) * 512, 512);
        (void)co_await nvgas::fetch_add(ctx, target, 1);
        co_await nvgas::memput_value<std::uint64_t>(
            ctx, target.advanced(8, 512),
            static_cast<std::uint64_t>(ctx.rank() * 100 + round));
      }
      co_await ctx.sleep(5'000);
    }
    co_await world.coll().barrier(ctx);
    // Quiesce the balancer before tearing down the allocation: freeing a
    // block with a migration in flight is a protocol violation.
    if (ctx.rank() == 0 && world.balancer() != nullptr) {
      while (world.balancer()->inflight() > 0) co_await ctx.sleep(1'000);
      world.balancer()->set_enabled(false);
    }
    co_await world.coll().barrier(ctx);
    nvgas::free_alloc(ctx, table);
  });
  return world.engine().trace_hash();
}

// Scenario D: the same integration pass over a deliberately unreliable
// fabric. Fault gate draws, drop/dup decisions, retransmission timers
// and recovery traffic all land in the trace hash, so nondeterminism in
// the injector's per-link streams or the reliability layer's timer
// bookkeeping flips the hash even when payloads still arrive intact.
nvgas::sim::FaultPlan probe_drop_plan() {
  nvgas::sim::FaultPlan p;
  nvgas::sim::FaultRule r;
  r.drop = 0.05;
  p.rules.push_back(r);
  p.brownouts.push_back({-1, -1, 30'000, 45'000});
  return p;
}

nvgas::sim::FaultPlan probe_dupdelay_plan() {
  nvgas::sim::FaultPlan p;
  nvgas::sim::FaultRule r;
  r.dup = 0.05;
  r.delay = 0.25;
  r.delay_ns = 3'000;
  p.rules.push_back(r);
  return p;
}

struct Scenario {
  const char* name;
  std::uint64_t (*run)(std::uint64_t seed);
};

std::uint64_t world_pgas(std::uint64_t s) { return world_hash(nvgas::GasMode::kPgas, s); }
std::uint64_t world_sw(std::uint64_t s) { return world_hash(nvgas::GasMode::kAgasSw, s); }
std::uint64_t world_net(std::uint64_t s) { return world_hash(nvgas::GasMode::kAgasNet, s); }

template <nvgas::GasMode Mode, nvgas::lb::PolicyKind Policy>
std::uint64_t world_lb(std::uint64_t s) {
  return world_lb_hash(Mode, Policy, s);
}

template <nvgas::GasMode Mode>
std::uint64_t world_faults_drop(std::uint64_t s) {
  return world_hash(Mode, s, probe_drop_plan());
}

template <nvgas::GasMode Mode>
std::uint64_t world_faults_dupdelay(std::uint64_t s) {
  return world_hash(Mode, s, probe_dupdelay_plan());
}

constexpr Scenario kScenarios[] = {
    {"engine_wheel", engine_wheel_hash},
    {"world_pgas", world_pgas},
    {"world_agas_sw", world_sw},
    {"world_agas_net", world_net},
    {"lb_pgas_greedy",
     world_lb<nvgas::GasMode::kPgas, nvgas::lb::PolicyKind::kGreedy>},
    {"lb_pgas_hyst",
     world_lb<nvgas::GasMode::kPgas, nvgas::lb::PolicyKind::kHysteresis>},
    {"lb_agas_sw_greedy",
     world_lb<nvgas::GasMode::kAgasSw, nvgas::lb::PolicyKind::kGreedy>},
    {"lb_agas_sw_hyst",
     world_lb<nvgas::GasMode::kAgasSw, nvgas::lb::PolicyKind::kHysteresis>},
    {"lb_agas_net_greedy",
     world_lb<nvgas::GasMode::kAgasNet, nvgas::lb::PolicyKind::kGreedy>},
    {"lb_agas_net_hyst",
     world_lb<nvgas::GasMode::kAgasNet, nvgas::lb::PolicyKind::kHysteresis>},
    {"faults_pgas_drop", world_faults_drop<nvgas::GasMode::kPgas>},
    {"faults_agas_sw_drop", world_faults_drop<nvgas::GasMode::kAgasSw>},
    {"faults_agas_net_drop", world_faults_drop<nvgas::GasMode::kAgasNet>},
    {"faults_pgas_dupdelay", world_faults_dupdelay<nvgas::GasMode::kPgas>},
    {"faults_agas_sw_dupdelay", world_faults_dupdelay<nvgas::GasMode::kAgasSw>},
    {"faults_agas_net_dupdelay",
     world_faults_dupdelay<nvgas::GasMode::kAgasNet>},
};

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opt(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 0x5eed));
  bool self_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) self_check = true;
  }

  int failures = 0;
  for (const Scenario& s : kScenarios) {
    const std::uint64_t h1 = s.run(seed);
    if (self_check) {
      const std::uint64_t h2 = s.run(seed);
      const bool ok = h1 == h2;
      std::printf("%-16s %s (0x%016llx%s)\n", s.name, ok ? "ok" : "MISMATCH",
                  static_cast<unsigned long long>(h1),
                  ok ? "" : " vs rerun");
      if (!ok) {
        std::fprintf(stderr,
                     "determinism_probe: %s rerun hash 0x%016llx != 0x%016llx\n",
                     s.name, static_cast<unsigned long long>(h2),
                     static_cast<unsigned long long>(h1));
        ++failures;
      }
    } else {
      std::printf("%s_hash=0x%016llx\n", s.name,
                  static_cast<unsigned long long>(h1));
    }
  }
  return failures == 0 ? 0 : 1;
}
