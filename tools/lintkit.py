#!/usr/bin/env python3
"""lintkit — shared machinery for the nvgas source linters.

Both linters (tools/simlint, tools/protolint) are dependency-free Python
analyzers over the C++ tree; what they share lives here so their CLIs
and outputs stay identical:

  * a C++ comment/string stripper that preserves line/column positions
    and collects `<tool>:allow(RULE[: why])` suppression directives,
  * the Finding record and the suppression lookup,
  * the three output formats every linter must speak:
      - text (default): `path:line: RULE: message`, summary on stderr —
        the format `.github/problem-matchers/nvgas-lint.json` parses,
      - `--json`: the `nvgas-lint-v1` schema, identical across tools so
        downstream consumers need one parser,
      - `--github-annotations`: GitHub `::error` workflow commands.

Exit-status contract (all linters): 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h", ".ipp"}

JSON_SCHEMA = "nvgas-lint-v1"


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclasses.dataclass
class StrippedFile:
    path: str
    code: str  # comments and literal contents blanked, newlines preserved
    allows: dict  # line (1-based) -> set of rule ids suppressed there


def allow_re(tool: str) -> re.Pattern:
    """Suppression directive for one tool: `<tool>:allow(D1,P2: why)`.
    Tools ignore each other's directives, so a line may carry both a
    simlint:allow and a protolint:allow."""
    return re.compile(
        re.escape(tool) + r":allow\(\s*([A-Za-z0-9_,\s]+?)\s*(?::[^)]*)?\)")


def strip_and_collect(path: str, text: str, tool: str) -> StrippedFile:
    """Blank out comments and string/char literal contents (preserving
    newlines and column positions), collecting `<tool>:allow` directives
    from comment text as we go."""
    directive = allow_re(tool)
    out = []
    allows: dict[int, set[str]] = {}
    line = 1
    i = 0
    n = len(text)
    comment_start_line = 0
    comment_buf: list[str] = []

    def note_allow(buf: str, at_line: int) -> None:
        for m in directive.finditer(buf):
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows.setdefault(at_line, set()).update(rules)

    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal? Look back for R / u8R / LR etc.
                m = re.search(r'(?:u8|[uUL])?R$', "".join(out[-3:]))
                if m and text[i - 1] == "R":
                    j = text.find("(", i + 1)
                    raw_delim = ")" + text[i + 1 : j] + '"' if j > 0 else ')"'
                    state = "raw"
                else:
                    state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                note_allow("".join(comment_buf), comment_start_line)
                state = "code"
                out.append("\n")
            else:
                comment_buf.append(c)
                out.append(" " if c != "\n" else c)
            i += 1
            if c == "\n":
                line += 1
            continue
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                note_allow("".join(comment_buf), comment_start_line)
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(c)
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(c if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append('"')
                i += len(raw_delim)
                continue
            out.append(c if c == "\n" else " ")
        if c == "\n":
            line += 1
        i += 1
    if state in ("line_comment", "block_comment"):
        note_allow("".join(comment_buf), comment_start_line)
    return StrippedFile(path=path, code="".join(out), allows=allows)


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def line_text(code: str, lineno: int) -> str:
    lines = code.split("\n")
    return lines[lineno - 1] if 0 < lineno <= len(lines) else ""


def is_suppressed(f: StrippedFile, lineno: int, rule: str) -> bool:
    if rule in f.allows.get(lineno, set()):
        return True
    # A standalone suppression comment (no code on its line) covers the
    # next line — handy above multi-line declarations.
    prev = lineno - 1
    if rule in f.allows.get(prev, set()) and not line_text(f.code, prev).strip():
        return True
    return False


def gather_files(paths: list, prog: str = "lintkit") -> list:
    files = []
    for p in paths:
        path = pathlib.Path(p)
        if path.is_dir():
            files.extend(
                sorted(q for q in path.rglob("*")
                       if q.suffix in SOURCE_SUFFIXES and q.is_file()))
        elif path.is_file():
            files.append(path)
        else:
            print(f"{prog}: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def add_output_args(parser) -> None:
    """The shared output-format flags (mutually exclusive)."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="emit findings as nvgas-lint-v1 JSON on stdout")
    group.add_argument("--github-annotations", action="store_true",
                       help="emit findings as GitHub ::error workflow commands")


def _gh_escape(s: str) -> str:
    return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def emit(findings: list, tool: str, *, as_json: bool = False,
         github: bool = False) -> int:
    """Print findings in the selected format; returns the exit status."""
    if as_json:
        doc = {
            "schema": JSON_SCHEMA,
            "tool": tool,
            "count": len(findings),
            "rules": sorted({f.rule for f in findings}),
            "findings": [
                {"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message}
                for f in findings
            ],
        }
        print(json.dumps(doc, indent=2))
        return 1 if findings else 0
    if github:
        for f in findings:
            print(f"::error file={_gh_escape(f.path)},line={f.line},"
                  f"title={tool} {f.rule}::{_gh_escape(f.message)}")
        if findings:
            print(f"{tool}: {len(findings)} violation(s)", file=sys.stderr)
        return 1 if findings else 0
    for f in findings:
        print(f.render())
    if findings:
        print(f"{tool}: {len(findings)} violation(s) "
              f"across rules {{{', '.join(sorted({f.rule for f in findings}))}}}",
              file=sys.stderr)
        return 1
    return 0
