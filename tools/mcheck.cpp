// mcheck driver: bounded model checking of the GAS protocols.
//
//   ./mcheck                                   # all scenarios, all modes
//   ./mcheck --mode=agas-sw --bound=2          # deeper on one mode
//   ./mcheck --scenario=put-put-race --list    # scenario library
//   ./mcheck --scenario=S --mode=M --replay=17:2,40:1   # replay a
//                                              # counterexample schedule
//
// Exit status 1 on any invariant violation; the report includes the
// replayable schedule string.
#include <cstdio>
#include <string>
#include <vector>

#include "kvstore/mcheck_kv.hpp"
#include "core/mcheck.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using nvgas::core::McheckOptions;
using nvgas::core::McheckResult;
using nvgas::core::Scenario;

void print_usage(const char* prog) {
  std::printf(
      "usage: %s [--mode=pgas|agas-sw|agas-net|all] [--scenario=NAME|all]\n"
      "          [--bound=N] [--budget=N] [--window=NS] [--nodes=N]\n"
      "          [--fault] [--replay=SCHEDULE] [--list]\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  const nvgas::util::Options opts(argc, argv);
  if (opts.has("help")) {
    print_usage(opts.program().c_str());
    return 0;
  }

  std::vector<Scenario> library = nvgas::core::scenario_library();
  // App-level scenarios ride along without core depending on apps.
  library.push_back(nvgas::apps::kv::kv_put_get_del_scenario());
  if (opts.has("list")) {
    for (const auto& sc : library) {
      std::printf("%-20s %s\n", sc.name.c_str(), sc.description.c_str());
    }
    return 0;
  }

  McheckOptions mco;
  mco.nodes = static_cast<int>(opts.get_int("nodes", 8));
  mco.delay_bound = static_cast<int>(opts.get_int("bound", 2));
  mco.max_schedules = opts.get_uint("budget", 3000);
  mco.window_ns = opts.get_uint("window", 2500);
  mco.fault_sw_skip_sharer_inv = opts.get_bool("fault", false);

  const std::string mode_arg = opts.get("mode", "all");
  std::vector<nvgas::gas::GasMode> modes;
  if (mode_arg == "all") {
    modes = {nvgas::gas::GasMode::kPgas, nvgas::gas::GasMode::kAgasSw,
             nvgas::gas::GasMode::kAgasNet};
  } else {
    nvgas::gas::GasMode m{};
    if (!nvgas::core::parse_mode(mode_arg, &m)) {
      std::fprintf(stderr, "unknown --mode=%s\n", mode_arg.c_str());
      return 2;
    }
    modes = {m};
  }

  const std::string scenario_arg = opts.get("scenario", "all");
  std::vector<Scenario> scenarios;
  for (const auto& sc : library) {
    if (scenario_arg == "all" || scenario_arg == sc.name) {
      scenarios.push_back(sc);
    }
  }
  if (scenarios.empty()) {
    std::fprintf(stderr, "unknown --scenario=%s (try --list)\n",
                 scenario_arg.c_str());
    return 2;
  }

  // Replay mode: run exactly one schedule of one scenario on one mode.
  if (opts.has("replay")) {
    if (scenarios.size() != 1 || modes.size() != 1) {
      std::fprintf(stderr,
                   "--replay needs a single --scenario and --mode\n");
      return 2;
    }
    nvgas::sim::Schedule sched;
    const std::string text = opts.get("replay", "-");
    if (!nvgas::sim::Schedule::parse(text, &sched)) {
      std::fprintf(stderr, "malformed --replay=%s\n", text.c_str());
      return 2;
    }
    mco.mode = modes[0];
    const McheckResult res = nvgas::core::run_one(scenarios[0], mco, sched);
    if (res.violation) {
      std::printf("VIOLATION %s [%s] schedule %s\n  %s\n",
                  res.scenario.c_str(), nvgas::core::mode_name(res.mode),
                  text.c_str(), res.message.c_str());
      return 1;
    }
    std::printf("ok: %s [%s] schedule %s holds (%llu invariant checks)\n",
                res.scenario.c_str(), nvgas::core::mode_name(res.mode),
                text.c_str(),
                static_cast<unsigned long long>(res.invariant_checks));
    return 0;
  }

  nvgas::util::Table table("mcheck: delay-bounded schedule exploration");
  table.columns({"scenario", "mode", "points", "schedules", "distinct orders",
                 "checks", "result"});
  std::vector<McheckResult> failures;
  for (const auto mode : modes) {
    mco.mode = mode;
    for (const auto& sc : scenarios) {
      const McheckResult res = nvgas::core::run_scenario(sc, mco);
      table.cell(res.scenario)
          .cell(nvgas::core::mode_name(res.mode))
          .cell(res.choice_points)
          .cell(res.schedules_run)
          .cell(res.distinct_orders)
          .cell(res.invariant_checks)
          .cell(res.violation ? "VIOLATION" : "ok")
          .end_row();
      if (res.violation) failures.push_back(res);
    }
  }
  std::printf("%s", table.str().c_str());

  for (const auto& res : failures) {
    std::printf(
        "\nVIOLATION %s [%s]\n  %s\n  replay: %s --scenario=%s --mode=%s "
        "--nodes=%d%s --replay=%s\n",
        res.scenario.c_str(), nvgas::core::mode_name(res.mode),
        res.message.c_str(), opts.program().c_str(), res.scenario.c_str(),
        nvgas::core::mode_name(res.mode), mco.nodes,
        mco.fault_sw_skip_sharer_inv ? " --fault" : "",
        res.counterexample.c_str());
  }
  return failures.empty() ? 0 : 1;
}
