// simlint fixture: sim/nic.{cpp,hpp} are the sanctioned implementation
// of the injection path — park_msg/arrive/deliver_parked calls here are
// what D6 protects, so the file-name exemption keeps the rule quiet.
struct Nic {
  int park_msg(unsigned long when, int src, unsigned long bytes);
  void arrive(int idx);
  void deliver_parked(int idx);
  void send(int dst);
};

void Nic::send(int dst) {
  Nic* dst_nic = this + dst;
  const int idx = dst_nic->park_msg(0, 0, 8);
  dst_nic->arrive(idx);
  dst_nic->deliver_parked(idx);
}
