// simlint fixture: this file lives under a sim/ path component, so
// mutable static-storage declarations must fire D7 — under the
// conservative-parallel engine this tree runs on several host threads.
#include <cstdint>
#include <vector>

std::uint64_t source();

static std::uint64_t g_counter = 0;                     // simlint-expect(D7)
thread_local int g_depth = 0;                           // simlint-expect(D7)
inline std::vector<int> g_registry;                     // simlint-expect(D7)

struct Stats {
  static std::uint64_t total_events;                    // simlint-expect(D7)
};

std::uint64_t bump() {
  static std::uint64_t calls = 0;                       // simlint-expect(D7)
  g_counter += source();
  return ++calls;
}
