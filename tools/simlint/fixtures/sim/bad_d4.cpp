// simlint fixture: this file lives under a sim/ path component, so
// std::function declarations must fire D4.
#include <functional>

struct HotPath {
  std::function<void()> callback;                       // simlint-expect(D4)
  using Handler = std::function<void(int)>;             // simlint-expect(D4)
};
