// simlint fixture: known-good file under a sim/ path — every rule must
// stay quiet. Exercises justified suppressions and the legitimate
// constructs that the heuristics must not confuse for violations.
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

// A suppressed std::function on a hot path (frozen-oracle idiom).
struct Oracle {
  std::function<void()> cb;  // simlint:allow(D4: frozen reference oracle)
};

struct GoodState {
  // Lookup-only unordered map with a justified annotation.
  std::unordered_map<std::uint64_t, int> index;  // simlint:allow(D1: lookup-only, never iterated)
  // Deterministically ordered map: iteration is fine, no annotation needed.
  std::map<std::uint64_t, int> ordered;
  std::vector<int> items;

  int walk() {
    int total = 0;
    for (auto& [k, v] : ordered) total += v;  // ordered: fine
    for (int v : items) total += v;           // vector: fine
    // find/erase-by-key on unordered state is order-independent: fine.
    auto it = index.find(7);
    if (it != index.end()) index.erase(it);
    return total;
  }
};

// A suppression comment on its own line covers the following line.
struct Annotated {
  // simlint:allow(D1: generation counters, keyed access only)
  std::unordered_map<std::uint64_t, std::uint64_t> gens;
};

struct FakeEngine {
  template <typename F>
  void at(unsigned long t, F fn);
};

void good_captures(FakeEngine& engine, GoodState& st) {
  // By-value captures: fine.
  engine.at(10, [p = &st] { p->walk(); });
  // Suppressed by-reference capture of an engine-outliving object.
  engine.at(20, [&st] { st.walk(); });  // simlint:allow(D5: st outlives the engine)
  // rand/time tokens inside strings and comments must not fire D2:
  const char* s = "call rand() and time(NULL) at random_device o'clock";
  (void)s;
  // Member functions *named* like clock sources must not fire D2 either.
  struct Wire { std::uint64_t wire_time(std::uint64_t) { return 0; } } w;
  (void)w.wire_time(0);
}

// --- D7: static-storage constructs that must stay quiet -----------------

// Immutable statics in every spelling: fine.
static const int kTableSize = 64;
static constexpr std::uint64_t kMagic = 0x5eedULL;
inline constexpr int kInlineLimit = 8;

struct D7Quiet {
  static constexpr bool kEnabled = true;
  // Static member *functions* are not state.
  static int lookup(int key);
  // Annotated host-thread context (the engine's own tl_* idiom).
  // simlint:allow(D7: host-thread execution context, never shared across shards)
  static thread_local int tl_depth;
};

// A static function definition at namespace scope: not state either.
static int d7_helper() { return D7Quiet::lookup(kTableSize); }

int consume_d7() { return d7_helper() + kInlineLimit + static_cast<int>(kMagic); }

// --- D8: node-accessor constructs that must stay quiet ------------------

struct D8Nic {
  void enqueue(int k);
};

struct D8Fabric {
  D8Nic& nic(int node);
  D8Nic& nic();  // argless overload: receiver is implicitly local
  int nodes() const;
};

void d8_quiet(D8Fabric& fabric, int self) {
  // Argless accessor: nothing node-indexed about the receiver.
  fabric.nic().enqueue(1);
  // Accessor result bound, not dereferenced inline: the binding site is
  // where the ownership reasoning lives, and ShardSan checks it.
  D8Nic& mine = fabric.nic(self);
  mine.enqueue(2);
  // Justified self-access through the indexed accessor.
  fabric.nic(self).enqueue(3);  // simlint:allow(D8: self-indexed, receiver is this node's own NIC)
  // Plain calls that merely *look* like accessors but have no
  // dereference afterwards: fine.
  (void)fabric.nodes();
}
