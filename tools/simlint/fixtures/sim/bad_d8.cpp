// simlint fixture: this file lives under a sim/ path component, so
// dereferencing straight through a node-indexed accessor must fire D8
// — under the sharded engine the target object belongs to another
// lane, and the access bypasses Engine::post routing.
#include <cstdint>

struct FakeNic {
  void enqueue(int k);
  std::uint64_t inflight() const;
};

struct FakeStore {
  void release(std::uint64_t lva, std::uint32_t len);
};

struct FakeFabric {
  FakeNic& nic(int node);
  FakeStore& store(int node);
  FakeNic* node(int node);
};

void cross_lane(FakeFabric& fabric, int dst, std::uint64_t lva) {
  fabric.nic(dst).enqueue(7);                          // simlint-expect(D8)
  fabric.store(dst).release(lva, 64);                   // simlint-expect(D8)
  fabric.node(dst)->enqueue(9);                        // simlint-expect(D8)
}

void cross_lane_read(const FakeFabric& fabric, int peer) {
  // Reads count too: the heuristic cannot tell a racy read from a
  // mutation, and const loads of foreign state are still unsynchronized.
  (void)const_cast<FakeFabric&>(fabric).nic(peer).inflight();  // simlint-expect(D8)
}
