// simlint fixture: by-reference captures handed to Engine scheduling
// entry points must fire D5.
struct FakeEngine {
  template <typename F>
  void at(unsigned long t, F fn);
  template <typename F>
  void after(unsigned long d, F fn);
  template <typename F>
  int at_cancellable(unsigned long t, F fn);
};

void bad_captures(FakeEngine& engine) {
  int local = 0;
  engine.at(10, [&] { ++local; });                       // simlint-expect(D5)
  engine.after(5, [&local] { ++local; });                // simlint-expect(D5)
  (void)engine.at_cancellable(7, [this_unused = 0, &local] {  // simlint-expect(D5)
    ++local;
  });
}
