// simlint fixture: every D1 shape must fire (see simlint-expect markers).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct BadUnordered {
  std::unordered_map<std::uint64_t, int> table;  // simlint-expect(D1)
  std::unordered_set<std::uint64_t> members;     // simlint-expect(D1)

  int sum() const {
    int total = 0;
    for (const auto& [k, v] : table) {  // simlint-expect(D1)
      total += v;
    }
    for (auto it = members.begin(); it != members.end(); ++it) {  // simlint-expect(D1)
      total += static_cast<int>(*it);
    }
    return total;
  }
};

// Multi-line declaration: the flag lands on the line holding the type token.
struct MultiLine {
  std::unordered_map<std::uint64_t,  // simlint-expect(D1)
                     std::unordered_map<std::uint64_t, int>>  // simlint-expect(D1)
      nested;
};
