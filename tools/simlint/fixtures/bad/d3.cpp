// simlint fixture: pointer-keyed ordered containers must fire D3.
#include <map>
#include <set>

struct Node {
  int id;
};

struct BadAddressOrder {
  std::map<Node*, int> by_node;                   // simlint-expect(D3)
  std::set<const Node*> seen;                     // simlint-expect(D3)
  std::map<int, int, std::less<int*>> weird;      // simlint-expect(D3)
};
