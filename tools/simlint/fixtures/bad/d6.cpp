// simlint fixture: direct NIC-injection calls that bypass the Explorer
// hook in Nic::send() must fire D6 — a message parked or delivered
// behind the hook's back is invisible to mcheck's schedule exploration.
struct FakeNic {
  int park_msg(unsigned long when, int src, unsigned long bytes);
  void arrive(int idx);
  void deliver_parked(int idx);
};

struct Gate {
  void arrive(unsigned long t);  // LCO arrive: must NOT fire D6
};

void bypass_injection(FakeNic& dst_nic, FakeNic* remote_nic, Gate& gate) {
  const int idx = dst_nic.park_msg(10, 0, 64);  // simlint-expect(D6)
  dst_nic.arrive(idx);                          // simlint-expect(D6)
  remote_nic->arrive(idx);                      // simlint-expect(D6)
  remote_nic->deliver_parked(idx);              // simlint-expect(D6)
  gate.arrive(10);  // LCO completion, not a NIC delivery: clean
}

void justified_bypass(FakeNic& dst_nic) {
  // simlint:allow(D6: NIC unit test constructs its own delivery)
  dst_nic.arrive(0);
}
