// simlint fixture: every D2 nondeterminism source must fire.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_entropy() {
  auto wall = std::chrono::system_clock::now();          // simlint-expect(D2)
  auto mono = std::chrono::steady_clock::now();          // simlint-expect(D2)
  std::random_device rd;                                 // simlint-expect(D2)
  std::srand(42);                                        // simlint-expect(D2)
  unsigned r = static_cast<unsigned>(std::rand());       // simlint-expect(D2)
  auto t = time(nullptr);                                // simlint-expect(D2)
  auto t2 = std::time(nullptr);                          // simlint-expect(D2)
  (void)wall;
  (void)mono;
  return r + rd() + static_cast<unsigned>(t) + static_cast<unsigned>(t2);
}
