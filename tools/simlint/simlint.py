#!/usr/bin/env python3
"""simlint — simulator-specific determinism/lifetime lint for nvgas.

The simulator's whole evaluation method rests on one property: a given
seed produces a byte-identical (time, seq) event stream. That property
is easy to break silently — one range-for over an unordered_map, one
wall-clock read, one pointer-keyed ordered container — so this lint
makes the discipline machine-checked instead of reviewed-for.

Rules (see docs/STATIC_ANALYSIS.md for the full rationale):

  D1  unordered-container discipline.
      (a) every declaration of std::unordered_map/std::unordered_set
          must carry a justified suppression (the "audited: lookup-only"
          annotation), and
      (b) iterating one (range-for, .begin()/.cbegin()/.rbegin()) is
          flagged wherever the container name was declared unordered.
      Iterated containers must switch to std::map / sorted-key
      iteration or justify why the order cannot reach simulation state.
  D2  no nondeterminism sources: wall clocks (std::chrono system/steady
      clock, time(), clock()), rand()/srand(), std::random_device.
      All randomness must flow through util::Rng with an explicit seed.
  D3  no pointer-keyed std::map/std::set and no std::less<T*>:
      iteration order would follow allocation addresses (ASLR).
  D4  no std::function in src/sim/ and src/net/ hot paths;
      util::InlineFunction is mandated there (zero-allocation event
      path, PR 1).
  D5  heuristic: a by-reference lambda capture passed to
      Engine::at/after/at_cancellable/after_cancellable outlives the
      current frame and is a dangling-capture hazard; capture by value.
  D6  no direct NIC-injection calls (park_msg / deliver_parked /
      <nic>.arrive) outside sim/nic.{cpp,hpp}: Nic::send() is the one
      sanctioned injection point, where the mcheck Explorer hook can
      delay the arrival; a bypass makes that delivery invisible to
      bounded model checking.
  D7  no mutable static-storage state (static / thread_local /
      namespace-scope inline variables that are not const) in src/sim,
      src/net or src/gas: under the conservative-parallel engine those
      trees execute on several host threads at once, so shared mutable
      statics are a data race and a determinism hole, not a style
      smell. Legitimate cases (host-thread execution context, frozen
      tables) carry `simlint:allow(D7: shard-local why)`.
  D8  heuristic: dereferencing straight through a node-indexed accessor
      (`fabric.nic(dst).park(...)`, `heap_->store(home).release(...)`)
      in src/sim, src/net or src/gas touches an object that belongs to
      another lane under the sharded engine. Cross-lane work must route
      via Engine::post/at_global or adopt the lane
      (Engine::ShardContext); sites where the receiver is provably
      local (self-indexed, barrier context, contract exception) carry
      `simlint:allow(D8: why this context may touch the target)`.
      ShardSan (docs/STATIC_ANALYSIS.md) verifies the same contract
      dynamically; D8 is its static, review-time front line.

Suppression: append `// simlint:allow(D1)` or
`// simlint:allow(D1: justification)` to the offending line; a
standalone suppression comment line applies to the next line. Several
rules may share one directive: `simlint:allow(D1,D3: reason)`.

Usage:
  simlint.py [PATH ...]            lint files / directories (default: src)
  simlint.py --json ...            emit findings as nvgas-lint-v1 JSON
  simlint.py --github-annotations  emit GitHub ::error workflow commands
  simlint.py --list-unordered ...  dump the unordered-container symbol table

Exit status: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
import lintkit  # noqa: E402  (shared stripper/Finding/output machinery)

SOURCE_SUFFIXES = lintkit.SOURCE_SUFFIXES

ALLOW_RE = lintkit.allow_re("simlint")

# Re-exported so rule code (and external callers) keep their names.
Finding = lintkit.Finding
StrippedFile = lintkit.StrippedFile
line_of = lintkit.line_of
line_text = lintkit.line_text
is_suppressed = lintkit.is_suppressed

RULES = {
    "D1": "unordered-container discipline (nondeterministic iteration order)",
    "D2": "nondeterminism source (wall clock / ambient randomness)",
    "D3": "pointer-keyed ordered container (address-order nondeterminism)",
    "D4": "std::function on a sim/net hot path (util::InlineFunction mandated)",
    "D5": "by-reference lambda capture passed to Engine scheduling (dangling hazard)",
    "D6": "direct NIC injection bypassing the Explorer hook in Nic::send()",
    "D7": "mutable static-storage state in a shard-parallel tree (data race)",
    "D8": "direct dereference through a node-indexed accessor (cross-lane access)",
}


def strip_and_collect(path: str, text: str) -> StrippedFile:
    return lintkit.strip_and_collect(path, text, tool="simlint")


# --- D1: unordered-container discipline -------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set)\s*<")


def match_template_close(code: str, open_idx: int) -> int:
    """Index just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    i = open_idx
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # Ignore `->` and right-shift is not valid in a type anyway.
            if i > 0 and code[i - 1] == "-":
                i += 1
                continue
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1
        i += 1
    return -1


NAME_AFTER_TYPE_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*(?:[;={(]|$)", re.M)


def collect_unordered_names(files: list) -> dict:
    """name -> first declaration site, for every variable/member declared
    with an unordered container type anywhere in the scanned set."""
    names: dict[str, str] = {}
    for f in files:
        for m in UNORDERED_DECL_RE.finditer(f.code):
            close = match_template_close(f.code, m.end() - 1)
            if close < 0:
                continue
            nm = NAME_AFTER_TYPE_RE.match(f.code[close : close + 200])
            if nm:
                names.setdefault(
                    nm.group(1), f"{f.path}:{line_of(f.code, m.start())}"
                )
    return names


RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^()]*|[^()]*\([^()]*\)[^()]*):([^;()]+)\)")
BEGIN_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(c?r?begin)\s*\(")
TAIL_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def check_d1(f: StrippedFile, unordered: dict) -> list:
    findings = []
    for m in UNORDERED_DECL_RE.finditer(f.code):
        ln = line_of(f.code, m.start())
        if is_suppressed(f, ln, "D1"):
            continue
        findings.append(
            Finding(
                f.path,
                ln,
                "D1",
                "std::unordered_%s: iteration order is nondeterministic; "
                "use std::map or annotate with simlint:allow(D1: "
                "<why it is never iterated>)" % m.group(1),
            )
        )
    for m in RANGE_FOR_RE.finditer(f.code):
        expr = m.group(2)
        tail = TAIL_IDENT_RE.search(expr.strip())
        if tail and tail.group(1) in unordered:
            ln = line_of(f.code, m.start())
            if not is_suppressed(f, ln, "D1"):
                findings.append(
                    Finding(
                        f.path,
                        ln,
                        "D1",
                        f"range-for over unordered container "
                        f"'{tail.group(1)}' (declared unordered at "
                        f"{unordered[tail.group(1)]}): hash order can leak "
                        "into the event stream",
                    )
                )
    for m in BEGIN_CALL_RE.finditer(f.code):
        if m.group(1) in unordered:
            ln = line_of(f.code, m.start())
            if not is_suppressed(f, ln, "D1"):
                findings.append(
                    Finding(
                        f.path,
                        ln,
                        "D1",
                        f"'{m.group(1)}.{m.group(2)}()' iterates an unordered "
                        f"container (declared unordered at "
                        f"{unordered[m.group(1)]})",
                    )
                )
    return findings


# --- D2: nondeterminism sources ----------------------------------------------

D2_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*(system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono::{} reads the wall clock"),
    (re.compile(r"(?<![\w.:])\b(system_clock|steady_clock|high_resolution_clock)\s*::"),
     "{} reads the wall clock"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device is ambient entropy"),
    (re.compile(r"\bstd\s*::\s*(time|clock)\s*\("), "std::{}() reads the wall clock"),
    (re.compile(r"(?<![\w.:>])\b(time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "{}() reads the wall clock"),
    (re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>])\b)(rand|srand)\s*\("),
     "{}() is unseeded global randomness; use util::Rng"),
]


def check_d2(f: StrippedFile) -> list:
    findings = []
    for pat, msg in D2_PATTERNS:
        for m in pat.finditer(f.code):
            ln = line_of(f.code, m.start())
            if is_suppressed(f, ln, "D2"):
                continue
            what = msg.format(m.group(1) if m.groups() else "")
            findings.append(
                Finding(f.path, ln, "D2",
                        what + "; all nondeterminism must flow through an "
                               "explicitly seeded util::Rng"))
    return findings


# --- D3: pointer-keyed ordered containers ------------------------------------

ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<")
LESS_PTR_RE = re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*>")


def first_template_arg(code: str, open_idx: int) -> str:
    depth = 0
    i = open_idx
    start = open_idx + 1
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            if i > 0 and code[i - 1] == "-":
                i += 1
                continue
            depth -= 1
            if depth == 0:
                return code[start:i]
        elif c == "," and depth == 1:
            return code[start:i]
        elif c in ";{}":
            break
        i += 1
    return ""


def check_d3(f: StrippedFile) -> list:
    findings = []
    for m in ORDERED_DECL_RE.finditer(f.code):
        key = first_template_arg(f.code, m.end() - 1)
        if "*" in key:
            ln = line_of(f.code, m.start())
            if not is_suppressed(f, ln, "D3"):
                findings.append(
                    Finding(f.path, ln, "D3",
                            f"std::{m.group(1)} keyed by pointer type "
                            f"'{key.strip()}': iteration order follows "
                            "allocation addresses (varies run to run under "
                            "ASLR); key by a stable id instead"))
    for m in LESS_PTR_RE.finditer(f.code):
        ln = line_of(f.code, m.start())
        if not is_suppressed(f, ln, "D3"):
            findings.append(
                Finding(f.path, ln, "D3",
                        "std::less over a pointer type orders by address; "
                        "key by a stable id instead"))
    return findings


# --- D4: std::function on sim/net hot paths ----------------------------------

STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\s*<")


def in_hot_tree(path: str) -> bool:
    parts = pathlib.PurePath(path).parts
    return "sim" in parts or "net" in parts


def check_d4(f: StrippedFile) -> list:
    if not in_hot_tree(f.path):
        return []
    findings = []
    for m in STD_FUNCTION_RE.finditer(f.code):
        ln = line_of(f.code, m.start())
        if is_suppressed(f, ln, "D4"):
            continue
        findings.append(
            Finding(f.path, ln, "D4",
                    "std::function on a sim/net hot path allocates per "
                    "capture; util::InlineFunction is mandated here "
                    "(see DESIGN.md §3)"))
    return findings


# --- D5: by-reference captures handed to Engine scheduling -------------------

SCHED_CALL_RE = re.compile(r"(?:\.|->)\s*(at|after|at_cancellable|after_cancellable)\s*\(")
LAMBDA_INTRO_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\(|\{|mutable|noexcept|->)")
BYREF_CAPTURE_RE = re.compile(r"(?:^|,)\s*&\s*(?:[A-Za-z_]\w*)?\s*(?:,|$)")


def balanced_call_extent(code: str, open_idx: int, limit: int = 4000) -> int:
    depth = 0
    i = open_idx
    end = min(len(code), open_idx + limit)
    while i < end:
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return end


def check_d5(f: StrippedFile) -> list:
    findings = []
    for m in SCHED_CALL_RE.finditer(f.code):
        open_idx = m.end() - 1
        close = balanced_call_extent(f.code, open_idx)
        args = f.code[open_idx + 1 : close]
        for lm in LAMBDA_INTRO_RE.finditer(args):
            captures = lm.group(1)
            if BYREF_CAPTURE_RE.search(captures):
                ln = line_of(f.code, open_idx + 1 + lm.start())
                if not is_suppressed(f, ln, "D5"):
                    findings.append(
                        Finding(f.path, ln, "D5",
                                f"by-reference lambda capture "
                                f"'[{captures.strip()}]' passed to "
                                f"Engine::{m.group(1)}(): the frame is gone "
                                "when the event fires; capture by value"))
                break  # one finding per scheduling call is enough
    return findings


# --- D6: direct NIC injection bypassing the Explorer hook --------------------

# Method-call sites only (receiver required): the declarations in
# sim/nic.hpp and the internal calls in sim/nic.cpp are the sanctioned
# implementation and are exempted by file name below.
D6_PARKED_RE = re.compile(r"(?:\.|->)\s*(park_msg|deliver_parked)\s*\(")
D6_ARRIVE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*arrive\s*\(")


def d6_exempt(path: str) -> bool:
    p = pathlib.PurePath(path)
    return p.name in ("nic.cpp", "nic.hpp") and "sim" in p.parts


def check_d6(f: StrippedFile) -> list:
    if d6_exempt(f.path):
        return []
    findings = []

    def flag(ln: int, what: str) -> None:
        if not is_suppressed(f, ln, "D6"):
            findings.append(
                Finding(f.path, ln, "D6",
                        f"{what} bypasses the Explorer injection hook in "
                        "Nic::send(): mcheck cannot reorder this delivery, "
                        "so explored schedules silently under-cover it; "
                        "route the message through Nic::send()"))

    for m in D6_PARKED_RE.finditer(f.code):
        flag(line_of(f.code, m.start()),
             f"direct call to Nic::{m.group(1)}()")
    for m in D6_ARRIVE_RE.finditer(f.code):
        # `arrive` is also an LCO method; only a NIC-named receiver is a
        # delivery injection.
        if "nic" not in m.group(1).lower():
            continue
        flag(line_of(f.code, m.start()),
             f"direct call to {m.group(1)}.arrive()")
    return findings


# --- D7: mutable static-storage state in shard-parallel trees ----------------

# Candidate storage-class keywords. `inline` at namespace scope also
# gives a variable static storage duration (C++17), so it is included;
# inline *functions* are filtered out by the call-shape check below.
D7_DECL_RE = re.compile(r"\b(static|thread_local|inline)\b")
D7_CONST_RE = re.compile(r"\b(const|constexpr|consteval|constinit)\b")


def in_shard_tree(path: str) -> bool:
    parts = pathlib.PurePath(path).parts
    return "sim" in parts or "net" in parts or "gas" in parts


def check_d7(f: StrippedFile) -> list:
    if not in_shard_tree(f.path):
        return []
    findings = []
    flagged_lines: set[int] = set()
    for m in D7_DECL_RE.finditer(f.code):
        # Full statement: from the previous statement/scope boundary to
        # the first ';' or '{' after the keyword.
        stmt_start = max(f.code.rfind(";", 0, m.start()),
                         f.code.rfind("{", 0, m.start()),
                         f.code.rfind("}", 0, m.start())) + 1
        end = m.end()
        n = len(f.code)
        while end < n and f.code[end] not in ";{":
            end += 1
        decl = f.code[stmt_start:end]
        # const-qualified anywhere in the declaration: immutable, fine.
        if D7_CONST_RE.search(decl):
            continue
        # Function (or member-function) declaration: a '(' before any
        # '='. Variables with direct-init parens are rare enough that a
        # suppression is a fair ask.
        pos_eq = decl.find("=")
        pos_par = decl.find("(")
        if pos_par != -1 and (pos_eq == -1 or pos_par < pos_eq):
            continue
        # `inline namespace` / `static_assert`-like non-declarations.
        if re.search(r"\b(?:namespace|using|friend|return|typedef)\b", decl):
            continue
        # A bare storage keyword with no declarator (e.g. macro noise).
        if not re.search(r"[A-Za-z_]\w*\s*(?:=|;|\{|$)", f.code[m.end():end] + f.code[end:end + 1]):
            continue
        ln = line_of(f.code, m.start())
        if ln in flagged_lines or is_suppressed(f, ln, "D7"):
            continue
        flagged_lines.add(ln)
        findings.append(
            Finding(f.path, ln, "D7",
                    f"mutable {m.group(1)}-storage state in a shard-parallel "
                    "tree: sim/net/gas code runs on several host threads "
                    "under the sharded engine, so shared mutable statics "
                    "race; make it per-shard state or annotate with "
                    "simlint:allow(D7: <why it is shard-local>)"))
    return findings


# --- D8: cross-lane access through node-indexed accessors --------------------

# An accessor call with a non-empty argument immediately dereferenced:
# `fabric.nic(dst).park_msg(...)`, `heap_->store(home).release(...)`.
# Reaching through a node-indexed accessor and touching the object in
# place is exactly how state escapes Engine::post routing under the
# sharded engine. The argument must be paren-free (casts and nested
# calls defeat the heuristic — those sites are ShardSan's job).
D8_ACCESS_RE = re.compile(
    r"\b(?:cpu|nic|mem|node|store)\s*\(\s*[^()]*[^\s()][^()]*\)\s*(?:\.|->)")


def d8_exempt(path: str) -> bool:
    # fabric.hpp defines the accessors themselves (and Fabric routes by
    # construction); everything else justifies per site.
    p = pathlib.PurePath(path)
    return p.name == "fabric.hpp" and "sim" in p.parts


def check_d8(f: StrippedFile) -> list:
    if not in_shard_tree(f.path) or d8_exempt(f.path):
        return []
    findings = []
    for m in D8_ACCESS_RE.finditer(f.code):
        ln = line_of(f.code, m.start())
        if is_suppressed(f, ln, "D8"):
            continue
        findings.append(
            Finding(f.path, ln, "D8",
                    "direct dereference through a node-indexed accessor: "
                    "under the sharded engine the target object lives on "
                    "another lane; route via Engine::post/at_global, adopt "
                    "the lane (Engine::ShardContext), or annotate with "
                    "simlint:allow(D8: <why this context may touch the "
                    "target>)"))
    return findings


# --- driver ------------------------------------------------------------------

def gather_files(paths: list) -> list:
    return lintkit.gather_files(paths, prog="simlint")


def lint_paths(paths: list, rules: set) -> list:
    stripped = []
    for fp in gather_files(paths):
        try:
            text = fp.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"simlint: cannot read {fp}: {e}", file=sys.stderr)
            sys.exit(2)
        stripped.append(strip_and_collect(str(fp), text))
    unordered = collect_unordered_names(stripped)
    findings: list[Finding] = []
    for f in stripped:
        if "D1" in rules:
            findings.extend(check_d1(f, unordered))
        if "D2" in rules:
            findings.extend(check_d2(f))
        if "D3" in rules:
            findings.extend(check_d3(f))
        if "D4" in rules:
            findings.extend(check_d4(f))
        if "D5" in rules:
            findings.extend(check_d5(f))
        if "D6" in rules:
            findings.extend(check_d6(f))
        if "D7" in rules:
            findings.extend(check_d7(f))
        if "D8" in rules:
            findings.extend(check_d8(f))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


def main(argv: list) -> int:
    ap = argparse.ArgumentParser(prog="simlint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ap.add_argument("--rules", default=",".join(sorted(RULES)),
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("--list-unordered", action="store_true",
                    help="dump the unordered-container symbol table and exit")
    lintkit.add_output_args(ap)
    args = ap.parse_args(argv)

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"simlint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    if args.list_unordered:
        stripped = [strip_and_collect(str(fp),
                                      fp.read_text(encoding="utf-8",
                                                   errors="replace"))
                    for fp in gather_files(paths)]
        for name, site in sorted(collect_unordered_names(stripped).items()):
            print(f"{name}\t{site}")
        return 0

    findings = lint_paths(paths, rules)
    return lintkit.emit(findings, "simlint", as_json=args.json,
                        github=args.github_annotations)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
