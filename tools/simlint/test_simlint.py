#!/usr/bin/env python3
"""simlint self-test.

Every fixture line marked `// simlint-expect(<rule>)` must produce
exactly that finding, and no fixture may produce a finding on an
unmarked line — so each rule both fires on the seeded violations and
stays quiet on the known-good constructs (including justified
suppressions).

Run:  python3 tools/simlint/test_simlint.py
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import simlint  # noqa: E402

EXPECT_RE = re.compile(r"simlint-expect\(([A-Za-z0-9]+)\)")


def expected_findings(root: pathlib.Path):
    expected = set()
    for fp in sorted(root.rglob("*.cpp")):
        for lineno, line in enumerate(
                fp.read_text(encoding="utf-8").splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                expected.add((str(fp), lineno, m.group(1)))
    return expected


def main() -> int:
    fixtures = HERE / "fixtures"
    failures = []

    expected = expected_findings(fixtures)
    actual = {(f.path, f.line, f.rule)
              for f in simlint.lint_paths([str(fixtures)], set(simlint.RULES))}

    for miss in sorted(expected - actual):
        failures.append(f"MISSING: expected {miss[2]} at {miss[0]}:{miss[1]} "
                        "did not fire")
    for extra in sorted(actual - expected):
        failures.append(f"SPURIOUS: unexpected {extra[2]} at "
                        f"{extra[0]}:{extra[1]}")

    # Every rule must be exercised by at least one fixture violation.
    fired_rules = {r for (_, _, r) in actual}
    for rule in simlint.RULES:
        if rule not in fired_rules:
            failures.append(f"COVERAGE: no fixture exercises rule {rule}")

    # CLI contract: violations exit 1, clean tree exits 0.
    bad = subprocess.run(
        [sys.executable, str(HERE / "simlint.py"), str(fixtures / "bad")],
        capture_output=True, text=True)
    if bad.returncode != 1:
        failures.append(f"CLI: expected exit 1 on bad fixtures, "
                        f"got {bad.returncode}\n{bad.stdout}{bad.stderr}")
    good = subprocess.run(
        [sys.executable, str(HERE / "simlint.py"),
         str(fixtures / "sim" / "good.cpp")],
        capture_output=True, text=True)
    if good.returncode != 0:
        failures.append(f"CLI: expected exit 0 on good fixture, "
                        f"got {good.returncode}\n{good.stdout}{good.stderr}")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"simlint self-test: FAILED ({len(failures)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"simlint self-test: OK ({len(expected)} seeded violations, "
          f"{len(simlint.RULES)} rules covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
