// protolint fixture (not compiled): P4 violations.
// Containers sized by the node count: O(P) state per node, the exact
// growth pattern that blocks 1024-node scale-out (ROADMAP item 2).

namespace fx4 {

struct Windows {
  explicit Windows(const Fabric& fabric)
      : peer_tx_(static_cast<std::size_t>(fabric.nodes())) {}  // protolint-expect(P4)

  void rebuild(const World& world, int ranks_) {
    window_.resize(world.nodes());  // protolint-expect(P4)
    load_.assign(static_cast<std::size_t>(ranks_), 0);  // protolint-expect(P4)
    scratch_.reserve(num_nodes);  // protolint-expect(P4)
  }

  std::vector<int> peer_tx_;
  std::vector<int> window_;
  std::vector<int> load_;
  std::vector<int> scratch_;
};

}  // namespace fx4
