// protolint fixture (not compiled): P5 violations.
// An armed retransmission timer with no cancel() path, and a TimerId
// discarded outright: both survive the completion they guard.

namespace fx5 {

struct Courier {
  void arm(Engine& eng, sim::Time t) {
    hb_ = eng.at_cancellable(t + rto_ns_, on_expire_);  // protolint-expect(P5)
  }

  void fire_and_forget(Engine& eng, sim::Time t) {
    (void)eng.after_cancellable(t, on_expire_);  // protolint-expect(P5)
  }

  sim::TimerId hb_;
  sim::Time rto_ns_ = 0;
  int on_expire_ = 0;
};

}  // namespace fx5
