// protolint fixture (not compiled): P3 violation.
// A park site with no matching wake anywhere in the program: the
// parked task sleeps forever.

namespace fx3 {

struct TaskQueue {
  void park_task(int id);
};

void stall(TaskQueue& q) {
  q.park_task(1);  // protolint-expect(P3)
}

// Note: no unpark_task / deliver_task / wake_task exists anywhere.

}  // namespace fx3
