// protolint fixture (not compiled): P1 violations.
// A send site whose action token was never registered (ghost handler),
// and a registration no send/invoke site ever references (orphan).

namespace fx1 {

struct Registry {
  int add(const char* name, int fn);
};

void wire(Registry& reg) {
  int on_orphan = 1;
  int orphan_ = 0;
  orphan_ = register_action<int>(reg, "fx1.orphan", on_orphan);  // protolint-expect(P1)
  (void)orphan_;
}

struct Ctx {
  void send(int dst, int action, int args);
};

void emit(Ctx& c, int ghost_) {
  c.send(1, ghost_, pack_args(7));  // protolint-expect(P1)
}

void emit_located(Ctx& c, int phantom_) {
  apply(c, 40, phantom_, pack_args(8));  // protolint-expect(P1)
}

}  // namespace fx1
