// protolint fixture (not compiled): P2 violations.
// Completion objects allocated but never resolved: whoever awaits them
// hangs forever, and crash-stop recovery cannot fail them over.

namespace fx2 {

void half_round(sim::Time t) {
  rt::Event never_done;  // protolint-expect(P2)
  (void)t;               // the round returns without .set()
}

struct Gather {
  std::unique_ptr<rt::AndGate> cell;

  void open(std::uint64_t pieces) {
    cell = std::make_unique<rt::AndGate>(pieces);  // protolint-expect(P2)
  }
  // no path ever calls cell->arrive(...)
};

}  // namespace fx2
