// protolint fixture (not compiled): P3 clean pattern.
// Park and wake sites paired on the same queue name.

namespace gx3 {

struct JobQueue {
  void park_job(int id);
  void unpark_job(int id);
};

void stall(JobQueue& q) {
  q.park_job(7);
}

void kick(JobQueue& q) {
  q.unpark_job(7);
}

}  // namespace gx3
