// protolint fixture (not compiled): P4 clean patterns.
// O(P) sites carry a sparse/pooled justification; the sparse map of
// active peers is the shape ROADMAP item 2 asks for and is not flagged.

namespace gx4 {

struct Windows {
  explicit Windows(const Fabric& fabric)
      // protolint:allow(P4: fixture justification, windows pooled over active peers under ROADMAP item 2)
      : dense_(static_cast<std::size_t>(fabric.nodes())) {}

  void rebuild(const World& world) {
    active_.resize(world.nodes());  // protolint:allow(P4: fixture justification, rebuilt per epoch on the coordinator only)
    by_peer_.clear();  // O(active peers): the shape item 2 wants
  }

  std::vector<int> dense_;
  std::vector<int> active_;
  std::map<int, int> by_peer_;
};

}  // namespace gx4
