// protolint fixture (not compiled): P1 clean patterns.
// Every registered action is sent, every sent token is registered —
// including the accessor/setter indirection used by World::apply.

namespace gx1 {

struct Registry {
  int add(const char* name, int fn);
};

struct Node {
  int ping_ = 0;
  int relay_action_ = 0;

  void wire(Registry& reg, int on_ping, int on_relay) {
    ping_ = register_action<int>(reg, "gx1.ping", on_ping);
    int relay_id = reg_actions_.add("gx1.relay", on_relay);
    set_relay_action(relay_id);
  }

  void set_relay_action(int id) { relay_action_ = id; }
  int relay_action() const { return relay_action_; }

  Registry reg_actions_;
};

struct Ctx {
  void send(int dst, int action, int args);
};

void emit(Ctx& c, Node& node) {
  c.send(1, node.ping_, pack_args(1));
  send_parcel_at(0, 10, 1, node.relay_action(), pack_args(2));
}

// An action whose only dispatch edge is the address-located
// World::apply(ctx, gva, action, args) invoke.
struct Located {
  int lookup_ = 0;
  void wire(Registry& reg, int on_lookup) {
    lookup_ = reg_actions_.add("gx1.lookup", on_lookup);
  }
  Registry reg_actions_;
};

void emit_located(Ctx& c, Located& node, int gva) {
  apply(c, gva, node.lookup_, pack_args(3));
}

}  // namespace gx1
