// protolint fixture (not compiled): P2 clean patterns.
// Every completion object reaches a resolution: direct .set(), the
// accessor call-form, a .get() alias, and the completion ledger.

namespace gx2 {

void wait_round(sim::Time t) {
  rt::Event round_done;
  round_done.set(t);
}

struct Pool {
  std::vector<std::unique_ptr<rt::Future<double>>> pool_;

  rt::Future<double>& acc_future(int gen) {
    auto& slot = pool_[static_cast<std::size_t>(gen)];
    if (!slot) slot = std::make_unique<rt::Future<double>>();
    return *slot;
  }
};

void harvest(Pool& p, sim::Time t) {
  p.acc_future(0).set(1.0, t);
}

struct Fan {
  std::unique_ptr<rt::AndGate> gate;

  void open(std::uint64_t pieces, sim::Time t) {
    gate = std::make_unique<rt::AndGate>(pieces);
    auto* gp = gate.get();
    gp->arrive(t);
  }
};

struct Ledgered {
  void stage(rt::Runtime& rt, int node) {
    auto ev = std::make_unique<rt::Event>();
    refs_.push_back(rt.register_lco(node, *ev));
    keep_.push_back(std::move(ev));
  }
  void finish(rt::Runtime& rt, rt::LcoRef ref, sim::Time t) {
    rt.ledger_set(ref, t);
  }
  std::vector<rt::LcoRef> refs_;
  std::vector<std::unique_ptr<rt::Event>> keep_;
};

}  // namespace gx2
