// protolint fixture (not compiled): P5 clean patterns.
// An armed timer with a cancel() path, and a forwarding accessor whose
// caller owns the returned TimerId.

namespace gx5 {

struct Courier {
  void arm(Engine& eng, sim::Time t) {
    hb_ = eng.at_cancellable(t + rto_ns_, on_expire_);
  }

  void disarm(Engine& eng) {
    (void)eng.cancel(hb_);
  }

  sim::TimerId forward(Engine& eng, sim::Time t) {
    return eng.after_cancellable(t, on_expire_);
  }

  sim::TimerId hb_;
  sim::Time rto_ns_ = 0;
  int on_expire_ = 0;
};

}  // namespace gx5
