#!/usr/bin/env python3
"""protolint — whole-program protocol-flow lint for nvgas.

simlint (D1-D8) checks line-level determinism/lifetime discipline;
protolint checks the *protocol graph*: it parses the scanned tree into
registration sites (`X_ = register_action<...>(reg, "name", fn)` and
`X_ = <registry>.add("name", fn)`), send/invoke edges (`c.send(dst, X_,
args)`, `send_parcel_at(src, t, dst, X_, args)`, `invoke_action_at(node,
t, X_, ...)`, `Coalescer::send(ctx, dst, X_, args)`), LCO/ledger
allocation vs resolution sites, park/wake pairs, and cancellable-timer
arm/cancel pairs — then checks that the graph is closed.

Rules (see docs/STATIC_ANALYSIS.md for the full rationale):

  P1  action send/handler totality. Every action token used at a send
      or local-invoke site must have a registration site, and every
      registered action must be referenced by at least one send/invoke
      site (no orphan handlers). Accessor indirection (`apply_action()`
      returning `apply_action_`) and setter aliasing
      (`set_apply_action(apply_id)`) are followed by name normalization
      (trailing underscores stripped).
  P2  completion totality. Every allocation of a completion object
      (Event / Future / AndGate / ReduceLco, via make_unique /
      make_shared or a direct declaration) must reach a resolution
      site: a `.set/.arrive/.contribute/.fire/.remote_contribute` on
      the same variable (through `.get()` / address-of aliases or an
      accessor call-form like `barrier_event(r, gen).set(t)`), or
      registration in the completion ledger (`register_lco` /
      `make_ref`) in a program that resolves ledger entries
      (`ledger_set` / `set_lco`). An unresolvable completion object is
      a hang waiting to happen — and the static precondition for
      failed-completion delivery in crash-stop recovery (ROADMAP
      item 5).
  P3  park/wake pairing. Every park call site (`park_msg`,
      `park_delayed`, `park_<q>`) must have a matching wake
      (`deliver_parked`, `unpark_<q>`, `deliver_<q>`, `wake_<q>`)
      somewhere in the scanned program, else parked work sleeps
      forever.
  P4  state growth. A container resized/reserved/assigned or
      constructor-initialized to the node count is O(P) state per node
      and blocks the 1024-node scale-out (ROADMAP item 2). Every such
      site must either become O(active peers) or carry a
      `protolint:allow(P4: <sparse/pooled justification>)`.
  P5  RTO cancellation. Every armed cancellable timer
      (`at_cancellable` / `after_cancellable`) must be stored and have
      a `cancel(<same token>)` path; a discarded or never-cancelled
      TimerId is a stale retransmission timer that survives delivery.

Suppression: append `// protolint:allow(P4)` or
`// protolint:allow(P4: justification)` to the offending line; a
standalone suppression comment line applies to the next line.

Usage:
  protolint.py [PATH ...]            lint files / directories (default: src)
  protolint.py --json ...            emit findings as nvgas-lint-v1 JSON
  protolint.py --github-annotations  emit GitHub ::error workflow commands

Scanned paths form ONE whole program: registrations in one file satisfy
sends in another. Exit status: 0 clean, 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
import lintkit  # noqa: E402  (shared stripper/Finding/output machinery)

Finding = lintkit.Finding
StrippedFile = lintkit.StrippedFile
line_of = lintkit.line_of
is_suppressed = lintkit.is_suppressed

RULES = {
    "P1": "action send/handler totality (unregistered send or orphan handler)",
    "P2": "completion totality (LCO/ledger allocated but never resolved)",
    "P3": "park site without a matching wake for the same queue",
    "P4": "O(P) state growth (container sized by node count)",
    "P5": "armed cancellable timer without a cancellation path",
}


def strip_file(path: str, text: str) -> StrippedFile:
    return lintkit.strip_and_collect(path, text, tool="protolint")


def norm(token: str) -> str:
    """`lco_set_action_` (member) and `lco_set_action` (accessor) name
    the same protocol edge."""
    return token.rstrip("_")


def balanced_extent(code: str, open_idx: int) -> int:
    """Index of the `)` matching the `(` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def rev_balanced_open(code: str, close_idx: int) -> int:
    """Index of the `(`/`[` matching the `)`/`]` at close_idx, or -1."""
    close = code[close_idx]
    opener = "(" if close == ")" else "["
    depth = 0
    for i in range(close_idx, -1, -1):
        c = code[i]
        if c == close:
            depth += 1
        elif c == opener:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_args(args: str) -> list:
    """Split a call's argument text on top-level commas."""
    out = []
    depth = 0
    cur = []
    for c in args:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    out.append("".join(cur))
    return out


def prev_nonspace(code: str, idx: int) -> str:
    j = idx - 1
    while j >= 0 and code[j].isspace():
        j -= 1
    return code[j] if j >= 0 else ""


def stmt_prefix(code: str, idx: int) -> str:
    """Text from the previous statement/scope boundary up to idx."""
    start = max(code.rfind(";", 0, idx), code.rfind("{", 0, idx),
                code.rfind("}", 0, idx)) + 1
    return code[start:idx]


IDENT_CHAIN_RE = re.compile(
    r"(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)")
ACCESSOR_CALL_RE = re.compile(
    r"(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*([A-Za-z_]\w*)\s*\(\s*\)")
LAST_IDENT_RE = re.compile(r"([A-Za-z_]\w*)\s*$")


def action_token(arg: str):
    """The protocol token named by a send-site action argument:
    `batch_action_` -> batch_action_, `runtime_->apply_action()` ->
    apply_action, `rt::x_` -> x_. Anything else (declarations like
    `ActionId action`, expressions) -> None."""
    arg = arg.strip()
    m = ACCESSOR_CALL_RE.fullmatch(arg)
    if m:
        return m.group(1)
    m = IDENT_CHAIN_RE.fullmatch(arg)
    if m:
        return m.group(1)
    return None


FN_NAME_STOPWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "do",
    "else", "new", "delete", "co_await", "co_return", "assert",
}
FN_CANDIDATE_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
FN_TAIL_RE = re.compile(r"\s*(?:const\s*|noexcept\s*|override\s*|final\s*)*\{")


def function_spans(code: str) -> list:
    """(name, start, end) for every function-shaped definition: name,
    balanced parens, optional qualifiers, then `{...}`. Constructors
    with init lists are missed; P2 only needs accessor bodies."""
    spans = []
    for m in FN_CANDIDATE_RE.finditer(code):
        if m.group(1) in FN_NAME_STOPWORDS:
            continue
        close = balanced_extent(code, m.end() - 1)
        if close < 0:
            continue
        tail = FN_TAIL_RE.match(code, close + 1)
        if not tail:
            continue
        brace = tail.end() - 1
        depth = 0
        end = -1
        for i in range(brace, len(code)):
            c = code[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end > 0:
            spans.append((m.group(1), m.start(), end))
    return spans


def enclosing_function(spans: list, offset: int):
    best = None
    for name, start, end in spans:
        if start <= offset <= end and (best is None or
                                       end - start < best[1] - best[0]):
            best = (start, end, name)
    return best[2] if best else None


# --- P1: action send/handler totality ---------------------------------------

REG_ACTION_RE = re.compile(
    r"([A-Za-z_]\w*)\s*=\s*(?:rt\s*::\s*)?register_action\b")
# `X = <receiver>.add(...)` where the receiver chain names the action
# registry (actions_, rt_.actions(), runtime_->actions(), ...).
REG_ADD_RE = re.compile(
    r"([A-Za-z_]\w*)\s*=\s*([^;{}=]*?)(?:\.|->)\s*add\s*\(")
# `set_apply_action(apply_id)`: publishing a registered id under an
# accessor name aliases the registration to that name.
SET_ALIAS_RE = re.compile(
    r"\bset_([A-Za-z_]\w*)\s*\(\s*([A-Za-z_]\w*)\s*\)")

CTX_SEND_RE = re.compile(r"\b(?:c|ctx)\s*\.\s*send\s*\(")
MEMBER_SEND_RE = re.compile(r"(?:\.|->)\s*send\s*\(")
SEND_PARCEL_AT_RE = re.compile(r"\bsend_parcel_at\s*\(")
INVOKE_AT_RE = re.compile(r"\binvoke_action_at\s*\(")
# World::apply(ctx, gva, action, args): address-located invoke — the
# parcel dispatches the action at whichever node owns the GVA.
APPLY_AT_RE = re.compile(r"(?<![\w.>:])apply\s*\(")
BARE_SEND_RE = re.compile(r"(?<![\w.>:])send\s*\(")

# Argument names that just forward an ActionId through plumbing; they
# are edges in someone else's graph, not new protocol tokens.
PLUMBING_TOKENS = {"action", "act", "action_id", "id", "a"}


def call_arg_token(code: str, open_idx: int, arg_index: int):
    close = balanced_extent(code, open_idx)
    if close < 0:
        return None
    args = split_args(code[open_idx + 1:close])
    if arg_index >= len(args):
        return None
    return action_token(args[arg_index])


def collect_registrations(prog: list) -> dict:
    """norm(token) -> (path, line, display_token) for every action
    registration (plus setter aliases onto the same entry)."""
    regs: dict[str, tuple] = {}
    for f in prog:
        for m in REG_ACTION_RE.finditer(f.code):
            regs.setdefault(norm(m.group(1)),
                            (f.path, line_of(f.code, m.start()), m.group(1)))
        for m in REG_ADD_RE.finditer(f.code):
            if "action" not in m.group(2).lower():
                continue
            regs.setdefault(norm(m.group(1)),
                            (f.path, line_of(f.code, m.start()), m.group(1)))
    # Aliases need the base set complete first.
    for f in prog:
        for m in SET_ALIAS_RE.finditer(f.code):
            if norm(m.group(2)) in regs:
                base = regs[norm(m.group(2))]
                regs.setdefault(norm(m.group(1)), base)
    return regs


def collect_send_sites(prog: list):
    """-> (strong, weak): strong sites are (file, line, token, what) and
    get diagnosed when unregistered; weak tokens only mark handlers as
    referenced (generic .send receivers we cannot classify)."""
    strong = []
    weak: set[str] = set()
    for f in prog:
        sites = []  # (match_end_of_name, arg_index, what)
        for m in CTX_SEND_RE.finditer(f.code):
            sites.append((m.end() - 1, 1, "c.send"))
        for m in SEND_PARCEL_AT_RE.finditer(f.code):
            sites.append((m.end() - 1, 3, "send_parcel_at"))
        for m in INVOKE_AT_RE.finditer(f.code):
            sites.append((m.end() - 1, 2, "invoke_action_at"))
        for m in APPLY_AT_RE.finditer(f.code):
            sites.append((m.end() - 1, 2, "apply"))
        strong_opens = {s[0] for s in sites}
        for m in MEMBER_SEND_RE.finditer(f.code):
            open_idx = m.end() - 1
            if open_idx in strong_opens:
                continue
            close = balanced_extent(f.code, open_idx)
            if close < 0:
                continue
            args = split_args(f.code[open_idx + 1:close])
            if args and args[0].strip() in ("c", "ctx"):
                # Coalescer::send(ctx, dst, action, args) shape.
                sites.append((open_idx, 2, "Coalescer::send"))
            else:
                tok = action_token(args[1]) if len(args) > 1 else None
                if tok:
                    weak.add(norm(tok))
        for m in BARE_SEND_RE.finditer(f.code):
            tok = call_arg_token(f.code, m.end() - 1, 1)
            if tok:
                weak.add(norm(tok))
        for open_idx, arg_index, what in sites:
            tok = call_arg_token(f.code, open_idx, arg_index)
            if tok is None or norm(tok) in PLUMBING_TOKENS:
                continue
            strong.append((f, line_of(f.code, open_idx), tok, what))
    return strong, weak


def check_p1(prog: list) -> list:
    findings = []
    regs = collect_registrations(prog)
    strong, weak = collect_send_sites(prog)
    referenced = set(weak)
    for f, ln, tok, what in strong:
        referenced.add(norm(tok))
        if norm(tok) in regs:
            continue
        if is_suppressed(f, ln, "P1"):
            continue
        findings.append(Finding(
            f.path, ln, "P1",
            f"action token '{tok}' sent via {what}() has no "
            "register_action / registry-add site anywhere in the scanned "
            "program: this parcel dispatches into a missing handler"))
    # Orphan check is per registration *site*: a registration published
    # under several tokens (member + setter alias) is referenced if any
    # of them is.
    sites: dict[tuple, list] = {}
    for tok_n, (path, ln, display) in regs.items():
        sites.setdefault((path, ln, display), []).append(tok_n)
    for (path, ln, display), tokens in sites.items():
        if any(t in referenced for t in tokens):
            continue
        f = next(sf for sf in prog if sf.path == path)
        if is_suppressed(f, ln, "P1"):
            continue
        findings.append(Finding(
            path, ln, "P1",
            f"action '{display}' is registered here but never referenced "
            "by any send/invoke site: orphan handler (dead protocol edge "
            "or a send site that lost its token)"))
    return findings


# --- P2: completion totality -------------------------------------------------

LCO_TYPES = r"(?:Event|Future|AndGate|ReduceLco)"
MAKE_LCO_RE = re.compile(
    r"\bstd\s*::\s*make_(?:unique|shared)\s*<\s*(?:rt\s*::\s*)?"
    + LCO_TYPES + r"\b")
DECL_LCO_RE = re.compile(
    r"\b(rt\s*::\s*)?" + LCO_TYPES +
    r"\s*(?:<[^;{}<>]*>)?\s+([A-Za-z_]\w*)\s*[;{(]")
ASSIGN_TARGET_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)?\s*(?:[A-Za-z_]\w*\s*)?=\s*$")
PUSH_TARGET_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(?:push_back|emplace_back)\s*\(\s*$")
RESOLVE_METHOD_RE = re.compile(
    r"(?:\.|->)\s*(?:set|arrive|contribute|fire|remote_contribute)\s*\(")
GETTER_ALIAS_RE = re.compile(
    r"([A-Za-z_]\w*)\s*=\s*([A-Za-z_]\w*)\s*(?:\.|->)\s*get\s*\(\s*\)")
ADDR_ALIAS_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*&\s*([A-Za-z_]\w*)")
REGISTER_LCO_RE = re.compile(r"\bregister_lco\s*\(")
MAKE_REF_RE = re.compile(r"\bmake_ref\s*\(")
LEDGER_RESOLVE_RE = re.compile(r"\b(?:ledger_set|set_lco)\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def p2_exempt(path: str) -> bool:
    p = pathlib.PurePath(path)
    # lco.hpp defines the primitives; sim/ has its own (non-LCO) Event.
    return (p.name == "lco.hpp" and "rt" in p.parts) or "sim" in p.parts


def p2_alloc_target(code: str, idx: int):
    prefix = stmt_prefix(code, idx)
    m = PUSH_TARGET_RE.search(prefix)
    if m:
        return m.group(1)
    m = ASSIGN_TARGET_RE.search(prefix)
    if m:
        # `s.gate = make_unique<...>`: the field name is the token.
        tail = LAST_IDENT_RE.search(prefix[:prefix.rfind("=")])
        return tail.group(1) if tail else m.group(1)
    return None


def collect_resolved_tokens(prog: list) -> set:
    resolved: set[str] = set()
    ledger_resolves = any(LEDGER_RESOLVE_RE.search(f.code) for f in prog)
    for f in prog:
        aliases: dict[str, str] = {}
        for m in GETTER_ALIAS_RE.finditer(f.code):
            aliases[m.group(1)] = m.group(2)
        for m in ADDR_ALIAS_RE.finditer(f.code):
            aliases[m.group(1)] = m.group(2)
        for m in RESOLVE_METHOD_RE.finditer(f.code):
            j = m.start() - 1
            while j >= 0 and f.code[j].isspace():
                j -= 1
            if j < 0:
                continue
            if f.code[j] in ")]":
                open_idx = rev_balanced_open(f.code, j)
                if open_idx <= 0:
                    continue
                tail = LAST_IDENT_RE.search(f.code[:open_idx])
            else:
                tail = LAST_IDENT_RE.search(f.code[:j + 1])
            if not tail:
                continue
            name = tail.group(1)
            name = aliases.get(name, name)
            resolved.add(norm(name))
        if ledger_resolves:
            for m in REGISTER_LCO_RE.finditer(f.code):
                close = balanced_extent(f.code, m.end() - 1)
                if close < 0:
                    continue
                args = split_args(f.code[m.end():close])
                if len(args) > 1:
                    resolved.update(norm(t) for t in
                                    IDENT_RE.findall(args[1]))
            for m in MAKE_REF_RE.finditer(f.code):
                close = balanced_extent(f.code, m.end() - 1)
                if close < 0:
                    continue
                args = split_args(f.code[m.end():close])
                if args:
                    resolved.update(norm(t) for t in
                                    IDENT_RE.findall(args[0]))
    return resolved


def check_p2(prog: list) -> list:
    findings = []
    resolved = collect_resolved_tokens(prog)
    for f in prog:
        if p2_exempt(f.path):
            continue
        spans = None
        allocs = []  # (line, display, token_set)
        for m in MAKE_LCO_RE.finditer(f.code):
            tokens = set()
            target = p2_alloc_target(f.code, m.start())
            display = target or "<unnamed>"
            if target:
                tokens.add(norm(target))
            if spans is None:
                spans = function_spans(f.code)
            fn = enclosing_function(spans, m.start())
            if fn:
                tokens.add(norm(fn))
            allocs.append((line_of(f.code, m.start()), display, tokens))
        for m in DECL_LCO_RE.finditer(f.code):
            prev = prev_nonspace(f.code, m.start())
            if prev not in ("", ";", "{", "}"):
                continue  # parameter, template arg, member access, ...
            tokens = {norm(m.group(2))}
            if spans is None:
                spans = function_spans(f.code)
            fn = enclosing_function(spans, m.start())
            if fn:
                tokens.add(norm(fn))
            allocs.append((line_of(f.code, m.start()), m.group(2), tokens))
        for ln, display, tokens in allocs:
            if tokens & resolved:
                continue
            if is_suppressed(f, ln, "P2"):
                continue
            findings.append(Finding(
                f.path, ln, "P2",
                f"completion object '{display}' allocated here never "
                "reaches a resolution site (.set/.arrive/.contribute/"
                ".fire, a resolving accessor, or ledger registration with "
                "ledger_set): whoever awaits it hangs forever, and "
                "crash-stop recovery (ROADMAP item 5) cannot fail it over"))
    return findings


# --- P3: park/wake pairing ---------------------------------------------------

PARK_RE = re.compile(r"\b(park_[A-Za-z_]\w*)\s*\(")
P3_KNOWN_PAIRS = {
    "park_msg": ("deliver_parked",),
    "park_delayed": ("unpark_delayed",),
}


def p3_partners(park: str) -> tuple:
    if park in P3_KNOWN_PAIRS:
        return P3_KNOWN_PAIRS[park]
    q = park[len("park_"):]
    return (f"unpark_{q}", f"deliver_{q}", f"wake_{q}")


def check_p3(prog: list) -> list:
    findings = []
    for f in prog:
        for m in PARK_RE.finditer(f.code):
            prev = prev_nonspace(f.code, m.start())
            # Call sites only: skip definitions (`Nic::park_msg(`),
            # declarations (`void park_msg(`) and qualified names.
            if prev not in (".", ">", "=", "(", ",", ";", "{", "}", "",
                            ):
                continue
            if prev == ">" and f.code[:m.start()].rstrip()[-2:] != "->":
                continue
            park = m.group(1)
            partners = p3_partners(park)
            if any(re.search(r"\b" + p + r"\s*\(", g.code)
                   for g in prog for p in partners):
                continue
            ln = line_of(f.code, m.start())
            if is_suppressed(f, ln, "P3"):
                continue
            findings.append(Finding(
                f.path, ln, "P3",
                f"park site '{park}(...)' has no matching wake "
                f"({' / '.join(partners)}) anywhere in the scanned "
                "program: parked work sleeps forever"))
    return findings


# --- P4: O(P) state growth ---------------------------------------------------

P4_SIZE_CALL_RE = re.compile(r"(?:\.|->)\s*(resize|reserve|assign)\s*\(")
P4_CTOR_INIT_RE = re.compile(r"\b([A-Za-z_]\w*_)\s*\(")
P4_COUNT_RE = re.compile(
    r"\b(?:nodes|ranks|nranks|num_nodes|node_count|world_size)_?\b")
P4_COUNT_CALL_RE = re.compile(
    r"\b(?:nodes|ranks|nranks|num_nodes|node_count|world_size)\s*\(\s*\)")


def check_p4(prog: list) -> list:
    findings = []
    for f in prog:
        seen: set[int] = set()

        def flag(ln: int, name: str, how: str) -> None:
            if ln in seen or is_suppressed(f, ln, "P4"):
                return
            seen.add(ln)
            findings.append(Finding(
                f.path, ln, "P4",
                f"container '{name}' {how} the node count: O(P) state "
                "per node blocks the 1024-node scale-out (ROADMAP "
                "item 2); make it O(active peers) or annotate with "
                "protolint:allow(P4: <sparse/pooled justification>)"))

        for m in P4_SIZE_CALL_RE.finditer(f.code):
            open_idx = m.end() - 1
            close = balanced_extent(f.code, open_idx)
            if close < 0:
                continue
            args = f.code[open_idx + 1:close]
            if P4_COUNT_RE.search(args):
                prefix = stmt_prefix(f.code, m.start())
                tail = LAST_IDENT_RE.search(prefix)
                name = tail.group(1) if tail else "<unknown>"
                verb = {"resize": "resized", "reserve": "reserved",
                        "assign": "assigned"}[m.group(1)]
                flag(line_of(f.code, m.start()), name, f"is {verb} to")
        for m in P4_CTOR_INIT_RE.finditer(f.code):
            open_idx = m.end() - 1
            close = balanced_extent(f.code, open_idx)
            if close < 0:
                continue
            args = f.code[open_idx + 1:close]
            if P4_COUNT_CALL_RE.search(args):
                flag(line_of(f.code, m.start()), m.group(1),
                     "is constructed with")
    return findings


# --- P5: RTO cancellation ----------------------------------------------------

ARM_RE = re.compile(r"\b((?:at|after)_cancellable)\s*\(")
CANCEL_RE = re.compile(r"\bcancel\s*\(")


def p5_exempt(path: str) -> bool:
    # The engine defines the timer API; arming discipline applies to its
    # users.
    p = pathlib.PurePath(path)
    return "sim" in p.parts and p.name.startswith("engine")


def check_p5(prog: list) -> list:
    cancelled: set[str] = set()
    for f in prog:
        for m in CANCEL_RE.finditer(f.code):
            close = balanced_extent(f.code, m.end() - 1)
            if close < 0:
                continue
            tail = LAST_IDENT_RE.search(f.code[m.end():close])
            if tail:
                cancelled.add(norm(tail.group(1)))
    findings = []
    for f in prog:
        if p5_exempt(f.path):
            continue
        for m in ARM_RE.finditer(f.code):
            prev = prev_nonspace(f.code, m.start())
            if prev and (prev.isalnum() or prev in "_:*&"):
                continue  # declaration/definition, not an arming call
            if prev == ">" and f.code[:m.start()].rstrip()[-2:] != "->":
                continue
            prefix = stmt_prefix(f.code, m.start())
            if re.search(r"\breturn\b", prefix):
                continue  # forwarding accessor: caller owns the id
            ln = line_of(f.code, m.start())
            eq = prefix.rfind("=")
            if eq < 0:
                if not is_suppressed(f, ln, "P5"):
                    findings.append(Finding(
                        f.path, ln, "P5",
                        f"TimerId from {m.group(1)}() is discarded: this "
                        "timer can never be cancelled, so it survives "
                        "completion as a stale retransmission"))
                continue
            tail = LAST_IDENT_RE.search(prefix[:eq])
            tok = tail.group(1) if tail else None
            if tok and norm(tok) in cancelled:
                continue
            if is_suppressed(f, ln, "P5"):
                continue
            findings.append(Finding(
                f.path, ln, "P5",
                f"armed cancellable timer '{tok or '<unknown>'}' has no "
                "cancel() path anywhere in the scanned program: the RTO "
                "outlives the completion it guards"))
    return findings


# --- driver ------------------------------------------------------------------

CHECKS = {
    "P1": check_p1,
    "P2": check_p2,
    "P3": check_p3,
    "P4": check_p4,
    "P5": check_p5,
}


def lint_paths(paths: list, rules: set) -> list:
    prog = []
    for fp in lintkit.gather_files(paths, prog="protolint"):
        try:
            text = fp.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"protolint: cannot read {fp}: {e}", file=sys.stderr)
            sys.exit(2)
        prog.append(strip_file(str(fp), text))
    findings: list = []
    for rule in sorted(rules):
        findings.extend(CHECKS[rule](prog))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


def main(argv: list) -> int:
    ap = argparse.ArgumentParser(
        prog="protolint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint as one whole "
                         "program (default: src)")
    ap.add_argument("--rules", default=",".join(sorted(RULES)),
                    help="comma-separated rule subset (default: all)")
    lintkit.add_output_args(ap)
    args = ap.parse_args(argv)

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"protolint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    findings = lint_paths(args.paths or ["src"], rules)
    return lintkit.emit(findings, "protolint", as_json=args.json,
                        github=args.github_annotations)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
