#!/usr/bin/env python3
"""protolint self-test.

Fixture mode (default): `fixtures/good` and `fixtures/bad` are each
linted as a separate whole program. Every bad-fixture line marked
`// protolint-expect(<rule>)` must produce exactly that finding and
nothing else may fire; the good fixtures (including their justified
suppressions) must come back clean. Also checks the CLI exit-status
contract and the shared nvgas-lint-v1 JSON schema.

Mutation mode (--mutation): copies `src/` to a scratch tree, verifies
the clean tree passes, then seeds three protocol bugs one at a time —
a deleted register_action (P1), a completion resolved on no path (P2),
an RTO whose cancel path is retargeted (P5) — and asserts protolint
catches each with a diagnostic naming the token involved. This is the
proof that the analyzer sees the real protocol graph, not just the
fixtures.

Run:  python3 tools/protolint/test_protolint.py [--mutation]
"""

from __future__ import annotations

import json
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent.parent
sys.path.insert(0, str(HERE))

import protolint  # noqa: E402

EXPECT_RE = re.compile(r"protolint-expect\(([A-Za-z0-9]+)\)")


def expected_findings(root: pathlib.Path):
    expected = set()
    for fp in sorted(root.rglob("*.cpp")):
        for lineno, line in enumerate(
                fp.read_text(encoding="utf-8").splitlines(), start=1):
            for m in EXPECT_RE.finditer(line):
                expected.add((str(fp), lineno, m.group(1)))
    return expected


def fixture_test() -> list:
    failures = []
    fixtures = HERE / "fixtures"
    all_rules = set(protolint.RULES)

    # good/ and bad/ are separate whole programs: a wake or registration
    # in good/ must not satisfy a park or send in bad/.
    expected = expected_findings(fixtures / "bad")
    actual = {(f.path, f.line, f.rule)
              for f in protolint.lint_paths([str(fixtures / "bad")],
                                            all_rules)}
    for miss in sorted(expected - actual):
        failures.append(f"MISSING: expected {miss[2]} at {miss[0]}:{miss[1]} "
                        "did not fire")
    for extra in sorted(actual - expected):
        failures.append(f"SPURIOUS: unexpected {extra[2]} at "
                        f"{extra[0]}:{extra[1]}")
    fired_rules = {r for (_, _, r) in actual}
    for rule in protolint.RULES:
        if rule not in fired_rules:
            failures.append(f"COVERAGE: no bad fixture exercises rule {rule}")

    good = protolint.lint_paths([str(fixtures / "good")], all_rules)
    for f in good:
        failures.append(f"GOOD: clean fixture produced {f.render()}")

    # CLI contract: violations exit 1, clean program exits 0.
    bad_run = subprocess.run(
        [sys.executable, str(HERE / "protolint.py"), str(fixtures / "bad")],
        capture_output=True, text=True)
    if bad_run.returncode != 1:
        failures.append(f"CLI: expected exit 1 on bad fixtures, got "
                        f"{bad_run.returncode}\n{bad_run.stdout}"
                        f"{bad_run.stderr}")
    good_run = subprocess.run(
        [sys.executable, str(HERE / "protolint.py"), str(fixtures / "good")],
        capture_output=True, text=True)
    if good_run.returncode != 0:
        failures.append(f"CLI: expected exit 0 on good fixtures, got "
                        f"{good_run.returncode}\n{good_run.stdout}"
                        f"{good_run.stderr}")

    # Shared JSON schema: same shape simlint emits, tool field differs.
    js_run = subprocess.run(
        [sys.executable, str(HERE / "protolint.py"), "--json",
         str(fixtures / "bad")],
        capture_output=True, text=True)
    try:
        doc = json.loads(js_run.stdout)
        if doc.get("schema") != "nvgas-lint-v1":
            failures.append(f"JSON: schema is {doc.get('schema')!r}, "
                            "expected 'nvgas-lint-v1'")
        if doc.get("tool") != "protolint":
            failures.append(f"JSON: tool is {doc.get('tool')!r}")
        if doc.get("count") != len(doc.get("findings", [])):
            failures.append("JSON: count does not match findings length")
        for field in ("path", "line", "rule", "message"):
            if doc["findings"] and field not in doc["findings"][0]:
                failures.append(f"JSON: finding missing field {field!r}")
    except (json.JSONDecodeError, KeyError) as e:
        failures.append(f"JSON: bad output ({e}): {js_run.stdout[:200]}")

    return failures


# Each mutation: (name, file, pattern, replacement, rule,
#                 substrings the diagnostic must contain).
MUTATIONS = [
    ("deleted-register_action",
     "src/rt/collectives.cpp",
     r"barrier_release_ = register_action",
     "barrier_release_zombie_ = register_action",
     "P1",
     ["barrier_release_"]),
    ("unresolved-completion-ledger",
     "src/rt/termination.cpp",
     r"done_\[static_cast<std::size_t>\(c\.rank\(\)\)\]->set\(c\.now\(\)\);",
     ";",
     "P2",
     ["done_"]),
    ("unpaired-arm_rto",
     "src/net/reliability.cpp",
     r"cancel\(s\.rto\)",
     "cancel(s.rto_leak)",
     "P5",
     ["rto"]),
]


def mutation_test() -> list:
    failures = []
    all_rules = set(protolint.RULES)
    with tempfile.TemporaryDirectory(prefix="protolint-mut-") as td:
        scratch = pathlib.Path(td) / "src"
        shutil.copytree(REPO / "src", scratch)

        baseline = protolint.lint_paths([str(scratch)], all_rules)
        for f in baseline:
            failures.append(f"BASELINE: clean tree produced {f.render()}")
        if failures:
            return failures

        for name, rel, pattern, repl, rule, need in MUTATIONS:
            target = scratch / pathlib.Path(rel).relative_to("src")
            original = target.read_text(encoding="utf-8")
            mutated, n = re.subn(pattern, repl, original)
            if n == 0:
                failures.append(f"{name}: pattern {pattern!r} not found in "
                                f"{rel}; mutation is stale")
                continue
            target.write_text(mutated, encoding="utf-8")
            try:
                findings = protolint.lint_paths([str(scratch)], all_rules)
                hits = [f for f in findings if f.rule == rule]
                if not hits:
                    failures.append(
                        f"{name}: seeded {rule} bug in {rel} was NOT caught "
                        f"(findings: {[f.render() for f in findings]})")
                    continue
                blob = " ".join(f.message for f in hits)
                for sub in need:
                    if sub not in blob:
                        failures.append(
                            f"{name}: {rule} diagnostic does not name "
                            f"{sub!r}: {[f.render() for f in hits]}")
            finally:
                target.write_text(original, encoding="utf-8")
    return failures


def main() -> int:
    mutation = "--mutation" in sys.argv[1:]
    failures = mutation_test() if mutation else fixture_test()
    mode = "mutation" if mutation else "fixture"
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"protolint self-test ({mode}): FAILED "
              f"({len(failures)} problem(s))", file=sys.stderr)
        return 1
    if mutation:
        print(f"protolint self-test (mutation): OK "
              f"({len(MUTATIONS)} seeded protocol bugs caught)")
    else:
        expected = expected_findings(HERE / "fixtures" / "bad")
        print(f"protolint self-test (fixture): OK ({len(expected)} seeded "
              f"violations, {len(protolint.RULES)} rules covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
