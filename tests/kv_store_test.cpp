// End-to-end correctness of apps/kvstore: PUT/GET/DEL round trips, TTL
// expiry and cancellation, the OP_METRICS ledger, and determinism of the
// full client-generator workload — across all three address-space
// managers, since the server is mode-agnostic by construction.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "core/nvgas.hpp"
#include "kvstore/harness.hpp"

namespace nvgas::apps::kv {
namespace {

std::vector<std::byte> kbytes(std::uint64_t k) {
  std::vector<std::byte> out(sizeof k);
  std::memcpy(out.data(), &k, sizeof k);
  return out;
}

std::vector<std::byte> vbytes(std::size_t n, std::uint8_t tag) {
  return std::vector<std::byte>(n, static_cast<std::byte>(tag));
}

// One in-flight request the test fiber can await a response for.
struct Pending {
  Response resp;
  rt::Event done;
};

// Minimal synchronous-style client: issue with a fresh token, await the
// reply Event, inspect the decoded Response.
struct TestClient {
  explicit TestClient(World& w) : world(&w) {
    reply_action = w.runtime().actions().add(
        "test.kv.reply", [this](Context& c, int, util::Buffer raw) {
          const Response rp = decode_response(raw);
          auto it = pending.find(rp.hdr.token);
          NVGAS_CHECK(it != pending.end());
          it->second->resp = rp;
          it->second->done.set(c.now());
        });
  }

  ReqMeta meta_for(Context& c, Pending& p) {
    ReqMeta m;
    m.token = next_token++;
    m.t_issue = c.now();
    m.reply_action = reply_action;
    m.reply_node = c.rank();
    pending[m.token] = &p;
    return m;
  }

  World* world;
  rt::ActionId reply_action = rt::kInvalidAction;
  std::map<std::uint64_t, Pending*> pending;
  std::uint64_t next_token = 1;
};

struct ModeParam {
  GasMode mode;
  int nodes;
};

std::string param_name(const ::testing::TestParamInfo<ModeParam>& info) {
  const char* mode = info.param.mode == GasMode::kPgas     ? "pgas"
                     : info.param.mode == GasMode::kAgasSw ? "agassw"
                                                           : "agasnet";
  return std::string(mode) + "_" + std::to_string(info.param.nodes) + "n";
}

class KvStoreTest : public ::testing::TestWithParam<ModeParam> {
 protected:
  Config make_config() const {
    return Config::with_nodes(GetParam().nodes, GetParam().mode);
  }
};

TEST_P(KvStoreTest, PutGetDelRoundTrip) {
  World world(make_config());
  KvParams kp;
  kp.buckets = 16;
  KvServer server(world, kp);
  TestClient cli(world);
  bool checked = false;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    server.setup(ctx);

    MsgHdr put;
    put.op = OP_PUT;
    put.klen = 8;
    put.vlen = 16;
    const auto key = kbytes(42);
    const auto val = vbytes(16, 0xa5);
    Pending p1;
    co_await server.submit(ctx, put, key, val, cli.meta_for(ctx, p1));
    co_await p1.done;
    EXPECT_EQ(p1.resp.hdr.code, kOk);
    EXPECT_EQ(p1.resp.hdr.op, OP_PUT);

    MsgHdr get;
    get.op = OP_GET;
    get.klen = 8;
    Pending p2;
    co_await server.submit(ctx, get, key, {}, cli.meta_for(ctx, p2));
    co_await p2.done;
    EXPECT_EQ(p2.resp.hdr.code, kOk);
    EXPECT_EQ(p2.resp.value.size(), 16u);
    EXPECT_EQ(p2.resp.value, val);

    MsgHdr del;
    del.op = OP_DEL;
    del.klen = 8;
    Pending p3;
    co_await server.submit(ctx, del, key, {}, cli.meta_for(ctx, p3));
    co_await p3.done;
    EXPECT_EQ(p3.resp.hdr.code, kOk);

    Pending p4;
    co_await server.submit(ctx, get, key, {}, cli.meta_for(ctx, p4));
    co_await p4.done;
    EXPECT_EQ(p4.resp.hdr.code, kNotFound);

    // Second DEL of the same key misses: the exactly-once ledger counts
    // it as a miss, not a second apply.
    Pending p5;
    co_await server.submit(ctx, del, key, {}, cli.meta_for(ctx, p5));
    co_await p5.done;
    EXPECT_EQ(p5.resp.hdr.code, kNotFound);
    checked = true;
  });
  world.run();
  EXPECT_TRUE(checked);
  const Metrics m = server.total_metrics();
  EXPECT_EQ(m.puts, 1u);
  EXPECT_EQ(m.gets_hit, 1u);
  EXPECT_EQ(m.gets_miss, 1u);
  EXPECT_EQ(m.dels_applied, 1u);
  EXPECT_EQ(m.dels_missed, 1u);
}

TEST_P(KvStoreTest, OverwriteBumpsVersionAndReturnsLatest) {
  World world(make_config());
  KvServer server(world, KvParams{});
  TestClient cli(world);
  world.spawn(0, [&](Context& ctx) -> Fiber {
    server.setup(ctx);
    const auto key = kbytes(7);
    MsgHdr put;
    put.op = OP_PUT;
    put.klen = 8;
    put.vlen = 8;
    for (std::uint8_t tag = 1; tag <= 3; ++tag) {
      Pending p;
      co_await server.submit(ctx, put, key, vbytes(8, tag),
                             cli.meta_for(ctx, p));
      co_await p.done;
      EXPECT_EQ(p.resp.hdr.code, kOk);
    }
    MsgHdr get;
    get.op = OP_GET;
    get.klen = 8;
    Pending p;
    co_await server.submit(ctx, get, key, {}, cli.meta_for(ctx, p));
    co_await p.done;
    EXPECT_EQ(p.resp.hdr.code, kOk);
    EXPECT_EQ(p.resp.value, vbytes(8, 3));
  });
  world.run();
  EXPECT_EQ(server.total_metrics().puts, 3u);
}

TEST_P(KvStoreTest, TtlExpiryRemovesEntry) {
  World world(make_config());
  KvServer server(world, KvParams{});
  TestClient cli(world);
  world.spawn(0, [&](Context& ctx) -> Fiber {
    server.setup(ctx);
    const auto key = kbytes(99);
    MsgHdr put;
    put.op = OP_PUT;
    put.klen = 8;
    put.vlen = 4;
    put.ttl_us = 100;  // expires at ~now + 100us
    Pending p1;
    co_await server.submit(ctx, put, key, vbytes(4, 0x11),
                           cli.meta_for(ctx, p1));
    co_await p1.done;
    EXPECT_EQ(p1.resp.hdr.code, kOk);

    // Well before expiry the entry is live.
    co_await ctx.sleep(20'000);
    MsgHdr get;
    get.op = OP_GET;
    get.klen = 8;
    Pending p2;
    co_await server.submit(ctx, get, key, {}, cli.meta_for(ctx, p2));
    co_await p2.done;
    EXPECT_EQ(p2.resp.hdr.code, kOk);

    // Well after expiry it is gone.
    co_await ctx.sleep(400'000);
    Pending p3;
    co_await server.submit(ctx, get, key, {}, cli.meta_for(ctx, p3));
    co_await p3.done;
    EXPECT_EQ(p3.resp.hdr.code, kNotFound);
  });
  world.run();
  const Metrics m = server.total_metrics();
  EXPECT_EQ(m.ttl_armed, 1u);
  EXPECT_EQ(m.expirations, 1u);
  EXPECT_EQ(m.ttl_cancelled, 0u);
  // The expiry DEL is internal: it must not count as a client DEL.
  EXPECT_EQ(m.dels_applied, 0u);
}

TEST_P(KvStoreTest, OverwriteWithoutTtlCancelsTimer) {
  World world(make_config());
  KvServer server(world, KvParams{});
  TestClient cli(world);
  world.spawn(0, [&](Context& ctx) -> Fiber {
    server.setup(ctx);
    const auto key = kbytes(5);
    MsgHdr put;
    put.op = OP_PUT;
    put.klen = 8;
    put.vlen = 4;
    put.ttl_us = 100;
    Pending p1;
    co_await server.submit(ctx, put, key, vbytes(4, 0x22),
                           cli.meta_for(ctx, p1));
    co_await p1.done;

    // Overwrite with no TTL: the pending expiry must be cancelled and
    // the new value must survive past the old deadline.
    put.ttl_us = 0;
    Pending p2;
    co_await server.submit(ctx, put, key, vbytes(4, 0x33),
                           cli.meta_for(ctx, p2));
    co_await p2.done;

    co_await ctx.sleep(500'000);
    MsgHdr get;
    get.op = OP_GET;
    get.klen = 8;
    Pending p3;
    co_await server.submit(ctx, get, key, {}, cli.meta_for(ctx, p3));
    co_await p3.done;
    EXPECT_EQ(p3.resp.hdr.code, kOk);
    EXPECT_EQ(p3.resp.value, vbytes(4, 0x33));
  });
  world.run();
  const Metrics m = server.total_metrics();
  EXPECT_EQ(m.ttl_armed, 1u);
  EXPECT_EQ(m.ttl_cancelled, 1u);
  EXPECT_EQ(m.expirations, 0u);
}

TEST_P(KvStoreTest, BucketFullReportsNoSpace) {
  World world(make_config());
  KvParams kp;
  kp.buckets = 1;  // every key collides into one bucket
  kp.slots_per_bucket = 2;
  KvServer server(world, kp);
  TestClient cli(world);
  world.spawn(0, [&](Context& ctx) -> Fiber {
    server.setup(ctx);
    MsgHdr put;
    put.op = OP_PUT;
    put.klen = 8;
    put.vlen = 4;
    int ok = 0;
    int no_space = 0;
    for (std::uint64_t k = 0; k < 3; ++k) {
      Pending p;
      co_await server.submit(ctx, put, kbytes(k), vbytes(4, 1),
                             cli.meta_for(ctx, p));
      co_await p.done;
      (p.resp.hdr.code == kOk ? ok : no_space)++;
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(no_space, 1);
  });
  world.run();
  EXPECT_EQ(server.total_metrics().no_space, 1u);
}

TEST_P(KvStoreTest, MetricsOverTheWireMatchHostSide) {
  World world(make_config());
  KvServer server(world, KvParams{});
  TestClient cli(world);
  Metrics wire{};
  const int P = world.ranks();
  world.spawn(0, [&](Context& ctx) -> Fiber {
    server.setup(ctx);
    MsgHdr put;
    put.op = OP_PUT;
    put.klen = 8;
    put.vlen = 4;
    for (std::uint64_t k = 0; k < 8; ++k) {
      Pending p;
      co_await server.submit(ctx, put, kbytes(k), vbytes(4, 2),
                             cli.meta_for(ctx, p));
      co_await p.done;
    }
    // Ask every node for its ledger over the wire.
    for (int n = 0; n < P; ++n) {
      Pending p;
      server.submit_metrics(ctx, n, cli.meta_for(ctx, p));
      co_await p.done;
      EXPECT_EQ(p.resp.value.size(), sizeof(Metrics));
      Metrics m;
      std::memcpy(&m, p.resp.value.data(), sizeof m);
      wire += m;
    }
  });
  world.run();
  EXPECT_EQ(wire.puts, 8u);
  EXPECT_EQ(wire.puts, server.total_metrics().puts);
}

INSTANTIATE_TEST_SUITE_P(Modes, KvStoreTest,
                         ::testing::Values(ModeParam{GasMode::kPgas, 4},
                                           ModeParam{GasMode::kAgasSw, 4},
                                           ModeParam{GasMode::kAgasNet, 4}),
                         param_name);

// --- full-workload determinism ---------------------------------------

KvRunConfig small_run(GasMode mode, int threads) {
  KvRunConfig rc;
  rc.mode = mode;
  rc.nodes = 4;
  rc.threads = threads;
  rc.policy = lb::PolicyKind::kHysteresis;
  rc.kv.buckets = 32;
  rc.client.keyspace = 512;
  rc.client.rate_per_node = 4.0e5;
  rc.client.t_start = 30'000;
  rc.client.duration = 400'000;
  rc.client.t_shift = 230'000;
  rc.churn_duration = 150'000;
  return rc;
}

TEST(KvWorkloadTest, RepeatRunsAreHashIdentical) {
  const KvRunResult a = run_kv(small_run(GasMode::kAgasNet, 0));
  const KvRunResult b = run_kv(small_run(GasMode::kAgasNet, 0));
  EXPECT_GT(a.issued, 100u);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.torn, 0u);
  EXPECT_EQ(b.torn, 0u);
}

TEST(KvWorkloadTest, EveryIssuedRequestIsAnsweredExactlyOnce) {
  const KvRunResult r = run_kv(small_run(GasMode::kAgasSw, 0));
  EXPECT_GT(r.issued, 100u);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.torn, 0u);
  // SLO report sanity: quantiles are ordered and goodput is positive.
  EXPECT_GT(r.slo.goodput_ops_per_sec, 0.0);
  EXPECT_LE(r.slo.get.p50, r.slo.get.p99);
  EXPECT_LE(r.slo.get.p99, r.slo.get.p999);
}

#if NVGAS_PARALLEL
TEST(KvWorkloadTest, TraceHashIsThreadCountInvariant) {
  if (!sim::Engine::kParallelEnabled) GTEST_SKIP();
  const KvRunResult t1 = run_kv(small_run(GasMode::kAgasNet, 1));
  const KvRunResult t4 = run_kv(small_run(GasMode::kAgasNet, 4));
  EXPECT_EQ(t1.trace_hash, t4.trace_hash);
  EXPECT_EQ(t1.completed, t4.completed);
  EXPECT_EQ(t1.sim_ns, t4.sim_ns);
}
#endif

TEST(KvWorkloadTest, LossyWireStillAnswersEverything) {
  KvRunConfig rc = small_run(GasMode::kAgasNet, 0);
  rc.lossy = true;
  const KvRunResult r = run_kv(rc);
  EXPECT_GT(r.issued, 100u);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_EQ(r.torn, 0u);
}

}  // namespace
}  // namespace nvgas::apps::kv
