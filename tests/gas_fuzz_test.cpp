// Randomized property tests: each address-space manager must behave like
// a flat sequential memory under serialized operations, and like
// per-region sequential memories under rank-disjoint concurrent traffic —
// with migrations injected throughout.
#include <gtest/gtest.h>

#include <map>

#include "core/nvgas.hpp"
#include "gas/invariants.hpp"

namespace nvgas {
namespace {

struct FuzzParam {
  GasMode mode;
  std::uint64_t seed;
};

std::string fuzz_name(const ::testing::TestParamInfo<FuzzParam>& info) {
  const char* mode = info.param.mode == GasMode::kPgas     ? "pgas"
                     : info.param.mode == GasMode::kAgasSw ? "agassw"
                                                           : "agasnet";
  return std::string(mode) + "_seed" + std::to_string(info.param.seed);
}

class GasFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

// One fiber performs a random serialized op sequence; a std::map is the
// reference memory. Every get must match the reference exactly.
TEST_P(GasFuzzTest, SerializedOpsMatchReferenceModel) {
  Config cfg = Config::with_nodes(8, GetParam().mode);
  cfg.machine.mem_bytes_per_node = 8u << 20;
  // Tiny SW cache / TLB to exercise eviction paths under fuzz.
  cfg.gas_costs.sw_cache_capacity = 8;
  cfg.agas_net.tlb_capacity = 16;
  World world(cfg);
  gas::InvariantObserver obs(world.gas());
  const bool mobile = GetParam().mode != GasMode::kPgas;

  constexpr std::uint32_t kBlocks = 16;
  constexpr std::uint32_t kBlockSize = 256;
  constexpr int kOps = 400;

  bool finished = false;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    util::Rng rng(GetParam().seed);
    std::map<std::uint64_t, std::uint64_t> reference;  // word index -> value
    const Gva base = alloc_cyclic(ctx, kBlocks, kBlockSize);
    const std::uint64_t words = kBlocks * kBlockSize / 8;

    for (int i = 0; i < kOps; ++i) {
      const std::uint64_t w = rng.below(words);
      const Gva addr = base.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize);
      const auto choice = rng.below(mobile ? 4 : 3);
      switch (choice) {
        case 0: {  // put
          const std::uint64_t v = rng.next();
          co_await memput_value<std::uint64_t>(ctx, addr, v);
          reference[w] = v;
          break;
        }
        case 1: {  // get
          const auto v = co_await memget_value<std::uint64_t>(ctx, addr);
          const auto expect = reference.count(w) ? reference[w] : 0;
          EXPECT_EQ(v, expect) << "word " << w << " op " << i;
          break;
        }
        case 2: {  // fetch_add
          const std::uint64_t d = rng.below(1000);
          const auto old = co_await fetch_add(ctx, addr, d);
          const auto expect = reference.count(w) ? reference[w] : 0;
          EXPECT_EQ(old, expect) << "word " << w << " op " << i;
          reference[w] = expect + d;
          break;
        }
        case 3: {  // migrate the containing block
          const int dst = static_cast<int>(rng.below(8));
          co_await migrate(ctx, addr, dst);
          EXPECT_EQ(world.gas().owner_of(addr).first, dst);
          break;
        }
      }
    }
    finished = true;
  });
  world.run();
  EXPECT_EQ(obs.check_quiescent(world.counters()), "");
  EXPECT_TRUE(finished);
}

// Every rank owns a disjoint slice of the table and fuzzes it
// concurrently with all the others; rank-local reference models must
// hold. Random migrations of *foreign* blocks are injected by rank 0 to
// shake the translation machinery underneath the traffic.
TEST_P(GasFuzzTest, ConcurrentDisjointRegionsMatchReference) {
  Config cfg = Config::with_nodes(8, GetParam().mode);
  cfg.machine.mem_bytes_per_node = 8u << 20;
  World world(cfg);
  gas::InvariantObserver obs(world.gas());
  const bool mobile = GetParam().mode != GasMode::kPgas;
  const int P = world.ranks();

  constexpr std::uint32_t kBlockSize = 512;
  const std::uint32_t blocks = static_cast<std::uint32_t>(2 * P);
  const std::uint64_t words_per_rank = 2 * kBlockSize / 8;

  Gva base;
  int done_ranks = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    base = alloc_cyclic(ctx, blocks, kBlockSize);
    rt::AndGate gate(static_cast<std::uint64_t>(P));
    const rt::LcoRef gref = ctx.make_ref(gate);
    for (int r = 0; r < P; ++r) {
      ctx.spawn(r, [&, r, gref](Context& c) -> Fiber {
        util::Rng rng(GetParam().seed * 977 + static_cast<std::uint64_t>(r));
        std::map<std::uint64_t, std::uint64_t> reference;
        // Rank r owns words [r*words_per_rank, (r+1)*words_per_rank).
        for (int i = 0; i < 120; ++i) {
          const std::uint64_t w =
              static_cast<std::uint64_t>(r) * words_per_rank + rng.below(words_per_rank);
          const Gva addr =
              base.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize);
          if (rng.chance(0.5)) {
            const std::uint64_t v = rng.next();
            co_await memput_value<std::uint64_t>(c, addr, v);
            reference[w] = v;
          } else {
            const auto v = co_await memget_value<std::uint64_t>(c, addr);
            const auto expect = reference.count(w) ? reference[w] : 0;
            EXPECT_EQ(v, expect) << "rank " << r << " word " << w;
          }
        }
        ++done_ranks;
        c.set_lco(gref);
      });
    }
    if (mobile) {
      // Migration churn under the traffic.
      util::Rng mrng(GetParam().seed + 17);
      for (int i = 0; i < 10; ++i) {
        const std::uint32_t b = static_cast<std::uint32_t>(mrng.below(blocks));
        const int dst = static_cast<int>(mrng.below(static_cast<std::uint64_t>(P)));
        co_await migrate(
            ctx, base.advanced(static_cast<std::int64_t>(b) * kBlockSize, kBlockSize),
            dst);
      }
    }
    co_await gate;
  });
  world.run();
  EXPECT_EQ(obs.check_quiescent(world.counters()), "");
  EXPECT_EQ(done_ranks, P);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, GasFuzzTest,
    ::testing::Values(FuzzParam{GasMode::kPgas, 1}, FuzzParam{GasMode::kPgas, 2},
                      FuzzParam{GasMode::kAgasSw, 1},
                      FuzzParam{GasMode::kAgasSw, 2},
                      FuzzParam{GasMode::kAgasSw, 3},
                      FuzzParam{GasMode::kAgasNet, 1},
                      FuzzParam{GasMode::kAgasNet, 2},
                      FuzzParam{GasMode::kAgasNet, 3}),
    fuzz_name);

}  // namespace
}  // namespace nvgas
