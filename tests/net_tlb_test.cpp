#include "net/nic_tlb.hpp"

#include <gtest/gtest.h>

namespace nvgas::net {
namespace {

TlbEntry entry(int owner, sim::Lva base = 0, std::uint32_t gen = 0,
               bool pinned = false) {
  TlbEntry e;
  e.owner = owner;
  e.base = base;
  e.generation = gen;
  e.pinned = pinned;
  return e;
}

TEST(NicTlb, InsertLookup) {
  NicTlb tlb(8);
  EXPECT_TRUE(tlb.insert(42, entry(3, 0x1000, 7)));
  auto e = tlb.lookup(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->owner, 3);
  EXPECT_EQ(e->base, 0x1000u);
  EXPECT_EQ(e->generation, 7u);
  EXPECT_EQ(tlb.hits(), 1u);
}

TEST(NicTlb, MissCounted) {
  NicTlb tlb(8);
  EXPECT_FALSE(tlb.lookup(1).has_value());
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(NicTlb, OverwriteUpdates) {
  NicTlb tlb(8);
  tlb.insert(5, entry(1));
  tlb.insert(5, entry(2, 0x20, 1));
  EXPECT_EQ(tlb.size(), 1u);
  auto e = tlb.lookup(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->owner, 2);
  EXPECT_EQ(e->generation, 1u);
}

TEST(NicTlb, LruEvictsColdestEntry) {
  NicTlb tlb(3);
  tlb.insert(1, entry(1));
  tlb.insert(2, entry(2));
  tlb.insert(3, entry(3));
  // Touch 1 so 2 becomes coldest.
  (void)tlb.lookup(1);
  tlb.insert(4, entry(4));
  EXPECT_EQ(tlb.size(), 3u);
  EXPECT_TRUE(tlb.lookup(1).has_value());
  EXPECT_FALSE(tlb.lookup(2).has_value());
  EXPECT_TRUE(tlb.lookup(3).has_value());
  EXPECT_TRUE(tlb.lookup(4).has_value());
  EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(NicTlb, PinnedEntriesSurviveEvictionPressure) {
  NicTlb tlb(2);
  tlb.insert(10, entry(0, 0, 0, /*pinned=*/true));
  tlb.insert(11, entry(1));
  tlb.insert(12, entry(2));
  tlb.insert(13, entry(3));  // evicts 11, not the pinned 10
  EXPECT_TRUE(tlb.lookup(10).has_value());
  EXPECT_FALSE(tlb.lookup(11).has_value());
  EXPECT_TRUE(tlb.lookup(12).has_value());
  EXPECT_TRUE(tlb.lookup(13).has_value());
}

TEST(NicTlb, PinnedEntriesDoNotConsumeCacheCapacity) {
  // The directory region is separate: many pinned entries coexist with a
  // full cache of unpinned ones.
  NicTlb tlb(2);
  for (std::uint64_t k = 100; k < 110; ++k) {
    EXPECT_TRUE(tlb.insert(k, entry(0, 0, 0, true)));
  }
  tlb.insert(1, entry(1));
  tlb.insert(2, entry(2));
  tlb.insert(3, entry(3));  // evicts 1
  EXPECT_EQ(tlb.size(), 12u);
  EXPECT_FALSE(tlb.lookup(1).has_value());
  for (std::uint64_t k = 100; k < 110; ++k) {
    EXPECT_TRUE(tlb.lookup(k).has_value());
  }
}

TEST(NicTlb, PinTransitionMaintainsBookkeeping) {
  NicTlb tlb(4);
  tlb.insert(1, entry(0));               // unpinned
  tlb.insert(1, entry(0, 0, 1, true));   // now pinned
  tlb.insert(2, entry(1));
  tlb.insert(3, entry(2));
  tlb.insert(4, entry(3));
  tlb.insert(5, entry(4));               // evicts an unpinned entry
  EXPECT_TRUE(tlb.lookup(1).has_value());
  // Unpin again.
  tlb.insert(1, entry(0, 0, 2, false));
  auto e = tlb.lookup(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->pinned);
}

TEST(NicTlb, FindGivesMutableAccess) {
  NicTlb tlb(4);
  tlb.insert(7, entry(1, 0, 0));
  TlbEntry* e = tlb.find(7);
  ASSERT_NE(e, nullptr);
  e->in_flight = true;
  e->generation = 9;
  auto seen = tlb.lookup(7);
  ASSERT_TRUE(seen.has_value());
  EXPECT_TRUE(seen->in_flight);
  EXPECT_EQ(seen->generation, 9u);
  EXPECT_EQ(tlb.find(999), nullptr);
}

TEST(NicTlb, EraseRemoves) {
  NicTlb tlb(4);
  tlb.insert(1, entry(0));
  tlb.insert(2, entry(0, 0, 0, true));
  tlb.erase(1);
  tlb.erase(2);
  tlb.erase(3);  // no-op
  EXPECT_EQ(tlb.size(), 0u);
  // Capacity restored: can insert two unpinned + evictions work.
  tlb.insert(4, entry(0));
  tlb.insert(5, entry(0));
  EXPECT_EQ(tlb.size(), 2u);
}

TEST(NicTlb, HeavyChurnStaysWithinCapacity) {
  NicTlb tlb(16);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    tlb.insert(i, entry(static_cast<int>(i % 7)));
    EXPECT_LE(tlb.size(), 16u);
  }
  EXPECT_EQ(tlb.evictions(), 1000u - 16u);
}

}  // namespace
}  // namespace nvgas::net
