// Differential testing: the three address-space managers are different
// IMPLEMENTATIONS of the same abstract memory — any serialized program
// must observe identical values and leave identical final images on all
// of them (migrations aside, which only the mobile managers run).
#include <gtest/gtest.h>

#include "core/nvgas.hpp"

namespace nvgas {
namespace {

struct OpRecord {
  enum class Kind : std::uint8_t { kPut, kGet, kFadd } kind;
  std::uint64_t word;
  std::uint64_t value;  // put value / fadd operand
};

// Deterministic op tape (shared across modes).
std::vector<OpRecord> make_tape(std::uint64_t seed, std::uint64_t words,
                                int ops) {
  util::Rng rng(seed);
  std::vector<OpRecord> tape;
  tape.reserve(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    OpRecord r{};
    r.kind = static_cast<OpRecord::Kind>(rng.below(3));
    r.word = rng.below(words);
    r.value = rng.next() >> 8;
    tape.push_back(r);
  }
  return tape;
}

struct RunResult {
  std::vector<std::uint64_t> gets;        // every observed get value
  std::vector<std::uint64_t> fadd_olds;   // every fetch-add old value
  std::vector<std::uint64_t> final_image; // word values after the run
};

RunResult run_tape(GasMode mode, const std::vector<OpRecord>& tape,
                   std::uint64_t words, bool with_migrations) {
  constexpr std::uint32_t kBlockSize = 512;
  Config cfg = Config::with_nodes(8, mode);
  cfg.machine.mem_bytes_per_node = 4u << 20;
  World world(cfg);
  RunResult out;
  const auto blocks =
      static_cast<std::uint32_t>((words * 8 + kBlockSize - 1) / kBlockSize);

  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, blocks, kBlockSize);
    util::Rng mig_rng(777);
    int since_migration = 0;
    for (const auto& op : tape) {
      const Gva addr =
          base.advanced(static_cast<std::int64_t>(op.word) * 8, kBlockSize);
      switch (op.kind) {
        case OpRecord::Kind::kPut:
          co_await memput_value<std::uint64_t>(ctx, addr, op.value);
          break;
        case OpRecord::Kind::kGet:
          out.gets.push_back(co_await memget_value<std::uint64_t>(ctx, addr));
          break;
        case OpRecord::Kind::kFadd:
          out.fadd_olds.push_back(co_await fetch_add(ctx, addr, op.value));
          break;
      }
      if (with_migrations && world.gas().supports_migration() &&
          ++since_migration >= 23) {
        since_migration = 0;
        co_await migrate(ctx, addr, static_cast<int>(mig_rng.below(8)));
      }
    }
    for (std::uint64_t w = 0; w < words; ++w) {
      const Gva addr =
          base.advanced(static_cast<std::int64_t>(w) * 8, kBlockSize);
      out.final_image.push_back(co_await memget_value<std::uint64_t>(ctx, addr));
    }
  });
  world.run();
  return out;
}

TEST(Differential, AllManagersObserveIdenticalSemantics) {
  const std::uint64_t words = 1024;
  const auto tape = make_tape(0xd1f, words, 500);
  const RunResult pgas = run_tape(GasMode::kPgas, tape, words, false);
  const RunResult sw = run_tape(GasMode::kAgasSw, tape, words, false);
  const RunResult net = run_tape(GasMode::kAgasNet, tape, words, false);
  EXPECT_EQ(pgas.gets, sw.gets);
  EXPECT_EQ(pgas.gets, net.gets);
  EXPECT_EQ(pgas.fadd_olds, sw.fadd_olds);
  EXPECT_EQ(pgas.fadd_olds, net.fadd_olds);
  EXPECT_EQ(pgas.final_image, sw.final_image);
  EXPECT_EQ(pgas.final_image, net.final_image);
}

TEST(Differential, MigrationChurnDoesNotChangeSemantics) {
  // The mobile managers, with migrations injected every 23 ops, must
  // still agree with immobile PGAS on every observed value.
  const std::uint64_t words = 512;
  const auto tape = make_tape(0xabcd, words, 400);
  const RunResult pgas = run_tape(GasMode::kPgas, tape, words, false);
  const RunResult sw = run_tape(GasMode::kAgasSw, tape, words, true);
  const RunResult net = run_tape(GasMode::kAgasNet, tape, words, true);
  EXPECT_EQ(pgas.gets, sw.gets);
  EXPECT_EQ(pgas.gets, net.gets);
  EXPECT_EQ(pgas.fadd_olds, sw.fadd_olds);
  EXPECT_EQ(pgas.fadd_olds, net.fadd_olds);
  EXPECT_EQ(pgas.final_image, sw.final_image);
  EXPECT_EQ(pgas.final_image, net.final_image);
}

TEST(Differential, SameModeSameSeedIsBitIdentical) {
  const std::uint64_t words = 256;
  const auto tape = make_tape(42, words, 300);
  for (GasMode mode : {GasMode::kPgas, GasMode::kAgasSw, GasMode::kAgasNet}) {
    const RunResult a = run_tape(mode, tape, words, true);
    const RunResult b = run_tape(mode, tape, words, true);
    EXPECT_EQ(a.gets, b.gets) << gas::to_string(mode);
    EXPECT_EQ(a.final_image, b.final_image) << gas::to_string(mode);
  }
}

}  // namespace
}  // namespace nvgas
