// Put-with-remote-notification (remote completion ledger) semantics.
#include <gtest/gtest.h>

#include "core/nvgas.hpp"

namespace nvgas {
namespace {

class SignalTest : public ::testing::TestWithParam<GasMode> {
 protected:
  Config make_config() const { return Config::with_nodes(8, GetParam()); }
};

std::string mode_name(const ::testing::TestParamInfo<GasMode>& info) {
  switch (info.param) {
    case GasMode::kPgas: return "pgas";
    case GasMode::kAgasSw: return "agassw";
    case GasMode::kAgasNet: return "agasnet";
  }
  return "x";
}

TEST_P(SignalTest, ConsumerSeesDataWhenSignalled) {
  World world(make_config());
  std::uint64_t consumed = 0;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, 8, 256);
    // Find a block homed on rank 3 — the consumer lives with the data.
    Gva slot = base;
    while (slot.home(ctx.ranks()) != 3) slot = slot.advanced(256, 256);

    rt::Event ready;         // registered at the consumer's node? No —
    rt::Future<std::uint64_t> result;
    const rt::LcoRef rref = ctx.make_ref(result);

    // Consumer on rank 3 registers its arrival event and waits.
    rt::Future<std::uint64_t> arrival_ref_bits;
    const rt::LcoRef aref = ctx.make_ref(arrival_ref_bits);
    ctx.spawn(3, [&, slot, rref, aref](Context& c) -> Fiber {
      rt::Event arrived;
      const rt::LcoRef my_ref = c.make_ref(arrived);
      // Publish the ledger ref to the producer (via a future).
      util::Buffer b;
      b.put<std::uint64_t>((static_cast<std::uint64_t>(my_ref.node) << 32) |
                           my_ref.id);
      c.set_lco(aref, std::move(b));
      co_await arrived;  // ledger notification — data is visible locally
      const auto v = co_await memget_value<std::uint64_t>(c, slot);
      util::Buffer rb;
      rb.put<std::uint64_t>(v);
      c.set_lco(rref, std::move(rb));
    });

    const auto packed = co_await arrival_ref_bits;
    const rt::LcoRef consumer_ref{static_cast<int>(packed >> 32),
                                  packed & 0xffffffffu};
    co_await memput_signal_value<std::uint64_t>(ctx, slot, 0xfeedbee5,
                                                consumer_ref);
    consumed = co_await result;
  });
  world.run();
  EXPECT_EQ(consumed, 0xfeedbee5u);
}

TEST_P(SignalTest, NotificationFiresAtCurrentOwnerAfterMigration) {
  if (GetParam() == GasMode::kPgas) GTEST_SKIP();
  World world(make_config());
  bool notified = false;
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva block = alloc_cyclic(ctx, 1, 256);
    co_await migrate(ctx, block, 6);

    // The LCO is registered on rank 6 (the current owner); the ledger set
    // must land there even though the producer's translation may route
    // through forwarding.
    rt::Event arrived;
    const rt::LcoRef ref = world.runtime().register_lco(6, arrived);
    co_await memput_signal_value<std::uint64_t>(ctx, block, 42, ref);
    co_await arrived;  // already triggered or triggering; either way works
    notified = true;
    const auto [owner, lva] = world.gas().owner_of(block);
    EXPECT_EQ(owner, 6);
    EXPECT_EQ(world.fabric().mem(6).load<std::uint64_t>(lva), 42u);
  });
  world.run();
  EXPECT_TRUE(notified);
}

TEST_P(SignalTest, LocalPutNotifiesImmediately) {
  World world(make_config());
  bool done = false;
  world.spawn(2, [&](Context& ctx) -> Fiber {
    const Gva mine = alloc_local(ctx, 1, 128);
    rt::Event arrived;
    const rt::LcoRef ref = ctx.make_ref(arrived);
    co_await memput_signal_value<std::uint64_t>(ctx, mine, 5, ref);
    EXPECT_TRUE(arrived.triggered());
    done = true;
  });
  world.run();
  EXPECT_TRUE(done);
}

TEST_P(SignalTest, NotificationCarriesNoCpuCostAtTarget) {
  // The ledger write itself must not schedule a CPU task at the target;
  // only the (separately counted) waiter resume does.
  World world(make_config());
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, 8, 256);
    Gva slot = base;
    while (slot.home(ctx.ranks()) != 4) slot = slot.advanced(256, 256);
    rt::Event arrived;  // registered on rank 4 but nobody waits
    const rt::LcoRef ref = world.runtime().register_lco(4, arrived);
    // Warm the translation: the software AGAS's cold resolve legitimately
    // runs directory work on the home CPU; the claim under test is about
    // the notification itself.
    co_await memput_value<std::uint64_t>(ctx, slot, 0);
    const auto tasks_before = world.fabric().cpu(4).tasks_run();
    co_await memput_signal_value<std::uint64_t>(ctx, slot, 1, ref);
    EXPECT_TRUE(arrived.triggered());
    EXPECT_EQ(world.fabric().cpu(4).tasks_run(), tasks_before);
  });
  world.run();
}

INSTANTIATE_TEST_SUITE_P(AllModes, SignalTest,
                         ::testing::Values(GasMode::kPgas, GasMode::kAgasSw,
                                           GasMode::kAgasNet),
                         mode_name);

}  // namespace
}  // namespace nvgas
