#include <gtest/gtest.h>

#include "gas/block_store.hpp"
#include "gas/gheap.hpp"
#include "gas/tcache.hpp"
#include "sim/fabric.hpp"
#include "util/rng.hpp"

namespace nvgas::gas {
namespace {

TEST(BlockStore, AllocatesDistinctRegions) {
  BlockStore store(1 << 20);
  const auto a = store.allocate(4096);
  const auto b = store.allocate(4096);
  EXPECT_NE(a, b);
  EXPECT_GE(store.bytes_in_use(), 8192u);
}

TEST(BlockStore, ReusesFreedBlocks) {
  BlockStore store(1 << 20);
  const auto a = store.allocate(1024);
  store.release(a, 1024);
  const auto b = store.allocate(1024);
  EXPECT_EQ(a, b);  // same size class, LIFO reuse
}

TEST(BlockStore, RoundsUpToPowerOfTwo) {
  BlockStore store(1 << 20);
  const auto a = store.allocate(100);  // -> 128
  (void)a;
  EXPECT_EQ(store.bytes_in_use(), 128u);
  const auto b = store.allocate(129);  // -> 256
  (void)b;
  EXPECT_EQ(store.bytes_in_use(), 128u + 256u);
}

TEST(BlockStore, MinimumGranularity) {
  BlockStore store(1 << 20);
  (void)store.allocate(1);
  EXPECT_EQ(store.bytes_in_use(), BlockStore::kMinBlock);
}

TEST(BlockStore, ExhaustionFailsGracefully) {
  BlockStore store(4096);
  sim::Lva lva = 0;
  EXPECT_TRUE(store.try_allocate(4096, &lva));
  EXPECT_FALSE(store.try_allocate(64, &lva));
  EXPECT_DEATH((void)store.allocate(64), "exhausted");
}

TEST(BlockStore, ChurnStaysBounded) {
  BlockStore store(1 << 16);
  util::Rng rng(11);
  std::vector<std::pair<sim::Lva, std::size_t>> live;
  for (int i = 0; i < 5000; ++i) {
    if (live.size() < 8 && rng.chance(0.6)) {
      const std::size_t size = 64ull << rng.below(6);
      sim::Lva lva = 0;
      ASSERT_TRUE(store.try_allocate(size, &lva));
      live.emplace_back(lva, size);
    } else if (!live.empty()) {
      const auto idx = rng.below(live.size());
      store.release(live[idx].first, live[idx].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  // The high-water mark must stay far below naive 5000 * max-size.
  EXPECT_LE(store.high_water(), 1u << 16);
}

struct HeapFixture : ::testing::Test {
  HeapFixture() : fabric(params()), heap(fabric) {}
  static sim::MachineParams params() {
    sim::MachineParams p;
    p.nodes = 4;
    p.mem_bytes_per_node = 1 << 20;
    return p;
  }
  sim::Fabric fabric;
  GlobalHeap heap;
};

TEST_F(HeapFixture, CyclicAllocationPlacesBlocksRoundRobin) {
  const Gva base = heap.alloc(Dist::kCyclic, 1, 8, 4096);
  EXPECT_EQ(base.creator(), 1);
  for (std::uint32_t b = 0; b < 8; ++b) {
    const Gva block = base.advanced(static_cast<std::int64_t>(b) * 4096, 4096);
    EXPECT_EQ(heap.home_of(block), static_cast<int>((1 + b) % 4));
    (void)heap.initial_lva(block.block_base());  // must exist
  }
}

TEST_F(HeapFixture, MetaRecordsParameters) {
  const Gva base = heap.alloc(Dist::kCyclic, 0, 16, 1024);
  const AllocMeta& m = heap.meta_of(base);
  EXPECT_EQ(m.nblocks, 16u);
  EXPECT_EQ(m.block_size, 1024u);
  EXPECT_EQ(m.total_bytes(), 16u * 1024u);
}

TEST_F(HeapFixture, ContainsChecksBounds) {
  const Gva base = heap.alloc(Dist::kCyclic, 0, 4, 256);
  EXPECT_TRUE(heap.contains(base));
  EXPECT_TRUE(heap.contains(base.advanced(4 * 256 - 1, 256)));
  EXPECT_FALSE(heap.contains(Gva::make(Dist::kCyclic, 0, base.alloc_id(), 4, 0)));
  EXPECT_FALSE(heap.contains(Gva::make(Dist::kCyclic, 0, 999, 0, 0)));
}

TEST_F(HeapFixture, ExtentCheckRejectsBlockCrossing) {
  const Gva base = heap.alloc(Dist::kCyclic, 0, 4, 256);
  heap.check_extent(base, 256);  // exactly one block: fine
  EXPECT_DEATH(heap.check_extent(base.advanced(200, 256), 100), "boundary");
}

TEST_F(HeapFixture, DistinctAllocationsGetDistinctIds) {
  const Gva a = heap.alloc(Dist::kCyclic, 0, 2, 64);
  const Gva b = heap.alloc(Dist::kCyclic, 0, 2, 64);
  EXPECT_NE(a.alloc_id(), b.alloc_id());
}

TEST_F(HeapFixture, LocalAllocationStaysOnCreator) {
  const Gva base = heap.alloc(Dist::kLocal, 2, 4, 512);
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(heap.home_of(base.advanced(static_cast<std::int64_t>(b) * 512, 512)), 2);
  }
}

TEST_F(HeapFixture, ReleaseMetaForgetsAllocation) {
  const Gva base = heap.alloc(Dist::kCyclic, 0, 2, 64);
  heap.release_meta(base.alloc_id());
  EXPECT_FALSE(heap.contains(base));
  EXPECT_DEATH((void)heap.meta_of(base), "unknown");
}

TEST(TranslationCacheExtra, InsertOverwriteKeepsSize) {
  TranslationCache cache(4);
  cache.insert(1, CacheEntry{0, 0, 0});
  cache.insert(1, CacheEntry{2, 64, 1});
  EXPECT_EQ(cache.size(), 1u);
  const auto e = cache.lookup(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->owner, 2);
  EXPECT_EQ(e->generation, 1u);
}

TEST(TranslationCacheExtra, LruEvictionOrder) {
  TranslationCache cache(2);
  cache.insert(1, CacheEntry{1, 0, 0});
  cache.insert(2, CacheEntry{2, 0, 0});
  (void)cache.lookup(1);
  cache.insert(3, CacheEntry{3, 0, 0});
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(TranslationCacheExtra, InvalidateReportsPresence) {
  TranslationCache cache(2);
  cache.insert(1, CacheEntry{1, 0, 0});
  EXPECT_TRUE(cache.invalidate(1));
  EXPECT_FALSE(cache.invalidate(1));
  EXPECT_FALSE(cache.lookup(1).has_value());
}

}  // namespace
}  // namespace nvgas::gas
