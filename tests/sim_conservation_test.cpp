// Conservation invariants over randomized workloads: after a full drain,
// every message sent was delivered, every byte accounted, and no
// completion was lost. These catch protocol leaks that functional tests
// can miss (an op that "works" but strands a message or double-counts).
#include <gtest/gtest.h>

#include "core/nvgas.hpp"

namespace nvgas {
namespace {

void random_workload(World& world, std::uint64_t seed, int ops) {
  world.spawn(0, [&world, seed, ops](Context& ctx) -> Fiber {
    const bool mobile = world.gas().supports_migration();
    const auto ranks = static_cast<std::uint64_t>(ctx.ranks());
    const Gva base = alloc_cyclic(ctx, 32, 1024);
    util::Rng rng(seed);
    for (int i = 0; i < ops; ++i) {
      const auto b = static_cast<std::int64_t>(rng.below(32));
      const Gva addr = base.advanced(b * 1024 + static_cast<std::int64_t>(
                                                    rng.below(64)) * 8,
                                     1024);
      switch (rng.below(mobile ? 4 : 3)) {
        case 0:
          co_await memput_value<std::uint64_t>(ctx, addr, rng.next());
          break;
        case 1:
          (void)co_await memget_value<std::uint64_t>(ctx, addr);
          break;
        case 2:
          (void)co_await fetch_add(ctx, addr, 1);
          break;
        case 3:
          co_await migrate(ctx, addr, static_cast<int>(rng.below(ranks)));
          break;
      }
    }
  });
  world.run();
}

class ConservationTest : public ::testing::TestWithParam<GasMode> {};

std::string mode_name(const ::testing::TestParamInfo<GasMode>& info) {
  switch (info.param) {
    case GasMode::kPgas: return "pgas";
    case GasMode::kAgasSw: return "agassw";
    case GasMode::kAgasNet: return "agasnet";
  }
  return "x";
}

TEST_P(ConservationTest, EveryMessageDeliveredEveryByteAccounted) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Config cfg = Config::with_nodes(8, GetParam());
    cfg.machine.mem_bytes_per_node = 4u << 20;
    World world(cfg);
    random_workload(world, seed, 300);
    const auto& c = world.counters();
    EXPECT_EQ(c.messages_sent, c.messages_delivered) << "seed " << seed;
    EXPECT_EQ(c.bytes_sent, c.bytes_delivered) << "seed " << seed;
    EXPECT_TRUE(world.engine().idle());
    EXPECT_EQ(world.runtime().live_fibers(), 0u);
  }
}

TEST_P(ConservationTest, PerNicTxRxTotalsBalance) {
  Config cfg = Config::with_nodes(8, GetParam());
  cfg.machine.mem_bytes_per_node = 4u << 20;
  World world(cfg);
  random_workload(world, 99, 250);
  std::uint64_t tx = 0;
  std::uint64_t rx = 0;
  for (int n = 0; n < 8; ++n) {
    tx += world.fabric().nic(n).tx_messages();
    rx += world.fabric().nic(n).rx_messages();
  }
  EXPECT_EQ(tx, rx);
  EXPECT_EQ(tx, world.counters().messages_sent);
}

TEST_P(ConservationTest, CpuBusyNeverExceedsWallClockTimesWorkers) {
  Config cfg = Config::with_nodes(4, GetParam());
  cfg.machine.mem_bytes_per_node = 4u << 20;
  World world(cfg);
  random_workload(world, 5, 200);
  const auto elapsed = world.now();
  for (int n = 0; n < 4; ++n) {
    EXPECT_LE(world.fabric().cpu(n).busy_ns(),
              elapsed * static_cast<sim::Time>(cfg.machine.workers_per_node))
        << "node " << n;
  }
}

TEST_P(ConservationTest, GasOpCountsMatchIssuedOps) {
  Config cfg = Config::with_nodes(8, GetParam());
  World world(cfg);
  world.spawn(0, [&](Context& ctx) -> Fiber {
    const Gva base = alloc_cyclic(ctx, 8, 256);
    for (int i = 0; i < 10; ++i) {
      co_await memput_value<std::uint64_t>(ctx, base.advanced((i % 8) * 256, 256), i);
    }
    for (int i = 0; i < 7; ++i) {
      (void)co_await memget_value<std::uint64_t>(ctx, base.advanced((i % 8) * 256, 256));
    }
    for (int i = 0; i < 5; ++i) {
      (void)co_await fetch_add(ctx, base, 1);
    }
  });
  world.run();
  EXPECT_EQ(world.counters().gas_memputs, 10u);
  EXPECT_EQ(world.counters().gas_memgets, 7u);
  EXPECT_EQ(world.counters().gas_atomics, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ConservationTest,
                         ::testing::Values(GasMode::kPgas, GasMode::kAgasSw,
                                           GasMode::kAgasNet),
                         mode_name);

}  // namespace
}  // namespace nvgas
